//! Criterion benchmark of the evaluation & fitting hot path: full-metric
//! mask scoring (`evaluate_mask_grid`: nominal + defocused aerial images,
//! EPE / PVB / L2) and the hybrid flow's contour fitting stage
//! (`fit_mask_shapes` on a Fig. 7 metal clip).
//!
//! Every table and figure of the paper's evaluation is gated on these two
//! functions, so they are benchmarked at the grid sizes the experiments
//! use (128² for the via tables, 256²/512² for the metal clips).

use cardopc::ilt::{fit_mask_shapes, HybridConfig};
use cardopc::litho::rasterize;
use cardopc::opc::{engine_for_extent, evaluate_mask_grid, MeasureConvention};
use cardopc::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Target patterns spanning the 1024 nm clip used at both grid sizes.
fn targets() -> Vec<Polygon> {
    vec![
        Polygon::rect(Point::new(250.0, 440.0), Point::new(370.0, 560.0)),
        Polygon::rect(Point::new(620.0, 440.0), Point::new(740.0, 560.0)),
        Polygon::rect(Point::new(200.0, 700.0), Point::new(820.0, 780.0)),
    ]
}

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_mask_grid");
    group.sample_size(20);
    for pitch in [8.0f64, 4.0] {
        let engine = engine_for_extent(1024.0, 1024.0, pitch).unwrap();
        let targets = targets();
        let mask = rasterize(&targets, engine.width(), engine.height(), engine.pitch());
        group.bench_function(format!("{}x{}", engine.width(), engine.height()), |b| {
            b.iter(|| {
                black_box(
                    evaluate_mask_grid(
                        &engine,
                        black_box(&mask),
                        &targets,
                        MeasureConvention::MetalSpacing(60.0),
                        0.02,
                        40.0,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_fit(c: &mut Criterion) {
    // The fitting stage of the hybrid flow on a Fig. 7 metal clip: the
    // rasterised M1 wire pattern, smoothed so the traced contours carry the
    // curvature a real ILT mask would (pixel ILT itself is benched by the
    // fig7 binary; here we isolate regularise + trace + Algorithm 1).
    let clip = &metal_clips()[0];
    let engine = engine_for_extent(clip.width(), clip.height(), 4.0).unwrap();
    let raster = rasterize(
        clip.targets(),
        engine.width(),
        engine.height(),
        engine.pitch(),
    );
    let mask = cardopc::ilt::cleanup::blur(&raster, 3);
    let config = HybridConfig::default();

    let mut group = c.benchmark_group("fit_mask_shapes");
    group.sample_size(10);
    group.bench_function("fig7_metal_512", |b| {
        b.iter(|| black_box(fit_mask_shapes(black_box(&mask), &config)))
    });
    group.finish();
}

criterion_group!(benches, bench_evaluate, bench_fit);
criterion_main!(benches);
