//! Criterion benchmark of the 2-D FFT kernels in isolation: forward vs
//! inverse, complex vs real-packed input, across the grid sizes the OPC
//! flows actually use.
//!
//! ```sh
//! cargo bench -p cardopc-bench --bench fft2
//! ```

use cardopc::litho::fft::{Complex, Field};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn real_samples(n: usize) -> Vec<f64> {
    // Deterministic, non-trivial content (no RNG needed for throughput).
    (0..n).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect()
}

fn complex_field(edge: usize) -> Field {
    let mut f = Field::zeros(edge, edge);
    for (i, z) in f.data_mut().iter_mut().enumerate() {
        *z = Complex::new(((i % 13) as f64 - 6.0) / 6.0, ((i % 7) as f64 - 3.0) / 3.0);
    }
    f
}

fn bench_forward_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2_forward_complex");
    group.sample_size(10);
    for edge in [128usize, 256, 512, 1024, 2048] {
        let field = complex_field(edge);
        let mut scratch = Vec::new();
        group.bench_function(format!("{edge}x{edge}"), |b| {
            b.iter(|| {
                let mut f = field.clone();
                f.fft2_inplace_with(false, &mut scratch);
                black_box(f.energy())
            })
        });
    }
    group.finish();
}

fn bench_inverse_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2_inverse_complex");
    group.sample_size(10);
    for edge in [128usize, 256, 512, 1024, 2048] {
        let field = complex_field(edge);
        let mut scratch = Vec::new();
        group.bench_function(format!("{edge}x{edge}"), |b| {
            b.iter(|| {
                let mut f = field.clone();
                f.fft2_inplace_with(true, &mut scratch);
                black_box(f.energy())
            })
        });
    }
    group.finish();
}

fn bench_forward_real(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2_forward_real");
    group.sample_size(10);
    for edge in [128usize, 256, 512, 1024, 2048] {
        let real = real_samples(edge * edge);
        let mut field = Field::zeros(edge, edge);
        let mut scratch = Vec::new();
        group.bench_function(format!("{edge}x{edge}"), |b| {
            b.iter(|| {
                field.fill_forward_real_with(black_box(&real), &mut scratch);
                black_box(field.energy())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_complex,
    bench_inverse_complex,
    bench_forward_real
);
criterion_main!(benches);
