//! Criterion benchmark of the 2-D FFT kernels in isolation: forward vs
//! inverse, complex vs real-packed input, across the grid sizes the OPC
//! flows actually use — pow2 sizes plus the 5-smooth sizes (192, 320, 640)
//! the mixed-radix core now runs directly instead of padding to pow2.
//!
//! ```sh
//! cargo bench -p cardopc-bench --bench fft2
//! ```
//!
//! Iterations end with `black_box(&field)` rather than an `energy()`
//! Parseval sum: the serial `f64` reduction costs ~0.3 ms at 512² —
//! comparable to the transform itself — and is not part of the FFT work
//! these groups claim to measure.

use cardopc::litho::fft::{Complex, FftScratch, Field};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Pow2 edges plus the 5-smooth non-pow2 edges of interest.
const EDGES: [usize; 8] = [128, 192, 256, 320, 512, 640, 1024, 2048];

fn real_samples(n: usize) -> Vec<f64> {
    // Deterministic, non-trivial content (no RNG needed for throughput).
    (0..n).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect()
}

fn complex_field(edge: usize) -> Field {
    let mut f = Field::zeros(edge, edge);
    for iy in 0..edge {
        for ix in 0..edge {
            let i = iy * edge + ix;
            let z = Complex::new(((i % 13) as f64 - 6.0) / 6.0, ((i % 7) as f64 - 3.0) / 3.0);
            f.set(ix, iy, z);
        }
    }
    f
}

fn bench_forward_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2_forward_complex");
    group.sample_size(10);
    for edge in EDGES {
        let field = complex_field(edge);
        let mut scratch = FftScratch::new();
        group.bench_function(format!("{edge}x{edge}"), |b| {
            b.iter(|| {
                let mut f = field.clone();
                f.fft2_inplace_with(false, &mut scratch);
                black_box(&f);
            })
        });
    }
    group.finish();
}

fn bench_inverse_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2_inverse_complex");
    group.sample_size(10);
    for edge in EDGES {
        let field = complex_field(edge);
        let mut scratch = FftScratch::new();
        group.bench_function(format!("{edge}x{edge}"), |b| {
            b.iter(|| {
                let mut f = field.clone();
                f.fft2_inplace_with(true, &mut scratch);
                black_box(&f);
            })
        });
    }
    group.finish();
}

fn bench_forward_real_t<T: cardopc::litho::Scalar>(c: &mut Criterion, name: &str) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    for edge in EDGES {
        let real = real_samples(edge * edge);
        let mut field: Field<T> = Field::zeros(edge, edge);
        let mut scratch: FftScratch<T> = FftScratch::new();
        group.bench_function(format!("{edge}x{edge}"), |b| {
            b.iter(|| {
                field.fill_forward_real_with(black_box(&real), &mut scratch);
                black_box(&field);
            })
        });
    }
    group.finish();
}

fn bench_forward_real(c: &mut Criterion) {
    bench_forward_real_t::<f64>(c, "fft2_forward_real");
    bench_forward_real_t::<f32>(c, "fft2_forward_real_f32");
}

/// Batched 1-D transforms in isolation (no transposes, no packing): the
/// pure Stockham stage cost, the piece that should scale with SIMD width.
fn bench_fft1d_batch_t<T: cardopc::litho::Scalar>(c: &mut Criterion, name: &str) {
    use cardopc::litho::FftPlan;
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    for edge in [128usize, 512] {
        let plan = FftPlan::<T>::get(edge);
        let mut scratch: FftScratch<T> = FftScratch::new();
        let mut re: Vec<T> = (0..edge * edge)
            .map(|i| T::from_f64(((i % 13) as f64 - 6.0) / 6.0))
            .collect();
        let mut im = vec![T::ZERO; edge * edge];
        group.bench_function(format!("{edge}rows_x{edge}"), |b| {
            b.iter(|| {
                for r in 0..edge {
                    let (lo, hi) = (r * edge, (r + 1) * edge);
                    plan.execute_unscaled_split(
                        &mut re[lo..hi],
                        &mut im[lo..hi],
                        &mut scratch,
                        false,
                    );
                }
                black_box(re[0])
            })
        });
    }
    group.finish();
}

fn bench_fft1d_batch(c: &mut Criterion) {
    bench_fft1d_batch_t::<f64>(c, "fft1d_batch");
    bench_fft1d_batch_t::<f32>(c, "fft1d_batch_f32");
}

/// Row-set transforms: the shape the engine's row pass and the pruned
/// inverse actually execute — many length-`edge` transforms back to back.
fn bench_forward_real_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2_forward_real_rows");
    group.sample_size(10);
    for edge in [192usize, 320, 512, 640] {
        let rows = 64usize;
        let real = real_samples(edge * rows);
        let mut field: Field = Field::zeros(edge, rows);
        let mut scratch = FftScratch::new();
        group.bench_function(format!("{rows}x{edge}"), |b| {
            b.iter(|| {
                field.fill_forward_real_with(black_box(&real), &mut scratch);
                black_box(&field);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_complex,
    bench_inverse_complex,
    bench_forward_real,
    bench_fft1d_batch,
    bench_forward_real_rows
);
criterion_main!(benches);
