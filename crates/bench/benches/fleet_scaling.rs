//! Scaling benchmark of the fleet coordinator: one 16-tile correction
//! job sharded across 1 / 2 / 4 worker servers, dispatched over the real
//! wire path (TCP + HTTP + JSON), against a single-process runtime
//! reference.
//!
//! Workers are spawned fresh per iteration — a reused worker would
//! answer repeat dispatches from its checkpoint map and the bench would
//! measure replay, not correction. The run also asserts the fleet
//! manifest is byte-identical to the single-process manifest, so a
//! determinism regression fails the bench outright.

use cardopc::fleet::spec::DesignSpec;
use cardopc::fleet::worker::{WorkerConfig, WorkerServer};
use cardopc::fleet::{client, proto, run_fleet, FleetConfig, WorkSpec};
use cardopc::layout::DesignKind;
use cardopc::litho::WorkerPool;
use cardopc::opc::OpcConfig;
use cardopc::runtime::{run_clip, RunConfig, RunControl, TilingConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// 2048 nm gcd crop, 512 nm tiles + 256 nm halo → 4×4 = 16 tiles of
/// 1024 nm windows on 64² grids at pitch 16.
fn spec() -> WorkSpec {
    let mut opc = OpcConfig::large_scale();
    opc.pitch = 16.0;
    opc.iterations = 3;
    WorkSpec {
        design: DesignSpec::generated(DesignKind::Gcd, 1, Some(2048.0)),
        tiling: TilingConfig {
            tile_size: 512.0,
            halo: 256.0,
        },
        opc,
    }
}

/// One distributed run on `n` fresh workers; returns the timing-free
/// manifest for the byte-identity assertion.
fn fleet_run(spec: &WorkSpec, n: usize) -> String {
    let workers: Vec<WorkerServer> = (0..n)
        .map(|_| WorkerServer::start(WorkerConfig::default()).unwrap())
        .collect();
    let config = FleetConfig {
        workers: workers.iter().map(|w| w.local_addr()).collect(),
        ..FleetConfig::default()
    };
    let outcome = run_fleet(spec, &config, &RunControl::default()).unwrap();
    assert!(outcome.complete, "fleet bench run must finish all 16 tiles");
    outcome.manifest.to_json(false)
}

fn bench_fleet_scaling(c: &mut Criterion) {
    let spec = spec();

    // The determinism contract, checked before any timing: distributed
    // and single-process manifests are the same bytes.
    let pool = WorkerPool::new(2);
    let direct = run_clip(
        &spec.build_clip().unwrap(),
        &RunConfig::new(spec.opc.clone(), spec.tiling),
        &pool,
    )
    .unwrap();
    assert!(direct.complete);
    let baseline = direct.manifest.to_json(false);
    assert_eq!(fleet_run(&spec, 2), baseline, "fleet manifest diverged");

    let mut group = c.benchmark_group("fleet_scaling_4x4");
    group.sample_size(2);
    group.bench_function("single_process", |b| {
        b.iter(|| {
            black_box(
                run_clip(
                    &spec.build_clip().unwrap(),
                    &RunConfig::new(spec.opc.clone(), spec.tiling),
                    &pool,
                )
                .unwrap()
                .manifest
                .executed,
            )
        })
    });
    for n in [1usize, 2, 4] {
        group.bench_function(format!("workers_{n}"), |b| {
            b.iter(|| black_box(fleet_run(&spec, n).len()))
        });
    }
    group.finish();

    println!(
        "fleet_scaling_4x4: 16 tiles over the wire; manifests byte-identical \
         to single-process for every worker count"
    );

    report_dispatch_overhead(&spec);
}

/// Measures the pure per-tile dispatch tax — the wire round-trip with no
/// correction attached — by re-dispatching an already-checkpointed tile,
/// which the worker answers from its checkpoint map.
///
/// Two client modes: a fresh TCP connection per request (the coordinator's
/// pre-keep-alive behaviour) and one kept-alive connection reused across
/// requests (what dispatch lanes do now). The gap between the two is the
/// connect/teardown cost the keep-alive lanes removed.
fn report_dispatch_overhead(spec: &WorkSpec) {
    use std::time::{Duration, Instant};

    let worker = WorkerServer::start(WorkerConfig::default()).unwrap();
    let addr = worker.local_addr();
    let body = proto::dispatch_body(spec, 0);
    let timeout = Duration::from_secs(30);

    // Prime: correct tile 0 once so every timed dispatch replays the
    // checkpoint instead of recomputing.
    let primed = client::request_with_timeout(addr, "POST", "/v1/tiles", Some(&body), timeout)
        .expect("prime dispatch failed");
    assert_eq!(primed.status, 200, "{}", primed.body_str());

    const ROUNDS: u32 = 200;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        let r = client::request_with_timeout(addr, "POST", "/v1/tiles", Some(&body), timeout)
            .expect("one-shot dispatch failed");
        assert_eq!(r.status, 200);
    }
    let per_connect = start.elapsed().as_secs_f64() * 1e3 / f64::from(ROUNDS);

    let mut connection = client::Connection::new(addr);
    let start = Instant::now();
    for _ in 0..ROUNDS {
        let r = connection
            .request_with_timeout("POST", "/v1/tiles", Some(&body), timeout)
            .expect("keep-alive dispatch failed");
        assert_eq!(r.status, 200);
    }
    let per_keepalive = start.elapsed().as_secs_f64() * 1e3 / f64::from(ROUNDS);
    assert_eq!(
        connection.reused(),
        u64::from(ROUNDS) - 1,
        "keep-alive lane must reuse its stream"
    );

    println!(
        "fleet dispatch overhead ({ROUNDS} checkpoint-replay round-trips): \
         {per_connect:.3} ms/tile fresh-connection, {per_keepalive:.3} ms/tile keep-alive \
         ({:.1}% of the fresh-connection tax removed)",
        (1.0 - per_keepalive / per_connect) * 100.0
    );
}

criterion_group!(benches, bench_fleet_scaling);
criterion_main!(benches);
