//! GDS ingestion scenario matrix: realistic file shapes a layout tool
//! would hand the reader, measured end to end (parse → flatten → clip)
//! and each corrected once so the whole pipeline is exercised, not just
//! the tokenizer.
//!
//! * `via_array` — an 8×8 AREF of a via cell: the hierarchy-expansion
//!   path (structure table, array stepping, transform application).
//! * `dense_iso` — a dense grating next to an isolated wire in one flat
//!   structure: the many-vertices flat path and the OPC regime mix the
//!   paper's figures contrast.
//! * `multi_layer` — targets interleaved with shapes on other layers:
//!   the layer/datatype filtering path (selected targets only).

use cardopc::gds::record::{dtype, rtype};
use cardopc::gds::{encode_real8, parse_lib, GdsWriter, LayerFilter};
use cardopc::geometry::{Point, Polygon};
use cardopc::layout::{clip_from_lib, Clip};
use cardopc::litho::WorkerPool;
use cardopc::opc::OpcConfig;
use cardopc::runtime::{run_clip, RunConfig, TilingConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Appends one record: length-inclusive header, then the payload.
fn rec(out: &mut Vec<u8>, rt: u8, dt: u8, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u16 + 4).to_be_bytes());
    out.push(rt);
    out.push(dt);
    out.extend_from_slice(payload);
}

fn rec_i16s(out: &mut Vec<u8>, rt: u8, values: &[i16]) {
    let payload: Vec<u8> = values.iter().flat_map(|v| v.to_be_bytes()).collect();
    rec(out, rt, dtype::I16, &payload);
}

fn rec_i32s(out: &mut Vec<u8>, rt: u8, values: &[i32]) {
    let payload: Vec<u8> = values.iter().flat_map(|v| v.to_be_bytes()).collect();
    rec(out, rt, dtype::I32, &payload);
}

fn rec_ascii(out: &mut Vec<u8>, rt: u8, text: &str) {
    let mut payload = text.as_bytes().to_vec();
    if payload.len() % 2 == 1 {
        payload.push(0);
    }
    rec(out, rt, dtype::ASCII, &payload);
}

/// A hand-assembled hierarchical file (the writer emits flat BOUNDARYs
/// only — references exist to exercise the *reader*): one `VIA` cell
/// holding a 60 nm contact, arrayed 8×8 on a 256 nm step by `TOP`.
fn via_array_bytes() -> Vec<u8> {
    let mut out = Vec::new();
    rec_i16s(&mut out, rtype::HEADER, &[600]);
    rec_i16s(&mut out, rtype::BGNLIB, &[0; 12]);
    rec_ascii(&mut out, rtype::LIBNAME, "VIAS");
    let mut units = Vec::new();
    units.extend_from_slice(&encode_real8(1e-3).unwrap());
    units.extend_from_slice(&encode_real8(1e-9).unwrap()); // 1 nm/dbu
    rec(&mut out, rtype::UNITS, dtype::REAL8, &units);

    rec_i16s(&mut out, rtype::BGNSTR, &[0; 12]);
    rec_ascii(&mut out, rtype::STRNAME, "VIA");
    rec(&mut out, rtype::BOUNDARY, dtype::NONE, &[]);
    rec_i16s(&mut out, rtype::LAYER, &[1]);
    rec_i16s(&mut out, rtype::DATATYPE, &[0]);
    rec_i32s(&mut out, rtype::XY, &[0, 0, 60, 0, 60, 60, 0, 60, 0, 0]);
    rec(&mut out, rtype::ENDEL, dtype::NONE, &[]);
    rec(&mut out, rtype::ENDSTR, dtype::NONE, &[]);

    rec_i16s(&mut out, rtype::BGNSTR, &[0; 12]);
    rec_ascii(&mut out, rtype::STRNAME, "TOP");
    rec(&mut out, rtype::AREF, dtype::NONE, &[]);
    rec_ascii(&mut out, rtype::SNAME, "VIA");
    rec_i16s(&mut out, rtype::COLROW, &[8, 8]);
    // Origin, column reference (origin + cols·step), row reference.
    rec_i32s(
        &mut out,
        rtype::XY,
        &[100, 100, 100 + 8 * 256, 100, 100, 100 + 8 * 256],
    );
    rec(&mut out, rtype::ENDEL, dtype::NONE, &[]);
    rec(&mut out, rtype::ENDSTR, dtype::NONE, &[]);
    rec(&mut out, rtype::ENDLIB, dtype::NONE, &[]);
    out
}

/// A flat structure mixing a dense 5-wire grating with one isolated
/// wire — written through the public writer.
fn dense_iso_bytes() -> Vec<u8> {
    let mut w = GdsWriter::new("MIX", 1.0).unwrap();
    w.begin_struct("TOP");
    for i in 0..5 {
        let y = 100.0 + i as f64 * 140.0;
        w.boundary(
            1,
            0,
            &Polygon::rect(Point::new(100.0, y), Point::new(900.0, y + 70.0)),
        )
        .unwrap();
    }
    w.boundary(
        1,
        0,
        &Polygon::rect(Point::new(100.0, 1300.0), Point::new(900.0, 1370.0)),
    )
    .unwrap();
    w.end_struct();
    w.finish()
}

/// Layer-5 targets interleaved with layer-1 and layer-8 clutter; only
/// the filtered layer may survive ingestion.
fn multi_layer_bytes() -> Vec<u8> {
    let mut w = GdsWriter::new("STACK", 1.0).unwrap();
    w.begin_struct("TOP");
    for i in 0..4 {
        let x = 100.0 + i as f64 * 220.0;
        for (layer, dy) in [(1, 0.0), (5, 300.0), (8, 600.0)] {
            w.boundary(
                layer,
                0,
                &Polygon::rect(Point::new(x, 100.0 + dy), Point::new(x + 90.0, 190.0 + dy)),
            )
            .unwrap();
        }
    }
    w.end_struct();
    w.finish()
}

/// Parse + flatten + clip: the full ingestion path a `--design foo.gds`
/// run takes (minus the file read).
fn ingest(bytes: &[u8], layer: LayerFilter) -> Clip {
    let lib = parse_lib(bytes).unwrap();
    clip_from_lib(&lib, layer, None).unwrap()
}

fn correct(clip: &Clip) -> usize {
    let mut opc = OpcConfig::large_scale();
    opc.pitch = 16.0;
    opc.iterations = 2;
    let config = RunConfig::new(
        opc,
        TilingConfig {
            tile_size: 1024.0,
            halo: 256.0,
        },
    );
    let outcome = run_clip(clip, &config, &WorkerPool::new(2)).unwrap();
    assert!(outcome.complete);
    outcome.stitched.unwrap().mains.len()
}

fn bench_gds_scenarios(c: &mut Criterion) {
    let scenarios: [(&str, Vec<u8>, LayerFilter, usize); 3] = [
        ("via_array", via_array_bytes(), LayerFilter::Layer(1), 64),
        ("dense_iso", dense_iso_bytes(), LayerFilter::Layer(1), 6),
        (
            "multi_layer",
            multi_layer_bytes(),
            LayerFilter::LayerDatatype(5, 0),
            4,
        ),
    ];

    for (name, bytes, layer, targets) in &scenarios {
        // The correctness contract first: ingestion finds exactly the
        // expected targets and the corrected mask keeps every main.
        let clip = ingest(bytes, *layer);
        assert_eq!(clip.targets().len(), *targets, "{name}");
        assert_eq!(correct(&clip), *targets, "{name}");

        c.bench_function(&format!("gds_ingest_{name}"), |b| {
            b.iter(|| black_box(ingest(black_box(bytes), *layer)))
        });
    }
}

criterion_group!(benches, bench_gds_scenarios);
criterion_main!(benches);
