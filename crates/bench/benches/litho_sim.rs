//! Criterion benchmark of the lithography engine: aerial image cost vs
//! grid size (the inner loop of every OPC/ILT iteration).

use cardopc::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn mask_with_squares(edge: usize, pitch: f64) -> Grid {
    let mut g = Grid::zeros(edge, edge, pitch);
    let q = edge / 4;
    for iy in q..2 * q {
        for ix in q..2 * q {
            g[(ix, iy)] = 1.0;
        }
    }
    for iy in 2 * q + q / 2..3 * q {
        for ix in 2 * q + q / 2..3 * q {
            g[(ix, iy)] = 1.0;
        }
    }
    g
}

fn bench_aerial(c: &mut Criterion) {
    use cardopc::litho::Precision;
    for precision in [Precision::F64, Precision::F32] {
        let name = match precision {
            Precision::F64 => "aerial_image".to_string(),
            Precision::F32 => "aerial_image_f32".to_string(),
        };
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        for edge in [128usize, 256, 512] {
            let engine =
                LithoEngine::with_precision(OpticsConfig::default(), edge, edge, 8.0, precision)
                    .unwrap();
            let mask = mask_with_squares(edge, 8.0);
            group.bench_function(format!("{edge}x{edge}"), |b| {
                b.iter(|| black_box(engine.aerial_image(black_box(&mask)).unwrap()))
            });
        }
        group.finish();
    }
}

fn bench_fft(c: &mut Criterion) {
    use cardopc::litho::fft::Field;
    let mut group = c.benchmark_group("fft2");
    for edge in [128usize, 256, 512] {
        let data: Vec<f64> = (0..edge * edge).map(|i| (i % 7) as f64).collect();
        let field: Field = Field::from_real(edge, edge, &data);
        group.bench_function(format!("{edge}x{edge}"), |b| {
            b.iter(|| {
                let mut f = field.clone();
                f.fft2_inplace(false);
                black_box(f.energy())
            })
        });
    }
    group.finish();
}

fn bench_raster(c: &mut Criterion) {
    use cardopc::litho::rasterize;
    let clips = metal_clips();
    let targets = clips[9].targets();
    c.bench_function("rasterize_m10_clip_256", |b| {
        b.iter(|| black_box(rasterize(black_box(targets), 256, 256, 6.0)))
    });
}

criterion_group!(benches, bench_aerial, bench_fft, bench_raster);
criterion_main!(benches);
