//! Criterion benchmark of curvilinear mask rule checking: the R-tree probe
//! approach (paper §III-F) over growing shape counts.

use cardopc::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A field of rounded-square shapes on a grid, spacing-clean by
/// construction.
fn shape_field(n_per_side: usize) -> Vec<CardinalSpline> {
    let mut shapes = Vec::new();
    for gy in 0..n_per_side {
        for gx in 0..n_per_side {
            let x0 = 100.0 + gx as f64 * 260.0;
            let y0 = 100.0 + gy as f64 * 260.0;
            let pts = vec![
                Point::new(x0, y0),
                Point::new(x0 + 150.0, y0),
                Point::new(x0 + 150.0, y0 + 150.0),
                Point::new(x0, y0 + 150.0),
            ];
            shapes.push(CardinalSpline::closed(pts, 0.6).unwrap());
        }
    }
    shapes
}

fn bench_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrc_check");
    for side in [4usize, 8] {
        let shapes = shape_field(side);
        let checker = MrcChecker::new(MrcRules::default());
        group.bench_function(format!("{}_shapes", side * side), |b| {
            b.iter(|| black_box(checker.check(black_box(&shapes))))
        });
    }
    group.finish();
}

fn bench_curvature_only(c: &mut Criterion) {
    let shapes = shape_field(8);
    let checker = MrcChecker::new(MrcRules::default());
    c.bench_function("mrc_curvature_64_shapes", |b| {
        b.iter(|| black_box(checker.check_curvature(black_box(&shapes))))
    });
}

fn bench_resolve(c: &mut Criterion) {
    // Two shapes with a fixable spacing violation.
    let mk = |x0: f64| {
        let pts = vec![
            Point::new(x0, 0.0),
            Point::new(x0 + 75.0, 0.0),
            Point::new(x0 + 150.0, 0.0),
            Point::new(x0 + 150.0, 75.0),
            Point::new(x0 + 150.0, 150.0),
            Point::new(x0 + 75.0, 150.0),
            Point::new(x0, 150.0),
            Point::new(x0, 75.0),
        ];
        CardinalSpline::closed(pts, 0.0).unwrap()
    };
    let resolver = MrcResolver::new(MrcRules::default(), ResolveConfig::default());
    c.bench_function("mrc_resolve_spacing_pair", |b| {
        b.iter(|| {
            let mut shapes = vec![mk(0.0), mk(162.0)];
            black_box(resolver.resolve(&mut shapes))
        })
    });
}

criterion_group!(benches, bench_check, bench_curvature_only, bench_resolve);
criterion_main!(benches);
