//! Criterion benchmark of one CardOPC correction iteration (connect →
//! rasterise → simulate → correct) on a small clip, plus initialisation.
//!
//! The iteration bench exercises the optimised hot path the flow uses:
//! control points are resampled through a shared [`SamplingPlan`], the
//! (static) assist layer lives in a [`RasterCache`] base, the aerial image
//! is restricted to the columns the EPE correction reads, and the
//! correction itself runs shape-parallel on the worker pool.

use cardopc::litho::RasterCache;
use cardopc::opc::{correct_shapes, engine_for_extent, CorrectionStep};
use cardopc::prelude::*;
use cardopc::spline::SamplingPlan;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn small_clip() -> Clip {
    Clip::new(
        "bench",
        1024.0,
        1024.0,
        vec![
            Polygon::rect(Point::new(250.0, 440.0), Point::new(370.0, 560.0)),
            Polygon::rect(Point::new(620.0, 440.0), Point::new(740.0, 560.0)),
        ],
    )
}

fn bench_initialise(c: &mut Criterion) {
    let clip = small_clip();
    let flow = CardOpc::new(OpcConfig::via());
    c.bench_function("cardopc_initialize", |b| {
        b.iter(|| black_box(flow.initialize(black_box(&clip)).unwrap()))
    });
}

/// The pixel columns EPE probes can read: every frozen anchor's x-extent
/// expanded by the search range plus a bilinear-footprint margin (mirrors
/// the flow's internal ROI computation).
fn roi_columns(
    shapes: &[cardopc::opc::OpcShape],
    width: usize,
    pitch: f64,
    epe_search: f64,
) -> Vec<usize> {
    let margin = epe_search + 2.0 * pitch;
    let mut needed = vec![false; width];
    for shape in shapes.iter().filter(|s| !s.is_sraf) {
        for anchor in &shape.anchors {
            let lo = ((anchor.position.x - margin) / pitch - 0.5)
                .floor()
                .max(0.0) as usize;
            let hi = (((anchor.position.x + margin) / pitch - 0.5).floor() + 1.0).max(0.0) as usize;
            for flag in &mut needed[lo.min(width - 1)..=hi.min(width - 1)] {
                *flag = true;
            }
        }
    }
    (0..width).filter(|&c| needed[c]).collect()
}

fn bench_iteration(c: &mut Criterion) {
    let clip = small_clip();
    let config = OpcConfig {
        pitch: 8.0,
        sraf: None,
        mrc: None,
        ..OpcConfig::via()
    };
    let engine = engine_for_extent(clip.width(), clip.height(), config.pitch).unwrap();
    let flow = CardOpc::new(config.clone());
    let shapes = flow.initialize(&clip).unwrap();

    let plan = SamplingPlan::get(config.samples_per_segment, config.tension);
    let cols = roi_columns(&shapes, engine.width(), engine.pitch(), config.epe_search);
    let mut cache = RasterCache::new(engine.width(), engine.height(), engine.pitch());
    cache.set_base(&[]);

    let mut group = c.benchmark_group("cardopc_iteration");
    group.sample_size(10);
    group.bench_function("connect_simulate_correct_128", |b| {
        let mut samples: Vec<Point> = Vec::new();
        let mut main_polys: Vec<Polygon> = Vec::new();
        b.iter(|| {
            let mut shapes = shapes.clone();
            for (i, shape) in shapes.iter().filter(|s| !s.is_sraf).enumerate() {
                shape.spline.sample_into(&plan, &mut samples);
                match main_polys.get_mut(i) {
                    Some(poly) if poly.len() == samples.len() => {
                        poly.vertices_mut().copy_from_slice(&samples);
                    }
                    Some(poly) => *poly = Polygon::new(samples.clone()),
                    None => main_polys.push(Polygon::new(samples.clone())),
                }
            }
            let mask = cache.composite(&main_polys);
            let aerial = engine.aerial_image_cols(mask, &cols).unwrap();
            let total = correct_shapes(
                &mut shapes,
                &aerial,
                engine.threshold(),
                &CorrectionStep {
                    step_limit: 2.0,
                    smooth_window: 1,
                    epe_search: 40.0,
                    spline_normals: true,
                },
            );
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_initialise, bench_iteration);
criterion_main!(benches);
