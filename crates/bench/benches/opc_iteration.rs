//! Criterion benchmark of one CardOPC correction iteration (connect →
//! rasterise → simulate → correct) on a small clip, plus initialisation.

use cardopc::litho::rasterize;
use cardopc::opc::{correct_shapes, engine_for_extent, CorrectionStep};
use cardopc::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn small_clip() -> Clip {
    Clip::new(
        "bench",
        1024.0,
        1024.0,
        vec![
            Polygon::rect(Point::new(250.0, 440.0), Point::new(370.0, 560.0)),
            Polygon::rect(Point::new(620.0, 440.0), Point::new(740.0, 560.0)),
        ],
    )
}

fn bench_initialise(c: &mut Criterion) {
    let clip = small_clip();
    let flow = CardOpc::new(OpcConfig::via());
    c.bench_function("cardopc_initialize", |b| {
        b.iter(|| black_box(flow.initialize(black_box(&clip)).unwrap()))
    });
}

fn bench_iteration(c: &mut Criterion) {
    let clip = small_clip();
    let config = OpcConfig {
        pitch: 8.0,
        sraf: None,
        mrc: None,
        ..OpcConfig::via()
    };
    let engine = engine_for_extent(clip.width(), clip.height(), config.pitch).unwrap();
    let flow = CardOpc::new(config.clone());
    let shapes = flow.initialize(&clip).unwrap();

    let mut group = c.benchmark_group("cardopc_iteration");
    group.sample_size(10);
    group.bench_function("connect_simulate_correct_128", |b| {
        b.iter(|| {
            let mut shapes = shapes.clone();
            let polys: Vec<Polygon> = shapes
                .iter()
                .map(|s| s.spline.to_polygon(config.samples_per_segment))
                .collect();
            let mask = rasterize(&polys, engine.width(), engine.height(), engine.pitch());
            let aerial = engine.aerial_image(&mask).unwrap();
            let total = correct_shapes(
                &mut shapes,
                &aerial,
                engine.threshold(),
                &CorrectionStep {
                    step_limit: 2.0,
                    smooth_window: 1,
                    epe_search: 40.0,
                    spline_normals: true,
                },
            );
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_initialise, bench_iteration);
criterion_main!(benches);
