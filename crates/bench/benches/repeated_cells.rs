//! Benchmark of the content-addressed tile cache on a repeated-cell
//! layout: a 4×4 grid of one 1024 nm cell, tiled at 1024 nm + 512 nm halo
//! (16 tiles, 9 unique window patterns by edge-clamping class).
//!
//! Three configurations of the same run:
//!
//! * `uncached` — the tile cache disabled; every tile corrected.
//! * `cold` — a fresh cache per run; the 9 unique patterns are corrected,
//!   the 7 congruent repeats replay (hit rate 1 − unique/total = 7/16).
//! * `warm`     — a pre-populated cache; all 16 tiles replay.
//!
//! The run also asserts the expected hit counts and prints them, so a
//! regression in key canonicalisation (fewer collisions than expected)
//! shows up as a failed bench, not just a slower one.

use cardopc::geometry::{Point, Polygon};
use cardopc::layout::Clip;
use cardopc::litho::WorkerPool;
use cardopc::opc::OpcConfig;
use cardopc::runtime::{
    run_clip, run_clip_controlled, CacheConfig, RunConfig, RunControl, TileCache, TilingConfig,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const GRID: usize = 4;
const CELL: f64 = 1024.0;
const TILES: usize = GRID * GRID;
/// Edge-clamping classes of a 4×4 partition with halo < tile: 3 window
/// shapes per axis (left/interior/right), so 3 × 3 unique patterns.
const UNIQUE: usize = 9;

/// One cell: two wires, repeated on a `GRID`×`GRID` lattice. The 0.5 nm
/// offset keeps straight edges off the rasteriser's sub-scanlines.
fn repeated_cells() -> Clip {
    let mut targets = Vec::new();
    for gy in 0..GRID {
        for gx in 0..GRID {
            let d = Point::new(gx as f64 * CELL, gy as f64 * CELL);
            targets.push(Polygon::rect(
                Point::new(d.x + 300.5, d.y + 220.5),
                Point::new(d.x + 380.5, d.y + 700.5),
            ));
            targets.push(Polygon::rect(
                Point::new(d.x + 460.5, d.y + 220.5),
                Point::new(d.x + 700.5, d.y + 300.5),
            ));
        }
    }
    Clip::new(
        format!("repeated-cells-{GRID}x{GRID}"),
        GRID as f64 * CELL,
        GRID as f64 * CELL,
        targets,
    )
}

fn run_config() -> RunConfig {
    let mut opc = OpcConfig::large_scale();
    opc.pitch = 16.0;
    opc.iterations = 4;
    opc.mrc = None;
    RunConfig::new(
        opc,
        TilingConfig {
            tile_size: CELL,
            halo: 512.0,
        },
    )
}

fn cached_run(clip: &Clip, cfg: &RunConfig, pool: &WorkerPool, cache: &TileCache) -> usize {
    let control = RunControl {
        cache: Some(cache),
        ..RunControl::default()
    };
    let outcome = run_clip_controlled(clip, cfg, pool, &control).unwrap();
    assert!(outcome.complete);
    outcome.manifest.cache_hits
}

fn bench_repeated_cells(c: &mut Criterion) {
    let clip = repeated_cells();
    let cfg = run_config();
    let pool = WorkerPool::new(2);

    let mut group = c.benchmark_group(format!("repeated_cells_{GRID}x{GRID}"));
    group.sample_size(3);
    group.bench_function("uncached", |b| {
        b.iter(|| black_box(run_clip(&clip, &cfg, &pool).unwrap().manifest.executed))
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let cache = TileCache::open(&CacheConfig::default()).unwrap();
            let hits = cached_run(&clip, &cfg, &pool, &cache);
            assert_eq!(hits, TILES - UNIQUE, "cold hit count");
            black_box(hits)
        })
    });
    let warm = TileCache::open(&CacheConfig::default()).unwrap();
    cached_run(&clip, &cfg, &pool, &warm);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let hits = cached_run(&clip, &cfg, &pool, &warm);
            assert_eq!(hits, TILES, "warm runs replay every tile");
            black_box(hits)
        })
    });
    group.finish();

    println!(
        "repeated_cells_{GRID}x{GRID}: {TILES} tiles, {UNIQUE} unique patterns; \
         cold hit rate {:.4} (1 - unique/total), warm hit rate 1.0000",
        1.0 - UNIQUE as f64 / TILES as f64
    );
}

criterion_group!(benches, bench_repeated_cells);
criterion_main!(benches);
