//! Criterion microbenchmark of the §IV-D ablation's core operation:
//! connecting control points with cardinal vs Bézier splines.
//!
//! The report binary `ablation_spline` measures the full gcd tile; this
//! bench tracks the per-shape cost with statistical rigour.

use cardopc::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn shape_loops(n_shapes: usize) -> Vec<Vec<Point>> {
    let mut rng = SplitMix64::new(0xB0B);
    (0..n_shapes)
        .map(|_| {
            let cx = rng.range_f64(100.0, 900.0);
            let cy = rng.range_f64(100.0, 900.0);
            let n = rng.range_usize(8, 24);
            (0..n)
                .map(|i| {
                    let th = std::f64::consts::TAU * i as f64 / n as f64;
                    let r = rng.range_f64(30.0, 80.0);
                    Point::new(cx + r * th.cos(), cy + r * th.sin())
                })
                .collect()
        })
        .collect()
}

fn bench_connect(c: &mut Criterion) {
    let loops = shape_loops(100);
    let mut group = c.benchmark_group("connect_100_shapes");

    group.bench_function("cardinal", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for l in &loops {
                let sp = CardinalSpline::closed(black_box(l.clone()), 0.6).unwrap();
                total += sp.sample(8).len();
            }
            black_box(total)
        })
    });

    group.bench_function("bezier", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for l in &loops {
                let ch = BezierChain::closed(black_box(l.clone()), 0.6).unwrap();
                total += ch.sample(8).len();
            }
            black_box(total)
        })
    });

    group.finish();
}

fn bench_differential_geometry(c: &mut Criterion) {
    let loops = shape_loops(1);
    let spline = CardinalSpline::closed(loops[0].clone(), 0.6).unwrap();
    c.bench_function("curvature_per_loop", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for seg in 0..spline.segment_count() {
                for k in 0..8 {
                    acc += spline.curvature(seg, k as f64 / 8.0).abs();
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_connect, bench_differential_geometry);
criterion_main!(benches);
