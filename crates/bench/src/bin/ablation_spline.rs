//! Regenerates the **§IV-D ablation**: Bézier vs cardinal splines.
//!
//! 1. Runtime of the control-point connection step over the shapes of the
//!    `gcd` large-scale tile (the paper: 1,776 shapes, 3.6 s Bézier vs
//!    1.9 s cardinal = +89% overhead).
//! 2. End-to-end quality with each spline on a gcd window (the paper: EPE
//!    3,532 / PVB 34.9088 µm² Bézier vs 3,507 / 34.2606 cardinal).
//!
//! ```sh
//! cargo run --release -p cardopc-bench --bin ablation_spline
//! ```

use cardopc::opc::{dissect_polygon, engine_for_extent, evaluate_mask, OpcShape};
use cardopc::prelude::*;
use cardopc_bench::quick_mode;
use std::time::Instant;

/// Builds the control point loops of every shape of a clip (shared setup
/// for both spline backends).
fn control_loops(clip: &Clip, config: &OpcConfig) -> Vec<Vec<Point>> {
    clip.targets()
        .iter()
        .filter_map(|t| {
            let segs = dissect_polygon(t, config.l_c, config.l_u);
            OpcShape::from_dissection(&segs, config.tension)
                .ok()
                .map(|s| s.spline.control_points().to_vec())
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_mode();
    let config = OpcConfig::large_scale();

    // --- Part 1: connection runtime over the full gcd tile. -------------
    let tile = large_tile(DesignKind::Gcd, 0);
    println!("gcd tile: {} shapes (paper: 1,776)", tile.targets().len());
    let loops = control_loops(&tile, &config);
    let per_seg = config.samples_per_segment;
    let reps = if quick { 3 } else { 10 };

    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..reps {
        for l in &loops {
            let sp = CardinalSpline::closed(l.clone(), config.tension)?;
            sink += sp.sample(per_seg).len();
        }
    }
    let cardinal_time = t.elapsed() / reps;

    let t = Instant::now();
    for _ in 0..reps {
        for l in &loops {
            let ch = BezierChain::closed(l.clone(), config.tension)?;
            sink += ch.sample(per_seg).len();
        }
    }
    let bezier_time = t.elapsed() / reps;
    let overhead = 100.0 * (bezier_time.as_secs_f64() / cardinal_time.as_secs_f64() - 1.0);
    println!(
        "connect {} shapes: cardinal {:?} vs Bezier {:?} (+{:.0}% overhead; paper: +89%)",
        loops.len(),
        cardinal_time,
        bezier_time,
        overhead,
    );
    assert!(sink > 0);

    // --- Part 2: end-to-end quality with each spline. -------------------
    let mut run_cfg = config.clone();
    if quick {
        run_cfg.iterations = 4;
        run_cfg.decay_at = 3;
    }
    let window = tile.crop(Point::new(9_000.0, 9_000.0), 8_000.0, 8_000.0, "gcd-w");
    let engine = engine_for_extent(window.width(), window.height(), run_cfg.pitch)?;

    // Cardinal: the standard flow.
    let card = CardOpc::new(run_cfg.clone()).run_with_engine(&window, &engine)?;

    // Bézier: rerun the optimised control points through the Bézier
    // connection (identical curve family; the ablation's quality gap in
    // the paper stems from the same control points being connected
    // differently, and its runtime gap from the handle generation).
    let bezier_polys: Vec<Polygon> = card
        .shapes
        .iter()
        .filter_map(|s| {
            BezierChain::closed(s.spline.control_points().to_vec(), run_cfg.tension)
                .ok()
                .map(|ch| ch.to_polygon(run_cfg.samples_per_segment))
        })
        .collect();
    let bezier_eval = evaluate_mask(
        &engine,
        &bezier_polys,
        window.targets(),
        MeasureConvention::MetalSpacing(60.0),
        run_cfg.dose_delta,
        run_cfg.epe_search,
    )?;

    println!(
        "quality on {}: cardinal EPE violations {} / PVB {:.4} um^2 | Bezier EPE violations {} / PVB {:.4} um^2",
        window.name(),
        card.evaluation.epe_violations,
        card.evaluation.pvb_nm2 / 1e6,
        bezier_eval.epe_violations,
        bezier_eval.pvb_nm2 / 1e6,
    );
    println!(
        "paper: Bezier EPE 3532 / PVB 34.9088 vs cardinal EPE 3507 / PVB 34.2606 on the full tile."
    );
    Ok(())
}
