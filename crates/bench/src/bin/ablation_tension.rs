//! Extension ablation: cardinal tension sweep.
//!
//! The paper lists "spline types" among the future-work axes and fixes
//! `s = 0.6` throughout its experiments. This extension sweeps the tension
//! parameter on a via clip and a metal clip, showing how `s` trades corner
//! tightness against edge ripple — the knob §III-C advertises ("users can
//! finetune the curvilinear shapes without moving the control points").
//!
//! ```sh
//! cargo run --release -p cardopc-bench --bin ablation_tension
//! ```

use cardopc::opc::engine_for_extent;
use cardopc::prelude::*;
use cardopc_bench::{quick_mode, Report};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_mode();
    let tensions: &[f64] = if quick {
        &[0.3, 0.6]
    } else {
        &[0.0, 0.3, 0.5, 0.6, 0.8, 1.0]
    };

    let via_clip = &via_clips()[0];
    let metal_clip = &metal_clips()[7]; // M8: the simplest metal clip
    let via_engine = engine_for_extent(via_clip.width(), via_clip.height(), 4.0)?;
    let metal_engine = engine_for_extent(metal_clip.width(), metal_clip.height(), 4.0)?;

    let mut report = Report::new(
        "Tension ablation (EPE nm / PVB nm^2); paper fixes s = 0.6",
        &["via EPE", "via PVB", "metal EPE", "metal PVB"],
    )
    .decimals(1);

    for &s in tensions {
        let mut via_cfg = OpcConfig::via();
        via_cfg.tension = s;
        if quick {
            via_cfg.iterations = 8;
        }
        let v = CardOpc::new(via_cfg).run_with_engine(via_clip, &via_engine)?;

        let mut metal_cfg = OpcConfig::metal();
        metal_cfg.tension = s;
        if quick {
            metal_cfg.iterations = 8;
        }
        let m = CardOpc::new(metal_cfg).run_with_engine(metal_clip, &metal_engine)?;

        report.push(
            format!("s={s}"),
            vec![
                v.evaluation.epe_sum_nm,
                v.evaluation.pvb_nm2,
                m.evaluation.epe_sum_nm,
                m.evaluation.pvb_nm2,
            ],
        );
        eprintln!("s={s} done");
    }

    println!("{}", report.render());
    Ok(())
}
