//! Regenerates **Fig. 7**: the ILT-OPC hybrid versus its comparators on
//! L2, PVB and EPE violations over 10 testcases, plus the MRC-resolution
//! claim (average violations before → after, paper: 43.8 → 0).
//!
//! Comparator substitutions (DESIGN.md §4): raw pixel ILT is the fidelity
//! upper bound (for CircleOpt/DiffOPC, whose sources are unavailable) and
//! the Calibre-like rectilinear OPC is the MRC-clean reference.
//!
//! ```sh
//! cargo run --release -p cardopc-bench --bin fig7_hybrid
//! ```

use cardopc::ilt::HybridConfig;
use cardopc::opc::engine_for_extent;
use cardopc::prelude::*;
use cardopc_bench::{quick_mode, Report};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_mode();
    let mut clips = metal_clips();
    let mut config = HybridConfig {
        convention: MeasureConvention::MetalSpacing(60.0),
        ..HybridConfig::default()
    };
    if quick {
        clips.truncate(2);
        config.ilt.iterations = 15;
    }

    // 4 nm pixels: ICCAD-13-like resolution; the 16 nm width rule is then
    // exactly a radius-2 morphological opening.
    let engine = engine_for_extent(clips[0].width(), clips[0].height(), 4.0)?;
    eprintln!(
        "engine {}x{} @ {} nm/px",
        engine.width(),
        engine.height(),
        engine.pitch()
    );

    let mut report = Report::new(
        "Fig 7: ILT-OPC hybrid (L2 nm^2 / PVB nm^2 / EPE violations / MRC before->after)",
        &[
            "ilt L2",
            "ilt PVB",
            "ilt EPEv",
            "rect L2",
            "rect PVB",
            "rect EPEv",
            "hyb L2",
            "hyb PVB",
            "hyb EPEv",
            "mrc bef",
            "mrc aft",
        ],
    )
    .decimals(1)
    .ratio(0, 0)
    .ratio(3, 0)
    .ratio(6, 0)
    .ratio(1, 1)
    .ratio(4, 1)
    .ratio(7, 1);

    let t0 = Instant::now();
    for clip in &clips {
        let hybrid = run_hybrid(&engine, clip.targets(), &config)?;

        let mut rect_cfg = RectOpcConfig::calibre_like_metal();
        rect_cfg.pitch = 4.0;
        if quick {
            rect_cfg.iterations = 8;
        }
        let rect = RectOpc::new(rect_cfg).run_with_engine(
            clip,
            &engine,
            &[],
            MeasureConvention::MetalSpacing(60.0),
        )?;

        eprintln!(
            "{}: ilt L2 {:.0} | hybrid L2 {:.0} EPEv {} | MRC {} -> {} [{:.0?}]",
            clip.name(),
            hybrid.ilt_eval.l2_nm2,
            hybrid.hybrid_eval.l2_nm2,
            hybrid.hybrid_eval.epe_violations,
            hybrid.violations_before,
            hybrid.violations_after,
            t0.elapsed(),
        );
        report.push(
            clip.name().to_string(),
            vec![
                hybrid.ilt_eval.l2_nm2,
                hybrid.ilt_eval.pvb_nm2,
                hybrid.ilt_eval.epe_violations as f64,
                rect.evaluation.l2_nm2,
                rect.evaluation.pvb_nm2,
                rect.evaluation.epe_violations as f64,
                hybrid.hybrid_eval.l2_nm2,
                hybrid.hybrid_eval.pvb_nm2,
                hybrid.hybrid_eval.epe_violations as f64,
                hybrid.violations_before as f64,
                hybrid.violations_after as f64,
            ],
        );
    }

    println!("{}", report.render());
    println!("total wall time: {:.1?}", t0.elapsed());
    println!(
        "paper Fig. 7 reference: hybrid averages 1.4 EPE violations vs CircleOpt 3.9 and DiffOPC 2.2; MRC resolving reduces violations 43.8 -> 0."
    );
    Ok(())
}
