//! Regenerates **Table I**: via-layer OPC comparison on EPE (nm) and PVB
//! (nm²) over the 13 via testcases.
//!
//! Methods: the Calibre-like rectilinear baseline, SimpleOPC \[45\], and
//! CardOPC — all scored by the same engine and measure points (edge
//! centres). The paper's learned baselines (DAMO/RL-OPC/CAMO) are not
//! reimplementable without their weights; EXPERIMENTS.md tabulates the
//! published numbers next to these measured rows.
//!
//! ```sh
//! cargo run --release -p cardopc-bench --bin table1_via          # full
//! CARDOPC_QUICK=1 cargo run --release -p cardopc-bench --bin table1_via
//! ```

use cardopc::opc::{engine_for_extent, insert_srafs};
use cardopc::prelude::*;
use cardopc_bench::{quick_mode, run_batch, Report};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_mode();
    let mut clips = via_clips();
    let mut config = OpcConfig::via();
    if quick {
        clips.truncate(2);
        config.iterations = 8;
        config.decay_at = 6;
    }

    // The paper inserts SRAFs with Calibre before every method runs; we
    // use the rule-based inserter for all methods identically, so the SRAF
    // field is not a differentiator.
    let sraf_cfg = config.sraf.expect("via preset has SRAFs");

    // All clips share the 2x2 µm extent: build the engine once.
    let engine = engine_for_extent(clips[0].width(), clips[0].height(), config.pitch)?;
    eprintln!(
        "engine {}x{} @ {} nm/px, threshold {:.4}",
        engine.width(),
        engine.height(),
        engine.pitch(),
        engine.threshold()
    );

    let mut report = Report::new(
        "Table I: via-layer OPC (EPE nm / PVB nm^2)",
        &[
            "#vias", "rect EPE", "rect PVB", "simp EPE", "simp PVB", "card EPE", "card PVB",
        ],
    )
    .decimals(1)
    .ratio(1, 1)
    .ratio(2, 2)
    .ratio(3, 1)
    .ratio(4, 2)
    .ratio(5, 1)
    .ratio(6, 2);

    let t0 = Instant::now();
    // Clips are independent: evaluate the batch across the shared worker
    // pool (rows come back in clip order regardless of completion order).
    let rows = run_batch(&clips, |clip| -> Result<(String, Vec<f64>), String> {
        // Static SRAF polygons shared by the rectilinear baselines.
        let window = BBox::new(Point::ZERO, Point::new(clip.width(), clip.height()));
        let sraf_shapes = insert_srafs(clip.targets(), &sraf_cfg, config.tension, window)
            .map_err(|e| e.to_string())?;
        let sraf_polys: Vec<Polygon> = sraf_shapes
            .iter()
            .map(|s| s.spline.to_polygon(config.samples_per_segment))
            .collect();

        let mut rect_cfg = RectOpcConfig::calibre_like_via();
        let mut simple_cfg = RectOpcConfig::simple(&rect_cfg);
        if quick {
            rect_cfg.iterations = 8;
            simple_cfg.iterations = 8;
        }

        let rect = RectOpc::new(rect_cfg)
            .run_with_engine(
                clip,
                &engine,
                &sraf_polys,
                MeasureConvention::ViaEdgeCenters,
            )
            .map_err(|e| e.to_string())?;
        let simple = RectOpc::new(simple_cfg)
            .run_with_engine(
                clip,
                &engine,
                &sraf_polys,
                MeasureConvention::ViaEdgeCenters,
            )
            .map_err(|e| e.to_string())?;
        let card = CardOpc::new(config.clone())
            .run_with_engine(clip, &engine)
            .map_err(|e| e.to_string())?;

        eprintln!(
            "{}: rect {:.1}/{:.0}  simple {:.1}/{:.0}  card {:.1}/{:.0}  (mrc {}->{})  [{:.0?}]",
            clip.name(),
            rect.evaluation.epe_sum_nm,
            rect.evaluation.pvb_nm2,
            simple.evaluation.epe_sum_nm,
            simple.evaluation.pvb_nm2,
            card.evaluation.epe_sum_nm,
            card.evaluation.pvb_nm2,
            card.mrc_initial_violations,
            card.mrc_remaining,
            t0.elapsed(),
        );
        Ok((
            clip.name().to_string(),
            vec![
                clip.targets().len() as f64,
                rect.evaluation.epe_sum_nm,
                rect.evaluation.pvb_nm2,
                simple.evaluation.epe_sum_nm,
                simple.evaluation.pvb_nm2,
                card.evaluation.epe_sum_nm,
                card.evaluation.pvb_nm2,
            ],
        ))
    });
    for row in rows {
        let (label, values) = row?;
        report.push(label, values);
    }

    println!("{}", report.render());
    println!("total wall time: {:.1?}", t0.elapsed());
    println!(
        "paper Table I averages for reference: Calibre EPE 18.1 / PVB 11922, CardOPC EPE 9.1 / PVB 11598 (EPE ratio 60.3% of CAMO, 50.3% of Calibre)."
    );
    Ok(())
}
