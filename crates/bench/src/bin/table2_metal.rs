//! Regenerates **Table II**: metal-layer OPC comparison on EPE (nm) and
//! PVB (nm²) over the 10 metal testcases (60 nm measure point pitch).
//!
//! ```sh
//! cargo run --release -p cardopc-bench --bin table2_metal
//! ```

use cardopc::opc::{engine_for_extent, insert_srafs};
use cardopc::prelude::*;
use cardopc_bench::{quick_mode, run_batch, Report};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_mode();
    let mut clips = metal_clips();
    let mut config = OpcConfig::metal();
    if quick {
        clips.truncate(2);
        config.iterations = 8;
        config.decay_at = 6;
    }
    let convention = MeasureConvention::MetalSpacing(60.0);
    let sraf_cfg = config.sraf.expect("metal preset has SRAFs");

    let engine = engine_for_extent(clips[0].width(), clips[0].height(), config.pitch)?;
    eprintln!(
        "engine {}x{} @ {} nm/px, threshold {:.4}",
        engine.width(),
        engine.height(),
        engine.pitch(),
        engine.threshold()
    );

    let mut report = Report::new(
        "Table II: metal-layer OPC (EPE nm / PVB nm^2)",
        &[
            "#points", "rect EPE", "rect PVB", "simp EPE", "simp PVB", "card EPE", "card PVB",
        ],
    )
    .decimals(1)
    .ratio(1, 1)
    .ratio(2, 2)
    .ratio(3, 1)
    .ratio(4, 2)
    .ratio(5, 1)
    .ratio(6, 2);

    let t0 = Instant::now();
    // Clips are independent: evaluate the batch across the shared worker
    // pool (rows come back in clip order regardless of completion order).
    let rows = run_batch(&clips, |clip| -> Result<(String, Vec<f64>), String> {
        let window = BBox::new(Point::ZERO, Point::new(clip.width(), clip.height()));
        let sraf_shapes = insert_srafs(clip.targets(), &sraf_cfg, config.tension, window)
            .map_err(|e| e.to_string())?;
        let sraf_polys: Vec<Polygon> = sraf_shapes
            .iter()
            .map(|s| s.spline.to_polygon(config.samples_per_segment))
            .collect();

        let mut rect_cfg = RectOpcConfig::calibre_like_metal();
        let mut simple_cfg = RectOpcConfig::simple(&rect_cfg);
        if quick {
            rect_cfg.iterations = 8;
            simple_cfg.iterations = 8;
        }

        let rect = RectOpc::new(rect_cfg)
            .run_with_engine(clip, &engine, &sraf_polys, convention)
            .map_err(|e| e.to_string())?;
        let simple = RectOpc::new(simple_cfg)
            .run_with_engine(clip, &engine, &sraf_polys, convention)
            .map_err(|e| e.to_string())?;
        let card = CardOpc::new(config.clone())
            .run_with_engine(clip, &engine)
            .map_err(|e| e.to_string())?;

        let n_points = card.evaluation.epe.values.len() as f64;
        eprintln!(
            "{} ({} pts): rect {:.1}/{:.0}  simple {:.1}/{:.0}  card {:.1}/{:.0}  [{:.0?}]",
            clip.name(),
            n_points,
            rect.evaluation.epe_sum_nm,
            rect.evaluation.pvb_nm2,
            simple.evaluation.epe_sum_nm,
            simple.evaluation.pvb_nm2,
            card.evaluation.epe_sum_nm,
            card.evaluation.pvb_nm2,
            t0.elapsed(),
        );
        Ok((
            clip.name().to_string(),
            vec![
                n_points,
                rect.evaluation.epe_sum_nm,
                rect.evaluation.pvb_nm2,
                simple.evaluation.epe_sum_nm,
                simple.evaluation.pvb_nm2,
                card.evaluation.epe_sum_nm,
                card.evaluation.pvb_nm2,
            ],
        ))
    });
    for row in rows {
        let (label, values) = row?;
        report.push(label, values);
    }

    println!("{}", report.render());
    println!("total wall time: {:.1?}", t0.elapsed());
    println!(
        "paper Table II averages for reference: Calibre EPE 69.8 / PVB 37207, CardOPC EPE 31.0 / PVB 34901 (EPE ratio 50% of CAMO, 44% of Calibre)."
    );
    Ok(())
}
