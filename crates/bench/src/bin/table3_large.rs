//! Regenerates **Table III**: large-scale OPC comparison on EPE violation
//! counts and PVB (µm²) for the gcd / aes / dynamicnode designs.
//!
//! The paper optimises full 30×30 µm tiles (1 tile for gcd, 144 for the
//! other designs). On this laptop-scale harness each design is represented
//! by interior 8×8 µm windows of its tiles (1024² simulation grids); the
//! EPE-violation and PVB columns are reported per window. The comparative
//! ordering (CardOPC ≤ SimpleOPC < Calibre-like on EPE violations, CardOPC
//! best on PVB) is the quantity under test.
//!
//! The CardOPC column routes each window through the tiled full-chip
//! runtime (`cardopc-runtime`): quick mode runs one design tile per design
//! as a single runtime tile; full mode splits every window into a 2×2
//! halo-tiled grid. Its EPE/PVB figures are read from the run manifest's
//! aggregate, exactly what `cardopc --run-dir …` writes to
//! `manifest.json`.
//!
//! ```sh
//! cargo run --release -p cardopc-bench --bin table3_large
//! ```

use cardopc::litho::WorkerPool;
use cardopc::opc::engine_for_extent;
use cardopc::prelude::*;
use cardopc_bench::{quick_mode, Report};
use std::time::Instant;

const WINDOW_NM: f64 = 8_000.0;

fn windows_for(kind: DesignKind, per_design: usize) -> Vec<Clip> {
    let mut out = Vec::new();
    for i in 0..per_design {
        let tile = large_tile(kind, i);
        let origin = Point::new(8_000.0 + 2_000.0 * i as f64, 9_000.0);
        out.push(tile.crop(
            origin,
            WINDOW_NM,
            WINDOW_NM,
            format!("{}[{}]", kind.name(), i),
        ));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_mode();
    let per_design = if quick { 1 } else { 2 };
    let mut config = OpcConfig::large_scale();
    let mut rect_cfg = RectOpcConfig::calibre_like_large();
    let mut simple_cfg = RectOpcConfig::simple(&rect_cfg);
    if quick {
        config.iterations = 4;
        config.decay_at = 3;
        rect_cfg.iterations = 6;
        simple_cfg.iterations = 4;
    }
    let convention = MeasureConvention::MetalSpacing(60.0);

    // Quick mode covers a window with a single runtime tile; full mode
    // exercises real halo stitching with a 2×2 grid whose 8000 nm working
    // windows match the monolithic engine extent.
    let tiling = if quick {
        TilingConfig {
            tile_size: WINDOW_NM,
            halo: 0.0,
        }
    } else {
        TilingConfig {
            tile_size: WINDOW_NM / 2.0,
            halo: WINDOW_NM / 4.0,
        }
    };
    let pool = WorkerPool::global();

    let engine = engine_for_extent(WINDOW_NM, WINDOW_NM, config.pitch)?;
    eprintln!(
        "engine {}x{} @ {} nm/px, runtime tiling {} nm + {} nm halo",
        engine.width(),
        engine.height(),
        engine.pitch(),
        tiling.tile_size,
        tiling.halo,
    );

    let mut report = Report::new(
        "Table III: large-scale OPC (EPE violations / PVB um^2)",
        &[
            "#shapes", "rect EPE", "rect PVB", "simp EPE", "simp PVB", "card EPE", "card PVB",
        ],
    )
    .decimals(3)
    .ratio(1, 1)
    .ratio(2, 2)
    .ratio(3, 1)
    .ratio(4, 2)
    .ratio(5, 1)
    .ratio(6, 2);

    let t0 = Instant::now();
    for kind in [DesignKind::Gcd, DesignKind::Aes, DesignKind::DynamicNode] {
        let windows = windows_for(kind, per_design);
        let mut sums = [0.0f64; 7];
        for clip in &windows {
            let rect =
                RectOpc::new(rect_cfg.clone()).run_with_engine(clip, &engine, &[], convention)?;
            let simple =
                RectOpc::new(simple_cfg.clone()).run_with_engine(clip, &engine, &[], convention)?;
            let card = run_clip(clip, &RunConfig::new(config.clone(), tiling), pool)?;
            let manifest = &card.manifest;
            eprintln!(
                "{}: {} shapes | rect {} viol / {:.3} um^2 | simple {} / {:.3} | card ({}x{} tiles) {} / {:.3} [{:.0?}]",
                clip.name(),
                clip.targets().len(),
                rect.evaluation.epe_violations,
                rect.evaluation.pvb_nm2 / 1e6,
                simple.evaluation.epe_violations,
                simple.evaluation.pvb_nm2 / 1e6,
                manifest.nx,
                manifest.ny,
                manifest.total.epe_violations,
                manifest.total.pvb_nm2 / 1e6,
                t0.elapsed(),
            );
            sums[0] += clip.targets().len() as f64;
            sums[1] += rect.evaluation.epe_violations as f64;
            sums[2] += rect.evaluation.pvb_nm2 / 1e6;
            sums[3] += simple.evaluation.epe_violations as f64;
            sums[4] += simple.evaluation.pvb_nm2 / 1e6;
            sums[5] += manifest.total.epe_violations as f64;
            sums[6] += manifest.total.pvb_nm2 / 1e6;
        }
        let n = windows.len() as f64;
        report.push(
            kind.name().to_string(),
            sums.iter().map(|s| s / n).collect(),
        );
    }

    println!("{}", report.render());
    println!("per-design rows are averages over {per_design} window(s) of {WINDOW_NM} nm.");
    println!("CardOPC columns are manifest aggregates from the tiled runtime.");
    println!("total wall time: {:.1?}", t0.elapsed());
    println!(
        "paper Table III averages for reference: Calibre 2409 violations / 26.97 um^2, SimpleOPC 2260 / 28.31, CardOPC 2255 / 26.45 (ratios 93.6% / 98.1% vs Calibre)."
    );
    Ok(())
}
