//! Shared utilities for the CardOPC benchmark harness.
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the experiment index); this library provides the
//! aligned table printer and the quick-mode switch they share.

#![warn(missing_docs)]

/// `true` when the `CARDOPC_QUICK` environment variable asks for a reduced
/// smoke-test run (fewer clips, fewer iterations).
pub fn quick_mode() -> bool {
    std::env::var_os("CARDOPC_QUICK").is_some_and(|v| v != "0")
}

/// Evaluates every item with `f` across the shared litho worker pool,
/// returning results in input order.
///
/// This is the batch-clip driver for the table binaries: clips are
/// independent, so they are claimed dynamically by the pool's workers
/// (uneven clip costs still balance) while the per-clip inner loops keep
/// their own pool parallelism — nested `run` calls degrade gracefully to
/// the submitting worker draining its own tasks. Worker count follows
/// `CARDOPC_THREADS` / `available_parallelism` like every other litho hot
/// path.
pub fn run_batch<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    cardopc::litho::WorkerPool::global().run_with_slots(&mut out, |i, slot| {
        *slot = Some(f(&items[i]));
    });
    out.into_iter()
        .map(|r| r.expect("pool runs every task"))
        .collect()
}

/// An aligned plain-text table with automatic `Average` and `Ratio` rows,
/// mirroring the layout of the paper's Tables I–III.
#[derive(Clone, Debug, Default)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    decimals: usize,
    /// Column indices the `Ratio` row is normalised against (pairs of
    /// `(column, reference_column)`).
    ratio_refs: Vec<(usize, usize)>,
}

impl Report {
    /// Creates a report with a title and column headers (the first column
    /// is the row label and is not listed here).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            decimals: 1,
            ratio_refs: Vec::new(),
        }
    }

    /// Sets the number of decimals printed for data cells.
    pub fn decimals(mut self, d: usize) -> Self {
        self.decimals = d;
        self
    }

    /// Declares that column `col`'s ratio is `avg(col) / avg(reference)`.
    pub fn ratio(mut self, col: usize, reference: usize) -> Self {
        self.ratio_refs.push((col, reference));
        self
    }

    /// Appends a data row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.headers.len(), "column count mismatch");
        self.rows.push((label.into(), values));
    }

    /// Column averages over the data rows.
    pub fn averages(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        let mut sums = vec![0.0; self.headers.len()];
        for (_, vals) in &self.rows {
            for (s, v) in sums.iter_mut().zip(vals) {
                *s += v;
            }
        }
        sums.into_iter().map(|s| s / n).collect()
    }

    /// Renders the table (also used by the binaries' stdout reports).
    pub fn render(&self) -> String {
        let mut label_w = "Average".len();
        for (l, _) in &self.rows {
            label_w = label_w.max(l.len());
        }
        let cell = |v: f64, d: usize| format!("{v:.d$}");

        let avgs = self.averages();
        let mut col_w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for (_, vals) in &self.rows {
            for (w, v) in col_w.iter_mut().zip(vals) {
                *w = (*w).max(cell(*v, self.decimals).len());
            }
        }
        for (w, v) in col_w.iter_mut().zip(&avgs) {
            *w = (*w).max(cell(*v, self.decimals).len());
        }

        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:label_w$}", ""));
        for (h, w) in self.headers.iter().zip(&col_w) {
            out.push_str(&format!("  {h:>w$}"));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for (v, w) in vals.iter().zip(&col_w) {
                out.push_str(&format!("  {:>w$}", cell(*v, self.decimals)));
            }
            out.push('\n');
        }
        if !self.rows.is_empty() {
            out.push_str(&format!("{:label_w$}", "Average"));
            for (v, w) in avgs.iter().zip(&col_w) {
                out.push_str(&format!("  {:>w$}", cell(*v, self.decimals)));
            }
            out.push('\n');
            if !self.ratio_refs.is_empty() {
                out.push_str(&format!("{:label_w$}", "Ratio"));
                for (i, w) in (0..self.headers.len()).zip(&col_w) {
                    let txt = match self.ratio_refs.iter().find(|(c, _)| *c == i) {
                        Some(&(c, r)) if avgs[r].abs() > 1e-12 => {
                            format!("{:.1}%", 100.0 * avgs[c] / avgs[r])
                        }
                        _ => "-".to_string(),
                    };
                    out.push_str(&format!("  {txt:>w$}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_rows_average_and_ratio() {
        let mut r = Report::new("T", &["a EPE", "b EPE"])
            .decimals(0)
            .ratio(1, 0);
        r.push("V1", vec![10.0, 5.0]);
        r.push("V2", vec![20.0, 10.0]);
        let s = r.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("V1"));
        assert!(s.contains("Average"));
        assert!(s.contains("50.0%"), "ratio row missing: {s}");
        assert_eq!(r.averages(), vec![15.0, 7.5]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        let mut r = Report::new("T", &["x"]);
        r.push("bad", vec![1.0, 2.0]);
    }

    #[test]
    fn empty_report_renders_headers_only() {
        let r = Report::new("empty", &["x", "y"]);
        let s = r.render();
        assert!(s.contains("== empty =="));
        assert!(!s.contains("Average"));
    }

    #[test]
    fn ratio_against_zero_reference_prints_dash() {
        let mut r = Report::new("z", &["a", "b"]).ratio(1, 0);
        r.push("row", vec![0.0, 5.0]);
        let s = r.render();
        assert!(s.contains('-'), "zero reference should render a dash: {s}");
    }

    #[test]
    fn run_batch_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..37).collect();
        let got = run_batch(&items, |&x| x * x);
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(got, want);
        assert!(run_batch::<u64, u64>(&[], |&x| x).is_empty());
    }

    #[test]
    fn quick_mode_reads_env() {
        // Cannot mutate the environment safely in tests; just ensure the
        // call does not panic and returns a bool.
        let _ = quick_mode();
    }
}
