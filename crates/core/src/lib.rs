//! # cardopc
//!
//! A from-scratch Rust reproduction of **CardOPC** — *Curvilinear Optical
//! Proximity Correction via Cardinal Spline* (Zheng et al., DAC 2025).
//!
//! CardOPC represents photomask shapes as loops of control points connected
//! by cardinal splines, corrects them with lithography-simulation feedback,
//! verifies them against curvilinear mask rules (width / space / area /
//! curvature), and can fit inverse-lithography (ILT) results to combine
//! ILT's fidelity with OPC's manufacturability.
//!
//! This crate is the facade over the workspace:
//!
//! | re-export | contents |
//! |-----------|----------|
//! | [`geometry`] | points, polygons, R-tree, rasters, contour tracing |
//! | [`spline`] | cardinal splines (Eq. 2/8/9/10), Bézier baseline, Algorithm-1 fitting |
//! | [`litho`] | FFT, SOCS optics, aerial images, resist, EPE/L2/PVB metrics |
//! | [`layout`] | synthetic via/metal/large-scale testcase generators |
//! | [`mrc`] | curvilinear mask rule checking and violation resolving |
//! | [`opc`] | the CardOPC flow and rectilinear baselines |
//! | [`ilt`] | pixel ILT and the ILT-OPC hybrid flow |
//! | [`runtime`] | tiled full-chip runtime: halo partitioning, scheduling, checkpoint/resume |
//! | [`json`] | dependency-free JSON used by checkpoints, manifests, and the service wire format |
//! | [`fleet`] | sharded multi-process correction: coordinator, work-stealing workers, crash recovery |
//! | [`serve`] | HTTP correction service: bounded admission, job lifecycle, metrics, drain |
//!
//! ## Quickstart
//!
//! ```no_run
//! use cardopc::prelude::*;
//!
//! // Optimise the first via-layer testcase with the paper's parameters.
//! let clip = &via_clips()[0];
//! let outcome = CardOpc::new(OpcConfig::via()).run(clip)?;
//! println!(
//!     "{}: EPE {:.1} nm, PVB {:.0} nm², MRC violations remaining: {}",
//!     clip.name(),
//!     outcome.evaluation.epe_sum_nm,
//!     outcome.evaluation.pvb_nm2,
//!     outcome.mrc_remaining,
//! );
//! # Ok::<(), cardopc::opc::OpcError>(())
//! ```

#![warn(missing_docs)]

pub use cardopc_fleet as fleet;
pub use cardopc_gds as gds;
pub use cardopc_geometry as geometry;
pub use cardopc_ilt as ilt;
pub use cardopc_json as json;
pub use cardopc_layout as layout;
pub use cardopc_litho as litho;
pub use cardopc_mrc as mrc;
pub use cardopc_opc as opc;
pub use cardopc_runtime as runtime;
pub use cardopc_serve as serve;
pub use cardopc_spline as spline;

/// One-import convenience module with the names most programs need.
pub mod prelude {
    pub use crate::fleet::{run_fleet, FleetConfig, WorkSpec};
    pub use crate::geometry::{BBox, Grid, Point, Polygon, SplitMix64};
    pub use crate::ilt::{pixel_ilt, run_hybrid, HybridConfig, IltConfig};
    pub use crate::layout::{large_tile, metal_clips, via_clips, Clip, DesignKind};
    pub use crate::litho::{LithoEngine, OpticsConfig, ProcessCondition};
    pub use crate::mrc::{MrcChecker, MrcResolver, MrcRules, ResolveConfig};
    pub use crate::opc::{
        engine_for_extent, evaluate_mask, CardOpc, MeasureConvention, OpcConfig, RectOpc,
        RectOpcConfig,
    };
    pub use crate::runtime::{
        run_clip, run_clip_controlled, RunConfig, RunControl, RunHandle, RunManifest, RuntimeError,
        TilingConfig,
    };
    pub use crate::serve::{ServeConfig, Server};
    pub use crate::spline::{fit_contour, BezierChain, CardinalSpline, FitConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let clips = via_clips();
        assert_eq!(clips.len(), 13);
        let p = Point::new(1.0, 2.0);
        assert_eq!(p.x, 1.0);
        let _cfg = OpcConfig::via();
        let _rules = MrcRules::default();
    }
}
