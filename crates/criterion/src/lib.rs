//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The workspace's containers have no crates.io access, so the real criterion
//! cannot be fetched. This crate implements the API subset the `cardopc-bench`
//! benches use — `criterion_group!`/`criterion_main!`, [`Criterion`],
//! benchmark groups with `sample_size`, and `Bencher::iter` — measuring with
//! `std::time::Instant`.
//!
//! Behavioural notes compared to the real crate:
//!
//! * Statistics are simple min / median / mean over the collected samples
//!   (no bootstrap, no outlier analysis, no HTML report).
//! * Command-line arguments that are not flags are treated as substring
//!   filters on benchmark names, so `cargo bench --bench litho_sim -- aerial`
//!   works as expected.
//! * When `CARDOPC_BENCH_JSON` names a file, one JSON object per benchmark is
//!   appended to it (`{"name", "min_ns", "median_ns", "mean_ns", "samples",
//!   "iters_per_sample"}`), which is how `bench_results/` snapshots are made.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point (a small subset of criterion's).
pub struct Criterion {
    filters: Vec<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let n = self.default_sample_size;
        self.run_one(name, n, f);
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, sample_size: usize, mut f: F) {
        if !self.matches_filter(full_name) {
            return;
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibration: grow the iteration count until one sample takes at
        // least ~2 ms (or a single iteration is already slower than that).
        let calibration_start = Instant::now();
        loop {
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2)
                || calibration_start.elapsed() > Duration::from_millis(500)
            {
                break;
            }
            b.iters = (b.iters * 4).min(1 << 30);
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        // Aim for ~1.5 s of total measurement across all samples.
        let target_sample = 1.5 / sample_size.max(1) as f64;
        b.iters = ((target_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 30);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            f(&mut b);
            samples_ns.push(b.elapsed.as_secs_f64() * 1e9 / b.iters as f64);
        }
        samples_ns.sort_by(|a, c| a.total_cmp(c));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

        println!(
            "{:<44} time: [{} {} {}]  ({} samples x {} iters)",
            full_name,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            samples_ns.len(),
            b.iters,
        );

        if let Ok(path) = std::env::var("CARDOPC_BENCH_JSON") {
            if !path.is_empty() {
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(
                        file,
                        "{{\"name\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                        full_name.replace('"', "'"),
                        min,
                        median,
                        mean,
                        samples_ns.len(),
                        b.iters,
                    );
                }
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, n, f);
        self
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_groups_run() {
        let mut c = Criterion {
            filters: vec![],
            default_sample_size: 3,
        };
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("f", |b| {
                b.iter(|| {
                    ran += 1;
                    black_box(ran)
                })
            });
            g.finish();
        }
        assert!(ran > 0, "benchmark closure never ran");
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = Criterion {
            filters: vec!["nomatch".into()],
            default_sample_size: 2,
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran, "filtered benchmark should not run");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500.0 ns");
        assert!(fmt_ns(1.5e3).contains("us"));
        assert!(fmt_ns(2.5e6).contains("ms"));
        assert!(fmt_ns(3.0e9).contains(" s"));
    }
}
