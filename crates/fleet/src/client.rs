//! A tiny blocking HTTP client for tests, smoke scripts, and CI.
//!
//! Speaks exactly the subset the server does — one request per
//! connection, `Content-Length` framing, `Connection: close` — so a test
//! exercises the real wire path end to end without external tooling.

use cardopc_json::Json;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// The parser's message for non-JSON bodies.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.body_str())
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Connection/IO failures and unparseable responses.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    request_with_timeout(addr, method, path, body, Duration::from_secs(30))
}

/// [`request`] with an explicit per-IO timeout. The fleet coordinator uses
/// this to enforce tile leases: a worker that does not answer a dispatch
/// within the lease loses the tile.
///
/// # Errors
///
/// See [`request`]; additionally `TimedOut`/`WouldBlock` when the deadline
/// passes mid-read.
pub fn request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let raw = send_raw_with_timeout(addr, format!("{head}{body}").as_bytes(), timeout)?;
    parse_response(&raw)
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body))
}

/// `DELETE path`.
///
/// # Errors
///
/// See [`request`].
pub fn delete(addr: SocketAddr, path: &str) -> io::Result<HttpResponse> {
    request(addr, "DELETE", path, None)
}

/// Writes arbitrary bytes to the server and reads until the connection
/// closes. The fuzz tests use this to deliver malformed requests that
/// [`request`] could never produce.
///
/// # Errors
///
/// Connection/IO failures.
pub fn send_raw(addr: SocketAddr, bytes: &[u8]) -> io::Result<Vec<u8>> {
    send_raw_with_timeout(addr, bytes, Duration::from_secs(30))
}

/// [`send_raw`] with an explicit connect/read/write timeout.
///
/// # Errors
///
/// Connection/IO failures.
pub fn send_raw_with_timeout(
    addr: SocketAddr,
    bytes: &[u8],
    timeout: Duration,
) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(bytes)?;
    let _ = stream.flush();
    // Half-close: the server sees EOF instead of waiting out its read
    // timeout when `bytes` is a truncated request.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    Ok(response)
}

/// Splits a raw response into status, headers, and body.
fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-utf8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}
