//! A tiny blocking HTTP client for the coordinator, tests, smoke
//! scripts, and CI.
//!
//! Two flavours share one wire parser:
//!
//! - the free functions ([`request`], [`get`], ...) open a fresh
//!   connection per request (`Connection: close`, read to EOF) — fine
//!   for tests and one-shot admin calls;
//! - [`Connection`] keeps one TCP connection alive across requests
//!   (`Connection: keep-alive`, `Content-Length`-framed reads) — the
//!   coordinator holds one per dispatch lane so the per-tile dispatch
//!   path pays no connect/teardown tax.

use cardopc_json::Json;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// The parser's message for non-JSON bodies.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.body_str())
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Connection/IO failures and unparseable responses.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    request_with_timeout(addr, method, path, body, Duration::from_secs(30))
}

/// [`request`] with an explicit per-IO timeout. The fleet coordinator uses
/// this to enforce tile leases: a worker that does not answer a dispatch
/// within the lease loses the tile.
///
/// # Errors
///
/// See [`request`]; additionally `TimedOut`/`WouldBlock` when the deadline
/// passes mid-read.
pub fn request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let raw = send_raw_with_timeout(addr, format!("{head}{body}").as_bytes(), timeout)?;
    parse_response(&raw)
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body))
}

/// `DELETE path`.
///
/// # Errors
///
/// See [`request`].
pub fn delete(addr: SocketAddr, path: &str) -> io::Result<HttpResponse> {
    request(addr, "DELETE", path, None)
}

/// A keep-alive HTTP connection to one peer.
///
/// The first request connects lazily; later requests reuse the stream.
/// Responses are `Content-Length`-framed (reading to EOF would wait out
/// the peer, which is holding the connection open on purpose). A request
/// that fails on a *reused* stream retries once on a fresh connection —
/// the idle server end may have timed the old one out between requests —
/// so callers see a stale-connection race as one successful request, not
/// an error. Tile dispatch is idempotent (workers answer re-sends from
/// their checkpoint), which is what makes the retry safe.
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Requests that reused an already-open stream (telemetry for the
    /// dispatch-overhead accounting in the scaling bench).
    reused: u64,
}

impl Connection {
    /// A connection handle to `addr`; nothing is connected yet.
    pub fn new(addr: SocketAddr) -> Connection {
        Connection {
            addr,
            stream: None,
            reused: 0,
        }
    }

    /// The peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many requests reused an already-open stream.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Sends one request over the kept-alive stream and reads the framed
    /// response.
    ///
    /// # Errors
    ///
    /// Connection/IO failures (after the single stale-reuse retry) and
    /// unparseable responses.
    pub fn request_with_timeout(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
    ) -> io::Result<HttpResponse> {
        let had_stream = self.stream.is_some();
        match self.try_request(method, path, body, timeout) {
            Ok(response) => {
                if had_stream {
                    self.reused += 1;
                }
                Ok(response)
            }
            // The reused stream was stale (server idle-timeout, worker
            // restart); retry once on a fresh connection. `try_request`
            // already dropped the dead stream.
            Err(_) if had_stream => self.try_request(method, path, body, timeout),
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
    ) -> io::Result<HttpResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, timeout)?;
            // Small request/response exchanges on a long-lived stream are
            // exactly what Nagle + delayed-ACK punishes (~40 ms per
            // coalesced write); send segments immediately.
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("just ensured");
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let body = body.unwrap_or("");
        // One buffer, one write: a head-then-body write pair on a reused
        // stream can stall on the peer's delayed ACK.
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        );
        message.push_str(body);
        let result = stream
            .write_all(message.as_bytes())
            .and_then(|()| stream.flush())
            .and_then(|()| read_framed_response(stream));
        match result {
            Ok(response) => {
                // Honour the server's decision to close (errors, drains).
                if response
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.stream = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Reads one `Content-Length`-framed response off a kept-alive stream.
fn read_framed_response(stream: &mut TcpStream) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 8192];
        match stream.read(&mut chunk)? {
            0 => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let mut response = parse_response(&buf[..head_end + 4])?;
    let content_length = match response.header("content-length") {
        Some(raw) => raw
            .trim()
            .parse::<usize>()
            .map_err(|_| bad("bad content-length in response"))?,
        None => return Err(bad("response lacks content-length")),
    };
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        match stream.read(&mut chunk)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated body",
                ))
            }
            n => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    response.body = body;
    Ok(response)
}

/// Writes arbitrary bytes to the server and reads until the connection
/// closes. The fuzz tests use this to deliver malformed requests that
/// [`request`] could never produce.
///
/// # Errors
///
/// Connection/IO failures.
pub fn send_raw(addr: SocketAddr, bytes: &[u8]) -> io::Result<Vec<u8>> {
    send_raw_with_timeout(addr, bytes, Duration::from_secs(30))
}

/// [`send_raw`] with an explicit connect/read/write timeout.
///
/// # Errors
///
/// Connection/IO failures.
pub fn send_raw_with_timeout(
    addr: SocketAddr,
    bytes: &[u8],
    timeout: Duration,
) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(bytes)?;
    let _ = stream.flush();
    // Half-close: the server sees EOF instead of waiting out its read
    // timeout when `bytes` is a truncated request.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    Ok(response)
}

/// Splits a raw response into status, headers, and body.
fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-utf8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}
