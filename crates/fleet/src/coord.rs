//! The fleet coordinator: lease-based tile dispatch with work stealing,
//! heartbeat-driven worker retirement, and checkpoint recovery.
//!
//! # State machine
//!
//! Every to-run tile moves through: **pending** → **leased** (dispatched
//! to a worker, lease clock running) → **done** (first valid result wins).
//! Transitions out of *leased* that do not finish the tile put it back in
//! *pending*:
//!
//! - the dispatch request fails or times out (the HTTP read timeout *is*
//!   the lease — a worker that does not answer within it loses the tile);
//! - the owning worker is retired (crash detected by the heartbeat
//!   prober, or `max_failures` consecutive errors).
//!
//! Near the tail an idle lane may **steal**: duplicate-dispatch a tile
//! whose every lease is older than `steal_after` to a different worker.
//! The first result marks the tile done; the loser's copy is discarded on
//! arrival (`duplicates` in [`FleetStats`]). Tiles are deterministic, so
//! which copy wins never changes the output — byte-identity by
//! construction.
//!
//! # Dispatch topology
//!
//! Each worker gets `window` lane threads, so at most `window` tiles are
//! in flight per worker — a slow box can absorb at most its window, not
//! the queue. Lanes pull from the shared pending queue (work-conserving),
//! then fall back to stealing.
//!
//! # Recovery
//!
//! Before dispatching, the coordinator resumes from its own run dir, then
//! harvests `GET /v1/records` from every worker: any record whose input
//! hash matches a wanted tile is adopted (and re-checkpointed locally),
//! so a coordinator restart loses no finished work even when its own run
//! dir is gone — the workers' checkpoints are the durable copy.

use crate::client;
use crate::proto;
use crate::spec::WorkSpec;
use cardopc_runtime::{
    partition_clip, stitch::StitchAccumulator, tile_input_hash, RunControl, RunDir, RunManifest,
    RuntimeError, ScheduleOutcome, Stitched, TileEvent, TileRecord, TileResult,
};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker addresses. At least one; a single worker is a valid
    /// (degenerate) fleet.
    pub workers: Vec<SocketAddr>,
    /// In-flight tiles per worker (lane threads). Bounds how much work a
    /// slow worker can absorb.
    pub window: usize,
    /// Per-tile lease: the dispatch request's IO timeout. A worker that
    /// does not answer within it loses the tile back to the queue.
    pub lease: Duration,
    /// Minimum lease age before an idle lane may duplicate-dispatch
    /// (steal) a tile leased to another worker.
    pub steal_after: Duration,
    /// Consecutive dispatch failures after which a worker is retired.
    pub max_failures: u32,
    /// Heartbeat probe interval per worker.
    pub heartbeat: Duration,
    /// Heartbeat probe timeout; three consecutive missed probes retire
    /// the worker without waiting out a full lease.
    pub heartbeat_timeout: Duration,
    /// Coordinator checkpoint/manifest directory (same layout as a
    /// single-process run's). `None` disables checkpointing.
    pub run_dir: Option<PathBuf>,
    /// Dispatch at most this many tiles (recovered/resumed tiles are
    /// free); `None` runs to completion.
    pub max_tiles: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            workers: Vec::new(),
            window: 2,
            lease: Duration::from_secs(120),
            steal_after: Duration::from_secs(20),
            max_failures: 3,
            heartbeat: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(1),
            run_dir: None,
            max_tiles: None,
        }
    }
}

/// Dispatch/robustness counters of one fleet run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Dispatch attempts (including steals and re-dispatches).
    pub dispatched: usize,
    /// Steal dispatches (duplicate of a still-leased tile).
    pub stolen: usize,
    /// Results discarded because another dispatch finished the tile
    /// first.
    pub duplicates: usize,
    /// Tiles returned to the queue after a failed/expired dispatch.
    pub redispatched: usize,
    /// Workers retired (crashed, hung, or persistently failing).
    pub retired_workers: usize,
    /// Tiles adopted from workers' checkpoints during startup recovery.
    pub recovered: usize,
}

/// Result of a fleet run. `outcome`/`stitched`/`manifest` mirror a
/// single-process [`cardopc_runtime::RunOutcome`] over the same input.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// The run manifest (timing-free form byte-identical to the
    /// single-process runtime's).
    pub manifest: RunManifest,
    /// The stitched full-chip mask; `None` when incomplete.
    pub stitched: Option<Stitched>,
    /// The assembled scheduler-equivalent outcome (results sorted by tile
    /// index; `resumed` counts own-checkpoint plus worker-recovered
    /// tiles).
    pub outcome: ScheduleOutcome,
    /// Dispatch/robustness counters.
    pub stats: FleetStats,
    /// `true` when every tile of the partition completed.
    pub complete: bool,
    /// `true` when the run stopped early on a cancelled handle.
    pub cancelled: bool,
}

/// Why a fleet run could not produce an outcome.
#[derive(Debug)]
pub enum FleetError {
    /// The configuration listed no workers.
    NoWorkers,
    /// Every worker was retired with tiles still unfinished.
    WorkersExhausted {
        /// Tiles left neither done nor recoverable.
        remaining: usize,
    },
    /// A runtime-layer failure (partitioning, checkpoint IO, or a tile
    /// that failed identically on every worker that tried it).
    Runtime(RuntimeError),
    /// The work spec's design could not be materialised (e.g. an
    /// unreadable or malformed GDS file).
    Spec(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoWorkers => write!(f, "fleet has no workers"),
            FleetError::WorkersExhausted { remaining } => {
                write!(f, "all workers retired with {remaining} tiles unfinished")
            }
            FleetError::Runtime(e) => write!(f, "{e}"),
            FleetError::Spec(msg) => write!(f, "unusable spec: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<RuntimeError> for FleetError {
    fn from(e: RuntimeError) -> FleetError {
        FleetError::Runtime(e)
    }
}

/// One to-run tile's dispatch state.
struct TileSlot {
    index: usize,
    hash: u64,
    done: bool,
    in_pending: bool,
    /// Live leases: `(worker id, dispatch instant)`.
    leases: Vec<(usize, Instant)>,
}

struct WorkerSlot {
    addr: SocketAddr,
    failures: u32,
    heartbeat_misses: u32,
    retired: bool,
}

struct State {
    tiles: Vec<TileSlot>,
    pending: VecDeque<usize>,
    done: usize,
    workers: Vec<WorkerSlot>,
    alive: usize,
    stats: FleetStats,
    records: Vec<TileRecord>,
    accumulator: StitchAccumulator,
    completed: usize,
    io_error: Option<RuntimeError>,
    /// Lowest-indexed tile whose dispatch failed with a worker-side tile
    /// error (HTTP 500) — surfaced if the run cannot complete.
    tile_error: Option<(usize, String)>,
    aborted: bool,
    active_lanes: usize,
}

struct Shared<'a> {
    state: Mutex<State>,
    cv: Condvar,
    sink: Mutex<Option<std::fs::File>>,
    spec: &'a WorkSpec,
    config: &'a FleetConfig,
    control: &'a RunControl<'a>,
    total: usize,
}

impl Shared<'_> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Runs one correction job across the configured workers and assembles
/// the same outcome a single-process run would produce.
///
/// `control` supplies per-tile progress events and cooperative
/// cancellation; its engine/tile caches are ignored (the coordinator
/// corrects nothing itself).
///
/// # Errors
///
/// [`FleetError::NoWorkers`] for an empty fleet,
/// [`FleetError::WorkersExhausted`] when every worker was retired with
/// tiles unfinished, [`FleetError::Runtime`] for partition/checkpoint
/// failures or a tile whose correction fails on the workers.
///
/// # Panics
///
/// Panics when `spec.opc` is invalid (mirrors
/// [`cardopc_runtime::run_clip`]'s contract); wire-facing callers
/// validate first via [`crate::spec::validate`].
pub fn run_fleet(
    spec: &WorkSpec,
    config: &FleetConfig,
    control: &RunControl<'_>,
) -> Result<FleetOutcome, FleetError> {
    let start = Instant::now();
    if config.workers.is_empty() {
        return Err(FleetError::NoWorkers);
    }
    let clip = spec.build_clip().map_err(FleetError::Spec)?;
    let partition = partition_clip(&clip, &spec.tiling)?;
    let total = partition.tiles.len();
    let hashes: Vec<u64> = partition
        .tiles
        .iter()
        .map(|t| tile_input_hash(t, &spec.opc))
        .collect();

    let run_dir = match &config.run_dir {
        Some(path) => Some(RunDir::open(path)?),
        None => None,
    };
    let checkpoints = match &run_dir {
        Some(dir) => dir.load_records()?,
        None => Default::default(),
    };
    let mut sink = match &run_dir {
        Some(dir) => Some(dir.append_handle()?),
        None => None,
    };

    // Resume from the coordinator's own checkpoints.
    let mut results: Vec<TileResult> = Vec::with_capacity(total);
    let mut wanted: Vec<bool> = vec![true; total];
    for (i, tile) in partition.tiles.iter().enumerate() {
        if let Some(record) = checkpoints.get(&tile.index) {
            if record.input_hash == hashes[i] {
                wanted[i] = false;
                results.push(TileResult {
                    record: record.clone(),
                    resumed: true,
                    cached: false,
                });
            }
        }
    }
    let resumed = results.len();

    // Recovery: adopt matching records from the workers' checkpoints.
    // A fresh or unreachable worker simply contributes nothing here.
    let mut stats = FleetStats::default();
    for addr in &config.workers {
        let Ok(response) =
            client::request_with_timeout(*addr, "GET", "/v1/records", None, config.lease)
        else {
            continue;
        };
        if response.status != 200 {
            continue;
        }
        for line in response.body_str().lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(record) = TileRecord::from_json_line(line) else {
                continue;
            };
            let i = record.index;
            if i < total && wanted[i] && record.input_hash == hashes[i] {
                wanted[i] = false;
                stats.recovered += 1;
                // Re-checkpoint locally so the next coordinator restart
                // resumes without asking the workers.
                if let Some(file) = sink.as_mut() {
                    RunDir::append_record(file, &record)?;
                }
                results.push(TileResult {
                    record,
                    resumed: true,
                    cached: false,
                });
            }
        }
    }
    results.sort_unstable_by_key(|r| r.record.index);

    // Report resumed/recovered tiles first (monotonic completed counter),
    // and seed the incremental stitcher with them.
    let mut accumulator = StitchAccumulator::new();
    for (done, r) in results.iter().enumerate() {
        accumulator.add_record(&r.record);
        if let Some(progress) = control.progress {
            progress(&TileEvent {
                tile: r.record.index,
                name: r.record.name.clone(),
                resumed: true,
                cached: false,
                seconds: r.record.seconds,
                completed: done + 1,
                total,
            });
        }
    }

    // To-dispatch tiles, in index order, optionally budget-truncated.
    let mut todo: Vec<TileSlot> = (0..total)
        .filter(|&i| wanted[i])
        .map(|i| TileSlot {
            index: partition.tiles[i].index,
            hash: hashes[i],
            done: false,
            in_pending: true,
            leases: Vec::new(),
        })
        .collect();
    if let Some(budget) = config.max_tiles {
        todo.truncate(budget);
    }
    let todo_len = todo.len();
    let lanes = config.workers.len() * config.window.max(1);

    let shared = Shared {
        state: Mutex::new(State {
            pending: (0..todo_len).collect(),
            tiles: todo,
            done: 0,
            workers: config
                .workers
                .iter()
                .map(|&addr| WorkerSlot {
                    addr,
                    failures: 0,
                    heartbeat_misses: 0,
                    retired: false,
                })
                .collect(),
            alive: config.workers.len(),
            stats,
            records: Vec::new(),
            accumulator,
            completed: resumed + stats.recovered,
            io_error: None,
            tile_error: None,
            aborted: false,
            active_lanes: lanes,
        }),
        cv: Condvar::new(),
        sink: Mutex::new(sink),
        spec,
        config,
        control,
        total,
    };

    std::thread::scope(|scope| {
        for worker_id in 0..config.workers.len() {
            for _ in 0..config.window.max(1) {
                let shared = &shared;
                scope.spawn(move || lane_loop(shared, worker_id));
            }
            let shared = &shared;
            scope.spawn(move || heartbeat_loop(shared, worker_id));
        }
    });

    let state = shared
        .state
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = state.io_error {
        return Err(FleetError::Runtime(e));
    }
    let cancelled = control.cancelled();
    let unfinished = todo_len - state.done;
    if state.alive == 0 && unfinished > 0 && !cancelled {
        // Surface a deterministic tile failure when one was observed —
        // workers were likely retired *because* the tile itself fails.
        if let Some((tile, message)) = state.tile_error {
            return Err(FleetError::Runtime(RuntimeError::Io(format!(
                "tile {tile} failed on the fleet: {message}"
            ))));
        }
        return Err(FleetError::WorkersExhausted {
            remaining: unfinished,
        });
    }

    let mut records = state.records;
    records.sort_unstable_by_key(|r| r.index);
    let executed = records.len();
    let tile_seconds: f64 = records.iter().map(|r| r.seconds).sum();
    for record in records {
        results.push(TileResult {
            record,
            resumed: false,
            cached: false,
        });
    }
    results.sort_unstable_by_key(|r| r.record.index);

    let outcome = ScheduleOutcome {
        remaining: total - results.len(),
        executed,
        resumed: resumed + state.stats.recovered,
        tile_seconds,
        cache_hits: 0,
        cache_misses: 0,
        cancelled,
        results,
    };
    let complete = outcome.remaining == 0;
    let stitched = complete.then(|| state.accumulator.finish(&partition, spec.opc.mrc.as_ref()));
    let manifest = RunManifest::build(
        clip.name(),
        &partition,
        &outcome,
        stitched.as_ref(),
        config.workers.len(),
        start.elapsed().as_secs_f64(),
    );
    if complete {
        if let Some(dir) = &run_dir {
            dir.write_manifest(&manifest.to_json(true))?;
            dir.write_stable_manifest(&manifest.to_json(false))?;
        }
    }

    Ok(FleetOutcome {
        manifest,
        stitched,
        stats: state.stats,
        complete,
        cancelled,
        outcome,
    })
}

/// What a lane decided to do while holding the state lock.
enum Claim {
    /// Dispatch tile `tiles[pos]`.
    Dispatch { pos: usize, index: usize, hash: u64 },
    /// Nothing claimable right now; lane exits.
    Finished,
}

/// One dispatch lane: claim → HTTP dispatch (lease = IO timeout) →
/// settle. Exits when all tiles are done, the run is aborted/cancelled,
/// or its worker is retired.
///
/// Each lane owns one keep-alive [`client::Connection`] to its worker, so
/// after the first tile a dispatch costs a request/response exchange, not
/// a TCP connect + teardown per tile. A stale connection (worker idle
/// timeout between tiles) is retried once on a fresh one inside the
/// client; dispatch is idempotent, so the retry is safe.
fn lane_loop(shared: &Shared<'_>, worker_id: usize) {
    let addr = {
        let state = shared.lock();
        state.workers[worker_id].addr
    };
    let mut connection = client::Connection::new(addr);
    loop {
        let claim = claim_tile(shared, worker_id);
        let Claim::Dispatch { pos, index, hash } = claim else {
            break;
        };
        let body = proto::dispatch_body(shared.spec, index);
        let outcome = connection
            .request_with_timeout("POST", "/v1/tiles", Some(&body), shared.config.lease)
        .map_err(|e| (false, e.to_string()))
        .and_then(|response| {
            if response.status == 200 {
                TileRecord::from_json_line(response.body_str().trim())
                    .map_err(|e| (false, format!("unparseable record: {e}")))
            } else {
                // A 5xx is a worker-side tile failure (deterministic for a
                // broken tile); transport errors stay "maybe transient".
                let tile_side = response.status >= 500;
                Err((
                    tile_side,
                    format!("worker answered {}: {}", response.status, response.body_str()),
                ))
            }
        })
        .and_then(|record| {
            if record.index == index && record.input_hash == hash {
                Ok(record)
            } else {
                Err((
                    false,
                    format!(
                        "record mismatch: got tile {} hash {:016x}, want tile {index} hash {hash:016x}",
                        record.index, record.input_hash
                    ),
                ))
            }
        });
        settle(shared, worker_id, pos, outcome);
    }
    let mut state = shared.lock();
    state.active_lanes -= 1;
    drop(state);
    shared.cv.notify_all();
}

/// Claims the next tile for `worker_id`: pending first, then a steal.
/// Blocks (with periodic wakeups, so steal ages are re-examined) while
/// other workers still hold fresh leases.
fn claim_tile(shared: &Shared<'_>, worker_id: usize) -> Claim {
    let mut state = shared.lock();
    loop {
        if state.done == state.tiles.len()
            || state.aborted
            || state.workers[worker_id].retired
            || shared.control.cancelled()
        {
            return Claim::Finished;
        }
        // Pending queue first (work-conserving).
        let mut picked = None;
        while let Some(pos) = state.pending.pop_front() {
            state.tiles[pos].in_pending = false;
            if !state.tiles[pos].done {
                picked = Some(pos);
                break;
            }
        }
        // Tail: steal a tile whose every lease has aged past the steal
        // threshold and belongs to someone else. Capped at two live
        // leases per tile — one steal in flight at a time.
        if picked.is_none() {
            let now = Instant::now();
            let steal_after = shared.config.steal_after;
            picked = state.tiles.iter().position(|t| {
                !t.done
                    && !t.in_pending
                    && !t.leases.is_empty()
                    && t.leases.len() < 2
                    && t.leases.iter().all(|&(w, since)| {
                        w != worker_id && now.duration_since(since) >= steal_after
                    })
            });
            if picked.is_some() {
                state.stats.stolen += 1;
            }
        }
        match picked {
            Some(pos) => {
                state.tiles[pos].leases.push((worker_id, Instant::now()));
                state.stats.dispatched += 1;
                return Claim::Dispatch {
                    pos,
                    index: state.tiles[pos].index,
                    hash: state.tiles[pos].hash,
                };
            }
            None => {
                state = shared
                    .cv
                    .wait_timeout(state, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
    }
}

/// Settles one dispatch: first valid result wins; failures re-queue the
/// tile and count toward the worker's retirement.
fn settle(
    shared: &Shared<'_>,
    worker_id: usize,
    pos: usize,
    outcome: Result<TileRecord, (bool, String)>,
) {
    let mut state = shared.lock();
    state.tiles[pos].leases.retain(|&(w, _)| w != worker_id);
    match outcome {
        Ok(record) => {
            state.workers[worker_id].failures = 0;
            if state.tiles[pos].done {
                state.stats.duplicates += 1;
                drop(state);
                shared.cv.notify_all();
                return;
            }
            state.tiles[pos].done = true;
            state.done += 1;
            state.completed += 1;
            let completed = state.completed;
            state.accumulator.add_record(&record);
            {
                let mut sink = shared.sink.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(file) = sink.as_mut() {
                    if let Err(e) = RunDir::append_record(file, &record) {
                        state.io_error.get_or_insert(e);
                    }
                }
            }
            let event = shared.control.progress.map(|_| TileEvent {
                tile: record.index,
                name: record.name.clone(),
                resumed: false,
                cached: false,
                seconds: record.seconds,
                completed,
                total: shared.total,
            });
            state.records.push(record);
            drop(state);
            shared.cv.notify_all();
            if let (Some(progress), Some(event)) = (shared.control.progress, event) {
                progress(&event);
            }
        }
        Err((tile_side, message)) => {
            if tile_side {
                let index = state.tiles[pos].index;
                match &mut state.tile_error {
                    Some((lowest, _)) if *lowest <= index => {}
                    slot => *slot = Some((index, message)),
                }
            }
            if !state.tiles[pos].done {
                state.stats.redispatched += 1;
                if state.tiles[pos].leases.is_empty() && !state.tiles[pos].in_pending {
                    state.tiles[pos].in_pending = true;
                    state.pending.push_front(pos);
                }
            }
            state.workers[worker_id].failures += 1;
            if state.workers[worker_id].failures >= shared.config.max_failures {
                retire_worker(&mut state, worker_id);
            }
            drop(state);
            shared.cv.notify_all();
        }
    }
}

/// Retires a worker: releases its leases (re-queueing orphaned tiles) and
/// aborts the run when no workers remain.
fn retire_worker(state: &mut State, worker_id: usize) {
    if state.workers[worker_id].retired {
        return;
    }
    state.workers[worker_id].retired = true;
    state.alive -= 1;
    state.stats.retired_workers += 1;
    for pos in 0..state.tiles.len() {
        let tile = &mut state.tiles[pos];
        tile.leases.retain(|&(w, _)| w != worker_id);
        if !tile.done && tile.leases.is_empty() && !tile.in_pending {
            tile.in_pending = true;
            state.pending.push_back(pos);
        }
    }
    if state.alive == 0 {
        state.aborted = true;
    }
}

/// Probes one worker's `/healthz`; three consecutive misses retire it —
/// much faster than waiting out a lease on a crashed process. A worker
/// busy correcting still answers (requests are served concurrently), so
/// load alone never retires anyone.
fn heartbeat_loop(shared: &Shared<'_>, worker_id: usize) {
    let finished = |state: &State| {
        state.active_lanes == 0
            || state.done == state.tiles.len()
            || state.aborted
            || state.workers[worker_id].retired
    };
    loop {
        // Sleep on the condvar, not the clock: when the lanes drain the
        // run must not wait out a heartbeat interval before joining.
        {
            let mut state = shared.lock();
            let deadline = Instant::now() + shared.config.heartbeat;
            loop {
                if finished(&state) {
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                state = shared
                    .cv
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
        let addr = {
            let state = shared.lock();
            if finished(&state) {
                return;
            }
            state.workers[worker_id].addr
        };
        let healthy = client::request_with_timeout(
            addr,
            "GET",
            "/healthz",
            None,
            shared.config.heartbeat_timeout,
        )
        .map(|r| r.status == 200)
        .unwrap_or(false);
        let mut state = shared.lock();
        if healthy {
            state.workers[worker_id].heartbeat_misses = 0;
        } else {
            state.workers[worker_id].heartbeat_misses += 1;
            if state.workers[worker_id].heartbeat_misses >= 3 {
                retire_worker(&mut state, worker_id);
                drop(state);
                shared.cv.notify_all();
            }
        }
    }
}
