//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The build containers have no crates.io access, so — like the in-repo
//! proptest/criterion stand-ins — the server speaks HTTP with its own
//! parser over [`std::net::TcpStream`]. The subset is deliberately small
//! and strict: `Content-Length` framing only (chunked bodies are answered
//! with 501) and hard limits on header and body sizes so a hostile peer
//! cannot grow memory unboundedly. Connections default to one request
//! (`Connection: close`); a server may grant an explicit
//! `Connection: keep-alive` request header via
//! [`Response::write_framed`] — the fleet worker does, so coordinator
//! dispatch lanes reuse one stream across tiles. Every parse failure maps
//! to a 4xx/5xx status; the connection handler never panics on malformed
//! input.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes (correction requests are small JSON).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-connection socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Raw query string (without the `?`), if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Whether the peer asked to keep the connection open for further
    /// requests (`Connection: keep-alive`). Absent or any other value —
    /// including HTTP/1.1's implicit default — is treated as close: every
    /// in-repo client that wants reuse says so explicitly, and one
    /// request per connection stays the conservative default for
    /// everything else.
    pub fn wants_keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }
}

/// A request parse failure, carrying the status the peer should receive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// HTTP status to answer with (always 4xx or 5xx).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl ParseError {
    fn new(status: u16, message: impl Into<String>) -> ParseError {
        ParseError {
            status,
            message: message.into(),
        }
    }
}

/// Outcome of reading one request off a connection.
pub enum ReadOutcome {
    /// A syntactically valid request.
    Request(Request),
    /// Malformed input; answer with the carried status and close.
    Malformed(ParseError),
    /// The peer closed or timed out before sending a full head; there is
    /// nobody to answer.
    Disconnected,
}

/// Reads and parses one request, enforcing the size limits.
pub fn read_request(stream: &mut TcpStream) -> ReadOutcome {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));

    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return ReadOutcome::Malformed(ParseError::new(431, "request head too large"));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Disconnected
                } else {
                    ReadOutcome::Malformed(ParseError::new(400, "truncated request head"))
                }
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return ReadOutcome::Disconnected,
        }
    };

    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return ReadOutcome::Malformed(ParseError::new(400, "non-utf8 request head")),
    };
    let mut request = match parse_head(head) {
        Ok(r) => r,
        Err(e) => return ReadOutcome::Malformed(e),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.trim().is_empty())
    {
        return ReadOutcome::Malformed(ParseError::new(501, "chunked bodies not supported"));
    }

    // Body framing: Content-Length only.
    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ReadOutcome::Malformed(ParseError::new(400, "bad content-length")),
        },
    };
    if content_length > MAX_BODY_BYTES {
        return ReadOutcome::Malformed(ParseError::new(413, "request body too large"));
    }

    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Malformed(ParseError::new(400, "truncated body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return ReadOutcome::Malformed(ParseError::new(408, "body read timed out")),
        }
    }
    body.truncate(content_length);
    request.body = body;
    ReadOutcome::Request(request)
}

/// Index of the `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line and headers (everything before the blank line).
fn parse_head(head: &str) -> Result<Request, ParseError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::new(400, "empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| ParseError::new(400, "bad method"))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or_else(|| ParseError::new(400, "bad request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::new(400, "missing http version"))?;
    if parts.next().is_some() {
        return Err(ParseError::new(400, "malformed request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::new(505, "unsupported http version"));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::new(400, "malformed header"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::new(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    })
}

/// A response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers (e.g. `Retry-After`).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error document `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            cardopc_json::Json::obj(vec![("error", cardopc_json::Json::Str(message.into()))])
                .to_string_compact(),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialises and writes the response with `Connection: close`;
    /// errors are swallowed (the peer may already be gone, which is its
    /// prerogative).
    pub fn write(&self, stream: &mut TcpStream) {
        self.write_framed(stream, false);
    }

    /// [`Response::write`] with an explicit connection disposition:
    /// `keep_alive` answers `Connection: keep-alive` so the peer may send
    /// another request on the same stream (the fleet worker grants this
    /// to coordinator dispatch lanes).
    pub fn write_framed(&self, stream: &mut TcpStream, keep_alive: bool) {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // Head and body go out in one write: separate small writes on a
        // kept-alive stream can stall on Nagle + the peer's delayed ACK.
        let mut message = head.into_bytes();
        message.extend_from_slice(&self.body);
        let _ = stream.write_all(&message).and_then(|()| stream.flush());
    }
}

/// Canonical reason phrases for the statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_head_accepts_basic_requests() {
        let r = parse_head("GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.query, None);
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));

        let r = parse_head("POST /v1/jobs?dry=1 HTTP/1.1\r\nContent-Length: 2").unwrap();
        assert_eq!(r.path, "/v1/jobs");
        assert_eq!(r.query.as_deref(), Some("dry=1"));
    }

    #[test]
    fn parse_head_rejects_malformed_lines() {
        for bad in [
            "",
            "GET",
            "GET /x",
            "get /x HTTP/1.1",
            "GET x HTTP/1.1",
            "GET /x HTTP/2.0",
            "GET /x HTTP/1.1 extra",
            "GET /x HTTP/1.1\r\nno-colon-header",
            "GET /x HTTP/1.1\r\nbad name: v",
            "GET /x HTTP/1.1\r\n: empty",
        ] {
            let e = parse_head(bad).unwrap_err();
            assert!((400..600).contains(&e.status), "{bad:?} -> {e:?}");
        }
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
