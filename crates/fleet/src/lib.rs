//! # cardopc-fleet — sharded multi-process correction
//!
//! The fleet layer promotes the runtime's tile from an internal scheduling
//! unit to the distributed unit of work. One **coordinator** partitions a
//! clip with the existing halo-aware partitioner and dispatches tile work
//! units to N **worker processes** over the same dependency-free HTTP/1.1
//! subset `cardopc-serve` speaks; per-tile results stream back for
//! incremental stitching and manifest aggregation.
//!
//! Because every tile correction is a pure, deterministic function of
//! `(work spec, tile index)`, the distributed run produces a timing-free
//! manifest byte-identical to the single-process runtime — for any worker
//! count, kill schedule, or steal pattern. That determinism is what makes
//! aggressive failure handling safe:
//!
//! - **leases** — each dispatched tile carries a lease; a worker that does
//!   not answer within it loses the tile back to the pending queue;
//! - **heartbeats** — a background prober retires crashed workers in
//!   hundreds of milliseconds instead of a full lease period;
//! - **work stealing** — near the tail, idle lanes duplicate-dispatch
//!   tiles still leased to slower workers; the first result wins and the
//!   loser's copy is discarded (byte-identical by construction);
//! - **checkpoints** — workers append every finished tile to their own
//!   `RunDir`; a restarted coordinator rebuilds job state by harvesting
//!   `GET /v1/records` from the surviving workers and its own run dir.
//!
//! Module map: [`spec`] is the wire-level work description (design +
//! tiling + full `OpcConfig`, exhaustively serialised); [`proto`] the
//! tile-dispatch wire schema; [`worker`] the worker-process server;
//! [`coord`] the coordinator state machine; [`http`] / [`client`] the
//! HTTP/1.1 subset shared with (and re-exported by) `cardopc-serve`.

pub mod client;
pub mod coord;
pub mod http;
pub mod proto;
pub mod spec;
pub mod worker;

pub use coord::{run_fleet, FleetConfig, FleetError, FleetOutcome, FleetStats};
pub use spec::{DesignSpec, WorkSpec};
pub use worker::{WorkerConfig, WorkerServer};
