//! The coordinator ↔ worker wire schema.
//!
//! Four endpoints, all over the same HTTP/1.1 subset `cardopc-serve`
//! speaks (`Content-Length` framing; workers additionally honour
//! `Connection: keep-alive`, so a dispatch lane reuses one stream for
//! every tile it sends):
//!
//! | Method & path          | Purpose                                       |
//! |------------------------|-----------------------------------------------|
//! | `POST /v1/tiles`       | correct one tile; 200 body = checkpoint line  |
//! | `GET /v1/records`      | every checkpointed record, as JSONL           |
//! | `GET /healthz`         | heartbeat (liveness + tiles-done counter)     |
//! | `POST /admin/shutdown` | stop accepting and let the process exit 0     |
//!
//! A dispatch body is `{"spec": <work spec>, "tile": <index>}` — the
//! [`WorkSpec`] is self-contained, so a worker needs no session state and
//! any worker can serve any tile of any job. The 200 response body is the
//! runtime's own `TileRecord` JSONL line, which carries the tile input
//! hash; the coordinator recomputes that hash locally and rejects a
//! mismatched record, so a worker that somehow expanded a different
//! partition cannot corrupt the run.

use crate::spec::{reject_unknown, BadRequest, WorkSpec};
use cardopc_json::Json;

/// Serialises a tile dispatch request body.
pub fn dispatch_body(spec: &WorkSpec, tile: usize) -> String {
    Json::obj(vec![
        ("spec", spec.to_json()),
        ("tile", Json::num_usize(tile)),
    ])
    .to_string_compact()
}

/// Parses a `POST /v1/tiles` body.
///
/// # Errors
///
/// A message for malformed JSON, unknown fields, or an invalid spec;
/// workers answer 400 with it.
pub fn parse_dispatch(body: &str) -> Result<(WorkSpec, usize), BadRequest> {
    let json = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(_) = &json else {
        return Err("dispatch body must be a JSON object".into());
    };
    reject_unknown(&json, &["spec", "tile"])?;
    let spec = WorkSpec::from_json(json.get("spec").ok_or("missing 'spec'")?)?;
    let tile = json
        .get("tile")
        .and_then(Json::as_usize)
        .ok_or("'tile' must be a non-negative integer")?;
    Ok((spec, tile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DesignSpec;
    use cardopc_layout::DesignKind;
    use cardopc_opc::OpcConfig;
    use cardopc_runtime::TilingConfig;

    fn spec() -> WorkSpec {
        WorkSpec {
            design: DesignSpec::generated(DesignKind::Gcd, 1, Some(2048.0)),
            tiling: TilingConfig {
                tile_size: 1024.0,
                halo: 512.0,
            },
            opc: OpcConfig::large_scale(),
        }
    }

    #[test]
    fn dispatch_roundtrips() {
        let body = dispatch_body(&spec(), 3);
        let (back, tile) = parse_dispatch(&body).unwrap();
        assert_eq!(back, spec());
        assert_eq!(tile, 3);
    }

    #[test]
    fn dispatch_rejections() {
        let good = dispatch_body(&spec(), 0);
        for bad in [
            "not json",
            "[]",
            r#"{"tile": 0}"#,
            r#"{"spec": {}, "tile": 0}"#,
            &good.replace("\"tile\":0", "\"tile\":-1"),
            &good.replace("\"tile\":0", "\"tile\":0,\"extra\":1"),
        ] {
            assert!(parse_dispatch(bad).is_err(), "accepted: {bad}");
        }
    }
}
