//! The fleet work specification: a compact, wire-serialisable description
//! of one correction job that every worker can expand into the *same*
//! clip + partition.
//!
//! The coordinator never ships tile geometry — a [`WorkSpec`] is a design
//! recipe (`kind`/`tiles`/`crop`), a [`TilingConfig`], and the **full**
//! [`OpcConfig`]. Workers rebuild the clip and run the halo-aware
//! partitioner locally; because both constructions are deterministic, a
//! tile index alone identifies the exact work unit on every process, and
//! the runtime's `tile_input_hash` double-checks the agreement on every
//! result.
//!
//! This module also owns the *non-panicking* validation layer that
//! `cardopc-serve` uses for untrusted request bytes (`parse_design`,
//! `parse_tiling`, `parse_opc`, [`validate`], [`sanitize_run_dir`]);
//! serve's `wire` module re-exports it so the HTTP job format and the
//! fleet work-unit format can never drift apart.
//!
//! The `OpcConfig` serialisation destructures the struct exhaustively —
//! adding a field to `OpcConfig` without extending the wire format is a
//! compile error, mirroring the runtime's `hash_config` guarantee.

use std::path::{Path, PathBuf};

use cardopc_json::Json;
use cardopc_layout::{Clip, DesignKind, DesignSource, LayerFilter, TARGET_LAYER};
use cardopc_mrc::MrcRules;
use cardopc_opc::{MeasureConvention, OpcConfig, SrafConfig};
use cardopc_runtime::TilingConfig;

/// Upper bound on `design.tiles`: neither a correction service nor a
/// worker may let one request allocate an arbitrarily large synthetic
/// design.
pub const MAX_DESIGN_TILES: usize = 16;

/// A request rejection: the message lands in a 400 response body.
pub type BadRequest = String;

/// The design recipe shared by the CLI (`--design`/`--design-tiles`/
/// `--crop`), the service wire format, and the fleet work unit — either a
/// synthetic generator recipe or a GDS file reference, behind the
/// [`DesignSource`] seam.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignSpec {
    /// Where the input clip comes from.
    pub source: DesignSource,
}

impl DesignSpec {
    /// A synthetic-generator spec (the pre-GDS wire format).
    pub fn generated(kind: DesignKind, tiles: usize, crop: Option<f64>) -> DesignSpec {
        DesignSpec {
            source: DesignSource::Generated { kind, tiles, crop },
        }
    }

    /// A GDS-file spec.
    pub fn gds(path: PathBuf, layer: LayerFilter, crop: Option<f64>) -> DesignSpec {
        DesignSpec {
            source: DesignSource::Gds { path, layer, crop },
        }
    }

    /// Builds the input clip. Every process that expands the same spec
    /// sees the same input (generated designs are deterministic; GDS
    /// designs hash-checked per tile by the runtime).
    ///
    /// # Errors
    ///
    /// A message when a GDS source cannot be read or flattened.
    pub fn build_clip(&self) -> Result<Clip, BadRequest> {
        self.source.build_clip()
    }

    fn to_json(&self) -> Json {
        let mut members = match &self.source {
            DesignSource::Generated { kind, tiles, .. } => vec![
                ("kind", Json::Str(kind.name().to_string())),
                ("tiles", Json::num_usize(*tiles)),
            ],
            DesignSource::Gds { path, layer, .. } => vec![
                ("gds", Json::Str(path.to_string_lossy().into_owned())),
                ("layer", Json::Str(layer.to_string())),
            ],
        };
        let crop = match &self.source {
            DesignSource::Generated { crop, .. } | DesignSource::Gds { crop, .. } => *crop,
        };
        if let Some(crop) = crop {
            members.push(("crop", Json::Num(crop)));
        }
        Json::obj(members)
    }
}

/// Parses a `design` object into a spec (strict: unknown keys rejected).
/// GDS paths are taken verbatim — use [`parse_design_with_root`] for
/// untrusted input.
///
/// # Errors
///
/// A human-readable message for any malformed or out-of-range field.
pub fn parse_design(design: &Json) -> Result<DesignSpec, BadRequest> {
    parse_design_with_root(design, None)
}

/// Parses a `design` object. When `gds_root` is given (the untrusted
/// HTTP path), a `gds` reference must be a bare file name — same
/// character policy as `run_dir` — and resolves inside that root, so a
/// request can never read outside the service's run directory.
///
/// # Errors
///
/// A human-readable message for any malformed or out-of-range field.
pub fn parse_design_with_root(
    design: &Json,
    gds_root: Option<&Path>,
) -> Result<DesignSpec, BadRequest> {
    let Json::Obj(_) = design else {
        return Err("'design' must be an object".into());
    };
    if design.get("gds").is_some() {
        reject_unknown(design, &["gds", "layer", "crop"])?;
        let text = design
            .get("gds")
            .expect("checked above")
            .as_str()
            .ok_or("'design.gds' must be a string")?;
        let path = match gds_root {
            Some(root) => {
                let name =
                    sanitize_run_dir(text).map_err(|e| e.replace("'run_dir'", "'design.gds'"))?;
                root.join(name)
            }
            None => PathBuf::from(text),
        };
        let layer = match design.get("layer") {
            None => LayerFilter::Layer(TARGET_LAYER),
            Some(v) => LayerFilter::parse(
                v.as_str()
                    .ok_or("'design.layer' must be a string like \"1\" or \"1:0\"")?,
            )
            .map_err(|e| format!("'design.layer': {e}"))?,
        };
        let crop = parse_crop(design)?;
        return Ok(DesignSpec::gds(path, layer, crop));
    }
    reject_unknown(design, &["kind", "tiles", "crop"])?;
    let kind = match design
        .get("kind")
        .ok_or("missing 'design.kind' (or 'design.gds')")?
        .as_str()
        .ok_or("'design.kind' must be a string")?
    {
        "gcd" => DesignKind::Gcd,
        "aes" => DesignKind::Aes,
        "dynamicnode" => DesignKind::DynamicNode,
        other => return Err(format!("unknown design kind '{other}'")),
    };
    let tiles = match design.get("tiles") {
        None => 1,
        Some(v) => v.as_usize().ok_or("'design.tiles' must be an integer")?,
    };
    if tiles == 0 || tiles > MAX_DESIGN_TILES {
        return Err(format!("'design.tiles' must be in 1..={MAX_DESIGN_TILES}"));
    }
    let crop = parse_crop(design)?;
    Ok(DesignSpec::generated(kind, tiles, crop))
}

fn parse_crop(design: &Json) -> Result<Option<f64>, BadRequest> {
    match design.get("crop") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let nm = v.as_f64().ok_or("'design.crop' must be a number")?;
            if !nm.is_finite() || nm <= 0.0 {
                return Err("'design.crop' must be positive".into());
            }
            Ok(Some(nm))
        }
    }
}

/// Builds the synthetic input clip: `count` design tiles side by side,
/// optionally cropped to a centred window. Thin alias for
/// [`cardopc_layout::generated_clip`], kept so existing CLI/serve callers
/// keep compiling.
pub fn build_clip(kind: DesignKind, count: usize, crop: Option<f64>) -> Clip {
    cardopc_layout::generated_clip(kind, count, crop)
}

/// Parses a `tiling` object (strict; defaults 4096/1024 nm).
///
/// # Errors
///
/// A message for non-numeric, non-finite, or non-positive extents.
pub fn parse_tiling(tiling: &Json) -> Result<TilingConfig, BadRequest> {
    let Json::Obj(_) = tiling else {
        return Err("'tiling' must be an object".into());
    };
    reject_unknown(tiling, &["tile", "halo"])?;
    let tile_size = match tiling.get("tile") {
        None => 4096.0,
        Some(v) => v.as_f64().ok_or("'tiling.tile' must be a number")?,
    };
    let halo = match tiling.get("halo") {
        None => 1024.0,
        Some(v) => v.as_f64().ok_or("'tiling.halo' must be a number")?,
    };
    if !tile_size.is_finite() || tile_size <= 0.0 {
        return Err("'tiling.tile' must be positive and finite".into());
    }
    if !halo.is_finite() || halo < 0.0 {
        return Err("'tiling.halo' must be non-negative and finite".into());
    }
    Ok(TilingConfig { tile_size, halo })
}

/// Numeric `OpcConfig` overrides the job wire format accepts on top of a
/// preset. Deliberately a subset: the exotic fields (corner pull, relax
/// schedule, conventions) stay preset-controlled. (The fleet work-unit
/// format is different — it carries the *full* config; see
/// [`WorkSpec::from_json`].)
const OPC_KEYS: [&str; 8] = [
    "preset",
    "pitch",
    "iterations",
    "move_step",
    "l_c",
    "l_u",
    "decay_at",
    "precision",
];

/// Parses an `opc` object: a preset name plus numeric overrides.
///
/// # Errors
///
/// A message for unknown presets, unknown keys, or non-numeric overrides.
pub fn parse_opc(opc: &Json) -> Result<OpcConfig, BadRequest> {
    let Json::Obj(_) = opc else {
        return Err("'opc' must be an object".into());
    };
    reject_unknown(opc, &OPC_KEYS)?;
    let mut config = match opc.get("preset") {
        None => OpcConfig::large_scale(),
        Some(v) => match v.as_str().ok_or("'opc.preset' must be a string")? {
            "via" => OpcConfig::via(),
            "metal" => OpcConfig::metal(),
            "large_scale" => OpcConfig::large_scale(),
            other => return Err(format!("unknown opc preset '{other}'")),
        },
    };
    if let Some(v) = opc.get("pitch") {
        config.pitch = v.as_f64().ok_or("'opc.pitch' must be a number")?;
    }
    if let Some(v) = opc.get("iterations") {
        config.iterations = v.as_usize().ok_or("'opc.iterations' must be an integer")?;
    }
    if let Some(v) = opc.get("move_step") {
        config.move_step = v.as_f64().ok_or("'opc.move_step' must be a number")?;
    }
    if let Some(v) = opc.get("l_c") {
        config.l_c = v.as_f64().ok_or("'opc.l_c' must be a number")?;
    }
    if let Some(v) = opc.get("l_u") {
        config.l_u = v.as_f64().ok_or("'opc.l_u' must be a number")?;
    }
    if let Some(v) = opc.get("decay_at") {
        config.decay_at = v.as_usize().ok_or("'opc.decay_at' must be an integer")?;
    }
    if let Some(v) = opc.get("precision") {
        config.precision = parse_precision(v)?;
    }
    Ok(config)
}

/// Parses a precision value strictly: exactly `"f64"` or `"f32"`, with a
/// field-naming message for everything else. Shared by the job wire format
/// (optional, defaults to `f64`) and the fleet work-unit format (required).
fn parse_precision(v: &Json) -> Result<cardopc_litho::Precision, BadRequest> {
    v.as_str()
        .and_then(cardopc_litho::Precision::parse)
        .ok_or_else(|| "'opc.precision' must be \"f64\" or \"f32\"".into())
}

/// Non-panicking mirror of [`OpcConfig::assert_valid`] (plus finiteness,
/// which the panic path trusts the compiler's literals for).
///
/// # Errors
///
/// The first violated constraint, phrased for a 400 response body.
pub fn validate(config: &OpcConfig) -> Result<(), BadRequest> {
    let finite_pos = |name: &str, v: f64| {
        if v.is_finite() && v > 0.0 {
            Ok(())
        } else {
            Err(format!("'opc.{name}' must be positive and finite"))
        }
    };
    finite_pos("l_c", config.l_c)?;
    finite_pos("l_u", config.l_u)?;
    finite_pos("move_step", config.move_step)?;
    finite_pos("pitch", config.pitch)?;
    if config.iterations == 0 {
        return Err("'opc.iterations' must be at least 1".into());
    }
    if !(config.decay_factor > 0.0 && config.decay_factor <= 1.0) {
        return Err("'opc.decay_factor' must be in (0, 1]".into());
    }
    if !config.tension.is_finite() {
        return Err("'opc.tension' must be finite".into());
    }
    if config.samples_per_segment == 0 {
        return Err("'opc.samples_per_segment' must be at least 1".into());
    }
    if !config.epe_search.is_finite() || config.epe_search <= 0.0 {
        return Err("'opc.epe_search' must be positive".into());
    }
    if config.dose_delta.is_nan() || config.dose_delta < 0.0 {
        return Err("'opc.dose_delta' must be non-negative".into());
    }
    Ok(())
}

/// Validates a `run_dir` name: a single path component of safe
/// characters, so a request can never escape the configured run root.
///
/// # Errors
///
/// A message for empty, oversized, dot-leading, or unsafe names.
pub fn sanitize_run_dir(name: &str) -> Result<String, BadRequest> {
    if name.is_empty() || name.len() > 128 {
        return Err("'run_dir' must be 1..=128 characters".into());
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    {
        return Err("'run_dir' may only contain [A-Za-z0-9._-]".into());
    }
    if name.starts_with('.') {
        return Err("'run_dir' must not start with '.'".into());
    }
    Ok(name.to_string())
}

/// Rejects object members outside `allowed` (strict wire format).
///
/// # Errors
///
/// Names the first unknown field.
pub fn reject_unknown(obj: &Json, allowed: &[&str]) -> Result<(), BadRequest> {
    if let Json::Obj(members) = obj {
        for (key, _) in members {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown field '{key}'"));
            }
        }
    }
    Ok(())
}

/// One correction job as the fleet ships it: a design recipe, the tiling,
/// and the **full** `OpcConfig`. Every worker expands this into the same
/// clip + partition, so a tile index alone is a complete work unit.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkSpec {
    /// The synthetic-design recipe.
    pub design: DesignSpec,
    /// Tile/halo extents for the partitioner.
    pub tiling: TilingConfig,
    /// The complete correction configuration.
    pub opc: OpcConfig,
}

impl WorkSpec {
    /// Expands the design recipe into the input clip.
    ///
    /// # Errors
    ///
    /// A message when a GDS source cannot be read or flattened.
    pub fn build_clip(&self) -> Result<Clip, BadRequest> {
        self.design.build_clip()
    }

    /// Serialises the spec. Deterministic (insertion-ordered objects,
    /// shortest-roundtrip floats): equal specs produce equal strings, so
    /// the serialised form doubles as a worker-side preparation cache key.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("design", self.design.to_json()),
            (
                "tiling",
                Json::obj(vec![
                    ("tile", Json::Num(self.tiling.tile_size)),
                    ("halo", Json::Num(self.tiling.halo)),
                ]),
            ),
            ("opc", opc_to_json(&self.opc)),
        ])
    }

    /// Parses a spec produced by [`WorkSpec::to_json`].
    ///
    /// # Errors
    ///
    /// A message for any missing, unknown, or ill-typed field.
    pub fn from_json(json: &Json) -> Result<WorkSpec, BadRequest> {
        let Json::Obj(_) = json else {
            return Err("work spec must be a JSON object".into());
        };
        reject_unknown(json, &["design", "tiling", "opc"])?;
        let design = parse_design(json.get("design").ok_or("missing 'design'")?)?;
        let tiling = parse_tiling(json.get("tiling").ok_or("missing 'tiling'")?)?;
        let opc = opc_from_json(json.get("opc").ok_or("missing 'opc'")?)?;
        validate(&opc)?;
        Ok(WorkSpec {
            design,
            tiling,
            opc,
        })
    }
}

/// Serialises the complete `OpcConfig`. The exhaustive destructure makes
/// a new config field a compile error here (and in [`opc_from_json`]),
/// exactly like the runtime's `hash_config`: the wire format can never
/// silently drop a knob that changes correction output.
fn opc_to_json(config: &OpcConfig) -> Json {
    let OpcConfig {
        l_c,
        l_u,
        move_step,
        iterations,
        decay_at,
        decay_factor,
        tension,
        corner_pull,
        smooth_window,
        spline_normals,
        relax_every,
        relax_strength,
        samples_per_segment,
        epe_search,
        pitch,
        dose_delta,
        sraf,
        mrc,
        convention,
        precision,
    } = config;
    let mut members = vec![
        ("l_c", Json::Num(*l_c)),
        ("l_u", Json::Num(*l_u)),
        ("move_step", Json::Num(*move_step)),
        ("iterations", Json::num_usize(*iterations)),
        ("decay_at", Json::num_usize(*decay_at)),
        ("decay_factor", Json::Num(*decay_factor)),
        ("tension", Json::Num(*tension)),
        ("corner_pull", Json::Num(*corner_pull)),
        ("smooth_window", Json::num_usize(*smooth_window)),
        ("spline_normals", Json::Bool(*spline_normals)),
        ("relax_every", Json::num_usize(*relax_every)),
        ("relax_strength", Json::Num(*relax_strength)),
        ("samples_per_segment", Json::num_usize(*samples_per_segment)),
        ("epe_search", Json::Num(*epe_search)),
        ("pitch", Json::Num(*pitch)),
        ("dose_delta", Json::Num(*dose_delta)),
    ];
    match sraf {
        None => members.push(("sraf", Json::Null)),
        Some(SrafConfig {
            length_ratio,
            width,
            distance,
            min_edge,
        }) => members.push((
            "sraf",
            Json::obj(vec![
                ("length_ratio", Json::Num(*length_ratio)),
                ("width", Json::Num(*width)),
                ("distance", Json::Num(*distance)),
                ("min_edge", Json::Num(*min_edge)),
            ]),
        )),
    }
    match mrc {
        None => members.push(("mrc", Json::Null)),
        Some(MrcRules {
            min_space,
            min_width,
            min_area,
            max_curvature,
        }) => members.push((
            "mrc",
            Json::obj(vec![
                ("min_space", Json::Num(*min_space)),
                ("min_width", Json::Num(*min_width)),
                ("min_area", Json::Num(*min_area)),
                ("max_curvature", Json::Num(*max_curvature)),
            ]),
        )),
    }
    members.push((
        "convention",
        match convention {
            MeasureConvention::ViaEdgeCenters => Json::Str("via_edge_centers".into()),
            MeasureConvention::MetalSpacing(nm) => {
                Json::obj(vec![("metal_spacing", Json::Num(*nm))])
            }
        },
    ));
    members.push(("precision", Json::Str(precision.name().into())));
    Json::obj(members)
}

/// Parses a config produced by [`opc_to_json`]. Every field is required —
/// the full-config wire format has no defaults to hide behind.
fn opc_from_json(json: &Json) -> Result<OpcConfig, BadRequest> {
    let Json::Obj(_) = json else {
        return Err("'opc' must be an object".into());
    };
    reject_unknown(
        json,
        &[
            "l_c",
            "l_u",
            "move_step",
            "iterations",
            "decay_at",
            "decay_factor",
            "tension",
            "corner_pull",
            "smooth_window",
            "spline_normals",
            "relax_every",
            "relax_strength",
            "samples_per_segment",
            "epe_search",
            "pitch",
            "dose_delta",
            "sraf",
            "mrc",
            "convention",
            "precision",
        ],
    )?;
    let num = |key: &str| -> Result<f64, BadRequest> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("'opc.{key}' must be a number"))
    };
    let int = |key: &str| -> Result<usize, BadRequest> {
        json.get(key)
            .and_then(Json::as_usize)
            .ok_or(format!("'opc.{key}' must be an integer"))
    };
    let sraf = match json.get("sraf") {
        None => return Err("missing 'opc.sraf' (use null to disable)".into()),
        Some(Json::Null) => None,
        Some(s) => {
            reject_unknown(s, &["length_ratio", "width", "distance", "min_edge"])?;
            let field = |key: &str| -> Result<f64, BadRequest> {
                s.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("'opc.sraf.{key}' must be a number"))
            };
            Some(SrafConfig {
                length_ratio: field("length_ratio")?,
                width: field("width")?,
                distance: field("distance")?,
                min_edge: field("min_edge")?,
            })
        }
    };
    let mrc = match json.get("mrc") {
        None => return Err("missing 'opc.mrc' (use null to disable)".into()),
        Some(Json::Null) => None,
        Some(m) => {
            reject_unknown(m, &["min_space", "min_width", "min_area", "max_curvature"])?;
            let field = |key: &str| -> Result<f64, BadRequest> {
                m.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("'opc.mrc.{key}' must be a number"))
            };
            Some(MrcRules {
                min_space: field("min_space")?,
                min_width: field("min_width")?,
                min_area: field("min_area")?,
                max_curvature: field("max_curvature")?,
            })
        }
    };
    let convention = match json.get("convention") {
        Some(Json::Str(s)) if s == "via_edge_centers" => MeasureConvention::ViaEdgeCenters,
        Some(obj @ Json::Obj(_)) => {
            reject_unknown(obj, &["metal_spacing"])?;
            let nm = obj
                .get("metal_spacing")
                .and_then(Json::as_f64)
                .ok_or("'opc.convention.metal_spacing' must be a number")?;
            MeasureConvention::MetalSpacing(nm)
        }
        _ => {
            return Err(
                "'opc.convention' must be \"via_edge_centers\" or {\"metal_spacing\": nm}".into(),
            )
        }
    };
    // REQUIRED, like every other field of the full-config format: a worker
    // must never fall back to a default precision and silently produce
    // results the coordinator would reject by hash.
    let precision = match json.get("precision") {
        None => return Err("missing 'opc.precision' (\"f64\" or \"f32\")".into()),
        Some(v) => parse_precision(v)?,
    };
    Ok(OpcConfig {
        l_c: num("l_c")?,
        l_u: num("l_u")?,
        move_step: num("move_step")?,
        iterations: int("iterations")?,
        decay_at: int("decay_at")?,
        decay_factor: num("decay_factor")?,
        tension: num("tension")?,
        corner_pull: num("corner_pull")?,
        smooth_window: int("smooth_window")?,
        spline_normals: json
            .get("spline_normals")
            .and_then(Json::as_bool)
            .ok_or("'opc.spline_normals' must be a boolean")?,
        relax_every: int("relax_every")?,
        relax_strength: num("relax_strength")?,
        samples_per_segment: int("samples_per_segment")?,
        epe_search: num("epe_search")?,
        pitch: num("pitch")?,
        dose_delta: num("dose_delta")?,
        sraf,
        mrc,
        convention,
        precision,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn design_parses_and_builds() {
        let spec = parse_design(&parse(r#"{"kind": "gcd", "tiles": 2, "crop": 2048.0}"#)).unwrap();
        assert_eq!(
            spec,
            DesignSpec::generated(DesignKind::Gcd, 2, Some(2048.0))
        );
        assert!(!spec.build_clip().unwrap().targets().is_empty());
    }

    #[test]
    fn gds_design_parses_and_roundtrips() {
        let spec = parse_design(&parse(r#"{"gds": "/tmp/chip.gds", "layer": "5:1"}"#)).unwrap();
        assert_eq!(
            spec,
            DesignSpec::gds(
                PathBuf::from("/tmp/chip.gds"),
                LayerFilter::LayerDatatype(5, 1),
                None
            )
        );
        // Layer defaults to the export convention's target layer.
        let spec = parse_design(&parse(r#"{"gds": "a.gds", "crop": 512.0}"#)).unwrap();
        assert_eq!(
            spec,
            DesignSpec::gds(
                PathBuf::from("a.gds"),
                LayerFilter::Layer(TARGET_LAYER),
                Some(512.0)
            )
        );
        // Wire round trip preserves the source exactly.
        let back = parse_design(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn gds_paths_are_root_confined_for_untrusted_callers() {
        let root = Path::new("/srv/runs");
        let spec = parse_design_with_root(&parse(r#"{"gds": "chip.gds"}"#), Some(root)).unwrap();
        assert_eq!(
            spec,
            DesignSpec::gds(
                PathBuf::from("/srv/runs/chip.gds"),
                LayerFilter::Layer(TARGET_LAYER),
                None
            )
        );
        for bad in [
            r#"{"gds": "../evil.gds"}"#,
            r#"{"gds": "a/b.gds"}"#,
            r#"{"gds": ".hidden"}"#,
            r#"{"gds": ""}"#,
        ] {
            let err = parse_design_with_root(&parse(bad), Some(root)).unwrap_err();
            assert!(err.contains("'design.gds'"), "{bad}: {err}");
        }
    }

    #[test]
    fn gds_design_rejections() {
        for bad in [
            r#"{"gds": 7}"#,
            r#"{"gds": "a.gds", "layer": "nope"}"#,
            r#"{"gds": "a.gds", "layer": 5}"#,
            r#"{"gds": "a.gds", "kind": "gcd"}"#,
            r#"{"gds": "a.gds", "tiles": 2}"#,
            r#"{"gds": "a.gds", "crop": -5}"#,
        ] {
            assert!(parse_design(&parse(bad)).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn design_rejections() {
        for bad in [
            r#"{"kind": "warp-core"}"#,
            r#"{"kind": "gcd", "tiles": 0}"#,
            r#"{"kind": "gcd", "tiles": 1000}"#,
            r#"{"kind": "gcd", "crop": -5}"#,
            r#"{"kind": "gcd", "surprise": 1}"#,
            r#"{}"#,
            r#"[1]"#,
        ] {
            assert!(parse_design(&parse(bad)).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn tiling_defaults_and_rejections() {
        let t = parse_tiling(&parse("{}")).unwrap();
        assert_eq!(t.tile_size, 4096.0);
        assert_eq!(t.halo, 1024.0);
        for bad in [
            r#"{"tile": 0}"#,
            r#"{"halo": -1}"#,
            r#"{"tile": "big"}"#,
            r#"{"mystery": 1}"#,
        ] {
            assert!(parse_tiling(&parse(bad)).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn opc_presets_and_overrides() {
        let c = parse_opc(&parse(
            r#"{"preset": "via", "pitch": 16.0, "iterations": 3}"#,
        ))
        .unwrap();
        assert_eq!(c.pitch, 16.0);
        assert_eq!(c.iterations, 3);
        for bad in [r#"{"preset": "nope"}"#, r#"{"mystery": 1}"#] {
            assert!(parse_opc(&parse(bad)).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn opc_precision_is_strict() {
        use cardopc_litho::Precision;
        // Absent: the job format defaults to the preset's f64.
        assert_eq!(parse_opc(&parse("{}")).unwrap().precision, Precision::F64);
        let c = parse_opc(&parse(r#"{"precision": "f32"}"#)).unwrap();
        assert_eq!(c.precision, Precision::F32);
        let c = parse_opc(&parse(r#"{"precision": "f64"}"#)).unwrap();
        assert_eq!(c.precision, Precision::F64);
        // Anything else names the field in the rejection.
        for bad in [
            r#"{"precision": "f16"}"#,
            r#"{"precision": "F32"}"#,
            r#"{"precision": "double"}"#,
            r#"{"precision": 32}"#,
            r#"{"precision": null}"#,
        ] {
            let err = parse_opc(&parse(bad)).unwrap_err();
            assert!(
                err.contains("'opc.precision'"),
                "message must name the field: {err}"
            );
        }
    }

    #[test]
    fn work_spec_requires_precision_and_roundtrips_f32() {
        let mut opc = OpcConfig::large_scale();
        opc.precision = cardopc_litho::Precision::F32;
        let spec = WorkSpec {
            design: DesignSpec::generated(DesignKind::Gcd, 1, None),
            tiling: TilingConfig {
                tile_size: 1024.0,
                halo: 256.0,
            },
            opc,
        };
        let text = spec.to_json().to_string_compact();
        assert!(text.contains(r#""precision":"f32""#), "wire form: {text}");
        let back = WorkSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        // A spec with the field stripped must be rejected, not defaulted.
        let stripped = text.replace(r#","precision":"f32""#, "");
        let err = WorkSpec::from_json(&Json::parse(&stripped).unwrap()).unwrap_err();
        assert!(
            err.contains("missing 'opc.precision'"),
            "message was: {err}"
        );
    }

    #[test]
    fn validate_mirrors_assert_valid() {
        validate(&OpcConfig::via()).unwrap();
        validate(&OpcConfig::metal()).unwrap();
        validate(&OpcConfig::large_scale()).unwrap();
        let mut c = OpcConfig::via();
        c.move_step = 0.0;
        assert!(validate(&c).is_err());
        c = OpcConfig::via();
        c.pitch = f64::NAN;
        assert!(validate(&c).is_err());
    }

    #[test]
    fn run_dir_sanitizer() {
        assert_eq!(sanitize_run_dir("job_7.retry-2").unwrap(), "job_7.retry-2");
        for bad in ["", ".hidden", "a/b", "../up", &"x".repeat(129)] {
            assert!(sanitize_run_dir(bad).is_err(), "accepted: {bad}");
        }
    }

    /// Every field — including both `Option`s populated, a non-default
    /// convention, and awkward floats — must survive the wire round trip
    /// bit-exactly. `OpcConfig` derives `PartialEq`, so one comparison
    /// covers the lot.
    #[test]
    fn work_spec_roundtrips_every_field() {
        let mut opc = OpcConfig::metal();
        opc.l_c = 0.1 + 0.2;
        opc.l_u = 1.0 / 3.0;
        opc.move_step = 0.875;
        opc.iterations = 7;
        opc.decay_at = 5;
        opc.decay_factor = 0.75;
        opc.tension = 0.3;
        opc.corner_pull = 1.25;
        opc.smooth_window = 3;
        opc.spline_normals = !opc.spline_normals;
        opc.relax_every = 2;
        opc.relax_strength = 0.125;
        opc.samples_per_segment = 9;
        opc.epe_search = 33.5;
        opc.pitch = 12.0;
        opc.dose_delta = 0.02;
        opc.sraf = Some(SrafConfig {
            length_ratio: 0.55,
            width: 21.0,
            distance: 63.0,
            min_edge: 97.0,
        });
        opc.mrc = Some(MrcRules {
            min_space: 24.0,
            min_width: 20.0,
            min_area: 400.0,
            max_curvature: 0.05,
        });
        opc.convention = MeasureConvention::MetalSpacing(60.0);
        let spec = WorkSpec {
            design: DesignSpec::generated(DesignKind::Aes, 3, Some(1536.0)),
            tiling: TilingConfig {
                tile_size: 1024.0,
                halo: 256.0,
            },
            opc,
        };
        let text = spec.to_json().to_string_compact();
        let back = WorkSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        // And the None/ViaEdgeCenters arm of each branch.
        let mut bare = OpcConfig::via();
        bare.sraf = None;
        bare.mrc = None;
        bare.convention = MeasureConvention::ViaEdgeCenters;
        let spec2 = WorkSpec {
            design: DesignSpec::generated(DesignKind::Gcd, 1, None),
            tiling: spec.tiling,
            opc: bare,
        };
        let text2 = spec2.to_json().to_string_compact();
        let back2 = WorkSpec::from_json(&Json::parse(&text2).unwrap()).unwrap();
        assert_eq!(back2, spec2);
        // Determinism: equal specs serialise to equal strings.
        assert_eq!(spec2.to_json().to_string_compact(), text2);
    }

    #[test]
    fn work_spec_rejects_unknown_and_missing_fields() {
        let spec = WorkSpec {
            design: DesignSpec::generated(DesignKind::Gcd, 1, None),
            tiling: TilingConfig {
                tile_size: 1024.0,
                halo: 256.0,
            },
            opc: OpcConfig::large_scale(),
        };
        let good = spec.to_json().to_string_compact();
        assert!(WorkSpec::from_json(&Json::parse(&good).unwrap()).is_ok());
        // Dropping any opc field must fail: the full-config format has no
        // defaults.
        let Json::Obj(mut members) = spec.to_json() else {
            unreachable!()
        };
        let Json::Obj(opc_members) = members.remove(2).1 else {
            unreachable!()
        };
        for drop in 0..opc_members.len() {
            let mut trimmed = opc_members.clone();
            let (name, _) = trimmed.remove(drop);
            let mutated = Json::Obj(vec![
                ("design".into(), spec.design.to_json()),
                (
                    "tiling".into(),
                    Json::obj(vec![
                        ("tile", Json::Num(1024.0)),
                        ("halo", Json::Num(256.0)),
                    ]),
                ),
                ("opc".into(), Json::Obj(trimmed)),
            ]);
            assert!(
                WorkSpec::from_json(&mutated).is_err(),
                "parsed without '{name}'"
            );
        }
        for bad in [r#"{"design": {"kind": "gcd"}}"#, r#"{"extra": 1}"#, "[]"] {
            assert!(WorkSpec::from_json(&Json::parse(bad).unwrap()).is_err());
        }
    }
}
