//! The fleet worker: a stateless-by-design tile-correction process.
//!
//! A worker holds no job state a coordinator depends on for progress —
//! every `POST /v1/tiles` request is self-contained (full [`WorkSpec`] +
//! tile index), so any worker can serve any tile of any job at any time.
//! What a worker *does* keep is pure gain:
//!
//! - a **prepared-state cache** keyed by the spec's canonical JSON: the
//!   expanded clip + partition + flow are built once per distinct spec
//!   and shared across requests;
//! - a shared [`EngineCache`] so concurrent dispatch lanes reuse litho
//!   engines across tiles and specs;
//! - an optional in-memory tile cache (repeated patterns replay);
//! - a **checkpoint map** keyed by tile input hash, optionally persisted
//!   to a `RunDir`. A re-dispatched, duplicate-dispatched (work-steal),
//!   or post-restart tile whose hash is already known is answered from
//!   the checkpoint without recomputation — this is what makes the
//!   coordinator's aggressive re-dispatch and crash recovery cheap, and
//!   `GET /v1/records` is how a restarted coordinator harvests it.
//!
//! Determinism: the correction path is `cardopc_runtime`'s own
//! `correct_single_tile`, so a record produced here is byte-identical
//! (timing aside) to the single-process scheduler's for the same tile.

use crate::http::{self, ReadOutcome, Request, Response};
use crate::proto;
use cardopc_opc::CardOpc;
use cardopc_runtime::{
    correct_single_tile, partition_clip, tile_input_hash, CacheConfig, EngineCache, Partition,
    RunControl, RunDir, TileCache, TileRecord,
};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Engine-cache stripes: dispatch lanes are spread round-robin across
/// these to keep lock contention off the per-tile hot path.
const ENGINE_SLOTS: usize = 4;

/// Maximum concurrently served connections; beyond this the worker sheds
/// load with a 503 instead of spawning unboundedly.
const MAX_CONNECTIONS: usize = 64;

/// Worker configuration.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Checkpoint directory: finished tiles are appended here and loaded
    /// back on start, so a restarted worker answers its old tiles from
    /// disk. `None` keeps checkpoints in memory only.
    pub run_dir: Option<PathBuf>,
    /// Whether to keep an in-memory content-addressed tile cache
    /// (repeated patterns replay instead of re-correcting).
    pub cache: bool,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            addr: "127.0.0.1:0".to_string(),
            run_dir: None,
            cache: true,
        }
    }
}

/// Clip + partition + flow expanded from one spec, built once and shared.
struct Prepared {
    partition: Partition,
    flow: CardOpc,
}

struct WorkerState {
    local_addr: SocketAddr,
    /// Finished tiles keyed by tile input hash (multi-spec by nature:
    /// different specs produce different hashes).
    records: Mutex<HashMap<u64, TileRecord>>,
    /// Append handle into `run_dir`'s checkpoint file, when persistent.
    sink: Option<Mutex<std::fs::File>>,
    /// Held for its PID lock; also the source of loaded checkpoints.
    _run_dir: Option<RunDir>,
    prepared: Mutex<HashMap<String, Arc<Prepared>>>,
    engines: EngineCache,
    cache: Option<TileCache>,
    lane_counter: AtomicUsize,
    tiles_done: AtomicUsize,
    active_connections: AtomicUsize,
    stopping: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// A running fleet worker.
pub struct WorkerServer {
    local_addr: SocketAddr,
    state: Arc<WorkerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Binds, loads any persisted checkpoints, and starts serving.
    ///
    /// # Errors
    ///
    /// Bind/listen failures, an unopenable run directory (including one
    /// locked by another live worker), or an unreadable checkpoint file.
    pub fn start(config: WorkerConfig) -> io::Result<WorkerServer> {
        let run_dir = match &config.run_dir {
            Some(path) => Some(RunDir::open(path).map_err(|e| io::Error::other(e.to_string()))?),
            None => None,
        };
        let mut records = HashMap::new();
        if let Some(dir) = &run_dir {
            for (_, record) in dir
                .load_records()
                .map_err(|e| io::Error::other(e.to_string()))?
            {
                records.insert(record.input_hash, record);
            }
        }
        let sink = match &run_dir {
            Some(dir) => Some(Mutex::new(
                dir.append_handle()
                    .map_err(|e| io::Error::other(e.to_string()))?,
            )),
            None => None,
        };
        let cache = if config.cache {
            let cache_config = CacheConfig {
                dir: None,
                ..CacheConfig::default()
            };
            Some(TileCache::open(&cache_config).map_err(|e| io::Error::other(e.to_string()))?)
        } else {
            None
        };

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(WorkerState {
            local_addr,
            records: Mutex::new(records),
            sink,
            _run_dir: run_dir,
            prepared: Mutex::new(HashMap::new()),
            engines: EngineCache::new(ENGINE_SLOTS),
            cache,
            lane_counter: AtomicUsize::new(0),
            tiles_done: AtomicUsize::new(0),
            active_connections: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let accept_thread = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("cardopc-worker-accept".to_string())
                .spawn(move || accept_loop(listener, &state))?
        };

        Ok(WorkerServer {
            local_addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until `POST /admin/shutdown` arrives (the worker-process
    /// main thread's parking spot).
    pub fn wait_shutdown(&self) {
        let mut requested = self
            .state
            .shutdown_requested
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*requested {
            requested = self
                .state
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting and joins the accept thread. Called by `Drop`;
    /// explicit calls are idempotent.
    pub fn shutdown(&mut self) {
        self.state.stopping.store(true, Ordering::Release);
        let mut requested = self
            .state
            .shutdown_requested
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *requested = true;
        drop(requested);
        self.state.shutdown_cv.notify_all();
        // Unblock the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: &Arc<WorkerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.stopping.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        if state.stopping.load(Ordering::Acquire) {
            return;
        }
        let state = Arc::clone(state);
        let _ = std::thread::Builder::new()
            .name("cardopc-worker-conn".to_string())
            .spawn(move || handle_connection(stream, &state));
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<WorkerState>) {
    // Keep-alive lanes exchange small messages back to back; Nagle would
    // add delayed-ACK stalls between them.
    let _ = stream.set_nodelay(true);
    // Shed load instead of spawning handler work unboundedly; correction
    // requests can hold a thread for seconds. Keep-alive lanes hold their
    // connection for a whole run, but there are only workers × window of
    // them — far under the cap.
    if state.active_connections.fetch_add(1, Ordering::AcqRel) >= MAX_CONNECTIONS {
        Response::error(503, "worker is saturated").write(&mut stream);
        state.active_connections.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    // Serve requests until the peer closes, stops asking for keep-alive,
    // sends garbage, or the worker is shutting down. Coordinator dispatch
    // lanes ride one connection across every tile they dispatch; plain
    // `Connection: close` clients get the old one-request behaviour.
    loop {
        let request = match http::read_request(&mut stream) {
            ReadOutcome::Disconnected => break,
            ReadOutcome::Malformed(e) => {
                // Framing is unrecoverable after a malformed request;
                // answer and close.
                Response::error(e.status, &e.message).write(&mut stream);
                break;
            }
            ReadOutcome::Request(request) => request,
        };
        let keep_alive = request.wants_keep_alive() && !state.stopping.load(Ordering::Acquire);
        let response = route(&request, state);
        response.write_framed(&mut stream, keep_alive);
        if !keep_alive {
            break;
        }
    }
    state.active_connections.fetch_sub(1, Ordering::AcqRel);
}

fn route(request: &Request, state: &Arc<WorkerState>) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            cardopc_json::Json::obj(vec![
                ("ok", cardopc_json::Json::Bool(true)),
                (
                    "tiles_done",
                    cardopc_json::Json::num_usize(state.tiles_done.load(Ordering::Acquire)),
                ),
            ])
            .to_string_compact(),
        ),
        ("POST", "/v1/tiles") => dispatch(request, state),
        ("GET", "/v1/records") => records_jsonl(state),
        ("POST", "/admin/shutdown") => {
            state.stopping.store(true, Ordering::Release);
            let mut requested = state
                .shutdown_requested
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *requested = true;
            drop(requested);
            state.shutdown_cv.notify_all();
            // Unblock the accept loop so it observes the stop flag.
            let _ = TcpStream::connect(state.local_addr);
            Response::json(202, r#"{"stopping":true}"#)
        }
        (_, "/healthz" | "/v1/tiles" | "/v1/records" | "/admin/shutdown") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such route"),
    }
}

/// `POST /v1/tiles`: correct (or answer from checkpoint) one tile.
fn dispatch(request: &Request, state: &Arc<WorkerState>) -> Response {
    let Some(body) = request.body_str() else {
        return Response::error(400, "request body must be UTF-8 JSON");
    };
    let (spec, tile_index) = match proto::parse_dispatch(body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::error(400, &msg),
    };

    // Expand the spec (once per distinct spec; canonical JSON is the key).
    let spec_key = spec.to_json().to_string_compact();
    let prepared = {
        let guard = state
            .prepared
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard.get(&spec_key).cloned()
    };
    let prepared = match prepared {
        Some(p) => p,
        None => {
            // Built outside the lock: preparation rasterises nothing but
            // partitioning a big clip is not free, and a concurrent
            // duplicate build is harmless (both produce identical state).
            let clip = match spec.build_clip() {
                Ok(c) => c,
                Err(e) => return Response::error(400, &format!("unusable spec: {e}")),
            };
            let partition = match partition_clip(&clip, &spec.tiling) {
                Ok(p) => p,
                Err(e) => return Response::error(400, &format!("unusable spec: {e}")),
            };
            let flow = CardOpc::new(spec.opc.clone());
            let built = Arc::new(Prepared { partition, flow });
            let mut guard = state
                .prepared
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            guard.entry(spec_key).or_insert_with(|| Arc::clone(&built));
            built
        }
    };

    let Some(tile) = prepared.partition.tiles.get(tile_index) else {
        return Response::error(
            400,
            &format!(
                "tile {tile_index} outside the partition ({} tiles)",
                prepared.partition.tiles.len()
            ),
        );
    };
    let hash = tile_input_hash(tile, prepared.flow.config());

    // Checkpoint hit: a re-dispatch, steal duplicate, or post-restart
    // replay is answered without recomputation.
    {
        let records = state.records.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(record) = records.get(&hash) {
            return Response::json(200, record.to_json_line());
        }
    }

    let lane = state.lane_counter.fetch_add(1, Ordering::Relaxed);
    let control = RunControl {
        engines: Some(&state.engines),
        cache: state.cache.as_ref(),
        ..RunControl::default()
    };
    let record = match correct_single_tile(
        &prepared.partition,
        tile_index,
        &prepared.flow,
        &control,
        lane,
    ) {
        Ok(Some(record)) => record,
        // No cancellation handle is attached, so `None` cannot happen;
        // answer defensively rather than panicking the handler.
        Ok(None) => return Response::error(500, "correction cancelled"),
        Err(e) => return Response::error(500, &format!("tile {tile_index} failed: {e}")),
    };

    let mut records = state.records.lock().unwrap_or_else(PoisonError::into_inner);
    let line = match records.entry(record.input_hash) {
        std::collections::hash_map::Entry::Occupied(existing) => {
            // A concurrent duplicate finished first; serve its record so
            // the checkpoint file and the response agree.
            existing.get().to_json_line()
        }
        std::collections::hash_map::Entry::Vacant(slot) => {
            let line = record.to_json_line();
            if let Some(sink) = &state.sink {
                let mut file = sink.lock().unwrap_or_else(PoisonError::into_inner);
                if let Err(e) = RunDir::append_record(&mut file, &record) {
                    return Response::error(500, &format!("checkpoint append failed: {e}"));
                }
            }
            slot.insert(record);
            state.tiles_done.fetch_add(1, Ordering::AcqRel);
            line
        }
    };
    Response::json(200, line)
}

/// `GET /v1/records`: every checkpointed record as JSONL, sorted by tile
/// index then hash (deterministic output for tests and debugging).
fn records_jsonl(state: &Arc<WorkerState>) -> Response {
    let records = state.records.lock().unwrap_or_else(PoisonError::into_inner);
    let mut entries: Vec<(usize, u64, String)> = records
        .values()
        .map(|r| (r.index, r.input_hash, r.to_json_line()))
        .collect();
    drop(records);
    entries.sort_unstable_by_key(|&(index, hash, _)| (index, hash));
    let mut body = String::new();
    for (_, _, line) in entries {
        body.push_str(&line);
        body.push('\n');
    }
    Response::text(200, body)
}
