//! End-to-end fleet tests over real TCP sockets: byte-identity of the
//! distributed manifest against the single-process runtime, and the
//! failure modes that justify the fleet's existence — hung workers
//! (lease expiry → re-dispatch), crashed workers (heartbeat retirement),
//! work-steal duplicate races (first result wins), and coordinator
//! restarts recovering finished tiles from workers' checkpoints.

use cardopc_fleet::http::{self, ReadOutcome, Response};
use cardopc_fleet::spec::DesignSpec;
use cardopc_fleet::worker::{WorkerConfig, WorkerServer};
use cardopc_fleet::{client, run_fleet, FleetConfig, FleetError, WorkSpec};
use cardopc_layout::DesignKind;
use cardopc_litho::WorkerPool;
use cardopc_opc::OpcConfig;
use cardopc_runtime::{run_clip, RunConfig, RunControl, TilingConfig};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// The serve smoke spec: 1024 nm gcd crop, 512 nm tiles + 256 nm halo →
/// 2×2 tiles of 1024 nm windows on 64² grids at pitch 16.
fn spec() -> WorkSpec {
    let mut opc = OpcConfig::large_scale();
    opc.pitch = 16.0;
    opc.iterations = 3;
    WorkSpec {
        design: DesignSpec::generated(DesignKind::Gcd, 1, Some(1024.0)),
        tiling: TilingConfig {
            tile_size: 512.0,
            halo: 256.0,
        },
        opc,
    }
}

/// The same spec corrected by the single-process runtime — the
/// byte-identity baseline every fleet manifest is compared against.
fn direct_manifest(spec: &WorkSpec) -> String {
    let clip = spec.build_clip().unwrap();
    let pool = WorkerPool::new(2);
    let outcome = run_clip(&clip, &RunConfig::new(spec.opc.clone(), spec.tiling), &pool).unwrap();
    assert!(outcome.complete);
    outcome.manifest.to_json(false)
}

fn worker() -> WorkerServer {
    WorkerServer::start(WorkerConfig::default()).unwrap()
}

/// A fleet config tuned for tests: short lease/steal/heartbeat so
/// failure handling happens in test time, not production time.
fn fast_config(workers: Vec<SocketAddr>) -> FleetConfig {
    FleetConfig {
        workers,
        lease: Duration::from_secs(30),
        steal_after: Duration::from_millis(200),
        heartbeat: Duration::from_millis(100),
        heartbeat_timeout: Duration::from_millis(300),
        max_failures: 2,
        ..FleetConfig::default()
    }
}

/// An address that accepts connections and never answers — a hung
/// worker. Held streams keep the peer blocked until its IO timeout.
fn hung_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for stream in listener.incoming() {
            match stream {
                Ok(s) => held.push(s),
                Err(_) => break,
            }
        }
    });
    addr
}

/// An address that refuses connections — a crashed worker.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap()
    // Listener dropped: the port now refuses connections.
}

/// A proxy in front of `backend` that delays every `POST /v1/tiles`
/// response by `delay` (health probes pass straight through) — a slow
/// worker whose leases age enough to get stolen from.
fn slow_proxy(backend: SocketAddr, delay: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            std::thread::spawn(move || {
                let ReadOutcome::Request(request) = http::read_request(&mut stream) else {
                    return;
                };
                let body = request.body_str().map(str::to_string);
                let Ok(upstream) = client::request_with_timeout(
                    backend,
                    &request.method,
                    &request.path,
                    body.as_deref(),
                    Duration::from_secs(120),
                ) else {
                    return;
                };
                if request.path == "/v1/tiles" {
                    std::thread::sleep(delay);
                }
                Response::text(upstream.status, upstream.body_str()).write(&mut stream);
            });
        }
    });
    addr
}

#[test]
fn two_workers_match_single_process_byte_for_byte() {
    let spec = spec();
    let (w1, w2) = (worker(), worker());
    let config = FleetConfig {
        workers: vec![w1.local_addr(), w2.local_addr()],
        ..FleetConfig::default()
    };

    // Progress events must be monotonic and reach the partition size.
    let completed = std::sync::atomic::AtomicUsize::new(0);
    let progress = |event: &cardopc_runtime::TileEvent| {
        let prev = completed.swap(event.completed, std::sync::atomic::Ordering::SeqCst);
        assert!(event.completed > prev, "non-monotonic progress");
        assert_eq!(event.total, 4);
    };
    let control = RunControl {
        progress: Some(&progress),
        ..RunControl::default()
    };

    let outcome = run_fleet(&spec, &config, &control).unwrap();
    assert!(outcome.complete);
    assert_eq!(outcome.outcome.executed, 4);
    assert_eq!(outcome.outcome.resumed, 0);
    assert_eq!(completed.load(std::sync::atomic::Ordering::SeqCst), 4);
    assert!(outcome.stats.dispatched >= 4);
    assert!(outcome.stitched.is_some());
    assert_eq!(outcome.manifest.to_json(false), direct_manifest(&spec));
}

#[test]
fn hung_worker_loses_its_leases_and_the_fleet_still_finishes() {
    let spec = spec();
    let good = worker();
    // Short lease: dispatches to the hung worker time out quickly.
    let mut config = fast_config(vec![hung_addr(), good.local_addr()]);
    config.lease = Duration::from_millis(600);

    let outcome = run_fleet(&spec, &config, &RunControl::default()).unwrap();
    assert!(outcome.complete);
    assert_eq!(outcome.stats.retired_workers, 1, "{:?}", outcome.stats);
    assert!(
        outcome.stats.redispatched + outcome.stats.stolen >= 1,
        "hung worker's tiles must be re-dispatched or stolen: {:?}",
        outcome.stats
    );
    assert_eq!(outcome.manifest.to_json(false), direct_manifest(&spec));
}

#[test]
fn crashed_worker_is_retired_by_connection_failures() {
    let spec = spec();
    let good = worker();
    let config = fast_config(vec![dead_addr(), good.local_addr()]);

    let outcome = run_fleet(&spec, &config, &RunControl::default()).unwrap();
    assert!(outcome.complete);
    assert_eq!(outcome.stats.retired_workers, 1, "{:?}", outcome.stats);
    assert_eq!(outcome.manifest.to_json(false), direct_manifest(&spec));
}

#[test]
fn steal_duplicate_race_first_result_wins_byte_identically() {
    let spec = spec();
    let slow_backend = worker();
    let fast = worker();
    // The slow worker's first lease ages 8 s; the fast worker finishes
    // the other three tiles and steals it long before that.
    let mut config = fast_config(vec![
        slow_proxy(slow_backend.local_addr(), Duration::from_secs(8)),
        fast.local_addr(),
    ]);
    config.window = 1;

    let outcome = run_fleet(&spec, &config, &RunControl::default()).unwrap();
    assert!(outcome.complete);
    assert!(outcome.stats.stolen >= 1, "{:?}", outcome.stats);
    assert!(
        outcome.stats.duplicates >= 1,
        "the losing copy must arrive and be discarded: {:?}",
        outcome.stats
    );
    assert_eq!(outcome.manifest.to_json(false), direct_manifest(&spec));
}

#[test]
fn coordinator_restart_recovers_finished_tiles_from_workers() {
    let spec = spec();
    let (w1, w2) = (worker(), worker());
    let workers = vec![w1.local_addr(), w2.local_addr()];

    // First coordinator: budget of 2 tiles, then it "crashes" (returns).
    // No coordinator-side run_dir — the workers' checkpoints are the only
    // surviving state.
    let mut first_config = FleetConfig {
        workers: workers.clone(),
        ..FleetConfig::default()
    };
    first_config.max_tiles = Some(2);
    let first = run_fleet(&spec, &first_config, &RunControl::default()).unwrap();
    assert!(!first.complete);
    assert_eq!(first.outcome.executed, 2);
    assert_eq!(first.outcome.remaining, 2);

    // Second coordinator, fresh state: recovery harvests the 2 finished
    // tiles from the workers and only corrects the other 2.
    let second_config = FleetConfig {
        workers,
        ..FleetConfig::default()
    };
    let second = run_fleet(&spec, &second_config, &RunControl::default()).unwrap();
    assert!(second.complete);
    assert_eq!(second.stats.recovered, 2, "{:?}", second.stats);
    assert_eq!(second.outcome.resumed, 2);
    assert_eq!(second.outcome.executed, 2);
    assert_eq!(second.manifest.to_json(false), direct_manifest(&spec));
}

#[test]
fn coordinator_run_dir_resumes_without_asking_workers() {
    let spec = spec();
    let run_dir = std::env::temp_dir().join(format!("cardopc-fleet-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&run_dir);

    // Partial run against one set of workers, checkpointing locally.
    let (w1, w2) = (worker(), worker());
    let mut config = FleetConfig {
        workers: vec![w1.local_addr(), w2.local_addr()],
        run_dir: Some(run_dir.clone()),
        ..FleetConfig::default()
    };
    config.max_tiles = Some(2);
    let first = run_fleet(&spec, &config, &RunControl::default()).unwrap();
    assert!(!first.complete);
    drop((w1, w2));

    // Finish against a brand-new worker that has never seen the job: the
    // resumed tiles come from the coordinator's own checkpoints.
    let fresh = worker();
    let config = FleetConfig {
        workers: vec![fresh.local_addr()],
        run_dir: Some(run_dir.clone()),
        ..FleetConfig::default()
    };
    let second = run_fleet(&spec, &config, &RunControl::default()).unwrap();
    assert!(second.complete);
    assert_eq!(second.stats.recovered, 0, "{:?}", second.stats);
    assert_eq!(second.outcome.resumed, 2);
    assert_eq!(second.outcome.executed, 2);
    assert_eq!(second.manifest.to_json(false), direct_manifest(&spec));

    // The completed distributed run wrote the same stable manifest a
    // single-process run would have.
    let stable = std::fs::read_to_string(run_dir.join("manifest.stable.json")).unwrap();
    assert_eq!(stable, direct_manifest(&spec));
    let _ = std::fs::remove_dir_all(&run_dir);
}

#[test]
fn keep_alive_connection_reuses_one_stream_across_requests() {
    let w = worker();
    let mut conn = client::Connection::new(w.local_addr());
    for _ in 0..3 {
        let r = conn
            .request_with_timeout("GET", "/healthz", None, Duration::from_secs(5))
            .unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("connection"), Some("keep-alive"));
    }
    assert_eq!(conn.reused(), 2, "requests 2 and 3 must reuse the stream");
}

#[test]
fn stale_keep_alive_stream_is_retried_on_a_fresh_connection() {
    // A server that grants keep-alive but drops the stream after every
    // response — the idle-timeout race a lane can hit between tiles.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            if let ReadOutcome::Request(_) = http::read_request(&mut stream) {
                Response::text(200, "ok").write_framed(&mut stream, true);
            }
        }
    });
    let mut conn = client::Connection::new(addr);
    for _ in 0..3 {
        let r = conn
            .request_with_timeout("GET", "/x", None, Duration::from_secs(5))
            .unwrap();
        assert_eq!(
            r.status, 200,
            "stale reuse must retry, not surface an error"
        );
    }
}

#[test]
fn unusable_fleets_error_instead_of_hanging() {
    let spec = spec();
    let err = run_fleet(&spec, &FleetConfig::default(), &RunControl::default()).unwrap_err();
    assert!(matches!(err, FleetError::NoWorkers));

    // Every worker dead: the run fails with the tile count left over,
    // instead of spinning forever.
    let config = fast_config(vec![dead_addr(), dead_addr()]);
    let err = run_fleet(&spec, &config, &RunControl::default()).unwrap_err();
    match err {
        FleetError::WorkersExhausted { remaining } => assert_eq!(remaining, 4),
        other => panic!("expected WorkersExhausted, got {other}"),
    }
}
