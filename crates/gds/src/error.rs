//! Typed errors for GDSII parsing, flattening, and writing.
//!
//! Everything that can go wrong on untrusted bytes is an `Err`, never a
//! panic: truncated streams, oversized or malformed records, out-of-range
//! reals, coordinate overflow during DBU scaling, dangling or circular
//! structure references. The `Display` messages are phrased for a 400
//! response body (the serve wire format forwards them verbatim).

use std::fmt;

/// Any failure while reading, flattening, or writing a GDSII stream.
#[derive(Clone, Debug, PartialEq)]
pub enum GdsError {
    /// The stream ended inside a record (torn/truncated file). Carries the
    /// byte offset where more data was expected.
    Truncated(usize),
    /// A structurally invalid record: bad length, unexpected data type for
    /// its record type, or payload size not matching the declared type.
    BadRecord {
        /// Byte offset of the record header.
        offset: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The record sequence violates the stream grammar (e.g. `XY` outside
    /// an element, `ENDLIB` inside a structure, missing `UNITS`).
    Grammar {
        /// Byte offset of the offending record.
        offset: usize,
        /// What the grammar expected instead.
        reason: String,
    },
    /// An excess-64 real decoded to a non-finite or out-of-range value, or
    /// a value (e.g. DBU size) outside its legal domain.
    RealOutOfRange(String),
    /// DBU-to-nanometre scaling would overflow or produce a non-finite
    /// coordinate.
    CoordinateOverflow(String),
    /// An `SREF`/`AREF` names a structure the library does not define.
    UnknownStructure(String),
    /// Structure references form a cycle (flattening would not terminate).
    CircularReference(String),
    /// The reference tree is nested deeper than the flattener's limit.
    RecursionLimit(usize),
    /// Flattening would produce more shapes than the configured budget
    /// (guards against `AREF` row/column explosion on hostile inputs).
    ShapeBudget(usize),
    /// A polygon exceeds the writer's vertex budget even after splitting.
    TooManyVertices(usize),
    /// Underlying I/O failure (message only, so the error stays `Clone`).
    Io(String),
}

impl fmt::Display for GdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdsError::Truncated(offset) => {
                write!(f, "truncated GDS stream at byte {offset}")
            }
            GdsError::BadRecord { offset, reason } => {
                write!(f, "bad GDS record at byte {offset}: {reason}")
            }
            GdsError::Grammar { offset, reason } => {
                write!(f, "GDS grammar violation at byte {offset}: {reason}")
            }
            GdsError::RealOutOfRange(what) => write!(f, "GDS real out of range: {what}"),
            GdsError::CoordinateOverflow(what) => {
                write!(f, "GDS coordinate overflow: {what}")
            }
            GdsError::UnknownStructure(name) => {
                write!(f, "GDS reference to unknown structure '{name}'")
            }
            GdsError::CircularReference(name) => {
                write!(f, "circular GDS structure reference through '{name}'")
            }
            GdsError::RecursionLimit(depth) => {
                write!(f, "GDS reference tree deeper than {depth} levels")
            }
            GdsError::ShapeBudget(limit) => {
                write!(f, "flattened GDS design exceeds the {limit}-shape budget")
            }
            GdsError::TooManyVertices(n) => {
                write!(f, "polygon with {n} vertices exceeds the GDS record limit")
            }
            GdsError::Io(msg) => write!(f, "GDS I/O error: {msg}"),
        }
    }
}

impl std::error::Error for GdsError {}

impl From<std::io::Error> for GdsError {
    fn from(e: std::io::Error) -> GdsError {
        GdsError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failure() {
        let cases: Vec<(GdsError, &str)> = vec![
            (GdsError::Truncated(12), "byte 12"),
            (
                GdsError::BadRecord {
                    offset: 4,
                    reason: "odd length".into(),
                },
                "odd length",
            ),
            (
                GdsError::Grammar {
                    offset: 8,
                    reason: "XY outside an element".into(),
                },
                "XY outside",
            ),
            (GdsError::RealOutOfRange("UNITS".into()), "UNITS"),
            (GdsError::CoordinateOverflow("x".into()), "overflow"),
            (GdsError::UnknownStructure("TOP".into()), "'TOP'"),
            (GdsError::CircularReference("A".into()), "circular"),
            (GdsError::RecursionLimit(64), "64"),
            (GdsError::ShapeBudget(1_000_000), "1000000-shape"),
            (GdsError::TooManyVertices(9000), "9000"),
            (GdsError::Io("gone".into()), "gone"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn io_error_converts() {
        let e: GdsError = std::io::Error::other("disk fell off").into();
        assert!(matches!(e, GdsError::Io(_)));
    }
}
