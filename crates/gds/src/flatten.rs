//! Cycle-safe SREF/AREF flattening into nanometre polygons.
//!
//! A reference transform is applied in GDS order: mirror about the x axis
//! (STRANS bit 15), then rotate counter-clockwise by ANGLE, then scale by
//! MAG, then translate to the reference point. Rotations that are exact
//! multiples of 90° use exact `{-1, 0, 1}` matrices so rectilinear
//! designs stay bit-exact; arbitrary angles go through `f64`
//! sine/cosine. AREF lattice vectors are derived from the recorded
//! column/row reference points, so sheared or rotated arrays come out
//! right without special cases.
//!
//! Hostile inputs are bounded three ways: a recursion-depth cap (cycles
//! are also detected directly via the on-stack set), a flattened-shape
//! budget that an exploding AREF of AREFs cannot bypass (empty instances
//! count too), and overflow-checked DBU→nm scaling.

use cardopc_geometry::{Point, Polygon};

use crate::error::GdsError;
use crate::model::{GdsElement, GdsLib, GdsRef, GdsStruct, LayerFilter, Strans};

/// A 2-D affine transform in database units: `p ↦ m·p + t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Trans {
    /// Row-major linear part.
    pub m: [[f64; 2]; 2],
    /// Translation.
    pub t: (f64, f64),
}

impl Trans {
    /// The identity transform.
    pub fn identity() -> Trans {
        Trans {
            m: [[1.0, 0.0], [0.0, 1.0]],
            t: (0.0, 0.0),
        }
    }

    /// Builds the transform of a reference placed at `origin`:
    /// translate(origin) ∘ scale(mag) ∘ rotate(angle) ∘ mirror_x?.
    pub fn from_strans(strans: Strans, origin: (f64, f64)) -> Trans {
        // Exact matrices for the four axis-aligned rotations.
        let deg = strans.angle_deg.rem_euclid(360.0);
        let (cos, sin) = match deg {
            0.0 => (1.0, 0.0),
            90.0 => (0.0, 1.0),
            180.0 => (-1.0, 0.0),
            270.0 => (0.0, -1.0),
            _ => {
                let rad = deg.to_radians();
                (rad.cos(), rad.sin())
            }
        };
        let my = if strans.mirror_x { -1.0 } else { 1.0 };
        let g = strans.mag;
        // R(angle) · diag(1, my), columns scaled by mag.
        Trans {
            m: [[g * cos, g * -sin * my], [g * sin, g * cos * my]],
            t: origin,
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: (f64, f64)) -> (f64, f64) {
        (
            self.m[0][0] * p.0 + self.m[0][1] * p.1 + self.t.0,
            self.m[1][0] * p.0 + self.m[1][1] * p.1 + self.t.1,
        )
    }

    /// Composes `self ∘ inner`: applying the result equals applying
    /// `inner` first, then `self`.
    pub fn compose(&self, inner: &Trans) -> Trans {
        let a = self.m;
        let b = inner.m;
        Trans {
            m: [
                [
                    a[0][0] * b[0][0] + a[0][1] * b[1][0],
                    a[0][0] * b[0][1] + a[0][1] * b[1][1],
                ],
                [
                    a[1][0] * b[0][0] + a[1][1] * b[1][0],
                    a[1][0] * b[0][1] + a[1][1] * b[1][1],
                ],
            ],
            t: self.apply(inner.t),
        }
    }

    /// Determinant of the linear part; negative means the transform flips
    /// orientation (odd number of mirrors).
    pub fn det(&self) -> f64 {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }
}

/// Safety limits for flattening untrusted libraries.
#[derive(Clone, Copy, Debug)]
pub struct FlattenLimits {
    /// Maximum SREF/AREF nesting depth.
    pub max_depth: usize,
    /// Maximum flattened shapes *and* reference instances visited —
    /// an AREF lattice of empty cells burns this budget too.
    pub max_shapes: usize,
}

impl Default for FlattenLimits {
    fn default() -> FlattenLimits {
        FlattenLimits {
            max_depth: 64,
            max_shapes: 1_000_000,
        }
    }
}

/// One flattened polygon with its source layer/datatype.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatShape {
    /// Layer number.
    pub layer: i16,
    /// Datatype number.
    pub datatype: i16,
    /// CCW-normalised polygon in nanometres.
    pub polygon: Polygon,
}

struct Flattener<'a> {
    lib: &'a GdsLib,
    filter: LayerFilter,
    limits: FlattenLimits,
    nm_per_dbu: f64,
    stack: Vec<&'a str>,
    budget: usize,
    out: Vec<FlatShape>,
}

/// Flattens structure `top` into nm polygons on layers the filter admits.
///
/// Degenerate polygons (fewer than 3 distinct vertices after transform)
/// are dropped silently — they carry no printable geometry.
///
/// # Errors
///
/// [`GdsError::UnknownStructure`], [`GdsError::CircularReference`],
/// [`GdsError::RecursionLimit`], [`GdsError::ShapeBudget`], or
/// [`GdsError::CoordinateOverflow`].
pub fn flatten(
    lib: &GdsLib,
    top: &str,
    filter: LayerFilter,
    limits: FlattenLimits,
) -> Result<Vec<FlatShape>, GdsError> {
    let root = lib
        .find_struct(top)
        .ok_or_else(|| GdsError::UnknownStructure(top.to_string()))?;
    let mut fl = Flattener {
        lib,
        filter,
        limits,
        nm_per_dbu: lib.nm_per_dbu(),
        stack: Vec::new(),
        budget: 0,
        out: Vec::new(),
    };
    fl.walk(root, &Trans::identity())?;
    Ok(fl.out)
}

impl<'a> Flattener<'a> {
    fn spend(&mut self) -> Result<(), GdsError> {
        self.budget += 1;
        if self.budget > self.limits.max_shapes {
            return Err(GdsError::ShapeBudget(self.limits.max_shapes));
        }
        Ok(())
    }

    fn walk(&mut self, s: &'a GdsStruct, trans: &Trans) -> Result<(), GdsError> {
        if self.stack.len() >= self.limits.max_depth {
            return Err(GdsError::RecursionLimit(self.limits.max_depth));
        }
        if self.stack.contains(&s.name.as_str()) {
            return Err(GdsError::CircularReference(s.name.clone()));
        }
        self.stack.push(&s.name);
        for element in &s.elements {
            match element {
                GdsElement::Boundary {
                    layer,
                    datatype,
                    xy,
                } => {
                    if self.filter.matches(*layer, *datatype) {
                        let pts: Vec<(f64, f64)> =
                            xy.iter().map(|&(x, y)| (x as f64, y as f64)).collect();
                        self.emit(*layer, *datatype, &pts, trans)?;
                    }
                }
                GdsElement::Path {
                    layer,
                    datatype,
                    width,
                    pathtype,
                    xy,
                } => {
                    if self.filter.matches(*layer, *datatype) {
                        let outline = path_outline(xy, *width, *pathtype);
                        if let Some(pts) = outline {
                            self.emit(*layer, *datatype, &pts, trans)?;
                        }
                    }
                }
                GdsElement::Ref(r) => self.walk_ref(r, trans)?,
            }
        }
        self.stack.pop();
        Ok(())
    }

    fn walk_ref(&mut self, r: &'a GdsRef, parent: &Trans) -> Result<(), GdsError> {
        let child = self
            .lib
            .find_struct(&r.sname)
            .ok_or_else(|| GdsError::UnknownStructure(r.sname.clone()))?;
        match r.colrow {
            None => {
                self.spend()?;
                let origin = (r.xy[0].0 as f64, r.xy[0].1 as f64);
                let local = Trans::from_strans(r.strans, origin);
                self.walk(child, &parent.compose(&local))?;
            }
            Some((cols, rows)) => {
                // Lattice vectors from the recorded reference points — this
                // honours rotated/mirrored arrays without special-casing.
                let o = (r.xy[0].0 as f64, r.xy[0].1 as f64);
                let colref = (r.xy[1].0 as f64, r.xy[1].1 as f64);
                let rowref = (r.xy[2].0 as f64, r.xy[2].1 as f64);
                let cstep = (
                    (colref.0 - o.0) / cols as f64,
                    (colref.1 - o.1) / cols as f64,
                );
                let rstep = (
                    (rowref.0 - o.0) / rows as f64,
                    (rowref.1 - o.1) / rows as f64,
                );
                for j in 0..rows as i64 {
                    for i in 0..cols as i64 {
                        self.spend()?;
                        let origin = (
                            o.0 + i as f64 * cstep.0 + j as f64 * rstep.0,
                            o.1 + i as f64 * cstep.1 + j as f64 * rstep.1,
                        );
                        let local = Trans::from_strans(r.strans, origin);
                        self.walk(child, &parent.compose(&local))?;
                    }
                }
            }
        }
        Ok(())
    }

    fn emit(
        &mut self,
        layer: i16,
        datatype: i16,
        dbu_pts: &[(f64, f64)],
        trans: &Trans,
    ) -> Result<(), GdsError> {
        let mut vertices = Vec::with_capacity(dbu_pts.len());
        for &p in dbu_pts {
            let (x, y) = trans.apply(p);
            let (nx, ny) = (x * self.nm_per_dbu, y * self.nm_per_dbu);
            if !(nx.is_finite() && ny.is_finite() && nx.abs() <= 1e15 && ny.abs() <= 1e15) {
                return Err(GdsError::CoordinateOverflow(format!(
                    "vertex ({x}, {y}) dbu does not scale to a finite nm coordinate"
                )));
            }
            vertices.push(Point::new(nx, ny));
        }
        // Polygon::new drops the explicit closing point and near-duplicate
        // vertices; a mirroring transform flips winding, so normalise.
        let polygon = Polygon::new(vertices);
        if polygon.len() < 3 {
            return Ok(()); // degenerate after dedup: no printable area
        }
        self.spend()?;
        self.out.push(FlatShape {
            layer,
            datatype,
            polygon: polygon.into_ccw(),
        });
        Ok(())
    }
}

/// Expands a PATH centreline into its outline polygon (DBU coordinates).
///
/// Joints are mitred; pathtype 0 ends flush, pathtypes 1 and 2 both
/// extend the ends by half the width (round ends are approximated as
/// square — the difference is below the OPC grid for real wire widths).
/// Returns `None` for degenerate inputs (zero-length centreline).
fn path_outline(xy: &[(i32, i32)], width: i32, pathtype: i16) -> Option<Vec<(f64, f64)>> {
    let half = width as f64 / 2.0;
    // Drop consecutive duplicate points.
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(xy.len());
    for &(x, y) in xy {
        let p = (x as f64, y as f64);
        if pts.last() != Some(&p) {
            pts.push(p);
        }
    }
    if pts.len() < 2 {
        return None;
    }
    let extend = if pathtype == 0 { 0.0 } else { half };
    if extend > 0.0 {
        let n = pts.len();
        let d0 = unit(sub(pts[0], pts[1]));
        let d1 = unit(sub(pts[n - 1], pts[n - 2]));
        pts[0] = add(pts[0], scale(d0, extend));
        pts[n - 1] = add(pts[n - 1], scale(d1, extend));
    }
    // Offset the polyline on both sides with mitre joins.
    let n = pts.len();
    let mut left = Vec::with_capacity(n);
    let mut right = Vec::with_capacity(n);
    for i in 0..n {
        let din = if i > 0 {
            unit(sub(pts[i], pts[i - 1]))
        } else {
            unit(sub(pts[1], pts[0]))
        };
        let dout = if i + 1 < n {
            unit(sub(pts[i + 1], pts[i]))
        } else {
            unit(sub(pts[n - 1], pts[n - 2]))
        };
        // Mitre direction: bisector of the two segment normals.
        let nin = (-din.1, din.0);
        let nout = (-dout.1, dout.0);
        let mut m = add(nin, nout);
        let len = (m.0 * m.0 + m.1 * m.1).sqrt();
        if len < 1e-12 {
            // 180° turn: fall back to the incoming normal.
            m = nin;
        } else {
            m = (m.0 / len, m.1 / len);
        }
        // Mitre length so the offset edge stays `half` from the segments.
        let dot = m.0 * nin.0 + m.1 * nin.1;
        let mitre = if dot.abs() < 0.1 { half } else { half / dot };
        left.push(add(pts[i], scale(m, mitre)));
        right.push(add(pts[i], scale(m, -mitre)));
    }
    right.reverse();
    left.extend(right);
    Some(left)
}

fn sub(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 - b.0, a.1 - b.1)
}

fn add(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 + b.0, a.1 + b.1)
}

fn scale(a: (f64, f64), s: f64) -> (f64, f64) {
    (a.0 * s, a.1 * s)
}

fn unit(a: (f64, f64)) -> (f64, f64) {
    let len = (a.0 * a.0 + a.1 * a.1).sqrt();
    if len < 1e-12 {
        (0.0, 0.0)
    } else {
        (a.0 / len, a.1 / len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GdsElement, GdsLib, GdsRef, GdsStruct, Strans};
    use cardopc_geometry::Orientation;

    fn square_cell(name: &str) -> GdsStruct {
        GdsStruct {
            name: name.into(),
            elements: vec![GdsElement::Boundary {
                layer: 1,
                datatype: 0,
                xy: vec![(0, 0), (100, 0), (100, 100), (0, 100), (0, 0)],
            }],
        }
    }

    fn lib_with(structs: Vec<GdsStruct>) -> GdsLib {
        GdsLib {
            name: "L".into(),
            user_units_per_dbu: 1e-3,
            meters_per_dbu: 1e-9,
            structs,
        }
    }

    #[test]
    fn identity_flatten_is_the_square() {
        let lib = lib_with(vec![square_cell("TOP")]);
        let shapes = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        assert_eq!(shapes.len(), 1);
        let p = &shapes[0].polygon;
        assert_eq!(p.len(), 4); // closing point dropped
        assert_eq!(p.area(), 10_000.0);
        assert_eq!(p.orientation(), Orientation::CounterClockwise);
    }

    #[test]
    fn exact_rotations_and_mirror() {
        // Place the square rotated 90° at (1000, 0): (100, 0) ↦ (1000, 100).
        let mut top = GdsStruct {
            name: "TOP".into(),
            elements: vec![],
        };
        top.elements.push(GdsElement::Ref(GdsRef {
            sname: "C".into(),
            strans: Strans {
                mirror_x: false,
                mag: 1.0,
                angle_deg: 90.0,
            },
            colrow: None,
            xy: vec![(1000, 0)],
        }));
        let lib = lib_with(vec![square_cell("C"), top]);
        let shapes = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        let bbox = shapes[0].polygon.bbox();
        assert_eq!(
            (bbox.min.x, bbox.min.y, bbox.max.x, bbox.max.y),
            (900.0, 0.0, 1000.0, 100.0)
        );
        // Mirrored placement still yields a CCW polygon with the same area.
        let mut top = GdsStruct {
            name: "TOP".into(),
            elements: vec![],
        };
        top.elements.push(GdsElement::Ref(GdsRef {
            sname: "C".into(),
            strans: Strans {
                mirror_x: true,
                mag: 2.0,
                angle_deg: 0.0,
            },
            colrow: None,
            xy: vec![(0, 0)],
        }));
        let lib = lib_with(vec![square_cell("C"), top]);
        let shapes = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        assert_eq!(
            shapes[0].polygon.orientation(),
            Orientation::CounterClockwise
        );
        assert_eq!(shapes[0].polygon.area(), 40_000.0); // mag 2 → 4× area
        let bbox = shapes[0].polygon.bbox();
        assert_eq!((bbox.min.y, bbox.max.y), (-200.0, 0.0)); // mirrored below the axis
    }

    #[test]
    fn aref_expands_the_full_lattice() {
        let top = GdsStruct {
            name: "TOP".into(),
            elements: vec![GdsElement::Ref(GdsRef {
                sname: "C".into(),
                strans: Strans::default(),
                colrow: Some((3, 2)),
                xy: vec![(0, 0), (3 * 400, 0), (0, 2 * 500)],
            })],
        };
        let lib = lib_with(vec![square_cell("C"), top]);
        let shapes = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        assert_eq!(shapes.len(), 6);
        let xs: Vec<f64> = shapes.iter().map(|s| s.polygon.bbox().min.x).collect();
        assert!(xs.contains(&0.0) && xs.contains(&400.0) && xs.contains(&800.0));
        let ys: Vec<f64> = shapes.iter().map(|s| s.polygon.bbox().min.y).collect();
        assert!(ys.contains(&0.0) && ys.contains(&500.0));
    }

    #[test]
    fn layer_filter_applies() {
        let mut cell = square_cell("TOP");
        cell.elements.push(GdsElement::Boundary {
            layer: 2,
            datatype: 5,
            xy: vec![(0, 0), (10, 0), (10, 10)],
        });
        let lib = lib_with(vec![cell]);
        let all = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        assert_eq!(all.len(), 2);
        let l1 = flatten(&lib, "TOP", LayerFilter::Layer(1), FlattenLimits::default()).unwrap();
        assert_eq!(l1.len(), 1);
        let l25 = flatten(
            &lib,
            "TOP",
            LayerFilter::LayerDatatype(2, 5),
            FlattenLimits::default(),
        )
        .unwrap();
        assert_eq!((l25.len(), l25[0].layer, l25[0].datatype), (1, 2, 5));
    }

    #[test]
    fn cycles_depth_and_budget_are_bounded() {
        // A → B → A cycle.
        let a = GdsStruct {
            name: "A".into(),
            elements: vec![GdsElement::Ref(GdsRef {
                sname: "B".into(),
                strans: Strans::default(),
                colrow: None,
                xy: vec![(0, 0)],
            })],
        };
        let b = GdsStruct {
            name: "B".into(),
            elements: vec![GdsElement::Ref(GdsRef {
                sname: "A".into(),
                strans: Strans::default(),
                colrow: None,
                xy: vec![(0, 0)],
            })],
        };
        let lib = lib_with(vec![a, b]);
        assert!(matches!(
            flatten(&lib, "A", LayerFilter::All, FlattenLimits::default()),
            Err(GdsError::CircularReference(_))
        ));

        // Unknown reference.
        let lib = lib_with(vec![GdsStruct {
            name: "T".into(),
            elements: vec![GdsElement::Ref(GdsRef {
                sname: "MISSING".into(),
                strans: Strans::default(),
                colrow: None,
                xy: vec![(0, 0)],
            })],
        }]);
        assert!(matches!(
            flatten(&lib, "T", LayerFilter::All, FlattenLimits::default()),
            Err(GdsError::UnknownStructure(_))
        ));

        // AREF explosion trips the budget even though the cell is empty.
        let empty = GdsStruct {
            name: "E".into(),
            elements: vec![],
        };
        let top = GdsStruct {
            name: "T".into(),
            elements: vec![GdsElement::Ref(GdsRef {
                sname: "E".into(),
                strans: Strans::default(),
                colrow: Some((10_000, 10_000)),
                xy: vec![(0, 0), (10_000, 0), (0, 10_000)],
            })],
        };
        let lib = lib_with(vec![empty, top]);
        let limits = FlattenLimits {
            max_depth: 64,
            max_shapes: 1000,
        };
        assert!(matches!(
            flatten(&lib, "T", LayerFilter::All, limits),
            Err(GdsError::ShapeBudget(1000))
        ));
    }

    #[test]
    fn path_expands_to_a_rectangle() {
        let lib = lib_with(vec![GdsStruct {
            name: "W".into(),
            elements: vec![GdsElement::Path {
                layer: 1,
                datatype: 0,
                width: 80,
                pathtype: 0,
                xy: vec![(0, 0), (1000, 0)],
            }],
        }]);
        let shapes = flatten(&lib, "W", LayerFilter::All, FlattenLimits::default()).unwrap();
        let bbox = shapes[0].polygon.bbox();
        assert_eq!(
            (bbox.min.x, bbox.min.y, bbox.max.x, bbox.max.y),
            (0.0, -40.0, 1000.0, 40.0)
        );
        // Pathtype 2 extends both ends by half the width.
        let lib = lib_with(vec![GdsStruct {
            name: "W".into(),
            elements: vec![GdsElement::Path {
                layer: 1,
                datatype: 0,
                width: 80,
                pathtype: 2,
                xy: vec![(0, 0), (1000, 0)],
            }],
        }]);
        let shapes = flatten(&lib, "W", LayerFilter::All, FlattenLimits::default()).unwrap();
        let bbox = shapes[0].polygon.bbox();
        assert_eq!((bbox.min.x, bbox.max.x), (-40.0, 1040.0));
    }

    #[test]
    fn l_shaped_path_miters_the_corner() {
        let lib = lib_with(vec![GdsStruct {
            name: "L".into(),
            elements: vec![GdsElement::Path {
                layer: 1,
                datatype: 0,
                width: 100,
                pathtype: 0,
                xy: vec![(0, 0), (500, 0), (500, 500)],
            }],
        }]);
        let shapes = flatten(&lib, "L", LayerFilter::All, FlattenLimits::default()).unwrap();
        let p = &shapes[0].polygon;
        // Exact mitred area: the mitre fills the outer corner, so the
        // outline is the 550-wide horizontal bar plus the vertical bar.
        let expected = 450.0 * 100.0 + 550.0 * 100.0;
        assert!((p.area() - expected).abs() < 1e-6, "area {}", p.area());
    }

    #[test]
    fn coordinate_overflow_is_checked() {
        let mut lib = lib_with(vec![square_cell("TOP")]);
        lib.meters_per_dbu = 1e300;
        assert!(matches!(
            flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()),
            Err(GdsError::CoordinateOverflow(_))
        ));
    }
}
