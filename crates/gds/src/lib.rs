//! # cardopc-gds
//!
//! Dependency-free binary GDSII stream reader and writer — the
//! interchange boundary between the CardOPC correction engine and
//! standard layout tools. Follows the same no-external-deps discipline
//! as `cardopc-json`.
//!
//! Reading pipeline:
//!
//! 1. [`record::RecordIter`] tokenizes the byte stream into bounded
//!    records, turning torn files into typed [`GdsError::Truncated`]
//!    errors at exact byte offsets — hostile bytes can never panic.
//! 2. [`read::parse_lib`] applies the stream grammar and builds a
//!    [`GdsLib`] structure table with raw DBU coordinates.
//! 3. [`flatten::flatten`] resolves SREF/AREF references cycle-safely
//!    (exact 90°-multiple rotations, arbitrary angles via `f64`,
//!    magnification, mirror), filters by layer/datatype, and converts to
//!    CCW-normalised `cardopc-geometry` polygons in nanometres with
//!    overflow-checked DBU scaling.
//!
//! Writing: [`write::GdsWriter`] emits byte-stable libraries (fixed
//! zero timestamps) of BOUNDARY records, splitting polygons that exceed
//! the 8191-point XY record limit via [`split::split_polygon`].
//!
//! ```
//! use cardopc_gds::{flatten, parse_lib, FlattenLimits, GdsWriter, LayerFilter};
//! use cardopc_geometry::{Point, Polygon};
//!
//! let mut w = GdsWriter::new("DEMO", 1.0).unwrap();
//! w.begin_struct("TOP");
//! w.boundary(1, 0, &Polygon::rect(Point::new(0.0, 0.0), Point::new(90.0, 60.0))).unwrap();
//! w.end_struct();
//! let bytes = w.finish();
//!
//! let lib = parse_lib(&bytes).unwrap();
//! let shapes = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
//! assert_eq!(shapes[0].polygon.area(), 5400.0);
//! ```

#![warn(missing_docs)]

mod error;
pub mod flatten;
pub mod model;
pub mod read;
pub mod real;
pub mod record;
pub mod split;
pub mod write;

pub use error::GdsError;
pub use flatten::{flatten, FlatShape, FlattenLimits, Trans};
pub use model::{GdsElement, GdsLib, GdsRef, GdsStruct, LayerFilter, Strans};
pub use read::parse_lib;
pub use real::{decode_real8, encode_real8};
pub use split::split_polygon;
pub use write::GdsWriter;

/// Reads and parses a GDSII file from disk.
///
/// # Errors
///
/// [`GdsError::Io`] on filesystem failures, any parse error otherwise.
pub fn read_file(path: &std::path::Path) -> Result<GdsLib, GdsError> {
    let bytes = std::fs::read(path)?;
    parse_lib(&bytes)
}

/// Writes a finished GDSII byte stream to disk.
///
/// # Errors
///
/// [`GdsError::Io`] on filesystem failures.
pub fn write_file(path: &std::path::Path, bytes: &[u8]) -> Result<(), GdsError> {
    std::fs::write(path, bytes)?;
    Ok(())
}
