//! In-memory model of a parsed GDSII library.
//!
//! The reader produces a [`GdsLib`]: units plus an ordered structure
//! table. Elements keep their raw DBU coordinates and reference
//! transforms; flattening and nm conversion happen in
//! [`crate::flatten`], so the model stays a faithful image of the file.

use std::fmt;

use crate::error::GdsError;

/// A parsed GDSII library.
#[derive(Clone, Debug, PartialEq)]
pub struct GdsLib {
    /// Library name (LIBNAME record).
    pub name: String,
    /// User units per database unit (first UNITS real). Informational.
    pub user_units_per_dbu: f64,
    /// Metres per database unit (second UNITS real). `1e-9` means one
    /// database unit is one nanometre.
    pub meters_per_dbu: f64,
    /// Structures in file order.
    pub structs: Vec<GdsStruct>,
}

impl GdsLib {
    /// Nanometres per database unit.
    pub fn nm_per_dbu(&self) -> f64 {
        self.meters_per_dbu * 1e9
    }

    /// Looks up a structure by name.
    pub fn find_struct(&self, name: &str) -> Option<&GdsStruct> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Names of structures that no other structure references — the roots
    /// a caller would flatten. Order follows the file.
    pub fn top_structs(&self) -> Vec<&str> {
        let referenced: Vec<&str> = self
            .structs
            .iter()
            .flat_map(|s| s.elements.iter())
            .filter_map(|e| match e {
                GdsElement::Ref(r) => Some(r.sname.as_str()),
                _ => None,
            })
            .collect();
        self.structs
            .iter()
            .map(|s| s.name.as_str())
            .filter(|n| !referenced.contains(n))
            .collect()
    }
}

/// One structure (cell) in the library.
#[derive(Clone, Debug, PartialEq)]
pub struct GdsStruct {
    /// Structure name (STRNAME record).
    pub name: String,
    /// Elements in file order.
    pub elements: Vec<GdsElement>,
}

/// One element inside a structure.
#[derive(Clone, Debug, PartialEq)]
pub enum GdsElement {
    /// A BOUNDARY polygon: layer, datatype, DBU vertices (the trailing
    /// closing point, when present, is kept verbatim).
    Boundary {
        /// Layer number.
        layer: i16,
        /// Datatype number.
        datatype: i16,
        /// Vertices in database units.
        xy: Vec<(i32, i32)>,
    },
    /// A PATH wire: layer, datatype, DBU width, end style, centreline.
    Path {
        /// Layer number.
        layer: i16,
        /// Datatype number.
        datatype: i16,
        /// Wire width in database units.
        width: i32,
        /// End style: 0 flush, 1 round (approximated square), 2 extended.
        pathtype: i16,
        /// Centreline vertices in database units.
        xy: Vec<(i32, i32)>,
    },
    /// An SREF or AREF.
    Ref(GdsRef),
}

/// A structure reference (SREF when `colrow` is `None`, AREF otherwise).
#[derive(Clone, Debug, PartialEq)]
pub struct GdsRef {
    /// Name of the referenced structure.
    pub sname: String,
    /// Transform flags and scalars.
    pub strans: Strans,
    /// `(columns, rows)` for an AREF.
    pub colrow: Option<(i16, i16)>,
    /// SREF: one origin point. AREF: origin, column reference point
    /// (origin + columns·column-step), row reference point.
    pub xy: Vec<(i32, i32)>,
}

/// STRANS/MAG/ANGLE transform attached to a reference.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Strans {
    /// Mirror about the x axis before rotating (STRANS bit 15).
    pub mirror_x: bool,
    /// Magnification (MAG record, default 1).
    pub mag: f64,
    /// Rotation in degrees counter-clockwise (ANGLE record, default 0).
    pub angle_deg: f64,
}

impl Default for Strans {
    fn default() -> Strans {
        Strans {
            mirror_x: false,
            mag: 1.0,
            angle_deg: 0.0,
        }
    }
}

/// Which `layer:datatype` pairs survive flattening.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerFilter {
    /// Keep every layer/datatype pair.
    All,
    /// Keep one layer, any datatype.
    Layer(i16),
    /// Keep exactly one `layer:datatype` pair.
    LayerDatatype(i16, i16),
}

impl LayerFilter {
    /// Whether the filter admits `layer:datatype`.
    pub fn matches(&self, layer: i16, datatype: i16) -> bool {
        match *self {
            LayerFilter::All => true,
            LayerFilter::Layer(l) => layer == l,
            LayerFilter::LayerDatatype(l, d) => layer == l && datatype == d,
        }
    }

    /// Parses `"*"`, `"N"`, or `"N:D"`.
    ///
    /// # Errors
    ///
    /// [`GdsError::Grammar`] (offset 0) on anything else; layer and
    /// datatype must fit `i16` and be non-negative.
    pub fn parse(text: &str) -> Result<LayerFilter, GdsError> {
        let bad = |reason: String| GdsError::Grammar { offset: 0, reason };
        if text == "*" {
            return Ok(LayerFilter::All);
        }
        let parse_part = |part: &str, what: &str| -> Result<i16, GdsError> {
            let n: i16 = part
                .parse()
                .map_err(|_| bad(format!("{what} '{part}' is not a small integer")))?;
            if n < 0 {
                return Err(bad(format!("{what} {n} is negative")));
            }
            Ok(n)
        };
        match text.split_once(':') {
            None => Ok(LayerFilter::Layer(parse_part(text, "layer")?)),
            Some((l, d)) => Ok(LayerFilter::LayerDatatype(
                parse_part(l, "layer")?,
                parse_part(d, "datatype")?,
            )),
        }
    }
}

impl fmt::Display for LayerFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LayerFilter::All => write!(f, "*"),
            LayerFilter::Layer(l) => write!(f, "{l}"),
            LayerFilter::LayerDatatype(l, d) => write!(f, "{l}:{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_filter_parses_and_matches() {
        assert_eq!(LayerFilter::parse("*").unwrap(), LayerFilter::All);
        assert_eq!(LayerFilter::parse("7").unwrap(), LayerFilter::Layer(7));
        assert_eq!(
            LayerFilter::parse("7:2").unwrap(),
            LayerFilter::LayerDatatype(7, 2)
        );
        assert!(LayerFilter::All.matches(3, 9));
        assert!(LayerFilter::Layer(7).matches(7, 9));
        assert!(!LayerFilter::Layer(7).matches(8, 0));
        assert!(LayerFilter::LayerDatatype(7, 2).matches(7, 2));
        assert!(!LayerFilter::LayerDatatype(7, 2).matches(7, 3));
        for bad in ["", "x", "-1", "1:x", "1:-2", "70000", "1:2:3"] {
            assert!(LayerFilter::parse(bad).is_err(), "{bad:?}");
        }
        assert_eq!(LayerFilter::parse("7:2").unwrap().to_string(), "7:2");
    }

    #[test]
    fn top_structs_excludes_referenced() {
        let lib = GdsLib {
            name: "L".into(),
            user_units_per_dbu: 1e-3,
            meters_per_dbu: 1e-9,
            structs: vec![
                GdsStruct {
                    name: "LEAF".into(),
                    elements: vec![],
                },
                GdsStruct {
                    name: "TOP".into(),
                    elements: vec![GdsElement::Ref(GdsRef {
                        sname: "LEAF".into(),
                        strans: Strans::default(),
                        colrow: None,
                        xy: vec![(0, 0)],
                    })],
                },
            ],
        };
        assert_eq!(lib.top_structs(), vec!["TOP"]);
        assert_eq!(lib.nm_per_dbu(), 1.0);
        assert!(lib.find_struct("LEAF").is_some());
        assert!(lib.find_struct("NOPE").is_none());
    }
}
