//! Stream-grammar parser: records → [`GdsLib`].
//!
//! The grammar is the standard GDSII skeleton:
//!
//! ```text
//! HEADER BGNLIB LIBNAME UNITS { BGNSTR STRNAME element* ENDSTR } ENDLIB
//! element := BOUNDARY attrs XY ENDEL
//!          | PATH attrs XY ENDEL
//!          | SREF SNAME [STRANS [MAG] [ANGLE]] XY ENDEL
//!          | AREF SNAME [STRANS [MAG] [ANGLE]] COLROW XY ENDEL
//!          | TEXT … ENDEL            (tokenized and skipped)
//! ```
//!
//! Unknown record types inside an element (ELFLAGS, PLEX, properties) are
//! skipped; unknown *element* kinds are skipped up to their ENDEL. Every
//! violation is a typed [`GdsError`] carrying the byte offset — hostile
//! bytes can never panic this parser.

use crate::error::GdsError;
use crate::model::{GdsElement, GdsLib, GdsRef, GdsStruct, Strans};
use crate::record::{rtype, Record, RecordIter};

fn grammar(offset: usize, reason: impl Into<String>) -> GdsError {
    GdsError::Grammar {
        offset,
        reason: reason.into(),
    }
}

/// Parses a whole GDSII stream into a library.
///
/// # Errors
///
/// Any [`GdsError`] variant a malformed stream can produce; never panics.
pub fn parse_lib(bytes: &[u8]) -> Result<GdsLib, GdsError> {
    let mut it = RecordIter::new(bytes);

    let r = expect(&mut it, rtype::HEADER, "HEADER")?;
    r.one_i16()?; // version; any value tokenizes
    let r = expect(&mut it, rtype::BGNLIB, "BGNLIB")?;
    r.i16s()?; // timestamps; content ignored

    let mut name = String::new();
    let mut units: Option<(f64, f64)> = None;

    // LIBNAME and UNITS may be preceded by optional records (REFLIBS,
    // FONTS, GENERATIONS, …) which we skip.
    let mut structs: Vec<GdsStruct> = Vec::new();
    loop {
        let offset = it.offset();
        let r = it
            .next()?
            .ok_or_else(|| grammar(offset, "stream ended before ENDLIB"))?;
        match r.rtype {
            rtype::LIBNAME => name = r.ascii()?,
            rtype::UNITS => {
                let v = r.real8s()?;
                if v.len() != 2 {
                    return Err(grammar(r.offset, format!("UNITS with {} reals", v.len())));
                }
                if !(v[1].is_finite() && v[1] > 0.0) {
                    return Err(GdsError::RealOutOfRange(format!(
                        "meters-per-dbu {} must be a positive finite real",
                        v[1]
                    )));
                }
                units = Some((v[0], v[1]));
            }
            rtype::BGNSTR => {
                if units.is_none() {
                    return Err(grammar(r.offset, "BGNSTR before UNITS"));
                }
                let s = parse_struct(&mut it)?;
                if structs.iter().any(|existing| existing.name == s.name) {
                    return Err(grammar(
                        r.offset,
                        format!("duplicate structure name '{}'", s.name),
                    ));
                }
                structs.push(s);
            }
            rtype::ENDLIB => break,
            rtype::ENDSTR | rtype::ENDEL => {
                return Err(grammar(r.offset, "element terminator outside a structure"))
            }
            rtype::XY | rtype::LAYER | rtype::DATATYPE | rtype::SNAME => {
                return Err(grammar(r.offset, "element record outside a structure"))
            }
            _ => {} // optional library records: skip
        }
    }
    let (user_units_per_dbu, meters_per_dbu) =
        units.ok_or_else(|| grammar(bytes.len(), "library has no UNITS record"))?;
    Ok(GdsLib {
        name,
        user_units_per_dbu,
        meters_per_dbu,
        structs,
    })
}

fn expect<'a>(it: &mut RecordIter<'a>, want: u8, what: &str) -> Result<Record<'a>, GdsError> {
    let offset = it.offset();
    let r = it
        .next()?
        .ok_or_else(|| grammar(offset, format!("stream ended, expected {what}")))?;
    if r.rtype != want {
        return Err(grammar(
            r.offset,
            format!("expected {what}, found record type {:#04x}", r.rtype),
        ));
    }
    Ok(r)
}

fn parse_struct(it: &mut RecordIter<'_>) -> Result<GdsStruct, GdsError> {
    let r = expect(it, rtype::STRNAME, "STRNAME")?;
    let name = r.ascii()?;
    if name.is_empty() {
        return Err(grammar(r.offset, "empty structure name"));
    }
    let mut elements = Vec::new();
    loop {
        let offset = it.offset();
        let r = it
            .next()?
            .ok_or_else(|| grammar(offset, "stream ended inside a structure"))?;
        match r.rtype {
            rtype::ENDSTR => break,
            rtype::BOUNDARY => elements.push(parse_boundary(it, r.offset)?),
            rtype::PATH => elements.push(parse_path(it, r.offset)?),
            rtype::SREF => elements.push(parse_ref(it, r.offset, false)?),
            rtype::AREF => elements.push(parse_ref(it, r.offset, true)?),
            rtype::TEXT => skip_element(it)?,
            rtype::BGNSTR | rtype::ENDLIB => {
                return Err(grammar(r.offset, "structure not closed with ENDSTR"))
            }
            // NODE / BOX / unknown element kinds: skip to their ENDEL.
            _ => skip_element(it)?,
        }
    }
    Ok(GdsStruct { name, elements })
}

fn skip_element(it: &mut RecordIter<'_>) -> Result<(), GdsError> {
    loop {
        let offset = it.offset();
        let r = it
            .next()?
            .ok_or_else(|| grammar(offset, "stream ended inside an element"))?;
        match r.rtype {
            rtype::ENDEL => return Ok(()),
            rtype::ENDSTR | rtype::ENDLIB | rtype::BGNSTR => {
                return Err(grammar(r.offset, "element not closed with ENDEL"))
            }
            _ => {}
        }
    }
}

/// Shared accumulator for the per-element attribute records.
#[derive(Default)]
struct ElementAttrs {
    layer: Option<i16>,
    datatype: Option<i16>,
    width: Option<i32>,
    pathtype: Option<i16>,
    sname: Option<String>,
    strans: Strans,
    colrow: Option<(i16, i16)>,
    xy: Option<Vec<(i32, i32)>>,
}

fn parse_attrs(it: &mut RecordIter<'_>, start: usize) -> Result<ElementAttrs, GdsError> {
    let mut a = ElementAttrs::default();
    loop {
        let offset = it.offset();
        let r = it
            .next()?
            .ok_or_else(|| grammar(offset, "stream ended inside an element"))?;
        match r.rtype {
            rtype::ENDEL => return Ok(a),
            rtype::LAYER => a.layer = Some(r.one_i16()?),
            rtype::DATATYPE => a.datatype = Some(r.one_i16()?),
            rtype::PATHTYPE => a.pathtype = Some(r.one_i16()?),
            rtype::WIDTH => {
                let v = r.i32s()?;
                if v.len() != 1 {
                    return Err(grammar(r.offset, "WIDTH must hold one i32"));
                }
                a.width = Some(v[0]);
            }
            rtype::SNAME => a.sname = Some(r.ascii()?),
            rtype::STRANS => {
                let flags = r.bitarray()?;
                a.strans.mirror_x = flags & 0x8000 != 0;
            }
            rtype::MAG => {
                let v = r.real8s()?;
                match v.as_slice() {
                    [m] if m.is_finite() && *m > 0.0 => a.strans.mag = *m,
                    _ => {
                        return Err(GdsError::RealOutOfRange(format!(
                            "MAG at byte {} must be one positive finite real",
                            r.offset
                        )))
                    }
                }
            }
            rtype::ANGLE => {
                let v = r.real8s()?;
                match v.as_slice() {
                    [d] if d.is_finite() => a.strans.angle_deg = *d,
                    _ => {
                        return Err(GdsError::RealOutOfRange(format!(
                            "ANGLE at byte {} must be one finite real",
                            r.offset
                        )))
                    }
                }
            }
            rtype::COLROW => {
                let v = r.i16s()?;
                if v.len() != 2 {
                    return Err(grammar(r.offset, "COLROW must hold two i16s"));
                }
                a.colrow = Some((v[0], v[1]));
            }
            rtype::XY => a.xy = Some(r.xy()?),
            rtype::ENDSTR | rtype::ENDLIB | rtype::BGNSTR => {
                return Err(grammar(start, "element not closed with ENDEL"))
            }
            _ => {} // ELFLAGS, PLEX, PROPATTR/PROPVALUE: ignored
        }
    }
}

fn parse_boundary(it: &mut RecordIter<'_>, start: usize) -> Result<GdsElement, GdsError> {
    let a = parse_attrs(it, start)?;
    let xy = a.xy.ok_or_else(|| grammar(start, "BOUNDARY without XY"))?;
    if xy.len() < 3 {
        return Err(grammar(
            start,
            format!("BOUNDARY with {} points needs at least 3", xy.len()),
        ));
    }
    Ok(GdsElement::Boundary {
        layer: a
            .layer
            .ok_or_else(|| grammar(start, "BOUNDARY without LAYER"))?,
        datatype: a
            .datatype
            .ok_or_else(|| grammar(start, "BOUNDARY without DATATYPE"))?,
        xy,
    })
}

fn parse_path(it: &mut RecordIter<'_>, start: usize) -> Result<GdsElement, GdsError> {
    let a = parse_attrs(it, start)?;
    let xy = a.xy.ok_or_else(|| grammar(start, "PATH without XY"))?;
    if xy.len() < 2 {
        return Err(grammar(start, "PATH needs at least 2 points"));
    }
    let width = a.width.unwrap_or(0);
    if width <= 0 {
        return Err(grammar(start, "PATH needs a positive WIDTH"));
    }
    Ok(GdsElement::Path {
        layer: a
            .layer
            .ok_or_else(|| grammar(start, "PATH without LAYER"))?,
        datatype: a
            .datatype
            .ok_or_else(|| grammar(start, "PATH without DATATYPE"))?,
        width,
        pathtype: a.pathtype.unwrap_or(0),
        xy,
    })
}

fn parse_ref(it: &mut RecordIter<'_>, start: usize, is_aref: bool) -> Result<GdsElement, GdsError> {
    let a = parse_attrs(it, start)?;
    let sname = a
        .sname
        .ok_or_else(|| grammar(start, "reference without SNAME"))?;
    if sname.is_empty() {
        return Err(grammar(start, "reference with an empty SNAME"));
    }
    let xy = a.xy.ok_or_else(|| grammar(start, "reference without XY"))?;
    let colrow = if is_aref {
        let (cols, rows) = a
            .colrow
            .ok_or_else(|| grammar(start, "AREF without COLROW"))?;
        if cols <= 0 || rows <= 0 {
            return Err(grammar(
                start,
                format!("AREF with non-positive COLROW {cols}x{rows}"),
            ));
        }
        if xy.len() != 3 {
            return Err(grammar(
                start,
                format!("AREF XY must hold 3 points, found {}", xy.len()),
            ));
        }
        Some((cols, rows))
    } else {
        if xy.len() != 1 {
            return Err(grammar(
                start,
                format!("SREF XY must hold 1 point, found {}", xy.len()),
            ));
        }
        None
    };
    Ok(GdsElement::Ref(GdsRef {
        sname,
        strans: a.strans,
        colrow,
        xy,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{dtype, put_ascii, put_empty, put_i16s, put_i32s, put_real8s, put_record};

    fn minimal_lib(body: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let mut out = Vec::new();
        put_i16s(&mut out, rtype::HEADER, &[600]);
        put_i16s(&mut out, rtype::BGNLIB, &[0; 12]);
        put_ascii(&mut out, rtype::LIBNAME, "LIB");
        put_real8s(&mut out, rtype::UNITS, &[1e-3, 1e-9]).unwrap();
        body(&mut out);
        put_empty(&mut out, rtype::ENDLIB);
        out
    }

    fn one_square_struct(out: &mut Vec<u8>, name: &str) {
        put_i16s(out, rtype::BGNSTR, &[0; 12]);
        put_ascii(out, rtype::STRNAME, name);
        put_empty(out, rtype::BOUNDARY);
        put_i16s(out, rtype::LAYER, &[1]);
        put_i16s(out, rtype::DATATYPE, &[0]);
        put_i32s(out, rtype::XY, &[0, 0, 100, 0, 100, 100, 0, 100, 0, 0]);
        put_empty(out, rtype::ENDEL);
        put_empty(out, rtype::ENDSTR);
    }

    #[test]
    fn parses_a_minimal_library() {
        let bytes = minimal_lib(|out| one_square_struct(out, "TOP"));
        let lib = parse_lib(&bytes).unwrap();
        assert_eq!(lib.name, "LIB");
        assert_eq!(lib.nm_per_dbu(), 1.0);
        assert_eq!(lib.structs.len(), 1);
        assert_eq!(lib.top_structs(), vec!["TOP"]);
        match &lib.structs[0].elements[0] {
            GdsElement::Boundary {
                layer,
                datatype,
                xy,
            } => {
                assert_eq!((*layer, *datatype), (1, 0));
                assert_eq!(xy.len(), 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_refs_and_arefs() {
        let bytes = minimal_lib(|out| {
            one_square_struct(out, "CELL");
            put_i16s(out, rtype::BGNSTR, &[0; 12]);
            put_ascii(out, rtype::STRNAME, "TOP");
            put_empty(out, rtype::SREF);
            put_ascii(out, rtype::SNAME, "CELL");
            put_record(out, rtype::STRANS, dtype::BITARRAY, &[0x80, 0x00]);
            put_real8s(out, rtype::MAG, &[2.0]).unwrap();
            put_real8s(out, rtype::ANGLE, &[90.0]).unwrap();
            put_i32s(out, rtype::XY, &[500, 600]);
            put_empty(out, rtype::ENDEL);
            put_empty(out, rtype::AREF);
            put_ascii(out, rtype::SNAME, "CELL");
            put_i16s(out, rtype::COLROW, &[3, 2]);
            put_i32s(out, rtype::XY, &[0, 0, 900, 0, 0, 800]);
            put_empty(out, rtype::ENDEL);
            put_empty(out, rtype::ENDSTR);
        });
        let lib = parse_lib(&bytes).unwrap();
        let top = lib.find_struct("TOP").unwrap();
        match &top.elements[0] {
            GdsElement::Ref(r) => {
                assert_eq!(r.sname, "CELL");
                assert!(r.strans.mirror_x);
                assert_eq!(r.strans.mag, 2.0);
                assert_eq!(r.strans.angle_deg, 90.0);
                assert_eq!(r.xy, vec![(500, 600)]);
                assert_eq!(r.colrow, None);
            }
            other => panic!("{other:?}"),
        }
        match &top.elements[1] {
            GdsElement::Ref(r) => {
                assert_eq!(r.colrow, Some((3, 2)));
                assert_eq!(r.xy.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(lib.top_structs(), vec!["TOP"]);
    }

    #[test]
    fn paths_parse_with_width() {
        let bytes = minimal_lib(|out| {
            put_i16s(out, rtype::BGNSTR, &[0; 12]);
            put_ascii(out, rtype::STRNAME, "W");
            put_empty(out, rtype::PATH);
            put_i16s(out, rtype::LAYER, &[2]);
            put_i16s(out, rtype::DATATYPE, &[0]);
            put_i16s(out, rtype::PATHTYPE, &[2]);
            put_i32s(out, rtype::WIDTH, &[80]);
            put_i32s(out, rtype::XY, &[0, 0, 1000, 0]);
            put_empty(out, rtype::ENDEL);
            put_empty(out, rtype::ENDSTR);
        });
        let lib = parse_lib(&bytes).unwrap();
        match &lib.structs[0].elements[0] {
            GdsElement::Path {
                width,
                pathtype,
                xy,
                ..
            } => {
                assert_eq!((*width, *pathtype), (80, 2));
                assert_eq!(xy.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_elements_and_texts_are_skipped() {
        let bytes = minimal_lib(|out| {
            put_i16s(out, rtype::BGNSTR, &[0; 12]);
            put_ascii(out, rtype::STRNAME, "T");
            // TEXT element with records we don't model.
            put_empty(out, rtype::TEXT);
            put_i16s(out, rtype::LAYER, &[1]);
            put_i32s(out, rtype::XY, &[5, 5]);
            put_ascii(out, rtype::SNAME, "ignored");
            put_empty(out, rtype::ENDEL);
            put_empty(out, rtype::ENDSTR);
        });
        let lib = parse_lib(&bytes).unwrap();
        assert!(lib.structs[0].elements.is_empty());
    }

    #[test]
    fn grammar_violations_are_typed() {
        // Missing UNITS.
        let mut out = Vec::new();
        put_i16s(&mut out, rtype::HEADER, &[600]);
        put_i16s(&mut out, rtype::BGNLIB, &[0; 12]);
        put_ascii(&mut out, rtype::LIBNAME, "LIB");
        put_i16s(&mut out, rtype::BGNSTR, &[0; 12]);
        assert!(matches!(parse_lib(&out), Err(GdsError::Grammar { .. })));

        // BOUNDARY without LAYER.
        let bytes = minimal_lib(|out| {
            put_i16s(out, rtype::BGNSTR, &[0; 12]);
            put_ascii(out, rtype::STRNAME, "B");
            put_empty(out, rtype::BOUNDARY);
            put_i32s(out, rtype::XY, &[0, 0, 1, 0, 1, 1]);
            put_empty(out, rtype::ENDEL);
            put_empty(out, rtype::ENDSTR);
        });
        assert!(matches!(parse_lib(&bytes), Err(GdsError::Grammar { .. })));

        // Duplicate structure names.
        let bytes = minimal_lib(|out| {
            one_square_struct(out, "A");
            one_square_struct(out, "A");
        });
        assert!(matches!(parse_lib(&bytes), Err(GdsError::Grammar { .. })));

        // Zero meters-per-dbu.
        let mut out = Vec::new();
        put_i16s(&mut out, rtype::HEADER, &[600]);
        put_i16s(&mut out, rtype::BGNLIB, &[0; 12]);
        put_ascii(&mut out, rtype::LIBNAME, "LIB");
        put_real8s(&mut out, rtype::UNITS, &[1e-3, 0.0]).unwrap();
        put_empty(&mut out, rtype::ENDLIB);
        assert!(matches!(parse_lib(&out), Err(GdsError::RealOutOfRange(_))));
    }

    #[test]
    fn every_truncation_point_errors_without_panic() {
        let bytes = minimal_lib(|out| one_square_struct(out, "TOP"));
        for cut in 0..bytes.len() - 1 {
            assert!(parse_lib(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(parse_lib(&bytes).is_ok());
    }
}
