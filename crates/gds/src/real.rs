//! The GDSII 8-byte excess-64 real codec.
//!
//! GDSII predates IEEE 754: a real is one sign bit, a 7-bit base-16
//! exponent biased by 64, and a 56-bit mantissa interpreted as a fraction
//! in `[1/16, 1)` (normalised: top nibble non-zero), so
//!
//! ```text
//! value = (-1)^sign · (mantissa / 2^56) · 16^(exponent - 64)
//! ```
//!
//! Every finite `f64` whose magnitude lies in the representable range
//! round-trips **bit-exactly** through this codec: a double has 53
//! significant bits and normalisation shifts it left by at most 3, which
//! still fits the 56-bit mantissa. Decoding multiplies the (≤ 53
//! significant bit) integer mantissa by an exact power of two — a single
//! correctly-rounded operation, exact for values we encoded ourselves.
//!
//! Out-of-range cases are explicit rather than silent: magnitudes at or
//! above `16^63` do not fit the 7-bit exponent and fail to encode;
//! magnitudes below the smallest normalised GDS real (`2^-260`, which
//! includes every IEEE subnormal) underflow to `0.0` by design. `-0.0`
//! canonicalises to `+0.0`.

use crate::error::GdsError;

/// Encodes an `f64` as a GDSII excess-64 real.
///
/// # Errors
///
/// [`GdsError::RealOutOfRange`] for non-finite values and magnitudes at or
/// above `16^63` (≈ `4.5e75`). Magnitudes below `2^-260` (including IEEE
/// subnormals) underflow to the zero encoding.
pub fn encode_real8(value: f64) -> Result<[u8; 8], GdsError> {
    if !value.is_finite() {
        return Err(GdsError::RealOutOfRange(format!(
            "{value} is not a finite number"
        )));
    }
    if value == 0.0 {
        // Covers -0.0 too: GDS has a single canonical zero.
        return Ok([0; 8]);
    }
    let bits = value.to_bits();
    let sign = (bits >> 63) as u8;
    let exp_raw = ((bits >> 52) & 0x7FF) as i32;
    let frac = bits & 0x000F_FFFF_FFFF_FFFF;
    // a = frac_full · 2^e2 with frac_full ∈ [2^52, 2^53) for normals.
    // Subnormals (exp_raw == 0) are below the GDS range and underflow.
    if exp_raw == 0 {
        return Ok([0; 8]);
    }
    let frac_full = frac | (1u64 << 52);
    let e2 = exp_raw - 1023 - 52;
    // Want a = M · 2^(4·E - 312) with M = frac_full << s, s ∈ 0..=3, so the
    // top nibble of the 56-bit mantissa is non-zero.
    let s = (e2 + 312).rem_euclid(4);
    let e16 = (e2 + 312 - s) / 4;
    if e16 > 127 {
        return Err(GdsError::RealOutOfRange(format!(
            "|{value}| is too large for a GDS real (>= 16^63)"
        )));
    }
    if e16 < 0 {
        // Below the smallest normalised GDS real: underflow to zero.
        return Ok([0; 8]);
    }
    let mantissa = frac_full << s; // < 2^56
    let mut out = [0u8; 8];
    out[0] = (sign << 7) | (e16 as u8);
    out[1..8].copy_from_slice(&mantissa.to_be_bytes()[1..8]);
    Ok(out)
}

/// Decodes a GDSII excess-64 real into an `f64`.
///
/// Total: every 8-byte pattern decodes (denormalised mantissas included).
/// The result is the correctly-rounded nearest `f64`.
pub fn decode_real8(bytes: &[u8; 8]) -> f64 {
    let sign = bytes[0] & 0x80 != 0;
    let e16 = (bytes[0] & 0x7F) as i32;
    let mut mantissa = 0u64;
    for &b in &bytes[1..8] {
        mantissa = (mantissa << 8) | b as u64;
    }
    if mantissa == 0 {
        return 0.0;
    }
    // mantissa < 2^56 always has an exact or correctly-rounded f64 image;
    // the power of two is exact, so the product is a single rounding.
    let value = mantissa as f64 * ((4 * e16 - 312) as f64).exp2();
    if sign {
        -value
    } else {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: f64) -> f64 {
        decode_real8(&encode_real8(v).unwrap())
    }

    #[test]
    fn known_encodings() {
        // 1.0 = (1/16) · 16^1: exponent 65, mantissa 0x10_0000_0000_0000.
        assert_eq!(encode_real8(1.0).unwrap(), [0x41, 0x10, 0, 0, 0, 0, 0, 0]);
        assert_eq!(encode_real8(-1.0).unwrap(), [0xC1, 0x10, 0, 0, 0, 0, 0, 0]);
        // 1e-9 (metres per dbu of a 1 nm grid) and 1e-3 round-trip; these
        // two appear in every UNITS record we write.
        assert_eq!(roundtrip(1e-9), 1e-9);
        assert_eq!(roundtrip(1e-3), 1e-3);
        assert_eq!(encode_real8(0.0).unwrap(), [0; 8]);
        assert_eq!(decode_real8(&[0; 8]), 0.0);
    }

    #[test]
    fn negative_zero_canonicalises() {
        assert_eq!(encode_real8(-0.0).unwrap(), [0; 8]);
        assert!(roundtrip(-0.0).to_bits() == 0.0f64.to_bits());
    }

    #[test]
    fn powers_of_two_and_integers_roundtrip_exactly() {
        for e in -200..200 {
            let v = (e as f64).exp2();
            assert_eq!(roundtrip(v).to_bits(), v.to_bits(), "2^{e}");
            assert_eq!(roundtrip(-v).to_bits(), (-v).to_bits(), "-2^{e}");
        }
        for i in 1..10_000i64 {
            let v = i as f64;
            assert_eq!(roundtrip(v), v, "{i}");
        }
    }

    #[test]
    fn awkward_fractions_roundtrip_bitwise() {
        for v in [
            0.1,
            0.2,
            0.1 + 0.2,
            1.0 / 3.0,
            std::f64::consts::PI,
            6.25e-10,
            1e-6,
            2.5e-3,
            f64::MIN_POSITIVE, // smallest normal: underflows to 0 is NOT ok here
        ] {
            if v >= (-260f64).exp2() {
                assert_eq!(roundtrip(v).to_bits(), v.to_bits(), "{v}");
            }
        }
    }

    #[test]
    fn subnormals_and_tiny_normals_underflow_to_zero() {
        assert_eq!(encode_real8(f64::MIN_POSITIVE / 4.0).unwrap(), [0; 8]);
        assert_eq!(encode_real8(5e-324).unwrap(), [0; 8]); // smallest subnormal
        assert_eq!(encode_real8((-270f64).exp2()).unwrap(), [0; 8]);
        // The smallest *representable* GDS magnitude still round-trips.
        let tiny = (-260f64).exp2();
        assert_eq!(roundtrip(tiny).to_bits(), tiny.to_bits());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(encode_real8(f64::NAN).is_err());
        assert!(encode_real8(f64::INFINITY).is_err());
        assert!(encode_real8(f64::NEG_INFINITY).is_err());
        assert!(encode_real8(1e76).is_err());
        // Just inside the range encodes.
        assert!(encode_real8(4e75).is_ok());
    }

    #[test]
    fn denormalised_foreign_mantissas_decode() {
        // A mantissa with a zero top nibble (never produced by our encoder,
        // but legal bytes): 2^-4 · 16^(65-64) = 1.0 expressed denormalised.
        let bytes = [0x41, 0x01, 0, 0, 0, 0, 0, 0];
        assert_eq!(decode_real8(&bytes), 1.0 / 16.0);
    }
}
