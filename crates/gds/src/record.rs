//! Record-level tokenizer and serialiser for the GDSII stream format.
//!
//! A GDSII file is a flat sequence of records. Each record starts with a
//! 4-byte header — a big-endian `u16` total length (header included), a
//! record-type byte, and a data-type byte — followed by `length - 4`
//! payload bytes. Record sizes are bounded by the `u16` length field
//! (payload ≤ 65 531 bytes), so the tokenizer never allocates
//! proportionally to attacker-controlled counts; a torn stream surfaces
//! as [`GdsError::Truncated`] at the exact byte offset.

use crate::error::GdsError;
use crate::real::decode_real8;

/// Record types used by this implementation (the subset every layout tool
/// emits; unknown types tokenize fine and are skipped at the grammar
/// layer).
pub mod rtype {
    /// Stream format version.
    pub const HEADER: u8 = 0x00;
    /// Library begin (modification timestamps).
    pub const BGNLIB: u8 = 0x01;
    /// Library name.
    pub const LIBNAME: u8 = 0x02;
    /// User units per DBU and metres per DBU.
    pub const UNITS: u8 = 0x03;
    /// Library end.
    pub const ENDLIB: u8 = 0x04;
    /// Structure begin (timestamps).
    pub const BGNSTR: u8 = 0x05;
    /// Structure name.
    pub const STRNAME: u8 = 0x06;
    /// Structure end.
    pub const ENDSTR: u8 = 0x07;
    /// Polygon element.
    pub const BOUNDARY: u8 = 0x08;
    /// Wire element.
    pub const PATH: u8 = 0x09;
    /// Structure reference.
    pub const SREF: u8 = 0x0A;
    /// Array structure reference.
    pub const AREF: u8 = 0x0B;
    /// Text element (tokenized, skipped by the flattener).
    pub const TEXT: u8 = 0x0C;
    /// Layer number.
    pub const LAYER: u8 = 0x0D;
    /// Datatype number.
    pub const DATATYPE: u8 = 0x0E;
    /// Path width (DBU).
    pub const WIDTH: u8 = 0x0F;
    /// Coordinate list.
    pub const XY: u8 = 0x10;
    /// Element end.
    pub const ENDEL: u8 = 0x11;
    /// Referenced structure name.
    pub const SNAME: u8 = 0x12;
    /// AREF columns and rows.
    pub const COLROW: u8 = 0x13;
    /// Transform flags (mirror bit 15).
    pub const STRANS: u8 = 0x1A;
    /// Magnification.
    pub const MAG: u8 = 0x1B;
    /// Rotation angle, degrees counter-clockwise.
    pub const ANGLE: u8 = 0x1C;
    /// Path end style.
    pub const PATHTYPE: u8 = 0x21;
}

/// Payload data types of the record header's fourth byte.
pub mod dtype {
    /// No payload.
    pub const NONE: u8 = 0x00;
    /// Bit array (`u16`).
    pub const BITARRAY: u8 = 0x01;
    /// Big-endian `i16`s.
    pub const I16: u8 = 0x02;
    /// Big-endian `i32`s.
    pub const I32: u8 = 0x03;
    /// 8-byte excess-64 reals.
    pub const REAL8: u8 = 0x05;
    /// ASCII string, NUL-padded to even length.
    pub const ASCII: u8 = 0x06;
}

/// Largest legal record payload: `u16::MAX` minus the 4-byte header,
/// rounded down to even.
pub const MAX_PAYLOAD: usize = 65_530;

/// Maximum XY points per record: `MAX_PAYLOAD / 8` coordinate pairs. With
/// the explicit closing point this is the classic "8191 vertices" limit.
pub const MAX_XY_POINTS: usize = MAX_PAYLOAD / 8;

/// One tokenized record (borrowing the stream's bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record<'a> {
    /// Byte offset of the record header in the stream.
    pub offset: usize,
    /// Record type byte.
    pub rtype: u8,
    /// Data type byte.
    pub dtype: u8,
    /// Payload bytes (`length - 4` of them).
    pub data: &'a [u8],
}

impl<'a> Record<'a> {
    fn type_check(&self, expected: u8, multiple: usize) -> Result<(), GdsError> {
        if self.dtype != expected {
            return Err(GdsError::BadRecord {
                offset: self.offset,
                reason: format!(
                    "record type {:#04x} has data type {:#04x}, expected {expected:#04x}",
                    self.rtype, self.dtype
                ),
            });
        }
        if multiple > 0 && !self.data.len().is_multiple_of(multiple) {
            return Err(GdsError::BadRecord {
                offset: self.offset,
                reason: format!(
                    "payload of {} bytes is not a multiple of {multiple}",
                    self.data.len()
                ),
            });
        }
        Ok(())
    }

    /// Payload as big-endian `i16`s.
    ///
    /// # Errors
    ///
    /// [`GdsError::BadRecord`] on a data-type or size mismatch.
    pub fn i16s(&self) -> Result<Vec<i16>, GdsError> {
        self.type_check(dtype::I16, 2)?;
        Ok(self
            .data
            .chunks_exact(2)
            .map(|c| i16::from_be_bytes([c[0], c[1]]))
            .collect())
    }

    /// Payload as one big-endian `i16`.
    ///
    /// # Errors
    ///
    /// [`GdsError::BadRecord`] unless the payload is exactly 2 bytes.
    pub fn one_i16(&self) -> Result<i16, GdsError> {
        let v = self.i16s()?;
        if v.len() != 1 {
            return Err(GdsError::BadRecord {
                offset: self.offset,
                reason: format!("expected one i16, found {}", v.len()),
            });
        }
        Ok(v[0])
    }

    /// Payload as a `u16` bit array (STRANS).
    ///
    /// # Errors
    ///
    /// [`GdsError::BadRecord`] unless the payload is a 2-byte bit array.
    pub fn bitarray(&self) -> Result<u16, GdsError> {
        self.type_check(dtype::BITARRAY, 2)?;
        if self.data.len() != 2 {
            return Err(GdsError::BadRecord {
                offset: self.offset,
                reason: format!("bit array of {} bytes, expected 2", self.data.len()),
            });
        }
        Ok(u16::from_be_bytes([self.data[0], self.data[1]]))
    }

    /// Payload as big-endian `i32`s.
    ///
    /// # Errors
    ///
    /// [`GdsError::BadRecord`] on a data-type or size mismatch.
    pub fn i32s(&self) -> Result<Vec<i32>, GdsError> {
        self.type_check(dtype::I32, 4)?;
        Ok(self
            .data
            .chunks_exact(4)
            .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Payload as `(x, y)` coordinate pairs.
    ///
    /// # Errors
    ///
    /// [`GdsError::BadRecord`] unless the payload is whole `i32` pairs.
    pub fn xy(&self) -> Result<Vec<(i32, i32)>, GdsError> {
        let v = self.i32s()?;
        if v.len() % 2 != 0 {
            return Err(GdsError::BadRecord {
                offset: self.offset,
                reason: "XY payload with an odd coordinate count".to_string(),
            });
        }
        Ok(v.chunks_exact(2).map(|c| (c[0], c[1])).collect())
    }

    /// Payload as excess-64 reals.
    ///
    /// # Errors
    ///
    /// [`GdsError::BadRecord`] on a data-type or size mismatch.
    pub fn real8s(&self) -> Result<Vec<f64>, GdsError> {
        self.type_check(dtype::REAL8, 8)?;
        Ok(self
            .data
            .chunks_exact(8)
            .map(|c| decode_real8(c.try_into().expect("chunks_exact yields 8 bytes")))
            .collect())
    }

    /// Payload as an ASCII string (trailing NUL padding stripped).
    ///
    /// # Errors
    ///
    /// [`GdsError::BadRecord`] for a non-ASCII payload or wrong data type.
    pub fn ascii(&self) -> Result<String, GdsError> {
        self.type_check(dtype::ASCII, 0)?;
        let trimmed = match self.data.iter().rposition(|&b| b != 0) {
            Some(last) => &self.data[..=last],
            None => &[],
        };
        if !trimmed.is_ascii() {
            return Err(GdsError::BadRecord {
                offset: self.offset,
                reason: "non-ASCII bytes in a string record".to_string(),
            });
        }
        Ok(String::from_utf8_lossy(trimmed).into_owned())
    }
}

/// Iterator of records over a byte stream.
#[derive(Clone, Debug)]
pub struct RecordIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> RecordIter<'a> {
    /// Tokenizes `bytes` from the start.
    pub fn new(bytes: &'a [u8]) -> RecordIter<'a> {
        RecordIter { bytes, pos: 0 }
    }

    /// Current byte offset (start of the next record).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Reads the next record; `None` cleanly at end of stream.
    ///
    /// # Errors
    ///
    /// [`GdsError::Truncated`] when the stream ends mid-record,
    /// [`GdsError::BadRecord`] for an impossible length field.
    #[allow(clippy::should_implement_trait)] // fallible iteration
    pub fn next(&mut self) -> Result<Option<Record<'a>>, GdsError> {
        let offset = self.pos;
        let remaining = &self.bytes[self.pos.min(self.bytes.len())..];
        if remaining.is_empty() {
            return Ok(None);
        }
        // Trailing NUL padding to a block boundary is legal stream tail.
        if remaining.len() < 4 {
            if remaining.iter().all(|&b| b == 0) {
                self.pos = self.bytes.len();
                return Ok(None);
            }
            return Err(GdsError::Truncated(offset));
        }
        let length = u16::from_be_bytes([remaining[0], remaining[1]]) as usize;
        if length == 0 {
            // A zero length with NUL tail is padding; anything else is torn.
            if remaining.iter().all(|&b| b == 0) {
                self.pos = self.bytes.len();
                return Ok(None);
            }
            return Err(GdsError::BadRecord {
                offset,
                reason: "zero-length record".to_string(),
            });
        }
        if length < 4 || !length.is_multiple_of(2) {
            return Err(GdsError::BadRecord {
                offset,
                reason: format!("impossible record length {length}"),
            });
        }
        if length > remaining.len() {
            return Err(GdsError::Truncated(offset));
        }
        let record = Record {
            offset,
            rtype: remaining[2],
            dtype: remaining[3],
            data: &remaining[4..length],
        };
        self.pos += length;
        Ok(Some(record))
    }
}

/// Appends one record (header + payload) to `out`.
///
/// # Panics
///
/// Panics when `data` exceeds [`MAX_PAYLOAD`] — writer-side record sizing
/// is the caller's bug (the XY splitter guarantees the bound for
/// geometry), not an input-data condition.
pub fn put_record(out: &mut Vec<u8>, rtype: u8, dtype: u8, data: &[u8]) {
    assert!(
        data.len() <= MAX_PAYLOAD && data.len().is_multiple_of(2),
        "record payload of {} bytes is unencodable",
        data.len()
    );
    let length = (data.len() + 4) as u16;
    out.extend_from_slice(&length.to_be_bytes());
    out.push(rtype);
    out.push(dtype);
    out.extend_from_slice(data);
}

/// Appends a no-payload record.
pub fn put_empty(out: &mut Vec<u8>, rtype: u8) {
    put_record(out, rtype, dtype::NONE, &[]);
}

/// Appends an `i16` record.
pub fn put_i16s(out: &mut Vec<u8>, rtype: u8, values: &[i16]) {
    let mut data = Vec::with_capacity(values.len() * 2);
    for v in values {
        data.extend_from_slice(&v.to_be_bytes());
    }
    put_record(out, rtype, dtype::I16, &data);
}

/// Appends an `i32` record.
pub fn put_i32s(out: &mut Vec<u8>, rtype: u8, values: &[i32]) {
    let mut data = Vec::with_capacity(values.len() * 4);
    for v in values {
        data.extend_from_slice(&v.to_be_bytes());
    }
    put_record(out, rtype, dtype::I32, &data);
}

/// Appends an ASCII record, NUL-padded to even length.
///
/// # Panics
///
/// Panics on non-ASCII names (writer-side data is repo-controlled).
pub fn put_ascii(out: &mut Vec<u8>, rtype: u8, text: &str) {
    assert!(text.is_ascii(), "GDS strings must be ASCII: {text:?}");
    let mut data = text.as_bytes().to_vec();
    if !data.len().is_multiple_of(2) {
        data.push(0);
    }
    put_record(out, rtype, dtype::ASCII, &data);
}

/// Appends a record of excess-64 reals.
///
/// # Errors
///
/// [`GdsError::RealOutOfRange`] when a value does not encode.
pub fn put_real8s(out: &mut Vec<u8>, rtype: u8, values: &[f64]) -> Result<(), GdsError> {
    let mut data = Vec::with_capacity(values.len() * 8);
    for &v in values {
        data.extend_from_slice(&crate::real::encode_real8(v)?);
    }
    put_record(out, rtype, dtype::REAL8, &data);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_payload_kind() {
        let mut out = Vec::new();
        put_i16s(&mut out, rtype::LAYER, &[7]);
        put_i32s(&mut out, rtype::XY, &[0, 0, 10, 0, 10, 20, 0, 20, 0, 0]);
        put_ascii(&mut out, rtype::STRNAME, &"TOP".to_string());
        put_real8s(&mut out, rtype::UNITS, &[1e-3, 1e-9]).unwrap();
        put_empty(&mut out, rtype::ENDEL);

        let mut it = RecordIter::new(&out);
        let r = it.next().unwrap().unwrap();
        assert_eq!((r.rtype, r.one_i16().unwrap()), (rtype::LAYER, 7));
        let r = it.next().unwrap().unwrap();
        assert_eq!(r.xy().unwrap().len(), 5);
        let r = it.next().unwrap().unwrap();
        assert_eq!(r.ascii().unwrap(), "TOP");
        let r = it.next().unwrap().unwrap();
        assert_eq!(r.real8s().unwrap(), vec![1e-3, 1e-9]);
        let r = it.next().unwrap().unwrap();
        assert_eq!((r.rtype, r.data.len()), (rtype::ENDEL, 0));
        assert!(it.next().unwrap().is_none());
    }

    #[test]
    fn odd_length_names_pad_to_even() {
        let mut out = Vec::new();
        put_ascii(&mut out, rtype::LIBNAME, "ODD");
        assert_eq!(out.len() % 2, 0);
        let r = RecordIter::new(&out).next().unwrap().unwrap();
        assert_eq!(r.ascii().unwrap(), "ODD");
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut out = Vec::new();
        put_i32s(&mut out, rtype::XY, &[1, 2, 3, 4]);
        for cut in 1..out.len() {
            let prefix = &out[..cut];
            let mut it = RecordIter::new(prefix);
            match it.next() {
                Err(GdsError::Truncated(0)) => {}
                // An all-NUL prefix is indistinguishable from legal tail
                // padding at this layer; the grammar parser rejects it.
                Ok(None) if prefix.iter().all(|&b| b == 0) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn nul_tail_padding_is_clean_eof() {
        let mut out = Vec::new();
        put_empty(&mut out, rtype::ENDLIB);
        out.extend_from_slice(&[0u8; 6]);
        let mut it = RecordIter::new(&out);
        assert!(it.next().unwrap().is_some());
        assert!(it.next().unwrap().is_none());
        // But a non-NUL byte inside the padding is garbage, not padding.
        let mut torn = out.clone();
        torn.push(0x13);
        let mut it = RecordIter::new(&torn);
        let _ = it.next().unwrap();
        assert!(matches!(it.next(), Err(GdsError::BadRecord { .. })));
    }

    #[test]
    fn impossible_lengths_rejected() {
        // length 2 (< 4).
        assert!(matches!(
            RecordIter::new(&[0, 2, 0, 0]).next(),
            Err(GdsError::BadRecord { .. })
        ));
        // Odd length.
        assert!(matches!(
            RecordIter::new(&[0, 5, 0, 0, 0]).next(),
            Err(GdsError::BadRecord { .. })
        ));
        // Zero length followed by garbage.
        assert!(matches!(
            RecordIter::new(&[0, 0, 9, 9]).next(),
            Err(GdsError::BadRecord { .. })
        ));
    }

    #[test]
    fn accessor_type_mismatches_are_errors() {
        let mut out = Vec::new();
        put_i16s(&mut out, rtype::LAYER, &[1]);
        let r = RecordIter::new(&out).next().unwrap().unwrap();
        assert!(r.i32s().is_err());
        assert!(r.ascii().is_err());
        assert!(r.real8s().is_err());
        assert!(r.bitarray().is_err());
        // Wrong element count.
        let mut out = Vec::new();
        put_i16s(&mut out, rtype::LAYER, &[1, 2]);
        let r = RecordIter::new(&out).next().unwrap().unwrap();
        assert!(r.one_i16().is_err());
    }
}
