//! Vertex-count splitter for the GDS XY record limit.
//!
//! A BOUNDARY XY record holds at most 8191 points including the explicit
//! closing point, so a polygon may carry 8190 distinct vertices. Spline
//! sampling at high densities can exceed that; oversized polygons are
//! bisected with a Sutherland–Hodgman half-plane clip along the longer
//! bounding-box axis until every piece fits. Pieces share the cut line
//! exactly (both sides interpolate the same crossing points), so the
//! union of the written pieces covers the original region.
//!
//! Sutherland–Hodgman joins disjoint pieces of a concave polygon with
//! zero-width bridges along the cut line; for the smooth, mostly convex
//! contours the OPC engine emits these do not occur in practice, and a
//! bridge is area-neutral when they do.

use cardopc_geometry::{Point, Polygon};

use crate::error::GdsError;

/// Splits `poly` into pieces of at most `max_vertices` distinct vertices.
///
/// # Errors
///
/// [`GdsError::TooManyVertices`] if bisection stops making progress
/// (pathological input) before every piece fits.
pub fn split_polygon(poly: &Polygon, max_vertices: usize) -> Result<Vec<Polygon>, GdsError> {
    let mut out = Vec::new();
    split_into(poly.clone(), max_vertices.max(3), 0, &mut out)?;
    Ok(out)
}

fn split_into(
    poly: Polygon,
    max_vertices: usize,
    depth: usize,
    out: &mut Vec<Polygon>,
) -> Result<(), GdsError> {
    if poly.len() <= max_vertices {
        if poly.len() >= 3 {
            out.push(poly);
        }
        return Ok(());
    }
    // Each level halves the area; 48 levels is far past any real contour.
    if depth > 48 {
        return Err(GdsError::TooManyVertices(poly.len()));
    }
    let bbox = poly.bbox();
    let vertical_cut = bbox.width() >= bbox.height();
    let mid = if vertical_cut {
        (bbox.min.x + bbox.max.x) / 2.0
    } else {
        (bbox.min.y + bbox.max.y) / 2.0
    };
    let coord = |p: Point| if vertical_cut { p.x } else { p.y };
    let low = clip_halfplane(poly.vertices(), |p| coord(p) - mid);
    let high = clip_halfplane(poly.vertices(), |p| mid - coord(p));
    // A cut through the bbox midpoint must strictly shrink both halves;
    // if it doesn't, the polygon is degenerate beyond repair.
    if low.len() >= poly.len() + 2 && high.len() >= poly.len() + 2 {
        return Err(GdsError::TooManyVertices(poly.len()));
    }
    split_into(Polygon::new(low), max_vertices, depth + 1, out)?;
    split_into(Polygon::new(high), max_vertices, depth + 1, out)
}

/// Keeps the region where `f(p) <= 0`, interpolating edge crossings.
fn clip_halfplane(vertices: &[Point], f: impl Fn(Point) -> f64) -> Vec<Point> {
    let mut out = Vec::with_capacity(vertices.len() + 2);
    for i in 0..vertices.len() {
        let a = vertices[i];
        let b = vertices[(i + 1) % vertices.len()];
        let (fa, fb) = (f(a), f(b));
        if fa <= 0.0 {
            out.push(a);
        }
        if (fa < 0.0 && fb > 0.0) || (fa > 0.0 && fb < 0.0) {
            let t = fa / (fa - fb);
            out.push(a.lerp(b, t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle(n: usize, r: f64) -> Polygon {
        Polygon::new(
            (0..n)
                .map(|i| {
                    let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                    Point::new(r * a.cos(), r * a.sin())
                })
                .collect(),
        )
    }

    #[test]
    fn small_polygons_pass_through() {
        let p = circle(64, 1000.0);
        let pieces = split_polygon(&p, 8190).unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].len(), 64);
    }

    #[test]
    fn oversized_polygons_split_and_conserve_area() {
        let p = circle(10_000, 1000.0);
        let pieces = split_polygon(&p, 8190).unwrap();
        assert!(pieces.len() >= 2);
        for piece in &pieces {
            assert!(piece.len() <= 8190, "piece with {} vertices", piece.len());
            assert!(piece.len() >= 3);
        }
        let total: f64 = pieces.iter().map(|p| p.area()).sum();
        assert!(
            (total - p.area()).abs() < p.area() * 1e-9,
            "area {total} vs {}",
            p.area()
        );
    }

    #[test]
    fn tiny_limit_still_terminates() {
        let p = circle(500, 100.0);
        let pieces = split_polygon(&p, 16).unwrap();
        let total: f64 = pieces.iter().map(|p| p.area()).sum();
        assert!((total - p.area()).abs() < p.area() * 1e-6);
        for piece in &pieces {
            assert!(piece.len() <= 16);
        }
    }

    #[test]
    fn rectangles_split_along_the_long_axis() {
        // A long thin rect forced to split cuts in x, not y.
        let p = Polygon::new(
            (0..100)
                .map(|i| Point::new(i as f64 * 10.0, 0.0))
                .chain((0..100).map(|i| Point::new(990.0 - i as f64 * 10.0, 50.0)))
                .collect(),
        );
        let pieces = split_polygon(&p, 64).unwrap();
        for piece in &pieces {
            assert!(piece.bbox().width() <= 500.0 + 1e-9);
        }
    }
}
