//! Deterministic, byte-stable GDSII library writer.
//!
//! Timestamps are fixed at zero so the same geometry always serialises
//! to the same bytes — the round-trip determinism tests `cmp` whole
//! files across worker counts and cache states. Coordinates are given in
//! nanometres and quantised to the library's database unit with a single
//! `round()` (ties away from zero, the deterministic IEEE mode);
//! anything outside `i32` after quantisation is a typed overflow error.
//! Polygons beyond the 8191-point XY record limit are bisected by
//! [`crate::split::split_polygon`] before encoding.

use cardopc_geometry::Polygon;

use crate::error::GdsError;
use crate::record::{put_ascii, put_empty, put_i16s, put_real8s, put_record, rtype, MAX_XY_POINTS};
use crate::split::split_polygon;

/// Streaming writer for one GDSII library.
#[derive(Debug)]
pub struct GdsWriter {
    nm_per_dbu: f64,
    out: Vec<u8>,
    in_struct: bool,
    finished: bool,
}

impl GdsWriter {
    /// Starts a library called `lib_name` with a grid of `nm_per_dbu`
    /// nanometres per database unit (`1.0` for target layouts, `0.01`
    /// for curvilinear masks). The user unit is fixed at 1 µm.
    ///
    /// # Errors
    ///
    /// [`GdsError::RealOutOfRange`] for a non-positive or non-finite
    /// grid.
    pub fn new(lib_name: &str, nm_per_dbu: f64) -> Result<GdsWriter, GdsError> {
        if !(nm_per_dbu.is_finite() && nm_per_dbu > 0.0) {
            return Err(GdsError::RealOutOfRange(format!(
                "nm-per-dbu {nm_per_dbu} must be a positive finite real"
            )));
        }
        let mut out = Vec::new();
        put_i16s(&mut out, rtype::HEADER, &[600]);
        // Fixed zero timestamps: byte-stable output by construction.
        put_i16s(&mut out, rtype::BGNLIB, &[0; 12]);
        put_ascii(&mut out, rtype::LIBNAME, lib_name);
        put_real8s(
            &mut out,
            rtype::UNITS,
            &[nm_per_dbu * 1e-3, nm_per_dbu * 1e-9],
        )?;
        Ok(GdsWriter {
            nm_per_dbu,
            out,
            in_struct: false,
            finished: false,
        })
    }

    /// Nanometres per database unit this writer quantises to.
    pub fn nm_per_dbu(&self) -> f64 {
        self.nm_per_dbu
    }

    /// Opens a structure.
    ///
    /// # Panics
    ///
    /// Panics when a structure is already open (writer misuse, not a
    /// data condition).
    pub fn begin_struct(&mut self, name: &str) {
        assert!(!self.in_struct && !self.finished, "structure already open");
        put_i16s(&mut self.out, rtype::BGNSTR, &[0; 12]);
        put_ascii(&mut self.out, rtype::STRNAME, name);
        self.in_struct = true;
    }

    /// Closes the open structure.
    ///
    /// # Panics
    ///
    /// Panics when no structure is open.
    pub fn end_struct(&mut self) {
        assert!(self.in_struct, "no structure open");
        put_empty(&mut self.out, rtype::ENDSTR);
        self.in_struct = false;
    }

    /// Writes a polygon (vertices in nm) as one or more BOUNDARY
    /// elements on `layer:datatype`, splitting to honour the XY record
    /// limit.
    ///
    /// # Errors
    ///
    /// [`GdsError::CoordinateOverflow`] when a quantised coordinate
    /// leaves `i32`, [`GdsError::TooManyVertices`] if splitting cannot
    /// converge, [`GdsError::Grammar`] for a degenerate polygon.
    ///
    /// # Panics
    ///
    /// Panics when no structure is open.
    pub fn boundary(
        &mut self,
        layer: i16,
        datatype: i16,
        polygon: &Polygon,
    ) -> Result<(), GdsError> {
        assert!(self.in_struct, "no structure open");
        if polygon.len() < 3 {
            return Err(GdsError::Grammar {
                offset: self.out.len(),
                reason: format!("polygon with {} vertices cannot be written", polygon.len()),
            });
        }
        // The closing point is written explicitly, so a record fits
        // MAX_XY_POINTS - 1 distinct vertices.
        for piece in split_polygon(polygon, MAX_XY_POINTS - 1)? {
            let mut dbu: Vec<i32> = Vec::with_capacity(piece.len() * 2 + 2);
            for v in piece.vertices() {
                dbu.push(self.quantise(v.x)?);
                dbu.push(self.quantise(v.y)?);
            }
            // Close the ring.
            dbu.push(dbu[0]);
            dbu.push(dbu[1]);
            put_empty(&mut self.out, rtype::BOUNDARY);
            put_i16s(&mut self.out, rtype::LAYER, &[layer]);
            put_i16s(&mut self.out, rtype::DATATYPE, &[datatype]);
            let mut data = Vec::with_capacity(dbu.len() * 4);
            for c in &dbu {
                data.extend_from_slice(&c.to_be_bytes());
            }
            put_record(&mut self.out, rtype::XY, crate::record::dtype::I32, &data);
            put_empty(&mut self.out, rtype::ENDEL);
        }
        Ok(())
    }

    fn quantise(&self, nm: f64) -> Result<i32, GdsError> {
        let dbu = (nm / self.nm_per_dbu).round();
        if !dbu.is_finite() || dbu < i32::MIN as f64 || dbu > i32::MAX as f64 {
            return Err(GdsError::CoordinateOverflow(format!(
                "{nm} nm does not fit a 32-bit database unit at {} nm/dbu",
                self.nm_per_dbu
            )));
        }
        Ok(dbu as i32)
    }

    /// Terminates the library and returns the finished byte stream.
    ///
    /// # Panics
    ///
    /// Panics when a structure is still open.
    pub fn finish(mut self) -> Vec<u8> {
        assert!(!self.in_struct, "structure still open");
        put_empty(&mut self.out, rtype::ENDLIB);
        self.finished = true;
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::{flatten, FlattenLimits};
    use crate::model::LayerFilter;
    use crate::read::parse_lib;
    use cardopc_geometry::Point;

    #[test]
    fn written_library_reparses_identically() {
        let mut w = GdsWriter::new("MASK", 1.0).unwrap();
        w.begin_struct("TOP");
        let square = Polygon::rect(Point::new(0.0, 0.0), Point::new(100.0, 50.0));
        w.boundary(7, 2, &square).unwrap();
        w.end_struct();
        let bytes = w.finish();

        let lib = parse_lib(&bytes).unwrap();
        assert_eq!(lib.name, "MASK");
        assert_eq!(lib.nm_per_dbu(), 1.0);
        let shapes = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        assert_eq!(shapes.len(), 1);
        assert_eq!((shapes[0].layer, shapes[0].datatype), (7, 2));
        assert_eq!(shapes[0].polygon.area(), 5000.0);
    }

    #[test]
    fn output_is_byte_stable() {
        let build = || {
            let mut w = GdsWriter::new("MASK", 0.01).unwrap();
            w.begin_struct("TOP");
            let poly = Polygon::new(
                (0..128)
                    .map(|i| {
                        let a = 2.0 * std::f64::consts::PI * i as f64 / 128.0;
                        Point::new(70.0 * a.cos() + 100.0, 70.0 * a.sin() + 100.0)
                    })
                    .collect(),
            );
            w.boundary(1, 0, &poly).unwrap();
            w.end_struct();
            w.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn subnanometre_grid_preserves_curvature() {
        let mut w = GdsWriter::new("MASK", 0.01).unwrap();
        w.begin_struct("TOP");
        // A vertex at a 0.25 nm offset survives a 0.01 nm grid exactly.
        let poly = Polygon::new(vec![
            Point::new(0.25, 0.0),
            Point::new(100.07, 0.0),
            Point::new(100.07, 55.31),
            Point::new(0.25, 55.31),
        ]);
        w.boundary(1, 0, &poly).unwrap();
        w.end_struct();
        let lib = parse_lib(&w.finish()).unwrap();
        let shapes = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        let bbox = shapes[0].polygon.bbox();
        assert!((bbox.min.x - 0.25).abs() < 1e-9);
        assert!((bbox.max.y - 55.31).abs() < 1e-9);
    }

    #[test]
    fn oversized_polygons_split_on_write() {
        let mut w = GdsWriter::new("MASK", 1.0).unwrap();
        w.begin_struct("TOP");
        let big = Polygon::new(
            (0..10_000)
                .map(|i| {
                    let a = 2.0 * std::f64::consts::PI * i as f64 / 10_000.0;
                    Point::new(5000.0 * a.cos(), 5000.0 * a.sin())
                })
                .collect(),
        );
        w.boundary(1, 0, &big).unwrap();
        w.end_struct();
        let lib = parse_lib(&w.finish()).unwrap();
        let shapes = flatten(&lib, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        assert!(shapes.len() >= 2);
        let total: f64 = shapes.iter().map(|s| s.polygon.area()).sum();
        assert!((total - big.area()).abs() / big.area() < 1e-3);
    }

    #[test]
    fn overflow_and_degenerate_inputs_are_typed_errors() {
        let mut w = GdsWriter::new("MASK", 0.01).unwrap();
        w.begin_struct("TOP");
        let far = Polygon::rect(Point::new(1e12, 0.0), Point::new(1e12 + 10.0, 10.0));
        assert!(matches!(
            w.boundary(1, 0, &far),
            Err(GdsError::CoordinateOverflow(_))
        ));
        let line = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert!(w.boundary(1, 0, &line).is_err());
        assert!(GdsWriter::new("X", 0.0).is_err());
        assert!(GdsWriter::new("X", f64::NAN).is_err());
    }
}
