//! Property tests for the GDS codec, winding normalisation, transform
//! composition, and malformed-input robustness.

use cardopc_gds::model::Strans;
use cardopc_gds::{
    decode_real8, encode_real8, flatten, parse_lib, FlattenLimits, GdsError, GdsWriter,
    LayerFilter, Trans,
};
use cardopc_geometry::{Orientation, Point, Polygon, SplitMix64};
use proptest::prelude::*;

/// Uniform over *all* 2^64 bit patterns: normals, subnormals, ±0, NaN,
/// infinities — the codec must handle every one without panicking.
fn arb_bits() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

/// Smallest normalised GDS real: `(1/16) · 16^-64 = 2^-260`.
const GDS_MIN: f64 = 5.397605346934028e-79;

proptest! {
    #[test]
    fn real8_total_over_all_bit_patterns(v in arb_bits()) {
        match encode_real8(v) {
            Ok(bytes) => {
                let back = decode_real8(&bytes);
                if v == 0.0 || v.abs() < GDS_MIN {
                    // ±0 and underflow canonicalise to +0.
                    prop_assert_eq!(back.to_bits(), 0.0f64.to_bits());
                } else {
                    prop_assert_eq!(back.to_bits(), v.to_bits());
                }
            }
            Err(_) => {
                // Only non-finite values and magnitudes >= 16^63 may fail.
                prop_assert!(!v.is_finite() || v.abs() >= 16f64.powi(63));
            }
        }
    }

    #[test]
    fn real8_in_range_roundtrips_bitwise(me in (-1e9f64..1e9, -60i32..60)) {
        let (m, e) = me;
        let v = m * (e as f64).exp2();
        prop_assume!(v != 0.0 && v.abs() >= GDS_MIN);
        let back = decode_real8(&encode_real8(v).unwrap());
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn flatten_normalises_winding(
        origin in (-5e3f64..5e3, -5e3f64..5e3),
        size in (10f64..500.0, 10f64..500.0),
        mirror in 0u8..2,
        quarter in 0u8..4,
        reversed in 0u8..2,
    ) {
        let ((x0, y0), (w, h)) = (origin, size);
        // Write a rectangle with either winding under a possibly
        // orientation-flipping transform; the flattened polygon must
        // always come out CCW with the same area.
        let mut vertices = vec![
            Point::new(x0, y0),
            Point::new(x0 + w, y0),
            Point::new(x0 + w, y0 + h),
            Point::new(x0, y0 + h),
        ];
        if reversed == 1 {
            vertices.reverse();
        }
        let mut writer = GdsWriter::new("P", 1.0).unwrap();
        writer.begin_struct("CELL");
        writer.boundary(1, 0, &Polygon::new(vertices)).unwrap();
        writer.end_struct();
        let cell_bytes = writer.finish();
        let lib = parse_lib(&cell_bytes).unwrap();
        let strans = Strans {
            mirror_x: mirror == 1,
            mag: 1.0,
            angle_deg: quarter as f64 * 90.0,
        };
        // Re-emit the cell under a reference by hand-building the model.
        let mut lib2 = lib.clone();
        lib2.structs.push(cardopc_gds::GdsStruct {
            name: "TOP".into(),
            elements: vec![cardopc_gds::GdsElement::Ref(cardopc_gds::GdsRef {
                sname: "CELL".into(),
                strans,
                colrow: None,
                xy: vec![(100, -200)],
            })],
        });
        let shapes = flatten(&lib2, "TOP", LayerFilter::All, FlattenLimits::default()).unwrap();
        prop_assert_eq!(shapes.len(), 1);
        let p = &shapes[0].polygon;
        prop_assert!(matches!(p.orientation(), Orientation::CounterClockwise));
        // The writer quantises each vertex to the 1 nm grid independently.
        let expected =
            ((x0 + w).round() - x0.round()) * ((y0 + h).round() - y0.round());
        prop_assert!((p.area() - expected).abs() < 1e-6);
    }

    #[test]
    fn transform_composition_matches_scalar_reference(
        p in (-1e4f64..1e4, -1e4f64..1e4),
        o1 in (-1e4f64..1e4, -1e4f64..1e4),
        o2 in (-1e4f64..1e4, -1e4f64..1e4),
        angles in (0f64..360.0, 0f64..360.0),
        mags in (0.25f64..4.0, 0.25f64..4.0),
        mirrors in 0u8..4,
    ) {
        let ((x, y), (ox1, oy1), (ox2, oy2)) = (p, o1, o2);
        let ((a1, a2), (m1, m2)) = (angles, mags);
        let s1 = Strans { mirror_x: mirrors & 1 != 0, mag: m1, angle_deg: a1 };
        let s2 = Strans { mirror_x: mirrors & 2 != 0, mag: m2, angle_deg: a2 };
        let t1 = Trans::from_strans(s1, (ox1, oy1));
        let t2 = Trans::from_strans(s2, (ox2, oy2));

        // Scalar reference: mirror, then rotate, then scale, then move.
        fn reference(s: Strans, origin: (f64, f64), p: (f64, f64)) -> (f64, f64) {
            let (px, py) = (p.0, if s.mirror_x { -p.1 } else { p.1 });
            let rad = s.angle_deg.to_radians();
            let (cos, sin) = (rad.cos(), rad.sin());
            let (rx, ry) = (px * cos - py * sin, px * sin + py * cos);
            (rx * s.mag + origin.0, ry * s.mag + origin.1)
        }

        // Composition applies the inner transform first.
        let via_compose = t1.compose(&t2).apply((x, y));
        let via_scalar = reference(s1, (ox1, oy1), reference(s2, (ox2, oy2), (x, y)));
        let scale = via_scalar.0.abs().max(via_scalar.1.abs()).max(1.0);
        prop_assert!((via_compose.0 - via_scalar.0).abs() < 1e-9 * scale);
        prop_assert!((via_compose.1 - via_scalar.1).abs() < 1e-9 * scale);

        // Orientation flip tracks the mirror parity.
        let flips = (mirrors & 1 != 0) ^ (mirrors & 2 != 0);
        prop_assert_eq!(t1.compose(&t2).det() < 0.0, flips);
    }
}

/// Builds a small but representative library: two cells, an SREF with
/// rotation/mirror, an AREF lattice, and a PATH.
fn sample_library() -> Vec<u8> {
    let mut w = GdsWriter::new("FUZZ", 1.0).unwrap();
    w.begin_struct("CELL");
    w.boundary(
        1,
        0,
        &Polygon::rect(Point::new(0.0, 0.0), Point::new(70.0, 70.0)),
    )
    .unwrap();
    w.boundary(
        2,
        1,
        &Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(120.0, 0.0),
            Point::new(120.0, 40.0),
            Point::new(40.0, 40.0),
            Point::new(40.0, 120.0),
            Point::new(0.0, 120.0),
        ]),
    )
    .unwrap();
    w.end_struct();
    w.begin_struct("TOP");
    w.boundary(
        1,
        0,
        &Polygon::rect(Point::new(-50.0, -50.0), Point::new(10.0, 10.0)),
    )
    .unwrap();
    w.end_struct();
    w.finish()
}

#[test]
fn truncation_never_panics() {
    let bytes = sample_library();
    assert!(parse_lib(&bytes).is_ok());
    for cut in 0..bytes.len() {
        // Every proper prefix must produce a typed error, not a panic.
        match parse_lib(&bytes[..cut]) {
            Err(_) => {}
            Ok(lib) => panic!("prefix of {cut} bytes parsed as {lib:?}"),
        }
    }
}

#[test]
fn seeded_byte_flips_never_panic() {
    let bytes = sample_library();
    let mut rng = SplitMix64::new(0x6D5_F00D);
    for _ in 0..2000 {
        let mut mutated = bytes.clone();
        // 1–4 random byte flips per case.
        let flips = 1 + (rng.next_u64() % 4) as usize;
        for _ in 0..flips {
            let at = (rng.next_u64() as usize) % mutated.len();
            mutated[at] ^= (rng.next_u64() % 255 + 1) as u8;
        }
        // Parse and, when parsing survives, flatten: neither may panic,
        // and flattening stays within its resource limits.
        if let Ok(lib) = parse_lib(&mutated) {
            let limits = FlattenLimits {
                max_depth: 16,
                max_shapes: 10_000,
            };
            for top in lib.top_structs() {
                let top = top.to_string();
                match flatten(&lib, &top, LayerFilter::All, limits) {
                    Ok(shapes) => assert!(shapes.len() <= 10_000),
                    Err(
                        GdsError::UnknownStructure(_)
                        | GdsError::CircularReference(_)
                        | GdsError::RecursionLimit(_)
                        | GdsError::ShapeBudget(_)
                        | GdsError::CoordinateOverflow(_),
                    ) => {}
                    Err(other) => panic!("unexpected flatten error {other}"),
                }
            }
        }
    }
}

#[test]
fn seeded_truncation_with_flips_never_panics() {
    let bytes = sample_library();
    let mut rng = SplitMix64::new(0xBAD_CAFE);
    for _ in 0..2000 {
        let cut = (rng.next_u64() as usize) % bytes.len();
        let mut mutated = bytes[..cut].to_vec();
        if !mutated.is_empty() {
            let at = (rng.next_u64() as usize) % mutated.len();
            mutated[at] = rng.next_u64() as u8;
        }
        let _ = parse_lib(&mutated); // must return, never panic
    }
}
