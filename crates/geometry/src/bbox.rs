//! Axis-aligned bounding boxes.

use crate::Point;
use std::fmt;

/// An axis-aligned bounding box, in nanometres.
///
/// The box is the closed region `[min.x, max.x] × [min.y, max.y]`. An *empty*
/// box (used as the identity for [`BBox::union`]) has `min > max` and
/// intersects nothing.
///
/// ```
/// use cardopc_geometry::{BBox, Point};
///
/// let b = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
/// assert!(b.contains(Point::new(10.0, 5.0)));
/// assert_eq!(b.area(), 50.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BBox {
    /// The empty box: identity for [`BBox::union`], intersects nothing.
    pub const EMPTY: BBox = BBox {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a box from two corner points (in any order).
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The box covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        BBox { min: p, max: p }
    }

    /// The tightest box covering all `points`; [`BBox::EMPTY`] when the
    /// iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        points
            .into_iter()
            .fold(BBox::EMPTY, |b, p| b.union(BBox::from_point(p)))
    }

    /// `true` when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along x; zero for an empty box.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along y; zero for an empty box.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area of the box; zero for an empty box.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    ///
    /// For an empty box the result is meaningless (contains infinities).
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
        )
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` when `other` is entirely inside `self` (boundary contact
    /// allowed).
    #[inline]
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        !other.is_empty()
            && other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// `true` when the two closed boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min.x > other.max.x
            || other.min.x > self.max.x
            || self.min.y > other.max.y
            || other.min.y > self.max.y)
    }

    /// Smallest box covering both inputs.
    #[inline]
    pub fn union(&self, other: BBox) -> BBox {
        BBox {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The box grown by `margin` on every side.
    ///
    /// A negative margin shrinks the box and may make it empty.
    #[inline]
    pub fn expanded(&self, margin: f64) -> BBox {
        BBox {
            min: self.min - Point::new(margin, margin),
            max: self.max + Point::new(margin, margin),
        }
    }

    /// Minimum Euclidean distance from `p` to the box (zero when inside).
    #[inline]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx.hypot(dy)
    }
}

impl Default for BBox {
    fn default() -> Self {
        BBox::EMPTY
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{} .. {}]", self.min, self.max)
        }
    }
}

impl FromIterator<Point> for BBox {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        BBox::from_points(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn new_normalizes_corners() {
        let b = BBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(5.0, 3.0));
    }

    #[test]
    fn empty_properties() {
        let e = BBox::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.intersects(&unit()));
        assert!(!unit().intersects(&e));
        assert_eq!(e.union(unit()), unit());
    }

    #[test]
    fn contains_boundary() {
        let b = unit();
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(!b.contains(Point::new(1.0 + 1e-9, 0.5)));
    }

    #[test]
    fn contains_bbox() {
        let outer = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let inner = BBox::new(Point::new(1.0, 1.0), Point::new(9.0, 10.0));
        assert!(outer.contains_bbox(&inner));
        assert!(!inner.contains_bbox(&outer));
        assert!(!outer.contains_bbox(&BBox::EMPTY));
    }

    #[test]
    fn intersection_cases() {
        let a = unit();
        let b = BBox::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        let c = BBox::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)); // corner touch
        let d = BBox::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0));
        assert!(a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn union_covers_both() {
        let a = unit();
        let b = BBox::new(Point::new(2.0, -1.0), Point::new(3.0, 0.5));
        let u = a.union(b);
        assert!(u.contains_bbox(&a));
        assert!(u.contains_bbox(&b));
    }

    #[test]
    fn from_points_iterator() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 5.0),
            Point::new(0.0, 0.0),
        ];
        let b: BBox = pts.iter().copied().collect();
        assert_eq!(b.min, Point::new(-3.0, 0.0));
        assert_eq!(b.max, Point::new(1.0, 5.0));
    }

    #[test]
    fn expanded_and_shrunk() {
        let b = unit().expanded(1.0);
        assert_eq!(b.min, Point::new(-1.0, -1.0));
        assert_eq!(b.max, Point::new(2.0, 2.0));
        assert!(unit().expanded(-0.6).is_empty());
    }

    #[test]
    fn distance_to_point() {
        let b = unit();
        assert_eq!(b.distance_to_point(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(b.distance_to_point(Point::new(2.0, 0.5)), 1.0);
        assert!((b.distance_to_point(Point::new(2.0, 2.0)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn center_and_dims() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        assert_eq!(b.center(), Point::new(2.0, 1.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
    }
}
