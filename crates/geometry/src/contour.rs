//! Iso-contour extraction from rasters (marching squares).
//!
//! The ILT-OPC hybrid flow (Algorithm 1 of the paper) extracts the boundary
//! of every shape in an ILT-optimised mask image before fitting cardinal
//! splines to it; the paper uses OpenCV's border-following implementation of
//! Suzuki–Abe. This module provides the equivalent: ordered, closed,
//! sub-pixel contours of the region `value >= threshold`.
//!
//! The tracer is a marching-squares walk with linear interpolation on cell
//! edges. The raster is virtually padded with a background value below the
//! threshold so shapes touching the image border still produce closed loops.
//! Outer contours are oriented counter-clockwise, holes clockwise.

use crate::{Grid, Point, Polygon};

/// Cell edges, named by compass direction with `y` increasing northward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Edge {
    South,
    East,
    North,
    West,
}

/// A directed crossing inside one cell: enter on `from`, leave on `to`.
#[derive(Clone, Copy, Debug)]
struct Link {
    from: Edge,
    to: Edge,
}

/// Extracts all iso-contours of `grid >= threshold` as closed polygons.
///
/// Outer boundaries are counter-clockwise (positive [`Polygon::signed_area`]),
/// holes are clockwise. Vertices lie on cell edges with linear sub-pixel
/// interpolation, in physical (nanometre) coordinates.
///
/// ```
/// use cardopc_geometry::{Grid, trace_contours};
///
/// // A 2x2 block of "exposed" pixels inside a 6x6 raster.
/// let mut g = Grid::zeros(6, 6, 1.0);
/// for iy in 2..4 {
///     for ix in 2..4 {
///         g[(ix, iy)] = 1.0;
///     }
/// }
/// let contours = trace_contours(&g, 0.5);
/// assert_eq!(contours.len(), 1);
/// assert!(contours[0].signed_area() > 0.0);
/// ```
pub fn trace_contours(grid: &Grid, threshold: f64) -> Vec<Polygon> {
    let mut out = Vec::new();
    ContourTracer::new().trace_into(grid, threshold, &mut out);
    out
}

/// A reusable contour tracer: keeps the per-cell visited-edge bitmask
/// alive across calls so repeated tracing (e.g. an ILT loop extracting
/// contours every iteration) only allocates the returned polygons.
#[derive(Clone, Debug, Default)]
pub struct ContourTracer {
    /// One entry-edge bitmask byte per cell of the virtually padded raster.
    visited: Vec<u8>,
}

impl ContourTracer {
    /// An empty tracer; the visited buffer is sized lazily per grid.
    pub fn new() -> ContourTracer {
        ContourTracer::default()
    }

    /// [`trace_contours`] writing into a caller-owned vector (cleared
    /// first), reusing this tracer's visited buffer.
    pub fn trace_into(&mut self, grid: &Grid, threshold: f64, out: &mut Vec<Polygon>) {
        out.clear();
        Tracer::new(grid, threshold).run(&mut self.visited, out);
    }
}

struct Tracer<'a> {
    grid: &'a Grid,
    threshold: f64,
    background: f64,
}

impl<'a> Tracer<'a> {
    fn new(grid: &'a Grid, threshold: f64) -> Self {
        // Any finite value strictly below the threshold works as padding;
        // keep it close so border crossings interpolate reasonably.
        let background = threshold - threshold.abs().max(1.0);
        Tracer {
            grid,
            threshold,
            background,
        }
    }

    /// Pixel value at virtual index (padding outside the raster).
    #[inline]
    fn value(&self, ix: i64, iy: i64) -> f64 {
        if ix < 0 || iy < 0 || ix >= self.grid.width() as i64 || iy >= self.grid.height() as i64 {
            self.background
        } else {
            self.grid.data()[iy as usize * self.grid.width() + ix as usize]
        }
    }

    #[inline]
    fn inside(&self, ix: i64, iy: i64) -> bool {
        self.value(ix, iy) >= self.threshold
    }

    /// Marching-squares case of cell `(cx, cy)` whose corners are pixels
    /// `(cx, cy)`, `(cx+1, cy)`, `(cx+1, cy+1)`, `(cx, cy+1)`.
    #[inline]
    fn case(&self, cx: i64, cy: i64) -> u8 {
        (self.inside(cx, cy) as u8)
            | (self.inside(cx + 1, cy) as u8) << 1
            | (self.inside(cx + 1, cy + 1) as u8) << 2
            | (self.inside(cx, cy + 1) as u8) << 3
    }

    /// Directed links for a cell case. Ambiguous saddles (5, 10) are
    /// resolved with the cell-centre average.
    fn links(&self, cx: i64, cy: i64, case: u8) -> [Option<Link>; 2] {
        use Edge::*;
        let link = |from, to| Some(Link { from, to });
        match case {
            0 | 15 => [None, None],
            1 => [link(South, West), None],
            2 => [link(East, South), None],
            4 => [link(North, East), None],
            8 => [link(West, North), None],
            3 => [link(East, West), None],
            6 => [link(North, South), None],
            12 => [link(West, East), None],
            9 => [link(South, North), None],
            7 => [link(North, West), None],
            14 => [link(West, South), None],
            13 => [link(South, East), None],
            11 => [link(East, North), None],
            5 => {
                let center = 0.25
                    * (self.value(cx, cy)
                        + self.value(cx + 1, cy)
                        + self.value(cx + 1, cy + 1)
                        + self.value(cx, cy + 1));
                if center >= self.threshold {
                    [link(South, East), link(North, West)]
                } else {
                    [link(South, West), link(North, East)]
                }
            }
            10 => {
                let center = 0.25
                    * (self.value(cx, cy)
                        + self.value(cx + 1, cy)
                        + self.value(cx + 1, cy + 1)
                        + self.value(cx, cy + 1));
                if center >= self.threshold {
                    [link(East, North), link(West, South)]
                } else {
                    [link(East, South), link(West, North)]
                }
            }
            _ => unreachable!("marching squares case out of range"),
        }
    }

    /// Physical coordinates of the threshold crossing on one cell edge.
    ///
    /// The two defining pixels are always taken in the same canonical order
    /// regardless of which adjacent cell asks, so shared edges produce
    /// bit-identical points.
    fn crossing(&self, cx: i64, cy: i64, edge: Edge) -> Point {
        let (ax, ay, bx, by) = match edge {
            Edge::South => (cx, cy, cx + 1, cy),
            Edge::North => (cx, cy + 1, cx + 1, cy + 1),
            Edge::West => (cx, cy, cx, cy + 1),
            Edge::East => (cx + 1, cy, cx + 1, cy + 1),
        };
        let va = self.value(ax, ay);
        let vb = self.value(bx, by);
        let t = if (vb - va).abs() < 1e-300 {
            0.5
        } else {
            ((self.threshold - va) / (vb - va)).clamp(0.0, 1.0)
        };
        let pitch = self.grid.pitch();
        let pa = Point::new((ax as f64 + 0.5) * pitch, (ay as f64 + 0.5) * pitch);
        let pb = Point::new((bx as f64 + 0.5) * pitch, (by as f64 + 0.5) * pitch);
        pa.lerp(pb, t)
    }

    /// The neighbouring cell across `edge`, and the matching entry edge
    /// there.
    fn step(cx: i64, cy: i64, edge: Edge) -> (i64, i64, Edge) {
        match edge {
            Edge::South => (cx, cy - 1, Edge::North),
            Edge::North => (cx, cy + 1, Edge::South),
            Edge::West => (cx - 1, cy, Edge::East),
            Edge::East => (cx + 1, cy, Edge::West),
        }
    }

    fn run(self, visited: &mut Vec<u8>, contours: &mut Vec<Polygon>) {
        let w = self.grid.width() as i64;
        let h = self.grid.height() as i64;
        // Entry-edge bits already consumed, one byte per cell. Cells span
        // the virtually padded raster (`-1..w` × `-1..h`, stored at
        // `(cx + 1, cy + 1)`); the walk never steps outside it because the
        // padding ring has no crossing on its outward edges.
        let stride = (w + 1) as usize;
        visited.clear();
        visited.resize(stride * (h + 1) as usize, 0);
        let cell = |cx: i64, cy: i64| (cy + 1) as usize * stride + (cx + 1) as usize;
        let edge_bit = |e: Edge| -> u8 {
            match e {
                Edge::South => 1,
                Edge::East => 2,
                Edge::North => 4,
                Edge::West => 8,
            }
        };

        for cy in -1..h {
            for cx in -1..w {
                let case = self.case(cx, cy);
                if case == 0 || case == 15 {
                    continue;
                }
                for link in self.links(cx, cy, case).into_iter().flatten() {
                    let bit = edge_bit(link.from);
                    if visited[cell(cx, cy)] & bit != 0 {
                        continue;
                    }
                    // Trace the loop starting from this (cell, entry edge).
                    let mut pts = Vec::new();
                    let (mut ccx, mut ccy, mut entry) = (cx, cy, link.from);
                    loop {
                        let bit = edge_bit(entry);
                        let mask = &mut visited[cell(ccx, ccy)];
                        if *mask & bit != 0 {
                            break; // closed the loop
                        }
                        *mask |= bit;
                        let case = self.case(ccx, ccy);
                        let cell_links = self.links(ccx, ccy, case);
                        let Some(l) = cell_links.into_iter().flatten().find(|l| l.from == entry)
                        else {
                            // Inconsistent field (shouldn't happen); abort
                            // this loop rather than spin.
                            break;
                        };
                        pts.push(self.crossing(ccx, ccy, l.to));
                        let (nx, ny, nentry) = Self::step(ccx, ccy, l.to);
                        ccx = nx;
                        ccy = ny;
                        entry = nentry;
                    }
                    if pts.len() >= 3 {
                        contours.push(Polygon::new(pts));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_grid(w: usize, h: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> Grid {
        let mut g = Grid::zeros(w, h, 1.0);
        for iy in y0..y1 {
            for ix in x0..x1 {
                g[(ix, iy)] = 1.0;
            }
        }
        g
    }

    #[test]
    fn empty_grid_has_no_contours() {
        let g = Grid::zeros(8, 8, 1.0);
        assert!(trace_contours(&g, 0.5).is_empty());
    }

    #[test]
    fn full_grid_single_ccw_contour() {
        let g = Grid::filled(8, 8, 1.0, 1.0);
        let cs = trace_contours(&g, 0.5);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].signed_area() > 0.0, "outer contour should be CCW");
    }

    #[test]
    fn single_block_area_close() {
        // 4x4 block of ones: iso-0.5 contour extends half a pixel beyond the
        // pixel centres, giving a 4x4 physical square.
        let g = block_grid(10, 10, 3, 3, 7, 7);
        let cs = trace_contours(&g, 0.5);
        assert_eq!(cs.len(), 1);
        let area = cs[0].area();
        assert!(
            (area - 16.0).abs() < 1.5,
            "expected ~16 nm^2 area, got {area}"
        );
        assert!(cs[0].signed_area() > 0.0);
    }

    #[test]
    fn contour_is_closed_loop() {
        let g = block_grid(12, 12, 2, 2, 9, 6);
        let cs = trace_contours(&g, 0.5);
        assert_eq!(cs.len(), 1);
        let poly = &cs[0];
        // Consecutive vertices are one cell apart at most (sqrt(2) * pitch).
        for e in poly.edges() {
            assert!(e.length() <= 2.0_f64.sqrt() + 1e-9, "gap in contour");
        }
    }

    #[test]
    fn two_blocks_two_contours() {
        let mut g = block_grid(16, 16, 1, 1, 5, 5);
        for iy in 9..13 {
            for ix in 9..13 {
                g[(ix, iy)] = 1.0;
            }
        }
        let cs = trace_contours(&g, 0.5);
        assert_eq!(cs.len(), 2);
        for c in &cs {
            assert!(c.signed_area() > 0.0);
        }
    }

    #[test]
    fn hole_is_clockwise() {
        // Ring: 8x8 block with a 2x2 hole.
        let mut g = block_grid(12, 12, 2, 2, 10, 10);
        for iy in 5..7 {
            for ix in 5..7 {
                g[(ix, iy)] = 0.0;
            }
        }
        let mut cs = trace_contours(&g, 0.5);
        cs.sort_by(|a, b| a.area().total_cmp(&b.area()));
        assert_eq!(cs.len(), 2);
        assert!(cs[1].signed_area() > 0.0, "outer should be CCW");
        assert!(cs[0].signed_area() < 0.0, "hole should be CW");
        assert!(cs[0].area() < cs[1].area());
    }

    #[test]
    fn border_touching_shape_closes() {
        // Block flush against the raster border: padding must close it.
        let g = block_grid(6, 6, 0, 0, 3, 6);
        let cs = trace_contours(&g, 0.5);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].signed_area() > 0.0);
    }

    #[test]
    fn subpixel_interpolation_position() {
        // One column at 0.25, next at 0.75: the 0.5 crossing sits midway
        // between the two pixel centres.
        let mut g = Grid::zeros(4, 4, 1.0);
        for iy in 0..4 {
            g[(1, iy)] = 0.25;
            g[(2, iy)] = 0.75;
        }
        let cs = trace_contours(&g, 0.5);
        assert!(!cs.is_empty());
        // Find a vertex with y in the middle of the raster; its x must be 2.0
        // (pixel centres are at 1.5 and 2.5, crossing halfway).
        let found = cs
            .iter()
            .flat_map(|c| c.vertices())
            .any(|v| (v.x - 2.0).abs() < 1e-9 && v.y > 1.0 && v.y < 3.0);
        assert!(found, "expected an interpolated crossing at x = 2.0");
    }

    #[test]
    fn diagonal_saddle_does_not_panic() {
        // Checkerboard corners force cases 5/10.
        let mut g = Grid::zeros(4, 4, 1.0);
        g[(0, 0)] = 1.0;
        g[(1, 1)] = 1.0;
        g[(2, 2)] = 1.0;
        g[(3, 3)] = 1.0;
        let cs = trace_contours(&g, 0.5);
        assert!(!cs.is_empty());
    }

    #[test]
    fn gradient_field_contour_at_expected_height() {
        // Vertical linear gradient 0..1: contour of 0.5 is a horizontal line
        // across the middle.
        let mut g = Grid::zeros(8, 8, 1.0);
        for iy in 0..8 {
            for ix in 0..8 {
                g[(ix, iy)] = iy as f64 / 7.0;
            }
        }
        let cs = trace_contours(&g, 0.5);
        assert_eq!(cs.len(), 1);
        // The region above mid-height is inside; centroid y > mid.
        assert!(cs[0].centroid().y > 4.0);
    }
}
