//! Dense 2-D rasters shared by the lithography engine and contour tracing.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major 2-D raster of `f64` samples with a physical pixel pitch.
///
/// The grid covers the region `[0, width·pitch] × [0, height·pitch]` in
/// nanometres; sample `(ix, iy)` is located at the pixel *centre*
/// `((ix + 0.5)·pitch, (iy + 0.5)·pitch)`. Mask rasterisation, aerial images
/// and ILT mask parameters all live on this type.
///
/// ```
/// use cardopc_geometry::Grid;
///
/// let mut g = Grid::zeros(4, 3, 1.0);
/// g[(1, 2)] = 0.5;
/// assert_eq!(g[(1, 2)], 0.5);
/// assert_eq!(g.sum(), 0.5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    width: usize,
    height: usize,
    pitch: f64,
    data: Vec<f64>,
}

impl Grid {
    /// Creates a zero-filled grid.
    ///
    /// # Panics
    ///
    /// Panics when `pitch` is not strictly positive.
    pub fn zeros(width: usize, height: usize, pitch: f64) -> Self {
        assert!(pitch > 0.0, "pixel pitch must be positive");
        Grid {
            width,
            height,
            pitch,
            data: vec![0.0; width * height],
        }
    }

    /// Creates a grid filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics when `pitch` is not strictly positive.
    pub fn filled(width: usize, height: usize, pitch: f64, value: f64) -> Self {
        let mut g = Grid::zeros(width, height, pitch);
        g.data.fill(value);
        g
    }

    /// Creates a grid from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height` or `pitch <= 0`.
    pub fn from_data(width: usize, height: usize, pitch: f64, data: Vec<f64>) -> Self {
        assert!(pitch > 0.0, "pixel pitch must be positive");
        assert_eq!(data.len(), width * height, "data length mismatch");
        Grid {
            width,
            height,
            pitch,
            data,
        }
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Physical size of one pixel in nanometres.
    #[inline]
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    /// Total number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the grid has zero samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major sample slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major sample slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sample at `(ix, iy)`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, ix: usize, iy: usize) -> Option<f64> {
        if ix < self.width && iy < self.height {
            Some(self.data[iy * self.width + ix])
        } else {
            None
        }
    }

    /// Sample at `(ix, iy)` clamped to the grid border.
    ///
    /// Useful for finite-difference stencils near the edge.
    #[inline]
    pub fn get_clamped(&self, ix: isize, iy: isize) -> f64 {
        let ix = ix.clamp(0, self.width as isize - 1) as usize;
        let iy = iy.clamp(0, self.height as isize - 1) as usize;
        self.data[iy * self.width + ix]
    }

    /// Bilinearly interpolated sample at physical coordinates `(x, y)`
    /// nanometres; clamps to the border outside the grid.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let fx = x / self.pitch - 0.5;
        let fy = y / self.pitch - 0.5;
        let ix = fx.floor();
        let iy = fy.floor();
        let tx = fx - ix;
        let ty = fy - iy;
        let (ix, iy) = (ix as isize, iy as isize);
        let v00 = self.get_clamped(ix, iy);
        let v10 = self.get_clamped(ix + 1, iy);
        let v01 = self.get_clamped(ix, iy + 1);
        let v11 = self.get_clamped(ix + 1, iy + 1);
        let top = v00 + (v10 - v00) * tx;
        let bot = v01 + (v11 - v01) * tx;
        top + (bot - top) * ty
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum sample value (`-inf` for an empty grid).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sample value (`+inf` for an empty grid).
    pub fn min_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Applies `f` to every sample in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Number of samples for which `pred` holds.
    pub fn count(&self, mut pred: impl FnMut(f64) -> bool) -> usize {
        self.data.iter().filter(|&&v| pred(v)).count()
    }

    /// Returns the binarised grid: `1.0` where the sample is `>= threshold`,
    /// `0.0` elsewhere.
    pub fn binarize(&self, threshold: f64) -> Grid {
        let data = self
            .data
            .iter()
            .map(|&v| if v >= threshold { 1.0 } else { 0.0 })
            .collect();
        Grid::from_data(self.width, self.height, self.pitch, data)
    }

    /// Writes the grid as a binary 8-bit PGM image scaled to `[min, max]`.
    ///
    /// Used by the example binaries to reproduce the qualitative plots of
    /// Fig. 6.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer. A mutable reference to any
    /// writer can be passed (`&mut file`).
    pub fn write_pgm<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        let lo = self.min_value();
        let hi = self.max_value();
        let span = if (hi - lo).abs() < 1e-300 {
            1.0
        } else {
            hi - lo
        };
        writeln!(w, "P5\n{} {}\n255", self.width, self.height)?;
        let bytes: Vec<u8> = self
            .data
            .iter()
            .map(|&v| (255.0 * (v - lo) / span).round().clamp(0.0, 255.0) as u8)
            .collect();
        w.write_all(&bytes)
    }
}

impl Index<(usize, usize)> for Grid {
    type Output = f64;
    /// Row-major indexing by `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    #[inline]
    fn index(&self, (ix, iy): (usize, usize)) -> &f64 {
        assert!(
            ix < self.width && iy < self.height,
            "grid index out of bounds"
        );
        &self.data[iy * self.width + ix]
    }
}

impl IndexMut<(usize, usize)> for Grid {
    #[inline]
    fn index_mut(&mut self, (ix, iy): (usize, usize)) -> &mut f64 {
        assert!(
            ix < self.width && iy < self.height,
            "grid index out of bounds"
        );
        &mut self.data[iy * self.width + ix]
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Grid[{}x{} @ {} nm/px]",
            self.width, self.height, self.pitch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut g = Grid::zeros(3, 2, 1.0);
        assert_eq!(g.len(), 6);
        g[(2, 1)] = 7.0;
        assert_eq!(g[(2, 1)], 7.0);
        assert_eq!(g.get(2, 1), Some(7.0));
        assert_eq!(g.get(3, 0), None);
        assert_eq!(g.get(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "grid index out of bounds")]
    fn index_out_of_bounds_panics() {
        let g = Grid::zeros(3, 2, 1.0);
        let _ = g[(0, 2)];
    }

    #[test]
    #[should_panic(expected = "pixel pitch must be positive")]
    fn zero_pitch_panics() {
        let _ = Grid::zeros(1, 1, 0.0);
    }

    #[test]
    fn filled_and_stats() {
        let g = Grid::filled(4, 4, 2.0, 0.25);
        assert_eq!(g.sum(), 4.0);
        assert_eq!(g.max_value(), 0.25);
        assert_eq!(g.min_value(), 0.25);
        assert_eq!(g.count(|v| v > 0.0), 16);
    }

    #[test]
    fn clamped_access() {
        let g = Grid::from_data(2, 2, 1.0, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.get_clamped(-5, -5), 1.0);
        assert_eq!(g.get_clamped(9, 0), 2.0);
        assert_eq!(g.get_clamped(0, 9), 3.0);
        assert_eq!(g.get_clamped(9, 9), 4.0);
    }

    #[test]
    fn bilinear_sampling() {
        // 2x1 grid with values 0 and 1: pixel centres at x=0.5 and x=1.5.
        let g = Grid::from_data(2, 1, 1.0, vec![0.0, 1.0]);
        assert!((g.sample(0.5, 0.5) - 0.0).abs() < 1e-12);
        assert!((g.sample(1.5, 0.5) - 1.0).abs() < 1e-12);
        assert!((g.sample(1.0, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binarize_threshold() {
        let g = Grid::from_data(2, 2, 1.0, vec![0.1, 0.5, 0.6, 0.9]);
        let b = g.binarize(0.5);
        assert_eq!(b.data(), &[0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn map_inplace() {
        let mut g = Grid::filled(2, 2, 1.0, 2.0);
        g.map_inplace(|v| v * v);
        assert_eq!(g.sum(), 16.0);
    }

    #[test]
    fn pgm_header() {
        let g = Grid::from_data(2, 2, 1.0, vec![0.0, 1.0, 0.5, 0.25]);
        let mut buf = Vec::new();
        g.write_pgm(&mut buf).unwrap();
        let header = String::from_utf8_lossy(&buf[..11]);
        assert!(header.starts_with("P5\n2 2\n255"));
        assert_eq!(buf.len(), 11 + 4);
    }
}
