//! # cardopc-geometry
//!
//! Geometry kernel for the CardOPC curvilinear OPC framework.
//!
//! This crate is the from-scratch replacement for the geometry facilities the
//! paper outsources to Shapely and OpenCV:
//!
//! * [`Point`] / vector arithmetic, rotation and normals,
//! * [`BBox`] axis-aligned bounding boxes,
//! * [`Segment`] intersection and distance predicates,
//! * [`Polygon`] with shoelace area, point containment and edge iteration,
//! * [`RTree`], a Sort-Tile-Recursive packed R-tree (Leutenegger et al.,
//!   ICDE'97) used by mask rule checking,
//! * [`Grid`], a dense 2-D raster shared with the lithography engine,
//! * [`contour`], a marching-squares contour tracer with sub-pixel
//!   interpolation that plays the role of OpenCV's border following
//!   (Suzuki–Abe) in the ILT-fitting flow,
//! * [`SplitMix64`], a tiny deterministic PRNG used for reproducible
//!   workload synthesis.
//!
//! All coordinates are in nanometres represented as `f64`; rasters use one
//! pixel per [`Grid::pitch`] nanometres.
//!
//! ```
//! use cardopc_geometry::{Point, Polygon};
//!
//! let square = Polygon::rect(Point::new(0.0, 0.0), Point::new(100.0, 50.0));
//! assert_eq!(square.area(), 5000.0);
//! assert!(square.contains(Point::new(10.0, 10.0)));
//! ```

#![warn(missing_docs)]

mod bbox;
pub mod contour;
mod grid;
mod point;
mod polygon;
mod prng;
pub mod rtree;
mod segment;
pub mod svg;

pub use bbox::BBox;
pub use contour::{trace_contours, ContourTracer};
pub use grid::Grid;
pub use point::Point;
pub use polygon::{Orientation, Polygon};
pub use prng::SplitMix64;
pub use rtree::RTree;
pub use segment::Segment;

/// Absolute tolerance used by geometric predicates in this crate.
///
/// Coordinates are nanometres; `1e-9` nm is far below any physically
/// meaningful length, so ties within this tolerance are treated as equal.
pub const EPS: f64 = 1e-9;
