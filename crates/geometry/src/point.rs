//! 2-D points and vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or free vector) in the mask plane, in nanometres.
///
/// `Point` doubles as a 2-D vector: subtraction of two points yields the
/// displacement vector between them, and the usual vector operations
/// ([`Point::dot`], [`Point::cross`], [`Point::norm`], …) are provided.
///
/// ```
/// use cardopc_geometry::Point;
///
/// let a = Point::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a + Point::new(1.0, -1.0), Point::new(4.0, 3.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// Horizontal coordinate in nanometres.
    pub x: f64,
    /// Vertical coordinate in nanometres.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ZERO: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z-component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length of the vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length; cheaper than [`Point::norm`] when only
    /// comparisons are needed.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the vector scaled to unit length, or `None` when the vector is
    /// (numerically) zero and has no direction.
    #[inline]
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n < crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// The left-hand perpendicular `(-y, x)`.
    ///
    /// For a curve traversed counter-clockwise this is the *outward* normal
    /// direction convention used throughout the OPC flow (Eq. 8c of the
    /// paper: `n = (-g_y, g_x)`).
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other`
    /// (at `t = 1`).
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Point> for f64 {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: Point) -> Point {
        rhs * self
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(2.0 * a, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn assign_ops() {
        let mut a = Point::new(1.0, 1.0);
        a += Point::new(2.0, 3.0);
        assert_eq!(a, Point::new(3.0, 4.0));
        a -= Point::new(1.0, 1.0);
        assert_eq!(a, Point::new(2.0, 3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norms_and_distance() {
        let a = Point::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(Point::ZERO.distance(a), 5.0);
        assert_eq!(Point::ZERO.distance_sq(a), 25.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let a = Point::new(0.0, 10.0);
        assert_eq!(a.normalized(), Some(Point::new(0.0, 1.0)));
        assert_eq!(Point::ZERO.normalized(), None);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let a = Point::new(1.0, 0.0);
        assert_eq!(a.perp(), Point::new(0.0, 1.0));
        assert_eq!(a.perp().perp(), -a);
    }

    #[test]
    fn rotation() {
        let a = Point::new(1.0, 0.0);
        let r = a.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(b), Point::new(1.0, 3.0));
        assert_eq!(a.max(b), Point::new(2.0, 5.0));
    }

    #[test]
    fn conversions() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1, 2)");
    }
}
