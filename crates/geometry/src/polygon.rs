//! Simple polygons: area, containment, orientation, edge iteration.

use crate::{BBox, Point, Segment, EPS};
use std::fmt;

/// Winding orientation of a closed polygon boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Counter-clockwise (positive signed area).
    CounterClockwise,
    /// Clockwise (negative signed area).
    Clockwise,
    /// Degenerate (zero signed area).
    Degenerate,
}

/// A simple closed polygon given by its vertex ring (implicitly closed: the
/// last vertex connects back to the first).
///
/// Mask shapes — both the Manhattan input patterns and the dense polylines
/// sampled from cardinal splines — are represented as `Polygon`s. Area is
/// computed with the shoelace formula exactly as the paper's area-rule check
/// does.
///
/// ```
/// use cardopc_geometry::{Point, Polygon};
///
/// let tri = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 3.0),
/// ]);
/// assert_eq!(tri.area(), 6.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its vertex ring.
    ///
    /// Consecutive duplicate vertices (within [`EPS`]) are removed, as is a
    /// duplicated closing vertex.
    pub fn new(mut vertices: Vec<Point>) -> Self {
        vertices.dedup_by(|a, b| a.distance_sq(*b) <= EPS * EPS);
        if vertices.len() > 1 {
            let first = vertices[0];
            if vertices
                .last()
                .is_some_and(|l| l.distance_sq(first) <= EPS * EPS)
            {
                vertices.pop();
            }
        }
        Polygon { vertices }
    }

    /// Axis-aligned rectangle from two opposite corners.
    pub fn rect(a: Point, b: Point) -> Self {
        let lo = a.min(b);
        let hi = a.max(b);
        Polygon {
            vertices: vec![lo, Point::new(hi.x, lo.y), hi, Point::new(lo.x, hi.y)],
        }
    }

    /// The vertex ring.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Mutable access to the vertex ring.
    #[inline]
    pub fn vertices_mut(&mut self) -> &mut [Point] {
        &mut self.vertices
    }

    /// Consumes the polygon, returning its vertex ring.
    #[inline]
    pub fn into_vertices(self) -> Vec<Point> {
        self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the polygon has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Iterator over the boundary edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area by the shoelace formula: positive for counter-clockwise
    /// rings, negative for clockwise rings.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut twice = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            twice += p.cross(q);
        }
        0.5 * twice
    }

    /// Absolute area (the quantity checked by the MRC area rule).
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Total boundary length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Winding orientation of the ring.
    pub fn orientation(&self) -> Orientation {
        let a = self.signed_area();
        if a > EPS {
            Orientation::CounterClockwise
        } else if a < -EPS {
            Orientation::Clockwise
        } else {
            Orientation::Degenerate
        }
    }

    /// Reverses the ring in place, flipping the orientation.
    pub fn reverse(&mut self) {
        self.vertices.reverse();
    }

    /// Returns the polygon with counter-clockwise orientation.
    pub fn into_ccw(mut self) -> Self {
        if self.orientation() == Orientation::Clockwise {
            self.reverse();
        }
        self
    }

    /// Bounding box of the vertices.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.vertices.iter().copied())
    }

    /// Centroid of the polygon region (vertex average for degenerate rings).
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        let n = self.vertices.len();
        if n == 0 {
            return Point::ZERO;
        }
        if a.abs() <= EPS {
            let sum = self.vertices.iter().fold(Point::ZERO, |acc, &p| acc + p);
            return sum / n as f64;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Even-odd (crossing-number) point containment test.
    ///
    /// Points exactly on the boundary are reported as contained.
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        // Boundary counts as inside.
        for e in self.edges() {
            if e.distance_to_point(p) <= EPS {
                return true;
            }
        }
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.vertices[i];
            let pj = self.vertices[j];
            if (pi.y > p.y) != (pj.y > p.y) {
                let x_cross = pj.x + (p.y - pj.y) / (pi.y - pj.y) * (pi.x - pj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// `true` when every edge is axis-parallel (a Manhattan polygon).
    pub fn is_rectilinear(&self) -> bool {
        self.edges()
            .all(|e| (e.a.x - e.b.x).abs() <= EPS || (e.a.y - e.b.y).abs() <= EPS)
    }

    /// Translates every vertex by `delta`.
    pub fn translate(&mut self, delta: Point) {
        for v in &mut self.vertices {
            *v += delta;
        }
    }

    /// Returns a translated copy.
    pub fn translated(&self, delta: Point) -> Self {
        let mut p = self.clone();
        p.translate(delta);
        p
    }

    /// Minimum distance from the polygon boundary to a point (zero on the
    /// boundary; interior points report their distance to the boundary, not
    /// zero — use [`Polygon::contains`] for containment).
    pub fn boundary_distance(&self, p: Point) -> f64 {
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon[{} vertices]", self.vertices.len())
    }
}

impl FromIterator<Point> for Polygon {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Polygon::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square10() -> Polygon {
        Polygon::rect(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn rect_area_perimeter() {
        let r = Polygon::rect(Point::new(0.0, 0.0), Point::new(10.0, 4.0));
        assert_eq!(r.area(), 40.0);
        assert_eq!(r.perimeter(), 28.0);
        assert_eq!(r.orientation(), Orientation::CounterClockwise);
    }

    #[test]
    fn signed_area_flips_with_orientation() {
        let mut r = square10();
        let a = r.signed_area();
        r.reverse();
        assert_eq!(r.signed_area(), -a);
        assert_eq!(r.orientation(), Orientation::Clockwise);
        assert_eq!(r.into_ccw().orientation(), Orientation::CounterClockwise);
    }

    #[test]
    fn closing_vertex_removed() {
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn duplicate_vertices_removed() {
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn containment_inside_outside_boundary() {
        let s = square10();
        assert!(s.contains(Point::new(5.0, 5.0)));
        assert!(!s.contains(Point::new(15.0, 5.0)));
        assert!(s.contains(Point::new(0.0, 5.0))); // on boundary
        assert!(s.contains(Point::new(10.0, 10.0))); // corner
    }

    #[test]
    fn containment_concave() {
        // L-shape.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 10.0),
            Point::new(0.0, 10.0),
        ]);
        assert!(l.contains(Point::new(2.0, 8.0)));
        assert!(l.contains(Point::new(8.0, 2.0)));
        assert!(!l.contains(Point::new(8.0, 8.0))); // the notch
        assert_eq!(l.area(), 64.0);
    }

    #[test]
    fn centroid_of_rect() {
        let r = Polygon::rect(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        assert_eq!(r.centroid(), Point::new(2.0, 1.0));
        // Orientation must not change the centroid.
        let mut rr = r.clone();
        rr.reverse();
        assert_eq!(rr.centroid(), Point::new(2.0, 1.0));
    }

    #[test]
    fn rectilinear_detection() {
        assert!(square10().is_rectilinear());
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ]);
        assert!(!tri.is_rectilinear());
    }

    #[test]
    fn translate_shifts_bbox() {
        let t = square10().translated(Point::new(5.0, -2.0));
        assert_eq!(t.bbox().min, Point::new(5.0, -2.0));
        assert_eq!(t.bbox().max, Point::new(15.0, 8.0));
        assert_eq!(t.area(), 100.0);
    }

    #[test]
    fn edges_count_and_closure() {
        let s = square10();
        let edges: Vec<_> = s.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].b, s.vertices()[0]);
    }

    #[test]
    fn boundary_distance() {
        let s = square10();
        assert_eq!(s.boundary_distance(Point::new(5.0, 5.0)), 5.0);
        assert_eq!(s.boundary_distance(Point::new(12.0, 5.0)), 2.0);
        assert_eq!(s.boundary_distance(Point::new(10.0, 5.0)), 0.0);
    }

    #[test]
    fn degenerate_polygons() {
        let empty = Polygon::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.area(), 0.0);
        let line = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert_eq!(line.area(), 0.0);
        assert_eq!(line.orientation(), Orientation::Degenerate);
        assert!(!line.contains(Point::new(0.5, 0.0)));
    }
}
