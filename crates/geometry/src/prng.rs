//! A tiny deterministic PRNG for reproducible workload synthesis.

/// SplitMix64 pseudo-random number generator.
///
/// The layout generators need a deterministic, seedable source of randomness
/// so that testcases (`V1`–`V13`, `M1`–`M10`, large-scale tiles) are
/// bit-identical across runs and platforms; SplitMix64 (Steele et al., 2014)
/// is tiny, fast and has no external dependency or version drift.
///
/// ```
/// use cardopc_geometry::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi)` (half-open).
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Bernoulli sample with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0, i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_first_output() {
        // Reference value of SplitMix64 with seed 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(123);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let v = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let i = r.range_usize(10, 20);
            assert!((10..20).contains(&i));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
