//! An R-tree spatial index with Sort-Tile-Recursive bulk loading.
//!
//! Mask rule checking builds an R-tree over every edge of every mask shape
//! and answers probe queries ("does this spacing probe segment touch another
//! shape?") against it, exactly as §III-F of the paper describes. The bulk
//! loader follows Leutenegger et al., *STR: A Simple and Efficient Algorithm
//! for R-Tree Packing* (ICDE'97); incremental [`RTree::insert`] uses
//! Guttman's least-enlargement descent with linear split.

use crate::{BBox, Segment};

/// Maximum number of entries per node.
const NODE_CAPACITY: usize = 16;
/// Minimum fill after a split.
const NODE_MIN: usize = NODE_CAPACITY / 4;

#[derive(Clone, Debug)]
enum NodeKind {
    /// Child node indices.
    Inner(Vec<usize>),
    /// Item indices.
    Leaf(Vec<usize>),
}

#[derive(Clone, Debug)]
struct Node {
    bbox: BBox,
    kind: NodeKind,
}

/// A spatial index over items of type `T`, each keyed by a bounding box.
///
/// ```
/// use cardopc_geometry::{BBox, Point, RTree};
///
/// let boxes = (0..100).map(|i| {
///     let x = (i % 10) as f64 * 10.0;
///     let y = (i / 10) as f64 * 10.0;
///     (BBox::new(Point::new(x, y), Point::new(x + 5.0, y + 5.0)), i)
/// });
/// let tree: RTree<i32> = boxes.collect();
///
/// let query = BBox::new(Point::new(0.0, 0.0), Point::new(12.0, 12.0));
/// let mut hits: Vec<i32> = tree.query(&query).copied().collect();
/// hits.sort();
/// assert_eq!(hits, vec![0, 1, 10, 11]);
/// ```
#[derive(Clone, Debug)]
pub struct RTree<T> {
    items: Vec<(BBox, T)>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree {
            items: Vec::new(),
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Bulk loads the tree with Sort-Tile-Recursive packing.
    ///
    /// This is the preferred constructor: packing yields near-minimal
    /// overlap between sibling nodes and `O(n log n)` build time.
    pub fn bulk_load(items: Vec<(BBox, T)>) -> Self {
        let mut tree = RTree {
            items,
            nodes: Vec::new(),
            root: None,
        };
        if tree.items.is_empty() {
            return tree;
        }

        // Pack item indices into leaves.
        let idx: Vec<usize> = (0..tree.items.len()).collect();
        let leaf_groups = str_pack(&idx, |&i| tree.items[i].0.center());
        let mut level: Vec<usize> = leaf_groups
            .into_iter()
            .map(|group| {
                let bbox = group
                    .iter()
                    .fold(BBox::EMPTY, |b, &i| b.union(tree.items[i].0));
                tree.push_node(Node {
                    bbox,
                    kind: NodeKind::Leaf(group),
                })
            })
            .collect();

        // Pack nodes upward until a single root remains.
        while level.len() > 1 {
            let groups = str_pack(&level, |&n| tree.nodes[n].bbox.center());
            level = groups
                .into_iter()
                .map(|group| {
                    let bbox = group
                        .iter()
                        .fold(BBox::EMPTY, |b, &n| b.union(tree.nodes[n].bbox));
                    tree.push_node(Node {
                        bbox,
                        kind: NodeKind::Inner(group),
                    })
                })
                .collect();
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bounding box of everything in the tree ([`BBox::EMPTY`] when empty).
    pub fn bbox(&self) -> BBox {
        self.root.map_or(BBox::EMPTY, |r| self.nodes[r].bbox)
    }

    /// The item with index `id` as returned by [`RTree::query_indices`].
    pub fn item(&self, id: usize) -> &(BBox, T) {
        &self.items[id]
    }

    /// Inserts a single item.
    ///
    /// Uses least-enlargement descent and linear split on overflow. Prefer
    /// [`RTree::bulk_load`] when all items are known up front.
    pub fn insert(&mut self, bbox: BBox, value: T) {
        let item_id = self.items.len();
        self.items.push((bbox, value));

        let Some(root) = self.root else {
            let leaf = self.push_node(Node {
                bbox,
                kind: NodeKind::Leaf(vec![item_id]),
            });
            self.root = Some(leaf);
            return;
        };

        if let Some((left, right)) = self.insert_rec(root, item_id, bbox) {
            // Root split: grow the tree by one level.
            let new_root_bbox = self.nodes[left].bbox.union(self.nodes[right].bbox);
            let new_root = self.push_node(Node {
                bbox: new_root_bbox,
                kind: NodeKind::Inner(vec![left, right]),
            });
            self.root = Some(new_root);
        }
    }

    /// Items whose bounding boxes intersect `query`.
    pub fn query<'a>(&'a self, query: &BBox) -> impl Iterator<Item = &'a T> + 'a {
        self.query_indices(query)
            .into_iter()
            .map(move |i| &self.items[i].1)
    }

    /// Indices (into insertion/bulk-load order) of items whose bounding
    /// boxes intersect `query`.
    pub fn query_indices(&self, query: &BBox) -> Vec<usize> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !node.bbox.intersects(query) {
                continue;
            }
            match &node.kind {
                NodeKind::Inner(children) => stack.extend(children.iter().copied()),
                NodeKind::Leaf(entries) => {
                    out.extend(
                        entries
                            .iter()
                            .copied()
                            .filter(|&i| self.items[i].0.intersects(query)),
                    );
                }
            }
        }
        out
    }

    /// Indices of items whose bounding boxes intersect the bounding box of
    /// a probe segment.
    ///
    /// This is the coarse phase of the MRC probe test; callers refine hits
    /// with exact segment-geometry intersection.
    pub fn query_segment_indices(&self, probe: &Segment) -> Vec<usize> {
        self.query_indices(&probe.bbox())
    }

    fn push_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Recursive insert; returns `Some((left, right))` when node `n` split.
    fn insert_rec(&mut self, n: usize, item_id: usize, bbox: BBox) -> Option<(usize, usize)> {
        self.nodes[n].bbox = self.nodes[n].bbox.union(bbox);
        match &self.nodes[n].kind {
            NodeKind::Leaf(_) => {
                if let NodeKind::Leaf(entries) = &mut self.nodes[n].kind {
                    entries.push(item_id);
                }
                if self.leaf_len(n) > NODE_CAPACITY {
                    Some(self.split_node(n))
                } else {
                    None
                }
            }
            NodeKind::Inner(children) => {
                // Least-enlargement child choice.
                let mut best = children[0];
                let mut best_growth = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for &c in children {
                    let b = self.nodes[c].bbox;
                    let growth = b.union(bbox).area() - b.area();
                    if growth < best_growth || (growth == best_growth && b.area() < best_area) {
                        best = c;
                        best_growth = growth;
                        best_area = b.area();
                    }
                }
                if let Some((left, right)) = self.insert_rec(best, item_id, bbox) {
                    if let NodeKind::Inner(children) = &mut self.nodes[n].kind {
                        children.retain(|&c| c != best);
                        children.push(left);
                        children.push(right);
                        if children.len() > NODE_CAPACITY {
                            return Some(self.split_node(n));
                        }
                    }
                }
                None
            }
        }
    }

    fn leaf_len(&self, n: usize) -> usize {
        match &self.nodes[n].kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Inner(c) => c.len(),
        }
    }

    fn entry_bbox(&self, n: usize, entry: usize) -> BBox {
        match &self.nodes[n].kind {
            NodeKind::Leaf(_) => self.items[entry].0,
            NodeKind::Inner(_) => self.nodes[entry].bbox,
        }
    }

    /// Linear split (Guttman) of an overflowing node; returns the two new
    /// node indices. Node `n` is reused as the left half.
    fn split_node(&mut self, n: usize) -> (usize, usize) {
        let entries: Vec<usize> = match &self.nodes[n].kind {
            NodeKind::Leaf(e) => e.clone(),
            NodeKind::Inner(c) => c.clone(),
        };
        let is_leaf = matches!(self.nodes[n].kind, NodeKind::Leaf(_));
        let boxes: Vec<BBox> = entries.iter().map(|&e| self.entry_bbox(n, e)).collect();

        // Pick the pair of seeds with the greatest normalized separation.
        let (seed_a, seed_b) = linear_pick_seeds(&boxes);

        let mut left_entries = vec![entries[seed_a]];
        let mut right_entries = vec![entries[seed_b]];
        let mut left_bbox = boxes[seed_a];
        let mut right_bbox = boxes[seed_b];

        for (i, &e) in entries.iter().enumerate() {
            if i == seed_a || i == seed_b {
                continue;
            }
            let remaining = entries.len() - i;
            // Force assignment to satisfy the minimum fill.
            if left_entries.len() + remaining <= NODE_MIN {
                left_entries.push(e);
                left_bbox = left_bbox.union(boxes[i]);
                continue;
            }
            if right_entries.len() + remaining <= NODE_MIN {
                right_entries.push(e);
                right_bbox = right_bbox.union(boxes[i]);
                continue;
            }
            let lg = left_bbox.union(boxes[i]).area() - left_bbox.area();
            let rg = right_bbox.union(boxes[i]).area() - right_bbox.area();
            if lg <= rg {
                left_entries.push(e);
                left_bbox = left_bbox.union(boxes[i]);
            } else {
                right_entries.push(e);
                right_bbox = right_bbox.union(boxes[i]);
            }
        }

        self.nodes[n].bbox = left_bbox;
        self.nodes[n].kind = if is_leaf {
            NodeKind::Leaf(left_entries)
        } else {
            NodeKind::Inner(left_entries)
        };
        let right = self.push_node(Node {
            bbox: right_bbox,
            kind: if is_leaf {
                NodeKind::Leaf(right_entries)
            } else {
                NodeKind::Inner(right_entries)
            },
        });
        (n, right)
    }
}

impl<T> FromIterator<(BBox, T)> for RTree<T> {
    fn from_iter<I: IntoIterator<Item = (BBox, T)>>(iter: I) -> Self {
        RTree::bulk_load(iter.into_iter().collect())
    }
}

/// Picks seed entries for a linear split: the pair with the largest
/// separation normalised by the total extent, over both axes.
fn linear_pick_seeds(boxes: &[BBox]) -> (usize, usize) {
    debug_assert!(boxes.len() >= 2);
    let mut best = (0, 1);
    let mut best_sep = f64::NEG_INFINITY;
    for axis in 0..2 {
        let lo = |b: &BBox| if axis == 0 { b.min.x } else { b.min.y };
        let hi = |b: &BBox| if axis == 0 { b.max.x } else { b.max.y };
        let (mut max_lo, mut max_lo_i) = (f64::NEG_INFINITY, 0);
        let (mut min_hi, mut min_hi_i) = (f64::INFINITY, 0);
        let mut total_min = f64::INFINITY;
        let mut total_max = f64::NEG_INFINITY;
        for (i, b) in boxes.iter().enumerate() {
            if lo(b) > max_lo {
                max_lo = lo(b);
                max_lo_i = i;
            }
            if hi(b) < min_hi {
                min_hi = hi(b);
                min_hi_i = i;
            }
            total_min = total_min.min(lo(b));
            total_max = total_max.max(hi(b));
        }
        let extent = (total_max - total_min).max(1e-300);
        let sep = (max_lo - min_hi) / extent;
        if sep > best_sep && max_lo_i != min_hi_i {
            best_sep = sep;
            best = (max_lo_i, min_hi_i);
        }
    }
    best
}

/// Sort-Tile-Recursive grouping of entries into groups of at most
/// [`NODE_CAPACITY`].
fn str_pack<E: Copy>(entries: &[E], center: impl Fn(&E) -> crate::Point) -> Vec<Vec<E>> {
    let n = entries.len();
    if n <= NODE_CAPACITY {
        return vec![entries.to_vec()];
    }
    let pages = n.div_ceil(NODE_CAPACITY);
    let slices = (pages as f64).sqrt().ceil() as usize;
    let per_slice = n.div_ceil(slices);

    let mut sorted: Vec<E> = entries.to_vec();
    sorted.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));

    let mut groups = Vec::with_capacity(pages);
    for slice in sorted.chunks(per_slice) {
        let mut slice: Vec<E> = slice.to_vec();
        slice.sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
        for group in slice.chunks(NODE_CAPACITY) {
            groups.push(group.to_vec());
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Point, SplitMix64};

    fn random_boxes(n: usize, seed: u64) -> Vec<(BBox, usize)> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let x = rng.range_f64(0.0, 1000.0);
                let y = rng.range_f64(0.0, 1000.0);
                let w = rng.range_f64(0.0, 20.0);
                let h = rng.range_f64(0.0, 20.0);
                (BBox::new(Point::new(x, y), Point::new(x + w, y + h)), i)
            })
            .collect()
    }

    fn brute_force(items: &[(BBox, usize)], q: &BBox) -> Vec<usize> {
        let mut v: Vec<usize> = items
            .iter()
            .filter(|(b, _)| b.intersects(q))
            .map(|&(_, i)| i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let t: RTree<i32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.bbox().is_empty());
        assert!(t
            .query_indices(&BBox::new(Point::ZERO, Point::new(1.0, 1.0)))
            .is_empty());
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = random_boxes(500, 42);
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), 500);
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            let x = rng.range_f64(0.0, 1000.0);
            let y = rng.range_f64(0.0, 1000.0);
            let q = BBox::new(Point::new(x, y), Point::new(x + 50.0, y + 50.0));
            let mut got: Vec<usize> = tree
                .query_indices(&q)
                .into_iter()
                .map(|i| tree.item(i).1)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &q));
        }
    }

    #[test]
    fn incremental_insert_matches_brute_force() {
        let items = random_boxes(300, 43);
        let mut tree: RTree<usize> = RTree::new();
        for (b, v) in items.iter() {
            tree.insert(*b, *v);
        }
        assert_eq!(tree.len(), 300);
        let mut rng = SplitMix64::new(8);
        for _ in 0..100 {
            let x = rng.range_f64(0.0, 1000.0);
            let y = rng.range_f64(0.0, 1000.0);
            let q = BBox::new(Point::new(x, y), Point::new(x + 80.0, y + 80.0));
            let mut got: Vec<usize> = tree.query(&q).copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &q));
        }
    }

    #[test]
    fn mixed_bulk_then_insert() {
        let items = random_boxes(200, 44);
        let (first, second) = items.split_at(100);
        let mut tree = RTree::bulk_load(first.to_vec());
        for (b, v) in second {
            tree.insert(*b, *v);
        }
        let q = BBox::new(Point::new(100.0, 100.0), Point::new(400.0, 400.0));
        let mut got: Vec<usize> = tree.query(&q).copied().collect();
        got.sort_unstable();
        assert_eq!(got, brute_force(&items, &q));
    }

    #[test]
    fn tree_bbox_covers_all_items() {
        let items = random_boxes(64, 45);
        let tree = RTree::bulk_load(items.clone());
        for (b, _) in &items {
            assert!(tree.bbox().contains_bbox(b));
        }
    }

    #[test]
    fn query_segment_uses_probe_bbox() {
        let items = vec![
            (BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)), 0),
            (BBox::new(Point::new(50.0, 0.0), Point::new(60.0, 10.0)), 1),
        ];
        let tree = RTree::bulk_load(items);
        let probe = Segment::new(Point::new(5.0, 5.0), Point::new(5.0, 30.0));
        assert_eq!(tree.query_segment_indices(&probe), vec![0]);
    }

    #[test]
    fn from_iterator_collects() {
        let tree: RTree<usize> = random_boxes(40, 46).into_iter().collect();
        assert_eq!(tree.len(), 40);
    }

    #[test]
    fn single_item_tree() {
        let b = BBox::new(Point::ZERO, Point::new(1.0, 1.0));
        let tree = RTree::bulk_load(vec![(b, "x")]);
        assert_eq!(tree.query(&b).count(), 1);
        assert_eq!(
            tree.query(&BBox::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0)))
                .count(),
            0
        );
    }
}
