//! Line segments and their predicates.

use crate::{BBox, Point, EPS};
use std::fmt;

/// A directed line segment between two points.
///
/// Segments are the probe primitive of curvilinear mask rule checking: the
/// spacing rule builds a probe segment of length `C_space` along a contour
/// point's normal and asks whether it touches any other shape (Fig. 5(a) of
/// the paper).
///
/// ```
/// use cardopc_geometry::{Point, Segment};
///
/// let a = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
/// let b = Segment::new(Point::new(5.0, -5.0), Point::new(5.0, 5.0));
/// assert!(a.intersects(&b));
/// assert_eq!(a.distance_to_point(Point::new(5.0, 3.0)), 3.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Displacement vector from start to end.
    #[inline]
    pub fn delta(&self) -> Point {
        self.b - self.a
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.delta().norm()
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.lerp(self.b, 0.5)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Bounding box of the segment.
    #[inline]
    pub fn bbox(&self) -> BBox {
        BBox::new(self.a, self.b)
    }

    /// `true` when the two closed segments share at least one point.
    ///
    /// Collinear overlap and endpoint touching both count as intersection,
    /// matching the MRC notion of a probe "touching" a shape.
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = self.delta();
        let d2 = other.delta();
        let denom = d1.cross(d2);
        let diff = other.a - self.a;

        if denom.abs() > EPS {
            // General position: solve for the intersection parameters.
            let t = diff.cross(d2) / denom;
            let u = diff.cross(d1) / denom;
            let tol = EPS;
            return t >= -tol && t <= 1.0 + tol && u >= -tol && u <= 1.0 + tol;
        }

        // Parallel. Not collinear -> no intersection.
        if diff.cross(d1).abs() > EPS {
            return false;
        }

        // Collinear: check 1-D interval overlap along the dominant axis.
        let (s0, s1, o0, o1) =
            if d1.x.abs() >= d1.y.abs() && d1.norm_sq() > 0.0 || d2.x.abs() >= d2.y.abs() {
                (self.a.x, self.b.x, other.a.x, other.b.x)
            } else {
                (self.a.y, self.b.y, other.a.y, other.b.y)
            };
        let (s_min, s_max) = (s0.min(s1), s0.max(s1));
        let (o_min, o_max) = (o0.min(o1), o0.max(o1));
        // Degenerate (point) segments still compare correctly here.
        if s_max < o_min - EPS || o_max < s_min - EPS {
            return false;
        }
        // Axis overlap for collinear segments implies true overlap, except
        // when both are points; check actual distance then.
        if d1.norm_sq() <= EPS && d2.norm_sq() <= EPS {
            return self.a.distance(other.a) <= EPS;
        }
        true
    }

    /// Minimum distance from `p` to the closed segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// The point on the closed segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.delta();
        let len_sq = d.norm_sq();
        if len_sq <= EPS {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Minimum distance between two closed segments (zero when they
    /// intersect).
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.distance_to_point(other.a)
            .min(self.distance_to_point(other.b))
            .min(other.distance_to_point(self.a))
            .min(other.distance_to_point(self.b))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn basic_measures() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = seg(0.0, 0.0, 10.0, 10.0);
        let b = seg(0.0, 10.0, 10.0, 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn endpoint_touch_counts() {
        let a = seg(0.0, 0.0, 5.0, 0.0);
        let b = seg(5.0, 0.0, 5.0, 5.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn disjoint_segments() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn parallel_non_collinear() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(0.0, 1.0, 10.0, 1.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn collinear_overlap_and_gap() {
        let a = seg(0.0, 0.0, 5.0, 0.0);
        let b = seg(3.0, 0.0, 8.0, 0.0);
        let c = seg(6.0, 0.0, 8.0, 0.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Vertical collinear too.
        let v1 = seg(2.0, 0.0, 2.0, 5.0);
        let v2 = seg(2.0, 4.0, 2.0, 9.0);
        let v3 = seg(2.0, 6.0, 2.0, 9.0);
        assert!(v1.intersects(&v2));
        assert!(!v1.intersects(&v3));
    }

    #[test]
    fn degenerate_point_segments() {
        let p = seg(1.0, 1.0, 1.0, 1.0);
        let q = seg(1.0, 1.0, 1.0, 1.0);
        let r = seg(2.0, 2.0, 2.0, 2.0);
        assert!(p.intersects(&q));
        assert!(!p.intersects(&r));
        let line = seg(0.0, 0.0, 3.0, 3.0);
        assert!(line.intersects(&seg(1.0, 1.0, 1.0, 1.0)));
    }

    #[test]
    fn distance_to_point_regions() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Projection inside the segment.
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
        // Beyond the endpoints.
        assert_eq!(s.distance_to_point(Point::new(-3.0, 4.0)), 5.0);
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0);
        // On the segment.
        assert_eq!(s.distance_to_point(Point::new(7.0, 0.0)), 0.0);
    }

    #[test]
    fn closest_point_clamps() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(Point::new(-5.0, 2.0)), Point::new(0.0, 0.0));
        assert_eq!(s.closest_point(Point::new(4.0, 2.0)), Point::new(4.0, 0.0));
    }

    #[test]
    fn segment_segment_distance() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(0.0, 3.0, 10.0, 3.0);
        assert_eq!(a.distance_to_segment(&b), 3.0);
        let c = seg(5.0, -1.0, 5.0, 1.0);
        assert_eq!(a.distance_to_segment(&c), 0.0);
        let d = seg(12.0, 0.0, 15.0, 0.0);
        assert_eq!(a.distance_to_segment(&d), 2.0);
    }

    #[test]
    fn bbox_covers_endpoints() {
        let s = seg(3.0, -2.0, -1.0, 4.0);
        let b = s.bbox();
        assert!(b.contains(s.a));
        assert!(b.contains(s.b));
    }
}
