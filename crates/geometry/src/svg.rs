//! Minimal SVG export for mask visualisation.
//!
//! The examples reproduce the qualitative plots of the paper's Fig. 6 as
//! both PGM rasters and vector SVG (targets, optimised mask and printed
//! contours as separate layers).

use crate::Polygon;
use std::io::{self, Write};

/// One drawing layer: a set of polygons with fill and stroke styling.
#[derive(Clone, Debug)]
pub struct SvgLayer<'a> {
    /// Layer name (emitted as an SVG group id).
    pub name: &'a str,
    /// Polygons to draw.
    pub polygons: &'a [Polygon],
    /// CSS fill (e.g. `"#88c0d0"` or `"none"`).
    pub fill: &'a str,
    /// CSS stroke colour.
    pub stroke: &'a str,
    /// Stroke width in user units (nm).
    pub stroke_width: f64,
    /// Fill opacity in `[0, 1]`.
    pub opacity: f64,
}

/// Writes an SVG document of `width` × `height` nanometres containing the
/// given layers (drawn in order, later layers on top). The y-axis is
/// flipped so the geometry's y-up convention renders upright.
///
/// # Errors
///
/// Propagates I/O errors from the writer; a `&mut` reference to any writer
/// can be passed.
pub fn write_svg<W: Write>(
    mut w: W,
    width: f64,
    height: f64,
    layers: &[SvgLayer<'_>],
) -> io::Result<()> {
    writeln!(
        w,
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" width="800" height="800">"#
    )?;
    writeln!(
        w,
        r##"<rect width="{width}" height="{height}" fill="#101418"/>"##
    )?;
    // Flip y so that y-up geometry appears upright.
    writeln!(w, r#"<g transform="translate(0,{height}) scale(1,-1)">"#)?;
    for layer in layers {
        writeln!(
            w,
            r#"<g id="{}" fill="{}" fill-opacity="{}" stroke="{}" stroke-width="{}">"#,
            layer.name, layer.fill, layer.opacity, layer.stroke, layer.stroke_width
        )?;
        for poly in layer.polygons {
            if poly.len() < 2 {
                continue;
            }
            write!(w, r#"<polygon points=""#)?;
            for p in poly.vertices() {
                write!(w, "{:.2},{:.2} ", p.x, p.y)?;
            }
            writeln!(w, r#""/>"#)?;
        }
        writeln!(w, "</g>")?;
    }
    writeln!(w, "</g>")?;
    writeln!(w, "</svg>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    #[test]
    fn produces_valid_looking_svg() {
        let polys = vec![Polygon::rect(
            Point::new(10.0, 10.0),
            Point::new(50.0, 30.0),
        )];
        let layer = SvgLayer {
            name: "targets",
            polygons: &polys,
            fill: "#88c0d0",
            stroke: "none",
            stroke_width: 0.0,
            opacity: 0.8,
        };
        let mut buf = Vec::new();
        write_svg(&mut buf, 100.0, 100.0, &[layer]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("<svg"));
        assert!(s.contains(r#"<g id="targets""#));
        assert!(s.contains("<polygon points="));
        assert!(s.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn empty_layers_still_valid() {
        let mut buf = Vec::new();
        write_svg(&mut buf, 10.0, 10.0, &[]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("</svg>"));
    }

    #[test]
    fn degenerate_polygons_skipped() {
        let polys = vec![Polygon::new(vec![Point::new(1.0, 1.0)])];
        let layer = SvgLayer {
            name: "x",
            polygons: &polys,
            fill: "none",
            stroke: "#fff",
            stroke_width: 1.0,
            opacity: 1.0,
        };
        let mut buf = Vec::new();
        write_svg(&mut buf, 10.0, 10.0, &[layer]).unwrap();
        assert!(!String::from_utf8(buf).unwrap().contains("<polygon"));
    }
}
