//! Property-based tests for the geometry kernel.

use cardopc_geometry::{trace_contours, BBox, Grid, Point, Polygon, RTree, Segment, SplitMix64};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (arb_point(), arb_point()).prop_map(|(a, b)| BBox::new(a, b))
}

proptest! {
    #[test]
    fn point_add_sub_roundtrip(a in arb_point(), b in arb_point()) {
        let c = a + b - b;
        prop_assert!((c - a).norm() <= 1e-9 * (1.0 + a.norm()));
    }

    #[test]
    fn cross_antisymmetry(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.cross(b), -b.cross(a));
    }

    #[test]
    fn normalized_has_unit_length(a in arb_point()) {
        if let Some(u) = a.normalized() {
            prop_assert!((u.norm() - 1.0).abs() < 1e-12);
            // Same direction as the original.
            prop_assert!(u.cross(a).abs() < 1e-6 * a.norm());
        }
    }

    #[test]
    fn rotation_preserves_norm(a in arb_point(), angle in -10.0..10.0f64) {
        let r = a.rotated(angle);
        prop_assert!((r.norm() - a.norm()).abs() < 1e-9 * (1.0 + a.norm()));
    }

    #[test]
    fn bbox_union_commutative_and_covering(a in arb_bbox(), b in arb_bbox()) {
        let u = a.union(b);
        prop_assert_eq!(u, b.union(a));
        prop_assert!(u.contains_bbox(&a));
        prop_assert!(u.contains_bbox(&b));
    }

    #[test]
    fn bbox_intersects_symmetric(a in arb_bbox(), b in arb_bbox()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn segment_intersects_symmetric(a in arb_point(), b in arb_point(),
                                    c in arb_point(), d in arb_point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        prop_assert_eq!(s.intersects(&t), t.intersects(&s));
    }

    #[test]
    fn segment_distance_zero_iff_intersecting(a in arb_point(), b in arb_point(),
                                              c in arb_point(), d in arb_point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        let dist = s.distance_to_segment(&t);
        if s.intersects(&t) {
            prop_assert_eq!(dist, 0.0);
        } else {
            prop_assert!(dist > 0.0);
        }
    }

    #[test]
    fn closest_point_is_on_segment_and_optimal(a in arb_point(), b in arb_point(), p in arb_point()) {
        let s = Segment::new(a, b);
        let cp = s.closest_point(p);
        // cp lies on the segment.
        prop_assert!(s.distance_to_point(cp) < 1e-6);
        // No sampled point on the segment is closer.
        for k in 0..=10 {
            let q = s.at(k as f64 / 10.0);
            prop_assert!(cp.distance(p) <= q.distance(p) + 1e-9 * (1.0 + p.norm()));
        }
    }

    /// Shoelace area of a random star-shaped polygon equals the sum of its
    /// triangle fan areas.
    #[test]
    fn shoelace_matches_triangle_fan(seed in 0u64..1000, n in 3usize..20) {
        let mut rng = SplitMix64::new(seed);
        let center = Point::new(rng.range_f64(-100.0, 100.0), rng.range_f64(-100.0, 100.0));
        // Star-shaped: sorted angles around the centre guarantee simplicity.
        let mut pts: Vec<Point> = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * (i as f64 + rng.next_f64() * 0.8) / n as f64;
                let r = rng.range_f64(1.0, 50.0);
                center + Point::new(theta.cos(), theta.sin()) * r
            })
            .collect();
        pts.sort_by(|a, b| {
            let ta = (a.y - center.y).atan2(a.x - center.x);
            let tb = (b.y - center.y).atan2(b.x - center.x);
            ta.total_cmp(&tb)
        });
        let poly = Polygon::new(pts.clone());
        prop_assume!(poly.len() >= 3);
        let fan: f64 = (1..poly.len() - 1)
            .map(|i| {
                let v = poly.vertices();
                0.5 * (v[i] - v[0]).cross(v[i + 1] - v[0])
            })
            .sum();
        prop_assert!((poly.signed_area() - fan).abs() < 1e-6 * (1.0 + fan.abs()));
    }

    #[test]
    fn polygon_translation_preserves_area(seed in 0u64..500, dx in -100.0..100.0f64, dy in -100.0..100.0f64) {
        let mut rng = SplitMix64::new(seed);
        let w = rng.range_f64(1.0, 100.0);
        let h = rng.range_f64(1.0, 100.0);
        let poly = Polygon::rect(Point::ZERO, Point::new(w, h));
        let moved = poly.translated(Point::new(dx, dy));
        prop_assert!((moved.area() - poly.area()).abs() < 1e-9 * poly.area());
    }

    #[test]
    fn polygon_centroid_is_inside_rect(x0 in -100.0..100.0f64, y0 in -100.0..100.0f64,
                                        w in 1.0..100.0f64, h in 1.0..100.0f64) {
        let poly = Polygon::rect(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        prop_assert!(poly.contains(poly.centroid()));
    }

    /// R-tree query results always match a brute-force scan.
    #[test]
    fn rtree_matches_linear_scan(seed in 0u64..200, n in 1usize..200) {
        let mut rng = SplitMix64::new(seed);
        let items: Vec<(BBox, usize)> = (0..n)
            .map(|i| {
                let x = rng.range_f64(0.0, 500.0);
                let y = rng.range_f64(0.0, 500.0);
                let b = BBox::new(
                    Point::new(x, y),
                    Point::new(x + rng.range_f64(0.0, 30.0), y + rng.range_f64(0.0, 30.0)),
                );
                (b, i)
            })
            .collect();
        let tree = RTree::bulk_load(items.clone());
        for _ in 0..5 {
            let x = rng.range_f64(-50.0, 500.0);
            let y = rng.range_f64(-50.0, 500.0);
            let q = BBox::new(Point::new(x, y), Point::new(x + 100.0, y + 100.0));
            let mut got: Vec<usize> = tree.query(&q).copied().collect();
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|&(_, i)| i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Contours of random rectangular blocks are closed, correctly oriented
    /// and have area close to the block area.
    #[test]
    fn contour_of_random_block(x0 in 1usize..10, y0 in 1usize..10,
                               w in 2usize..8, h in 2usize..8) {
        let mut g = Grid::zeros(20, 20, 1.0);
        for iy in y0..y0 + h {
            for ix in x0..x0 + w {
                g[(ix, iy)] = 1.0;
            }
        }
        let cs = trace_contours(&g, 0.5);
        prop_assert_eq!(cs.len(), 1);
        let c = &cs[0];
        prop_assert!(c.signed_area() > 0.0);
        let expected = (w * h) as f64;
        prop_assert!((c.area() - expected).abs() < 0.30 * expected + 1.0,
                     "area {} vs expected {}", c.area(), expected);
        for e in c.edges() {
            prop_assert!(e.length() < 2.0, "contour has a gap: edge length {}", e.length());
        }
    }

    /// Every contour vertex sits exactly on the iso-level when bilinearly
    /// sampled (within interpolation tolerance).
    #[test]
    fn contour_vertices_near_iso_level(seed in 0u64..100) {
        let mut rng = SplitMix64::new(seed);
        let mut g = Grid::zeros(16, 16, 1.0);
        // Smooth random bump field.
        for _ in 0..3 {
            let cx = rng.range_f64(3.0, 13.0);
            let cy = rng.range_f64(3.0, 13.0);
            let s = rng.range_f64(1.5, 4.0);
            for iy in 0..16 {
                for ix in 0..16 {
                    let dx = (ix as f64 + 0.5 - cx) / s;
                    let dy = (iy as f64 + 0.5 - cy) / s;
                    g[(ix, iy)] += (-0.5 * (dx * dx + dy * dy)).exp();
                }
            }
        }
        for c in trace_contours(&g, 0.5) {
            for v in c.vertices() {
                // Skip vertices produced by the virtual border padding.
                if v.x < 1.0 || v.y < 1.0 || v.x > 15.0 || v.y > 15.0 {
                    continue;
                }
                let val = g.sample(v.x, v.y);
                prop_assert!((val - 0.5).abs() < 0.2,
                             "vertex {v} has field value {val}, far from iso 0.5");
            }
        }
    }
}
