//! ILT mask regularisation before spline fitting.
//!
//! Gradient ILT output carries sidelobe ringing: speckles and hair-thin
//! assist rings that no mask writer could produce. Production ILT flows
//! regularise their masks before handoff; this module provides the two
//! standard operations the hybrid flow uses:
//!
//! * [`blur`] — a separable 3×3 binomial smoothing pass that suppresses
//!   sub-pixel ringing without moving feature edges materially,
//! * [`remove_small_components`] — connected-component labelling that
//!   erases blobs below a printable-area threshold (the "small and
//!   nonprintable pattern" removal of §III-F, applied at the image level).

use cardopc_geometry::Grid;

/// Applies `passes` rounds of 3×3 binomial smoothing (kernel
/// `[1 2 1]/4` per axis), clamping the border.
pub fn blur(grid: &Grid, passes: usize) -> Grid {
    let mut out = grid.clone();
    let (w, h) = (grid.width(), grid.height());
    blur_field(out.data_mut(), w, h, passes, &mut Vec::new());
    out
}

/// In-place, slice-level form of [`blur`]: smooths `data` (a row-major
/// `width` × `height` field) with the same separable binomial kernel,
/// keeping the horizontal intermediate in `scratch`. The ILT loop
/// regularises its parameter field through this instead of cloning the
/// parameters into a fresh [`Grid`] every few iterations.
///
/// # Panics
///
/// Panics when `data.len() != width * height`.
pub fn blur_field(
    data: &mut [f64],
    width: usize,
    height: usize,
    passes: usize,
    scratch: &mut Vec<f64>,
) {
    assert_eq!(data.len(), width * height, "field size mismatch");
    if width == 0 || height == 0 {
        return;
    }
    scratch.clear();
    scratch.resize(width * height, 0.0);
    for _ in 0..passes {
        // Horizontal pass, border clamped.
        for iy in 0..height {
            let row = &data[iy * width..(iy + 1) * width];
            let out = &mut scratch[iy * width..(iy + 1) * width];
            for ix in 0..width {
                let l = row[ix.saturating_sub(1)];
                let c = row[ix];
                let r = row[(ix + 1).min(width - 1)];
                out[ix] = 0.25 * l + 0.5 * c + 0.25 * r;
            }
        }
        // Vertical pass, border clamped.
        for iy in 0..height {
            let up = iy.saturating_sub(1) * width;
            let mid = iy * width;
            let down = (iy + 1).min(height - 1) * width;
            for ix in 0..width {
                data[mid + ix] =
                    0.25 * scratch[up + ix] + 0.5 * scratch[mid + ix] + 0.25 * scratch[down + ix];
            }
        }
    }
}

/// Morphological opening (erosion then dilation) of the binary image
/// `grid >= level` with a disk of `radius_px` pixels.
///
/// Opening erases features thinner than `2·radius_px` pixels and splits
/// blobs connected through sub-rule necks — the standard image-level
/// cleanup that makes ILT masks mask-rule-friendly before contour
/// extraction. Returns a 0/1 grid.
pub fn open_binary(grid: &Grid, level: f64, radius_px: usize) -> Grid {
    let eroded = morph(grid, level, radius_px, true);
    morph(&eroded, 0.5, radius_px, false)
}

/// Disk erosion (`erode = true`) or dilation of the binary image.
fn morph(grid: &Grid, level: f64, radius_px: usize, erode: bool) -> Grid {
    let (w, h) = (grid.width(), grid.height());
    let r = radius_px as isize;
    // Disk offsets.
    let mut disk = Vec::new();
    for dy in -r..=r {
        for dx in -r..=r {
            if dx * dx + dy * dy <= r * r {
                disk.push((dx, dy));
            }
        }
    }
    let mut out = Grid::zeros(w, h, grid.pitch());
    for iy in 0..h as isize {
        for ix in 0..w as isize {
            let mut all = true;
            let mut any = false;
            for &(dx, dy) in &disk {
                let inside = {
                    let (jx, jy) = (ix + dx, iy + dy);
                    if jx < 0 || jy < 0 || jx >= w as isize || jy >= h as isize {
                        false
                    } else {
                        grid.data()[jy as usize * w + jx as usize] >= level
                    }
                };
                all &= inside;
                any |= inside;
                if erode && !all {
                    break;
                }
                if !erode && any {
                    break;
                }
            }
            out[(ix as usize, iy as usize)] = if erode {
                if all {
                    1.0
                } else {
                    0.0
                }
            } else if any {
                1.0
            } else {
                0.0
            };
        }
    }
    out
}

/// Zeroes every 4-connected component of `grid >= level` whose physical
/// area is below `min_area` (nm²). Returns the cleaned grid and the number
/// of removed components.
pub fn remove_small_components(grid: &Grid, level: f64, min_area: f64) -> (Grid, usize) {
    let (w, h) = (grid.width(), grid.height());
    let px_area = grid.pitch() * grid.pitch();
    let mut labels = vec![0u32; w * h]; // 0 = unvisited/background
    let mut cleaned = grid.clone();
    let mut removed = 0usize;
    let mut next_label = 1u32;
    let mut stack: Vec<usize> = Vec::new();
    let mut component: Vec<usize> = Vec::new();

    for start in 0..w * h {
        if labels[start] != 0 || grid.data()[start] < level {
            continue;
        }
        // Flood fill.
        component.clear();
        stack.push(start);
        labels[start] = next_label;
        while let Some(idx) = stack.pop() {
            component.push(idx);
            let (ix, iy) = (idx % w, idx / w);
            let mut visit = |jx: usize, jy: usize| {
                let j = jy * w + jx;
                if labels[j] == 0 && grid.data()[j] >= level {
                    labels[j] = next_label;
                    stack.push(j);
                }
            };
            if ix > 0 {
                visit(ix - 1, iy);
            }
            if ix + 1 < w {
                visit(ix + 1, iy);
            }
            if iy > 0 {
                visit(ix, iy - 1);
            }
            if iy + 1 < h {
                visit(ix, iy + 1);
            }
        }
        next_label += 1;
        if (component.len() as f64) * px_area < min_area {
            removed += 1;
            for &idx in &component {
                cleaned.data_mut()[idx] = 0.0;
            }
        }
    }
    (cleaned, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_blobs() -> Grid {
        let mut g = Grid::zeros(32, 32, 2.0);
        // Big blob: 10x10 px = 400 nm².
        for iy in 4..14 {
            for ix in 4..14 {
                g[(ix, iy)] = 1.0;
            }
        }
        // Speck: 2x2 px = 16 nm².
        for iy in 24..26 {
            for ix in 24..26 {
                g[(ix, iy)] = 1.0;
            }
        }
        g
    }

    #[test]
    fn removes_only_small_components() {
        let g = grid_with_blobs();
        let (cleaned, removed) = remove_small_components(&g, 0.5, 100.0);
        assert_eq!(removed, 1);
        assert_eq!(cleaned[(5, 5)], 1.0, "big blob survives");
        assert_eq!(cleaned[(24, 24)], 0.0, "speck removed");
    }

    #[test]
    fn keeps_everything_with_zero_threshold() {
        let g = grid_with_blobs();
        let (cleaned, removed) = remove_small_components(&g, 0.5, 0.0);
        assert_eq!(removed, 0);
        assert_eq!(cleaned, g);
    }

    #[test]
    fn removes_everything_with_huge_threshold() {
        let g = grid_with_blobs();
        let (cleaned, removed) = remove_small_components(&g, 0.5, 1e9);
        assert_eq!(removed, 2);
        assert_eq!(cleaned.sum(), 0.0);
    }

    #[test]
    fn diagonal_blobs_are_separate_components() {
        let mut g = Grid::zeros(8, 8, 1.0);
        g[(2, 2)] = 1.0;
        g[(3, 3)] = 1.0; // diagonal neighbour: 4-connectivity separates
        let (_, removed) = remove_small_components(&g, 0.5, 1.5);
        assert_eq!(removed, 2);
    }

    #[test]
    fn opening_removes_thin_arm_keeps_block() {
        let mut g = Grid::zeros(32, 32, 1.0);
        // 10x10 block with a 1-px-wide arm sticking out.
        for iy in 10..20 {
            for ix in 10..20 {
                g[(ix, iy)] = 1.0;
            }
        }
        for ix in 20..28 {
            g[(ix, 15)] = 1.0;
        }
        let o = open_binary(&g, 0.5, 1);
        assert_eq!(o[(15, 15)], 1.0, "block interior survives");
        assert_eq!(o[(24, 15)], 0.0, "thin arm erased");
    }

    #[test]
    fn opening_splits_necked_blobs() {
        let mut g = Grid::zeros(32, 32, 1.0);
        for iy in 8..16 {
            for ix in 4..12 {
                g[(ix, iy)] = 1.0;
            }
        }
        for iy in 8..16 {
            for ix in 20..28 {
                g[(ix, iy)] = 1.0;
            }
        }
        // 1-px bridge.
        for ix in 12..20 {
            g[(ix, 12)] = 1.0;
        }
        let o = open_binary(&g, 0.5, 1);
        assert_eq!(o[(16, 12)], 0.0, "bridge cut");
        assert_eq!(o[(8, 12)], 1.0);
        assert_eq!(o[(24, 12)], 1.0);
    }

    #[test]
    fn opening_radius_zero_is_binarize() {
        let g = grid_with_blobs();
        let o = open_binary(&g, 0.5, 0);
        assert_eq!(o, g.binarize(0.5));
    }

    #[test]
    fn blur_preserves_mass_and_bounds() {
        let g = grid_with_blobs();
        let b = blur(&g, 2);
        assert!((b.sum() - g.sum()).abs() < 0.05 * g.sum());
        assert!(b.max_value() <= 1.0 + 1e-12);
        assert!(b.min_value() >= 0.0);
        // Centre of the big blob stays solid; the edge softens.
        assert!(b[(8, 8)] > 0.95);
        assert!(b[(4, 4)] < 0.9);
    }

    #[test]
    fn blur_zero_passes_is_identity() {
        let g = grid_with_blobs();
        assert_eq!(blur(&g, 0), g);
    }
}
