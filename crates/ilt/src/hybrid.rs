//! The ILT-OPC hybrid flow (§III-G).
//!
//! 1. Run pixel ILT to get a high-fidelity continuous mask.
//! 2. Trace the boundary of every shape in the mask image ([`trace_contours`]
//!    standing in for OpenCV border following).
//! 3. Fit each contour with a cardinal spline (Algorithm 1).
//! 4. Check the fitted curvilinear mask against the mask rules and resolve
//!    the violations (removing non-printable sub-area specks).
//!
//! The result keeps ILT's pattern fidelity while reaching zero MRC
//! violations — the Fig. 7 claim this crate's benchmark regenerates.

use crate::cleanup::{open_binary, remove_small_components};
use crate::pixel::{pixel_ilt, IltConfig, IltOutcome};
use cardopc_geometry::{trace_contours, Polygon};
use cardopc_litho::{LithoEngine, WorkerPool};
use cardopc_mrc::{AreaPolicy, MrcChecker, MrcResolver, MrcRules, ResolveConfig};
use cardopc_opc::{
    evaluate_mask, evaluate_mask_grid, raster_for_engine, Evaluation, MeasureConvention, OpcError,
};
use cardopc_spline::{fit_contour_with, CardinalSpline, FitConfig, FitScratch};

/// Configuration of the hybrid flow.
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// Pixel ILT stage parameters.
    pub ilt: IltConfig,
    /// Contour fitting (Algorithm 1) parameters.
    pub fit: FitConfig,
    /// Mask rules for the final check/resolve stage.
    pub mrc: MrcRules,
    /// Spline sampling density for rasterisation and checking.
    pub samples_per_segment: usize,
    /// PVB dose corner.
    pub dose_delta: f64,
    /// EPE search range, nm.
    pub epe_search: f64,
    /// Measure point convention for scoring.
    pub convention: MeasureConvention,
    /// Contours with fewer vertices than this are noise and skipped.
    pub min_contour_points: usize,
    /// Radius (pixels) of the morphological opening applied to the ILT
    /// mask before fitting: erases arms thinner than twice this radius and
    /// splits sub-rule necks (0 disables).
    pub opening_radius: usize,
    /// Connected components of the ILT mask smaller than this (nm²) are
    /// erased before fitting — the image-level form of the paper's
    /// "remove small, non-printable patterns".
    pub min_component_area: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            ilt: IltConfig::default(),
            fit: FitConfig {
                // Denser control points than the plain default: ILT
                // contours carry real curvature that a 4-point loop would
                // turn into spikes.
                control_ratio: 0.15,
                min_control_points: 8,
                ..FitConfig::default()
            },
            mrc: MrcRules::sraf_scale(),
            samples_per_segment: 8,
            dose_delta: 0.02,
            epe_search: 40.0,
            convention: MeasureConvention::MetalSpacing(60.0),
            min_contour_points: 8,
            opening_radius: 2,
            min_component_area: 2.0 * MrcRules::sraf_scale().min_area,
        }
    }
}

/// Result of the hybrid flow.
#[derive(Clone, Debug)]
pub struct HybridOutcome {
    /// The raw pixel ILT stage output.
    pub ilt: IltOutcome,
    /// Spline shapes fitted to the ILT contours, before MRC resolving.
    pub fitted_shapes: Vec<CardinalSpline>,
    /// Final shapes after MRC resolving (specks removed).
    pub shapes: Vec<CardinalSpline>,
    /// MRC violations on the fitted mask before resolving.
    pub violations_before: usize,
    /// MRC violations remaining after resolving (the paper reaches 0).
    pub violations_after: usize,
    /// Scores of the raw ILT mask.
    pub ilt_eval: Evaluation,
    /// Scores of the final hybrid mask.
    pub hybrid_eval: Evaluation,
    /// Mean fitting error over all shapes (nm², from Algorithm 1's loss).
    pub mean_fit_loss: f64,
}

impl HybridOutcome {
    /// Final mask polygons.
    pub fn mask_polygons(&self, samples_per_segment: usize) -> Vec<Polygon> {
        self.shapes
            .iter()
            .map(|s| s.to_polygon(samples_per_segment))
            .collect()
    }
}

/// Runs the full ILT-OPC hybrid flow against target patterns.
///
/// # Errors
///
/// Propagates engine mismatches and degenerate-geometry errors.
pub fn run_hybrid(
    engine: &LithoEngine,
    targets: &[Polygon],
    config: &HybridConfig,
) -> Result<HybridOutcome, OpcError> {
    if targets.is_empty() {
        return Err(OpcError::EmptyClip);
    }

    // 1. Pixel ILT against the rasterised target.
    let target_raster = raster_for_engine(engine, targets).binarize(0.5);
    let ilt = pixel_ilt(engine, &target_raster, &config.ilt)?;

    // 2–3. Regularise the ILT mask, trace shape boundaries, fit splines.
    let (fitted_shapes, fit_losses) = fit_mask_shapes(&ilt.mask, config);

    // 4. MRC check and resolve.
    //
    // The resolver fixes what trial moves can fix *without* deleting
    // shapes (Keep policy — deformations are bounded by the step
    // schedule). Assist features that still violate afterwards are then
    // pruned greedily, worst offender first: assists exist only to
    // support the mains' process window, so a rule-breaking assist is
    // expendable (§III-F's post-fit removal, applied shape-wise). Mains
    // (shapes overlapping a target) are never deleted.
    let checker = MrcChecker::with_sampling(config.mrc, config.samples_per_segment);
    let violations_before = checker.check(&fitted_shapes).len();
    let mut shapes = fitted_shapes.clone();
    let resolver = MrcResolver::new(
        config.mrc,
        ResolveConfig {
            area_policy: AreaPolicy::Keep,
            samples_per_segment: config.samples_per_segment,
            max_rounds: 24,
            ..ResolveConfig::default()
        },
    );
    let _report = resolver.resolve(&mut shapes);

    let target_boxes: Vec<_> = targets.iter().map(|t| t.bbox()).collect();
    let is_main = |s: &CardinalSpline| {
        let b = s.to_polygon(config.samples_per_segment).bbox();
        target_boxes.iter().any(|t| t.intersects(&b))
    };
    loop {
        let remaining = checker.check(&shapes);
        if remaining.is_empty() {
            break;
        }
        let mut per_shape = std::collections::HashMap::new();
        for v in &remaining {
            *per_shape.entry(v.shape).or_insert(0usize) += 1;
        }
        let worst_assist = per_shape
            .iter()
            .filter(|&(&i, _)| !is_main(&shapes[i]))
            .max_by_key(|&(_, &c)| c)
            .map(|(&i, _)| i);
        match worst_assist {
            Some(i) => {
                shapes.remove(i);
            }
            None => break, // only mains still violate; keep them
        }
    }
    let violations_after = checker.check(&shapes).len();

    // Score both the raw ILT mask and the hybrid mask.
    let ilt_eval = evaluate_mask_grid(
        engine,
        &ilt.binary_mask,
        targets,
        config.convention,
        config.dose_delta,
        config.epe_search,
    )?;
    let hybrid_polys: Vec<Polygon> = shapes
        .iter()
        .map(|s| s.to_polygon(config.samples_per_segment))
        .collect();
    let hybrid_eval = evaluate_mask(
        engine,
        &hybrid_polys,
        targets,
        config.convention,
        config.dose_delta,
        config.epe_search,
    )?;

    let mean_fit_loss = if fit_losses.is_empty() {
        0.0
    } else {
        fit_losses.iter().sum::<f64>() / fit_losses.len() as f64
    };

    Ok(HybridOutcome {
        ilt,
        fitted_shapes,
        shapes,
        violations_before,
        violations_after,
        ilt_eval,
        hybrid_eval,
        mean_fit_loss,
    })
}

/// Fits cardinal-spline shapes to an arbitrary mask image (§III-B/G).
///
/// This is the fitting stage of the hybrid flow exposed on its own:
/// regularise (morphological opening + speck removal per the config),
/// trace shape boundaries, and run Algorithm 1 on every outer contour.
/// Use it to convert masks produced by *external* ILT tools into the
/// uniform spline representation — e.g. CTM-style SRAF generation.
///
/// Returns the fitted shapes and the per-shape final fitting losses (nm²).
///
/// Contours are fitted in parallel on the shared global [`WorkerPool`];
/// see [`fit_mask_shapes_with_pool`] for the determinism guarantee.
pub fn fit_mask_shapes(
    mask: &cardopc_geometry::Grid,
    config: &HybridConfig,
) -> (Vec<CardinalSpline>, Vec<f64>) {
    fit_mask_shapes_with_pool(mask, config, WorkerPool::global())
}

/// [`fit_mask_shapes`] on an explicit pool.
///
/// The filtered contours are split into contiguous chunks, one per pool
/// slot, each fitted with its own reusable [`FitScratch`]; results are
/// merged back in contour order. Every Adam run is fully re-initialised
/// per contour, so the output is bitwise independent of the worker count.
pub fn fit_mask_shapes_with_pool(
    mask: &cardopc_geometry::Grid,
    config: &HybridConfig,
    pool: &WorkerPool,
) -> (Vec<CardinalSpline>, Vec<f64>) {
    let opened = open_binary(mask, 0.5, config.opening_radius);
    let (regularised, _removed) = remove_small_components(&opened, 0.5, config.min_component_area);

    // Holes (clockwise) in ILT masks are rare and tiny; skipping them
    // keeps the uniform outer-loop shape representation of §III-B.
    let contours: Vec<Polygon> = trace_contours(&regularised, 0.5)
        .into_iter()
        .filter(|c| !(c.signed_area() <= 0.0 || c.len() < config.min_contour_points))
        .collect();

    let n = contours.len();
    let mut results: Vec<Option<(CardinalSpline, f64)>> = (0..n).map(|_| None).collect();
    if n > 0 {
        struct Slot<'a> {
            scratch: FitScratch,
            work: &'a [Polygon],
            out: &'a mut [Option<(CardinalSpline, f64)>],
        }
        let tasks = pool.parallelism().clamp(1, n);
        let chunk = n.div_ceil(tasks);
        let mut slots: Vec<Slot<'_>> = contours
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .map(|(work, out)| Slot {
                scratch: FitScratch::new(),
                work,
                out,
            })
            .collect();
        pool.run_with_slots(&mut slots, |_slot_index, slot| {
            for (contour, out) in slot.work.iter().zip(slot.out.iter_mut()) {
                // Fit failures are degenerate specks; leave their slot None.
                if let Ok(fit) = fit_contour_with(contour, &config.fit, &mut slot.scratch) {
                    *out = Some((fit.spline, fit.final_loss));
                }
            }
        });
    }

    let mut fitted_shapes = Vec::with_capacity(n);
    let mut fit_losses = Vec::with_capacity(n);
    for (spline, loss) in results.into_iter().flatten() {
        fitted_shapes.push(spline);
        fit_losses.push(loss);
    }
    (fitted_shapes, fit_losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::Point;
    use cardopc_litho::OpticsConfig;

    fn small_engine() -> LithoEngine {
        let cfg = OpticsConfig {
            source_rings: 1,
            points_per_ring: 4,
            ..OpticsConfig::default()
        };
        let mut e = LithoEngine::new(cfg, 64, 64, 8.0).unwrap();
        e.calibrate_threshold();
        e
    }

    fn fast_config() -> HybridConfig {
        HybridConfig {
            ilt: IltConfig {
                iterations: 12,
                ..IltConfig::default()
            },
            fit: FitConfig {
                iterations: 60,
                ..FitConfig::default()
            },
            convention: MeasureConvention::ViaEdgeCenters,
            ..HybridConfig::default()
        }
    }

    fn square_targets() -> Vec<Polygon> {
        vec![Polygon::rect(
            Point::new(180.0, 180.0),
            Point::new(330.0, 330.0),
        )]
    }

    #[test]
    fn hybrid_produces_shapes_and_scores() {
        let engine = small_engine();
        let out = run_hybrid(&engine, &square_targets(), &fast_config()).unwrap();
        assert!(!out.shapes.is_empty(), "hybrid produced no shapes");
        assert!(out.hybrid_eval.epe_sum_nm.is_finite());
        assert!(out.ilt_eval.l2_nm2.is_finite());
        assert!(out.mean_fit_loss >= 0.0);
    }

    #[test]
    fn resolving_reduces_violations() {
        let engine = small_engine();
        let out = run_hybrid(&engine, &square_targets(), &fast_config()).unwrap();
        assert!(
            out.violations_after <= out.violations_before,
            "{} -> {}",
            out.violations_before,
            out.violations_after
        );
    }

    #[test]
    fn fitted_mask_close_to_ilt_mask() {
        // The fitted spline mask should cover roughly the same area as the
        // binarised ILT mask (fit fidelity).
        let engine = small_engine();
        let out = run_hybrid(&engine, &square_targets(), &fast_config()).unwrap();
        let ilt_area = out.ilt.binary_mask.sum() * 64.0; // pitch² = 64
        let fit_area: f64 = out
            .fitted_shapes
            .iter()
            .map(|s| s.to_polygon(8).area())
            .sum();
        assert!(
            (fit_area - ilt_area).abs() < 0.35 * ilt_area.max(1.0),
            "fit area {fit_area} vs ILT area {ilt_area}"
        );
    }

    #[test]
    fn fit_mask_shapes_independent_of_worker_count() {
        use cardopc_geometry::Grid;
        // Several disjoint blobs so the contour fan-out actually splits.
        let mut mask = Grid::zeros(64, 64, 8.0);
        let blocks = [
            (8usize, 8usize, 20usize, 20usize),
            (36, 8, 56, 24),
            (10, 40, 28, 56),
        ];
        for &(x0, y0, x1, y1) in &blocks {
            for iy in y0..y1 {
                for ix in x0..x1 {
                    mask[(ix, iy)] = 1.0;
                }
            }
        }
        let config = HybridConfig {
            fit: FitConfig {
                iterations: 40,
                ..FitConfig::default()
            },
            ..HybridConfig::default()
        };
        let (ref_shapes, ref_losses) =
            fit_mask_shapes_with_pool(&mask, &config, &WorkerPool::new(1));
        assert!(ref_shapes.len() >= 2, "expected several fitted shapes");
        for workers in [2usize, 3, 4, 16] {
            let pool = WorkerPool::new(workers);
            let (shapes, losses) = fit_mask_shapes_with_pool(&mask, &config, &pool);
            assert_eq!(losses, ref_losses, "losses @ {workers} workers");
            assert_eq!(shapes.len(), ref_shapes.len());
            for (a, b) in shapes.iter().zip(&ref_shapes) {
                assert_eq!(
                    a.control_points(),
                    b.control_points(),
                    "control points @ {workers} workers"
                );
            }
        }
    }

    #[test]
    fn empty_targets_rejected() {
        let engine = small_engine();
        assert!(matches!(
            run_hybrid(&engine, &[], &fast_config()),
            Err(OpcError::EmptyClip)
        ));
    }
}
