//! # cardopc-ilt
//!
//! Inverse lithography substrate and the ILT-OPC hybrid flow of §III-G.
//!
//! * [`pixel_ilt`] — a sigmoid-relaxed gradient ILT in the OpenILT/MOSAIC
//!   family, with analytic backprop through the Hopkins model (the
//!   fidelity upper-bound comparator in Fig. 7),
//! * [`run_hybrid`] — ILT → contour tracing → cardinal spline fitting
//!   (Algorithm 1) → MRC violation resolving, producing masks with ILT-like
//!   fidelity and zero mask rule violations.
//!
//! ```no_run
//! use cardopc_geometry::{Point, Polygon};
//! use cardopc_ilt::{run_hybrid, HybridConfig};
//! use cardopc_litho::{LithoEngine, OpticsConfig};
//!
//! let mut engine = LithoEngine::new(OpticsConfig::default(), 512, 512, 4.0)?;
//! engine.calibrate_threshold();
//! let targets = vec![Polygon::rect(Point::new(800.0, 800.0), Point::new(1200.0, 1200.0))];
//! let out = run_hybrid(&engine, &targets, &HybridConfig::default())
//!     .expect("hybrid flow");
//! assert!(out.violations_after <= out.violations_before);
//! # Ok::<(), cardopc_litho::LithoError>(())
//! ```

#![warn(missing_docs)]

pub mod cleanup;
mod hybrid;
mod pixel;

pub use hybrid::{
    fit_mask_shapes, fit_mask_shapes_with_pool, run_hybrid, HybridConfig, HybridOutcome,
};
pub use pixel::{pixel_ilt, IltConfig, IltOutcome};
