//! Pixel-based inverse lithography (the OpenILT/MOSAIC-style substrate).
//!
//! The ILT-OPC hybrid flow of §III-G needs an ILT engine whose optimised
//! masks it can fit with cardinal splines. This module implements the
//! standard sigmoid-relaxed gradient ILT:
//!
//! * mask relaxation `M = σ(θ_M · P)` over unbounded parameters `P`,
//! * resist relaxation `Z = σ(θ_Z · (I − I_th))`,
//! * loss `L = ‖Z − Ẑ‖²` against the binary target `Ẑ`,
//! * analytic gradient through the Hopkins model:
//!   `∇_M L = 2·Re Σ_k w_k IFFT(FFT(F ⊙ A_k) ⊙ H_k*)` with
//!   `A_k = M ⊗ h_k` and `F = 2(Z−Ẑ)·Z(1−Z)·θ_Z`,
//! * gradient descent with momentum.

use cardopc_geometry::Grid;
use cardopc_litho::fft::{FftScratch, Field};
use cardopc_litho::{LithoEngine, LithoError, Precision, Scalar, SocsKernel, WorkerPool};

/// Configuration of the pixel ILT optimiser.
#[derive(Clone, Debug, PartialEq)]
pub struct IltConfig {
    /// Gradient descent iterations.
    pub iterations: usize,
    /// Step size on the mask parameters.
    pub step_size: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mask sigmoid steepness `θ_M`.
    pub theta_mask: f64,
    /// Resist sigmoid steepness `θ_Z`.
    pub theta_resist: f64,
    /// Initial parameter magnitude (target pixels start at `+init`, empty
    /// pixels at `−init`).
    pub init_scale: f64,
    /// Every this many iterations the parameter field is smoothed with a
    /// binomial blur pass (mask regularisation inside the loop; keeps the
    /// optimised mask free of sidelobe speckles and hair-thin rings).
    /// `0` disables.
    pub regularize_every: usize,
}

impl Default for IltConfig {
    fn default() -> Self {
        IltConfig {
            iterations: 60,
            step_size: 4.0,
            momentum: 0.9,
            theta_mask: 4.0,
            theta_resist: 50.0,
            init_scale: 1.0,
            regularize_every: 8,
        }
    }
}

/// Result of a pixel ILT run.
#[derive(Clone, Debug)]
pub struct IltOutcome {
    /// The continuous optimised mask (values in `[0, 1]`).
    pub mask: Grid,
    /// The binarised mask (threshold 0.5).
    pub binary_mask: Grid,
    /// Loss history (mean squared resist error per pixel).
    pub loss_history: Vec<f64>,
}

/// Runs sigmoid-relaxed pixel ILT against a binary target image.
///
/// # Errors
///
/// [`LithoError::GridMismatch`] when the target does not match the
/// engine's grid.
///
/// ```no_run
/// use cardopc_geometry::Grid;
/// use cardopc_ilt::{pixel_ilt, IltConfig};
/// use cardopc_litho::{LithoEngine, OpticsConfig};
///
/// let mut engine = LithoEngine::new(OpticsConfig::default(), 256, 256, 4.0)?;
/// engine.calibrate_threshold();
/// let target = Grid::zeros(256, 256, 4.0); // fill with the design intent
/// let outcome = pixel_ilt(&engine, &target, &IltConfig::default())?;
/// assert_eq!(outcome.mask.width(), 256);
/// # Ok::<(), cardopc_litho::LithoError>(())
/// ```
pub fn pixel_ilt(
    engine: &LithoEngine,
    target: &Grid,
    config: &IltConfig,
) -> Result<IltOutcome, LithoError> {
    let (w, h) = (engine.width(), engine.height());
    if target.width() != w || target.height() != h {
        return Err(LithoError::GridMismatch {
            expected: (w, h),
            got: (target.width(), target.height()),
        });
    }
    // The gradient loop runs at the engine's simulation precision: the f64
    // path borrows the reference kernel stack directly, the f32 path
    // narrows it once per call (pixel ILT runs once per tile — the narrow
    // is noise next to the iteration loop it feeds).
    match engine.precision() {
        Precision::F64 => pixel_ilt_impl(engine, target, config, engine.nominal_kernels()),
        Precision::F32 => {
            let kernels: Vec<SocsKernel<f32>> = engine
                .nominal_kernels()
                .iter()
                .map(SocsKernel::to_precision)
                .collect();
            pixel_ilt_impl(engine, target, config, &kernels)
        }
    }
}

/// The optimiser loop, generic over the simulation scalar. Parameters,
/// losses and the returned mask stay `f64`; the Hopkins forward/backward
/// passes (coherent fields, spectra, accumulator strips and the resist
/// sensitivity field `F`) run in `T`.
fn pixel_ilt_impl<T: Scalar>(
    engine: &LithoEngine,
    target: &Grid,
    config: &IltConfig,
    kernels: &[SocsKernel<T>],
) -> Result<IltOutcome, LithoError> {
    let (w, h) = (engine.width(), engine.height());
    let n = w * h;
    let threshold = engine.threshold();

    // Parameter initialisation from the target.
    let mut params: Vec<f64> = target
        .data()
        .iter()
        .map(|&t| {
            if t > 0.5 {
                config.init_scale
            } else {
                -config.init_scale
            }
        })
        .collect();
    let mut velocity = vec![0.0f64; n];
    let mut loss_history = Vec::with_capacity(config.iterations);

    let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());

    // Hot-loop state, allocated once and reused across all iterations:
    // per-kernel coherent fields A_k (kept for the backward pass), the mask
    // spectrum, and one work-slot per pool task. Kernels are statically
    // chunked in ascending order, each kernel accumulates into its own
    // strip, and the strips are reduced in ascending kernel order — so
    // results are byte-identical for any worker count (per dispatch mode).
    struct IltSlot<T: Scalar> {
        /// `F ⊙ A_k` and its forward transform.
        work: Field<T>,
        /// `FFT(F ⊙ A_k) ⊙ H_k*` and its inverse transform.
        prod: Field<T>,
        /// FFT scratch (ping-pong, transpose and column-gather lanes).
        scratch: FftScratch<T>,
    }
    /// Per-task work unit: a slot plus its chunk of coherent fields A_k and
    /// accumulator strips (fields mutable in the forward pass, read-only in
    /// the backward pass).
    type FwdUnit<'a, T> = (&'a mut IltSlot<T>, &'a mut [Field<T>], &'a mut [T]);
    type BwdUnit<'a, T> = (&'a mut IltSlot<T>, &'a [Field<T>], &'a mut [T]);
    let pool = WorkerPool::global();
    let tasks = engine.workers().clamp(1, kernels.len().max(1));
    let chunk = kernels.len().div_ceil(tasks);
    // The pruned inverse transforms are unscaled; fold both axes'
    // normalisations into the accumulation weights instead.
    let inv_n2 = 1.0 / (n as f64 * n as f64);
    let mut slots: Vec<IltSlot<T>> = (0..tasks)
        .map(|_| IltSlot {
            work: Field::zeros(w, h),
            prod: Field::zeros(w, h),
            scratch: FftScratch::new(),
        })
        .collect();
    // One accumulator strip per kernel, shared by forward (w·|z|²) and
    // backward (w·Re) passes; reduced in ascending kernel order.
    let mut strips = vec![T::ZERO; kernels.len().max(1) * n];
    let mut a_fields: Vec<Field<T>> = kernels.iter().map(|_| Field::zeros(w, h)).collect();
    let mut spectrum: Field<T> = Field::zeros(w, h);
    let mut fwd_scratch: FftScratch<T> = FftScratch::new();
    let mut intensity = vec![0.0f64; n];
    let mut grad_m = vec![0.0f64; n];
    let mut f_field = vec![T::ZERO; n]; // F = 2(Z-Ẑ)·Z(1-Z)·θ_Z
    let mut blur_scratch: Vec<f64> = Vec::new();

    let mut mask_vals = vec![0.0f64; n];
    for iter in 0..config.iterations {
        if config.regularize_every > 0 && iter > 0 && iter % config.regularize_every == 0 {
            crate::cleanup::blur_field(&mut params, w, h, 1, &mut blur_scratch);
        }
        // Forward: mask, coherent fields, intensity, resist. Each pool task
        // owns a disjoint chunk of `a_fields`, leaving A_k (unscaled by
        // `n = w·h`) in place for the backward pass.
        for (m, &p) in mask_vals.iter_mut().zip(&params) {
            *m = sigmoid(config.theta_mask * p);
        }
        spectrum.fill_forward_real_with(&mask_vals, &mut fwd_scratch);
        {
            let spectrum = &spectrum;
            let mut units: Vec<FwdUnit<T>> = slots
                .iter_mut()
                .zip(a_fields.chunks_mut(chunk))
                .zip(strips.chunks_mut(chunk * n))
                .map(|((slot, a), s)| (slot, a, s))
                .collect();
            pool.run_with_slots(&mut units, |t, (slot, a_chunk, strip_chunk)| {
                for ((a, kernel), strip) in a_chunk
                    .iter_mut()
                    .zip(kernels.iter().skip(t * chunk))
                    .zip(strip_chunk.chunks_mut(n))
                {
                    strip.fill(T::ZERO);
                    spectrum.mul_pointwise_pruned_into(&kernel.transfer, &kernel.live_rows, a);
                    a.ifft2_pruned_unscaled(&kernel.live_rows, &mut slot.scratch);
                    a.accumulate_norm_sq(T::from_f64(kernel.weight * inv_n2), strip);
                }
            });
        }
        reduce_strips(&strips, kernels.len(), n, &mut intensity);

        // Resist and loss.
        let mut loss = 0.0;
        for i in 0..n {
            let z = sigmoid(config.theta_resist * (intensity[i] - threshold));
            let zt = if target.data()[i] > 0.5 { 1.0 } else { 0.0 };
            let diff = z - zt;
            loss += diff * diff;
            f_field[i] = T::from_f64(2.0 * diff * z * (1.0 - z) * config.theta_resist);
        }
        loss_history.push(loss / n as f64);

        // Backward: grad_M = 2 Re Σ_k w_k IFFT(FFT(F ⊙ A_k) ⊙ conj(H_k)),
        // reusing the slot work fields. A_k carries a factor of n from its
        // unscaled inverse and the final pruned inverse another, so the
        // `inv_n2` in the accumulation weight restores the true scale.
        {
            let f_field = &f_field;
            let mut units: Vec<BwdUnit<T>> = slots
                .iter_mut()
                .zip(a_fields.chunks(chunk))
                .zip(strips.chunks_mut(chunk * n))
                .map(|((slot, a), s)| (slot, a, s))
                .collect();
            pool.run_with_slots(&mut units, |t, (slot, a_chunk, strip_chunk)| {
                for ((a, kernel), strip) in a_chunk
                    .iter()
                    .zip(kernels.iter().skip(t * chunk))
                    .zip(strip_chunk.chunks_mut(n))
                {
                    strip.fill(T::ZERO);
                    a.mul_real_into(f_field, &mut slot.work);
                    slot.work.fft2_inplace_with(false, &mut slot.scratch);
                    slot.work.mul_conj_pointwise_pruned_into(
                        &kernel.transfer,
                        &kernel.live_rows,
                        &mut slot.prod,
                    );
                    slot.prod
                        .ifft2_pruned_unscaled(&kernel.live_rows, &mut slot.scratch);
                    slot.prod
                        .accumulate_re(T::from_f64(2.0 * kernel.weight * inv_n2), strip);
                }
            });
        }
        reduce_strips(&strips, kernels.len(), n, &mut grad_m);

        // Chain rule through the mask sigmoid; momentum update.
        for i in 0..n {
            let m = mask_vals[i];
            let grad_p = grad_m[i] * config.theta_mask * m * (1.0 - m);
            velocity[i] = config.momentum * velocity[i] - config.step_size * grad_p;
            params[i] += velocity[i];
        }
    }

    for (m, &p) in mask_vals.iter_mut().zip(&params) {
        *m = sigmoid(config.theta_mask * p);
    }
    let mask = Grid::from_data(w, h, engine.pitch(), mask_vals);
    let binary_mask = mask.binarize(0.5);
    Ok(IltOutcome {
        mask,
        binary_mask,
        loss_history,
    })
}

/// Left-folds `count` per-kernel strips of `stride` samples into `out`, in
/// ascending kernel order — a summation tree independent of how the kernels
/// were chunked across pool tasks. Each strip sample is widened and the
/// fold accumulates in the `f64` output domain (still a fixed tree, so
/// still byte-deterministic across worker counts for any `T`).
fn reduce_strips<T: Scalar>(strips: &[T], count: usize, stride: usize, out: &mut [f64]) {
    if count == 0 {
        out.fill(0.0);
        return;
    }
    for (dst, &v) in out.iter_mut().zip(&strips[..stride]) {
        *dst = v.to_f64();
    }
    for k in 1..count {
        let src = &strips[k * stride..(k + 1) * stride];
        for (dst, &v) in out.iter_mut().zip(src) {
            *dst += v.to_f64();
        }
    }
}

/// Recomputes the relaxed ILT loss from raw parameters — used by the
/// finite-difference gradient verification test.
#[cfg(test)]
fn numeric_loss(engine: &LithoEngine, params: &[f64], target: &Grid, config: &IltConfig) -> f64 {
    let (w, h) = (engine.width(), engine.height());
    let n = w * h;
    let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
    let mask_vals: Vec<f64> = params
        .iter()
        .map(|&p| sigmoid(config.theta_mask * p))
        .collect();
    let mask = Grid::from_data(w, h, engine.pitch(), mask_vals);
    let aerial = engine.aerial_image(&mask).expect("grid matches");
    let mut loss = 0.0;
    for i in 0..n {
        let z = sigmoid(config.theta_resist * (aerial.data()[i] - engine.threshold()));
        let zt = if target.data()[i] > 0.5 { 1.0 } else { 0.0 };
        loss += (z - zt) * (z - zt);
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_litho::OpticsConfig;

    fn small_engine() -> LithoEngine {
        let cfg = OpticsConfig {
            source_rings: 1,
            points_per_ring: 4,
            ..OpticsConfig::default()
        };
        let mut e = LithoEngine::new(cfg, 64, 64, 8.0).unwrap();
        e.calibrate_threshold();
        e
    }

    fn square_target(engine: &LithoEngine, half: usize) -> Grid {
        let mut t = Grid::zeros(engine.width(), engine.height(), engine.pitch());
        let c = engine.width() / 2;
        for iy in c - half..c + half {
            for ix in c - half..c + half {
                t[(ix, iy)] = 1.0;
            }
        }
        t
    }

    #[test]
    fn loss_decreases() {
        let engine = small_engine();
        let target = square_target(&engine, 10);
        let cfg = IltConfig {
            iterations: 15,
            ..IltConfig::default()
        };
        let out = pixel_ilt(&engine, &target, &cfg).unwrap();
        assert_eq!(out.loss_history.len(), 15);
        let first = out.loss_history[0];
        let last = *out.loss_history.last().unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn ilt_beats_identity_mask_on_l2() {
        let engine = small_engine();
        let target = square_target(&engine, 10);
        let cfg = IltConfig {
            iterations: 30,
            ..IltConfig::default()
        };
        let out = pixel_ilt(&engine, &target, &cfg).unwrap();

        let print = |mask: &Grid| {
            engine
                .print(mask, cardopc_litho::ProcessCondition::NOMINAL)
                .unwrap()
        };
        let xor = |a: &Grid, b: &Grid| {
            a.data()
                .iter()
                .zip(b.data())
                .filter(|(&x, &y)| (x > 0.5) != (y > 0.5))
                .count()
        };
        let ilt_err = xor(&print(&out.binary_mask), &target);
        let raw_err = xor(&print(&target), &target);
        assert!(
            ilt_err <= raw_err,
            "ILT print error {ilt_err} vs identity-mask {raw_err}"
        );
    }

    #[test]
    fn mask_values_bounded() {
        let engine = small_engine();
        let target = square_target(&engine, 8);
        let out = pixel_ilt(
            &engine,
            &target,
            &IltConfig {
                iterations: 5,
                ..IltConfig::default()
            },
        )
        .unwrap();
        for &v in out.mask.data() {
            assert!((0.0..=1.0).contains(&v));
        }
        for &v in out.binary_mask.data() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn f32_ilt_tracks_f64_loss_and_mask() {
        let e64 = small_engine();
        let cfg32 = OpticsConfig {
            source_rings: 1,
            points_per_ring: 4,
            ..OpticsConfig::default()
        };
        let mut e32 =
            LithoEngine::with_precision(cfg32, 64, 64, 8.0, cardopc_litho::Precision::F32).unwrap();
        // Share the calibrated threshold so both runs optimise against the
        // same resist model; only the interior arithmetic differs.
        e32.set_threshold(e64.threshold());
        assert_eq!(e32.precision(), cardopc_litho::Precision::F32);
        let target = square_target(&e64, 10);
        let cfg = IltConfig {
            iterations: 10,
            ..IltConfig::default()
        };
        let out64 = pixel_ilt(&e64, &target, &cfg).unwrap();
        let out32 = pixel_ilt(&e32, &target, &cfg).unwrap();
        for (i, (a, b)) in out32
            .loss_history
            .iter()
            .zip(&out64.loss_history)
            .enumerate()
        {
            assert!(
                (a - b).abs() < 1e-3 * (1.0 + b.abs()),
                "iteration {i}: f32 loss {a} vs f64 loss {b}"
            );
        }
        let drift = out32
            .mask
            .data()
            .iter()
            .zip(out64.mask.data())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 5e-2, "max mask drift {drift}");
    }

    #[test]
    fn grid_mismatch_rejected() {
        let engine = small_engine();
        let bad = Grid::zeros(32, 32, 8.0);
        assert!(matches!(
            pixel_ilt(&engine, &bad, &IltConfig::default()),
            Err(LithoError::GridMismatch { .. })
        ));
    }

    #[test]
    fn analytic_gradient_matches_finite_difference() {
        // Verify the backprop math: perturb a few parameters and compare
        // dL/dP with the analytic gradient embedded in one optimiser step.
        let engine = small_engine();
        let target = square_target(&engine, 6);
        let cfg = IltConfig {
            iterations: 1,
            step_size: 1.0,
            momentum: 0.0,
            ..IltConfig::default()
        };

        // Reconstruct the analytic gradient: with momentum 0 and step 1,
        // params_after = params_before - grad, so grad = before - after.
        let before: Vec<f64> = target
            .data()
            .iter()
            .map(|&t| {
                if t > 0.5 {
                    cfg.init_scale
                } else {
                    -cfg.init_scale
                }
            })
            .collect();
        // Run one step via the public API on a fresh copy.
        let out = pixel_ilt(&engine, &target, &cfg).unwrap();
        // Recover params_after from the final mask: m = σ(θ p) ⇒
        // p = logit(m)/θ.
        let after: Vec<f64> = out
            .mask
            .data()
            .iter()
            .map(|&m| {
                let m = m.clamp(1e-12, 1.0 - 1e-12);
                (m / (1.0 - m)).ln() / cfg.theta_mask
            })
            .collect();

        let w = engine.width();
        let c = w / 2;
        // Probe a pixel at the pattern edge where the gradient is sizable.
        for &(ix, iy) in &[(c + 6, c), (c, c + 6), (c - 7, c)] {
            let idx = iy * w + ix;
            let analytic = before[idx] - after[idx];
            let h = 1e-4;
            let mut plus = before.clone();
            plus[idx] += h;
            let mut minus = before.clone();
            minus[idx] -= h;
            let numeric = (numeric_loss(&engine, &plus, &target, &cfg)
                - numeric_loss(&engine, &minus, &target, &cfg))
                / (2.0 * h);
            assert!(
                (analytic - numeric).abs() < 0.05 * numeric.abs().max(1e-3),
                "pixel ({ix},{iy}): analytic {analytic} vs numeric {numeric}"
            );
        }
    }
}
