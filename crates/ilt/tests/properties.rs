//! Property-based tests for the ILT substrate's image operations.

use cardopc_geometry::{Grid, SplitMix64};
use cardopc_ilt::cleanup::{blur, open_binary, remove_small_components};
use proptest::prelude::*;

fn random_binary(seed: u64, w: usize, h: usize, fill: f64) -> Grid {
    let mut rng = SplitMix64::new(seed);
    let data = (0..w * h)
        .map(|_| if rng.chance(fill) { 1.0 } else { 0.0 })
        .collect();
    Grid::from_data(w, h, 1.0, data)
}

proptest! {
    /// Opening is idempotent: open(open(x)) == open(x).
    #[test]
    fn opening_is_idempotent(seed in 0u64..200, r in 1usize..3) {
        let g = random_binary(seed, 32, 32, 0.5);
        let once = open_binary(&g, 0.5, r);
        let twice = open_binary(&once, 0.5, r);
        prop_assert_eq!(once, twice);
    }

    /// Opening is anti-extensive: it never adds pixels.
    #[test]
    fn opening_is_anti_extensive(seed in 0u64..200, r in 1usize..3) {
        let g = random_binary(seed, 32, 32, 0.6);
        let o = open_binary(&g, 0.5, r);
        for (a, b) in o.data().iter().zip(g.data()) {
            prop_assert!(*a <= *b + 1e-12);
        }
    }

    /// Component removal never increases total mass and larger thresholds
    /// remove at least as much.
    #[test]
    fn component_removal_monotone(seed in 0u64..200, t1 in 1.0..20.0f64, t2 in 20.0..200.0f64) {
        let g = random_binary(seed, 32, 32, 0.3);
        let (small, n1) = remove_small_components(&g, 0.5, t1);
        let (big, n2) = remove_small_components(&g, 0.5, t2);
        prop_assert!(small.sum() <= g.sum());
        prop_assert!(big.sum() <= small.sum());
        prop_assert!(n2 >= n1);
    }

    /// Blur conserves mass away from the border and keeps values in range.
    #[test]
    fn blur_bounded_and_smoothing(seed in 0u64..200, passes in 1usize..4) {
        let g = random_binary(seed, 32, 32, 0.5);
        let b = blur(&g, passes);
        prop_assert!(b.max_value() <= 1.0 + 1e-12);
        prop_assert!(b.min_value() >= -1e-12);
        // Smoothing shrinks the discrete gradient energy.
        let energy = |g: &Grid| -> f64 {
            let mut e = 0.0;
            for iy in 0..g.height() {
                for ix in 0..g.width().saturating_sub(1) {
                    let d = g[(ix + 1, iy)] - g[(ix, iy)];
                    e += d * d;
                }
            }
            e
        };
        prop_assert!(energy(&b) <= energy(&g) + 1e-9);
    }

    /// Removing small components then opening equals opening then removing
    /// in terms of never re-growing removed speckles.
    #[test]
    fn cleanup_pipeline_shrinks(seed in 0u64..100) {
        let g = random_binary(seed, 24, 24, 0.35);
        let opened = open_binary(&g, 0.5, 1);
        let (cleaned, _) = remove_small_components(&opened, 0.5, 10.0);
        prop_assert!(cleaned.sum() <= g.sum());
    }
}
