//! Scalar-vs-SIMD equivalence of the pixel ILT gradient path.
//!
//! The ILT loop runs forward transforms, per-kernel pointwise products,
//! pruned inverse transforms and `w·|z|²` / `w·Re` accumulations — every
//! dispatched kernel the litho crate has. A few gradient-descent iterations
//! amplify any divergence through the nonlinear sigmoid updates, so a
//! ≤1e-9 bound on the final mask is a much stronger statement than the same
//! bound on a single aerial image.

use cardopc_geometry::{Grid, Point, Polygon};
use cardopc_ilt::{pixel_ilt, IltConfig};
use cardopc_litho::simd::{self, SimdMode};
use cardopc_litho::{rasterize, LithoEngine, OpticsConfig};
use std::sync::Mutex;

static MODE_LOCK: Mutex<()> = Mutex::new(());

fn with_mode<T>(mode: SimdMode, f: impl FnOnce() -> T) -> T {
    simd::force_mode(Some(mode));
    let out = f();
    simd::force_mode(None);
    out
}

fn run_ilt(w: usize, h: usize) -> (Grid, Vec<f64>) {
    let mut engine = LithoEngine::new(OpticsConfig::default(), w, h, 4.0).unwrap();
    engine.calibrate_threshold();
    let extent = w as f64 * 4.0;
    let target = rasterize(
        &[
            Polygon::rect(
                Point::new(0.3 * extent, 0.25 * extent),
                Point::new(0.5 * extent, 0.75 * extent),
            ),
            Polygon::rect(
                Point::new(0.6 * extent, 0.4 * extent),
                Point::new(0.75 * extent, 0.6 * extent),
            ),
        ],
        w,
        h,
        4.0,
    )
    .binarize(0.5);
    let config = IltConfig {
        iterations: 8,
        regularize_every: 0,
        ..IltConfig::default()
    };
    let out = pixel_ilt(&engine, &target, &config).unwrap();
    (out.mask, out.loss_history)
}

#[test]
fn ilt_gradient_scalar_vs_simd_within_1e9() {
    let _guard = MODE_LOCK.lock().unwrap();
    if !simd::avx2_available() {
        return; // single-mode machine: nothing to compare
    }
    let (scalar_mask, scalar_loss) = with_mode(SimdMode::Scalar, || run_ilt(96, 96));
    let (simd_mask, simd_loss) = with_mode(SimdMode::Avx2, || run_ilt(96, 96));
    let mask_diff = scalar_mask
        .data()
        .iter()
        .zip(simd_mask.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(mask_diff <= 1e-9, "ILT mask scalar/SIMD diff {mask_diff}");
    for (i, (a, b)) in scalar_loss.iter().zip(&simd_loss).enumerate() {
        let d = (a - b).abs() / (1.0 + a.abs());
        assert!(d <= 1e-9, "ILT loss[{i}] scalar/SIMD diff {d}");
    }
}
