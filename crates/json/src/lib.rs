//! Minimal hand-rolled JSON: enough for self-describing checkpoint
//! records, run manifests, and the `cardopc-serve` wire format, with zero
//! external dependencies (the build containers have no crates.io access).
//!
//! Numbers are written with Rust's `f64` `Display`, which produces the
//! shortest decimal string that round-trips to the same bits — so a value
//! written by one run and parsed by a resumed run recovers the *exact*
//! `f64`, making checkpointed geometry and metrics lossless. Object keys
//! keep insertion order, so serialisation is deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional numbers).
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64 {
            Some(v as usize)
        } else {
            None
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members (insertion-ordered `(key, value)`
    /// pairs).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialises to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume the whole input up to trailing
    /// whitespace).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the failure.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Convenience constructors used by the manifest/checkpoint writers.
impl Json {
    /// A number from any integer-ish count.
    pub fn num_usize(v: usize) -> Json {
        Json::Num(v as f64)
    }

    /// An object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array of numbers.
    pub fn num_arr(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Recursion depth is
/// proportional to nesting, so an attacker-supplied document like
/// `"["×1e6` would otherwise overflow the stack — an uncatchable abort,
/// not a panic. Legitimate checkpoint/wire documents nest < 10 deep.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting (arrays + objects entered).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("truncated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    /// Enters one container level; errors past [`MAX_PARSE_DEPTH`] so a
    /// hostile `[[[[...` cannot overflow the call stack (which would abort
    /// the process — stack overflow is not a catchable panic).
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_structures() {
        let v = Json::obj(vec![
            ("name", Json::Str("gcd[0] \"quoted\"\n".into())),
            ("tile", Json::num_usize(17)),
            ("epe", Json::num_arr(&[1.5, -0.25, 0.1000000000000001])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![("k", Json::Num(-3.5e-7))])]),
            ),
        ]);
        let text = v.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn as_obj_exposes_ordered_members() {
        let v = Json::obj(vec![("b", Json::num_usize(2)), ("a", Json::num_usize(1))]);
        let members = v.as_obj().unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert!(Json::Arr(vec![]).as_obj().is_none());
        assert!(Json::Null.as_obj().is_none());
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        // Display prints shortest-roundtrip decimals: parse must recover
        // the exact bits for awkward values.
        for v in [
            0.1 + 0.2,
            std::f64::consts::PI,
            1.0 / 3.0,
            -1.2345678901234567e-300,
            6.02214076e23,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Num(v).to_string_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v} round-trip");
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // A 4 MB request body of '[' must come back as a parse error; the
        // pre-limit parser recursed once per byte and aborted the process.
        for pathological in [
            "[".repeat(1_000_000),
            "{\"k\":".repeat(500_000),
            format!("{}1{}", "[".repeat(1_000_000), "]".repeat(1_000_000)),
        ] {
            let err = Json::parse(&pathological).unwrap_err();
            assert!(err.contains("nesting"), "unexpected error: {err}");
        }
    }

    #[test]
    fn nesting_at_the_limit_parses() {
        let deepest = MAX_PARSE_DEPTH;
        let ok = format!("{}1{}", "[".repeat(deepest), "]".repeat(deepest));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(deepest + 1), "]".repeat(deepest + 1));
        assert!(Json::parse(&too_deep).is_err());

        // Depth is nesting, not total container count: a long *flat*
        // document is fine because siblings re-use the same level.
        let flat = format!("[{}]", vec!["[1]"; 10_000].join(","));
        assert!(Json::parse(&flat).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": [1, true], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
    }
}
