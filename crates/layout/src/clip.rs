//! Layout clips: named windows of target patterns.

use cardopc_geometry::{BBox, Point, Polygon};
use std::fmt;

/// A rectangular layout window with its target (design-intent) patterns.
///
/// Clips are the unit of OPC work in the paper's experiments: a via or
/// metal testcase is one clip; a large-scale design is a set of 30×30 µm
/// tile clips.
#[derive(Clone, Debug, PartialEq)]
pub struct Clip {
    name: String,
    width: f64,
    height: f64,
    targets: Vec<Polygon>,
}

impl Clip {
    /// Creates a clip. `width`/`height` are in nanometres.
    ///
    /// # Panics
    ///
    /// Panics when the dimensions are not strictly positive.
    pub fn new(name: impl Into<String>, width: f64, height: f64, targets: Vec<Polygon>) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "clip dimensions must be positive"
        );
        Clip {
            name: name.into(),
            width,
            height,
            targets,
        }
    }

    /// The clip name (e.g. `"V3"`, `"M7"`, `"gcd[0]"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Window width in nanometres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Window height in nanometres.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The target patterns.
    pub fn targets(&self) -> &[Polygon] {
        &self.targets
    }

    /// Consumes the clip, returning its target patterns.
    pub fn into_targets(self) -> Vec<Polygon> {
        self.targets
    }

    /// The window as a bounding box anchored at the origin.
    pub fn bbox(&self) -> BBox {
        BBox::new(Point::ZERO, Point::new(self.width, self.height))
    }

    /// Total drawn area of the targets, nm².
    pub fn drawn_area(&self) -> f64 {
        self.targets.iter().map(Polygon::area).sum()
    }

    /// `true` when every target lies inside the window.
    pub fn targets_in_window(&self) -> bool {
        let window = self.bbox();
        self.targets.iter().all(|t| window.contains_bbox(&t.bbox()))
    }

    /// Crops a sub-window: keeps the shapes entirely inside the window
    /// `[origin, origin + (width, height)]`, translated so the new clip is
    /// anchored at the origin. Shapes straddling the window boundary are
    /// dropped (tile-interior OPC convention).
    ///
    /// # Panics
    ///
    /// Panics when the requested dimensions are not strictly positive.
    pub fn crop(&self, origin: Point, width: f64, height: f64, name: impl Into<String>) -> Clip {
        let window = BBox::new(origin, origin + Point::new(width, height));
        let targets = self
            .targets
            .iter()
            .filter(|t| window.contains_bbox(&t.bbox()))
            .map(|t| t.translated(-origin))
            .collect();
        Clip::new(name, width, height, targets)
    }

    /// Crops a sub-window like [`Clip::crop`], but keeps every shape whose
    /// bounding box *intersects* the window — shapes straddling the
    /// boundary are kept whole (and may extend outside the new clip's
    /// window). This is the halo-tile convention: a tiled runtime needs
    /// boundary shapes present for optical context even though another
    /// tile owns them.
    ///
    /// # Panics
    ///
    /// Panics when the requested dimensions are not strictly positive.
    pub fn crop_intersecting(
        &self,
        origin: Point,
        width: f64,
        height: f64,
        name: impl Into<String>,
    ) -> Clip {
        let window = BBox::new(origin, origin + Point::new(width, height));
        let targets = self
            .targets
            .iter()
            .filter(|t| window.intersects(&t.bbox()))
            .map(|t| t.translated(-origin))
            .collect();
        Clip::new(name, width, height, targets)
    }
}

impl fmt::Display for Clip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{} nm, {} shapes)",
            self.name,
            self.width,
            self.height,
            self.targets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let sq = Polygon::rect(Point::new(10.0, 10.0), Point::new(20.0, 20.0));
        let clip = Clip::new("T", 100.0, 50.0, vec![sq]);
        assert_eq!(clip.name(), "T");
        assert_eq!(clip.width(), 100.0);
        assert_eq!(clip.height(), 50.0);
        assert_eq!(clip.targets().len(), 1);
        assert_eq!(clip.drawn_area(), 100.0);
        assert!(clip.targets_in_window());
        assert!(clip.to_string().contains("1 shapes"));
    }

    #[test]
    fn crop_intersecting_keeps_straddlers() {
        let inside = Polygon::rect(Point::new(10.0, 10.0), Point::new(20.0, 20.0));
        let straddling = Polygon::rect(Point::new(45.0, 10.0), Point::new(70.0, 20.0));
        let outside = Polygon::rect(Point::new(80.0, 10.0), Point::new(90.0, 20.0));
        let clip = Clip::new("T", 100.0, 50.0, vec![inside, straddling, outside]);
        let origin = Point::new(0.0, 0.0);
        assert_eq!(clip.crop(origin, 50.0, 50.0, "strict").targets().len(), 1);
        let halo = clip.crop_intersecting(origin, 50.0, 50.0, "halo");
        assert_eq!(halo.targets().len(), 2);
        // Straddler kept whole, untranslated (origin at zero).
        assert_eq!(halo.targets()[1].bbox().max.x, 70.0);
    }

    #[test]
    fn out_of_window_detected() {
        let sq = Polygon::rect(Point::new(90.0, 10.0), Point::new(120.0, 20.0));
        let clip = Clip::new("T", 100.0, 50.0, vec![sq]);
        assert!(!clip.targets_in_window());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Clip::new("bad", 0.0, 10.0, vec![]);
    }
}
