//! Large-scale standard-cell-style metal tiles (Table III workload).
//!
//! The paper crops the metal layers of three OpenROAD/NanGate45 designs —
//! `gcd`, `aes`, `dynamicnode` — into 30×30 µm tiles. Those GDS files are
//! not shipped here, so this generator produces routing-style tiles with
//! the same structure: horizontal wires on a 140 nm track grid (70 nm wide,
//! NanGate45 M2-like), segment lengths and fill density tuned per design so
//! the relative complexity ordering (aes > dynamicnode > gcd) and the
//! ablation's shape count for `gcd` (≈1,776 shapes per tile) are preserved.

use crate::Clip;
use cardopc_geometry::{Point, Polygon, SplitMix64};

/// Tile edge length in nanometres (30 µm).
pub const TILE_SIZE: f64 = 30_000.0;
/// Routing track pitch (NanGate45 M2-like).
pub const TRACK_PITCH: f64 = 140.0;
/// Wire width.
pub const WIRE_WIDTH: f64 = 70.0;

/// The three large-scale designs of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Small GCD unit (1 tile in the paper).
    Gcd,
    /// AES core (144 tiles in the paper) — densest routing.
    Aes,
    /// DynamicNode (144 tiles in the paper) — medium density.
    DynamicNode,
}

impl DesignKind {
    /// Design name as printed in Table III.
    pub fn name(self) -> &'static str {
        match self {
            DesignKind::Gcd => "gcd",
            DesignKind::Aes => "aes",
            DesignKind::DynamicNode => "dynamicnode",
        }
    }

    /// Number of 30×30 µm tiles in the paper's experiment.
    pub fn paper_tile_count(self) -> usize {
        match self {
            DesignKind::Gcd => 1,
            DesignKind::Aes => 144,
            DesignKind::DynamicNode => 144,
        }
    }

    /// Fraction of each track occupied by wire.
    fn fill(self) -> f64 {
        match self {
            DesignKind::Gcd => 0.34,
            DesignKind::Aes => 0.48,
            DesignKind::DynamicNode => 0.40,
        }
    }

    /// Wire length range (nm): shorter wires → more shapes per area.
    fn length_range(self) -> (f64, f64) {
        match self {
            DesignKind::Gcd => (400.0, 2400.0),
            DesignKind::Aes => (350.0, 1800.0),
            DesignKind::DynamicNode => (450.0, 2600.0),
        }
    }

    fn seed(self) -> u64 {
        match self {
            DesignKind::Gcd => 0x6CD0,
            DesignKind::Aes => 0xAE50,
            DesignKind::DynamicNode => 0xD1B0,
        }
    }
}

/// Generates tile `index` of a large-scale design.
///
/// Tiles are deterministic in `(kind, index)`.
///
/// ```
/// use cardopc_layout::{large_tile, DesignKind};
///
/// let tile = large_tile(DesignKind::Gcd, 0);
/// assert_eq!(tile.width(), 30_000.0);
/// // The ablation's published shape count for gcd is 1,776; the synthetic
/// // tile lands in the same regime.
/// assert!(tile.targets().len() > 1_400 && tile.targets().len() < 2_200);
/// ```
pub fn large_tile(kind: DesignKind, index: usize) -> Clip {
    let mut rng = SplitMix64::new(kind.seed().wrapping_add(index as u64 * 0x9E37));
    let tracks = (TILE_SIZE / TRACK_PITCH) as usize;
    let (len_lo, len_hi) = kind.length_range();
    let fill = kind.fill();
    let gap = TRACK_PITCH; // min end-to-end gap between wires on a track

    let mut shapes = Vec::new();
    for t in 0..tracks {
        let y = t as f64 * TRACK_PITCH + (TRACK_PITCH - WIRE_WIDTH) * 0.5;
        if y + WIRE_WIDTH > TILE_SIZE {
            break;
        }
        // Starts and lengths snap to the integer-nm grid (track y positions
        // already are); the flooring keeps x + len inside the tile, and the
        // minimum-length check runs on the snapped value so GDS export at
        // 1 nm/dbu is lossless.
        let mut x = rng.range_f64(0.0, len_hi * 0.5).round();
        let mut used = 0.0;
        let budget = TILE_SIZE * fill;
        while x < TILE_SIZE - len_lo && used < budget {
            let len = rng.range_f64(len_lo, len_hi).min(TILE_SIZE - x).floor();
            if len < len_lo {
                break;
            }
            shapes.push(Polygon::rect(
                Point::new(x, y),
                Point::new(x + len, y + WIRE_WIDTH),
            ));
            used += len;
            x += len + gap + rng.range_f64(0.0, len_hi - len_lo).round();
        }
    }
    Clip::new(
        format!("{}[{}]", kind.name(), index),
        TILE_SIZE,
        TILE_SIZE,
        shapes,
    )
}

/// The first `count` tiles of a design, generated lazily in index order
/// (a full-chip runtime iterates these without materialising every 30×30 µm
/// tile up front). `design_tiles(kind, kind.paper_tile_count())` is the
/// paper's Table III workload.
pub fn design_tiles(kind: DesignKind, count: usize) -> impl Iterator<Item = Clip> {
    (0..count).map(move |i| large_tile(kind, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_tile_counts() {
        assert_eq!(DesignKind::Gcd.name(), "gcd");
        assert_eq!(DesignKind::Aes.paper_tile_count(), 144);
        assert_eq!(DesignKind::DynamicNode.name(), "dynamicnode");
    }

    #[test]
    fn gcd_shape_count_matches_ablation_regime() {
        let tile = large_tile(DesignKind::Gcd, 0);
        let n = tile.targets().len();
        assert!(
            (1_400..2_200).contains(&n),
            "gcd tile has {n} shapes; ablation cites 1,776"
        );
    }

    #[test]
    fn density_ordering_aes_densest() {
        let area = |k: DesignKind| large_tile(k, 0).drawn_area();
        let gcd = area(DesignKind::Gcd);
        let aes = area(DesignKind::Aes);
        let dyn_ = area(DesignKind::DynamicNode);
        assert!(aes > dyn_ && dyn_ > gcd, "densities {gcd} {dyn_} {aes}");
    }

    #[test]
    fn design_tiles_iterates_in_index_order() {
        let tiles: Vec<Clip> = design_tiles(DesignKind::Gcd, 3).collect();
        assert_eq!(tiles.len(), 3);
        for (i, t) in tiles.iter().enumerate() {
            assert_eq!(t.name(), format!("gcd[{i}]"));
            assert_eq!(*t, large_tile(DesignKind::Gcd, i));
        }
    }

    #[test]
    fn tiles_are_deterministic_and_distinct() {
        let a = large_tile(DesignKind::Aes, 3);
        let b = large_tile(DesignKind::Aes, 3);
        let c = large_tile(DesignKind::Aes, 4);
        assert_eq!(a, b);
        assert_ne!(a.targets(), c.targets());
    }

    #[test]
    fn wires_on_grid_inside_tile() {
        let tile = large_tile(DesignKind::DynamicNode, 1);
        assert!(tile.targets_in_window());
        for w in tile.targets() {
            let b = w.bbox();
            assert!((b.height() - WIRE_WIDTH).abs() < 1e-9);
            assert!(b.width() >= 349.0);
            // Wires are centred on the track grid.
            let rel = (b.min.y - (TRACK_PITCH - WIRE_WIDTH) * 0.5) / TRACK_PITCH;
            assert!((rel - rel.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn same_track_wires_do_not_touch() {
        let tile = large_tile(DesignKind::Aes, 0);
        let mut by_track: std::collections::HashMap<i64, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for w in tile.targets() {
            let b = w.bbox();
            let track = (b.min.y / TRACK_PITCH).round() as i64;
            by_track.entry(track).or_default().push((b.min.x, b.max.x));
        }
        for spans in by_track.values_mut() {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in spans.windows(2) {
                assert!(
                    pair[1].0 - pair[0].1 >= TRACK_PITCH - 1e-9,
                    "wires too close on a track"
                );
            }
        }
    }

    #[test]
    fn crop_produces_subtile() {
        let tile = large_tile(DesignKind::Gcd, 0);
        let sub = tile.crop(Point::new(5_000.0, 5_000.0), 7_500.0, 7_500.0, "gcd-sub");
        assert!(sub.targets_in_window());
        assert!(!sub.targets().is_empty());
        assert!(sub.targets().len() < tile.targets().len());
    }
}
