//! # cardopc-layout
//!
//! Synthetic test layouts for the CardOPC experiments.
//!
//! The paper evaluates on three data sets that are not redistributable:
//! 13 via-layer clips and 10 metal-layer clips from prior RL-OPC/CAMO work,
//! and large-scale metal layers of the `gcd`/`aes`/`dynamicnode` designs
//! produced with OpenROAD and the NanGate 45 nm PDK. This crate generates
//! deterministic synthetic equivalents with matching published statistics
//! (clip sizes, feature counts, feature dimensions, relative design
//! complexity); see DESIGN.md substitution 5.
//!
//! * [`via_clips`] — `V1`–`V13`, 2×2 µm, 2–6 vias each (Table I),
//! * [`metal_clips`] — `M1`–`M10`, 1.5×1.5 µm wire patterns (Table II and
//!   the Fig. 7 hybrid experiment),
//! * [`large_tile`] — 30×30 µm standard-cell-style metal tiles for the
//!   three large designs (Table III and the §IV-D ablation).
//!
//! All generators are seeded with fixed constants, so every run of the
//! benchmark harness sees bit-identical layouts.
//!
//! ```
//! use cardopc_layout::via_clips;
//!
//! let clips = via_clips();
//! assert_eq!(clips.len(), 13);
//! assert_eq!(clips[0].targets().len(), 2); // V1 has 2 vias
//! ```

#![warn(missing_docs)]

mod clip;
mod largescale;
mod metal;
mod source;
mod via;

pub use cardopc_gds::LayerFilter;
pub use clip::Clip;
pub use largescale::{design_tiles, large_tile, DesignKind};
pub use metal::metal_clips;
pub use source::{
    clip_from_lib, generated_clip, read_gds_clip, write_clip_gds, DesignSource, TARGET_LAYER,
    WINDOW_LAYER,
};
pub use via::via_clips;
