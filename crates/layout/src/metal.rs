//! Metal-layer testcases `M1`–`M10` (Table II and Fig. 7 workloads).
//!
//! The published clips are 1.5×1.5 µm metal-layer windows whose complexity
//! the paper reports via EPE measure point counts (60 nm pitch):
//! `[64, 84, 88, 100, 106, 112, 116, 24, 72, 120]`. We synthesise wire
//! patterns — axis-aligned rectangles and L-shapes with 45 nm-node-like
//! dimensions — and keep adding wires until the clip's estimated measure
//! point count reaches the published figure, so the synthetic clips match
//! the originals' relative complexity.

use crate::Clip;
use cardopc_geometry::{BBox, Point, Polygon, SplitMix64};

/// Clip window edge length in nanometres (1.5 µm).
pub const METAL_CLIP_SIZE: f64 = 1500.0;
/// EPE measure point spacing used by the paper for metal layers.
pub const MEASURE_SPACING: f64 = 60.0;
/// Published measure point counts of `M1`–`M10`.
pub const POINT_COUNTS: [usize; 10] = [64, 84, 88, 100, 106, 112, 116, 24, 72, 120];

const MARGIN: f64 = 220.0;
const MIN_SPACING: f64 = 130.0;

/// Generates the 10 metal-layer clips.
pub fn metal_clips() -> Vec<Clip> {
    POINT_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &target_points)| {
            let name = format!("M{}", i + 1);
            let targets = place_wires(target_points, 0x3E7A_1000 + i as u64);
            Clip::new(name, METAL_CLIP_SIZE, METAL_CLIP_SIZE, targets)
        })
        .collect()
}

/// Estimated measure points of one polygon under the paper's convention:
/// `floor(len/60)` per edge, minimum one per edge.
fn estimated_points(poly: &Polygon) -> usize {
    poly.edges()
        .map(|e| ((e.length() / MEASURE_SPACING).floor() as usize).max(1))
        .sum()
}

fn place_wires(target_points: usize, seed: u64) -> Vec<Polygon> {
    let mut rng = SplitMix64::new(seed);
    let mut shapes: Vec<Polygon> = Vec::new();
    let mut boxes: Vec<BBox> = Vec::new();
    let mut points = 0usize;
    let mut guard = 0;

    while points < target_points {
        guard += 1;
        if guard > 200_000 {
            break; // dense enough; accept slight undershoot
        }
        let horizontal = rng.chance(0.5);
        // Integer-nm dimensions so GDS export at 1 nm/dbu is lossless; all
        // placement constraints below see the snapped shapes.
        let width = rng.range_f64(70.0, 110.0).round();
        let length = rng.range_f64(250.0, 750.0).round();
        let shape = if rng.chance(0.3) {
            l_shape(&mut rng, width, length, horizontal)
        } else {
            straight_wire(&mut rng, width, length, horizontal)
        };
        let bbox = shape.bbox();
        let window = BBox::new(
            Point::new(MARGIN, MARGIN),
            Point::new(METAL_CLIP_SIZE - MARGIN, METAL_CLIP_SIZE - MARGIN),
        );
        if !window.contains_bbox(&bbox) {
            continue;
        }
        if boxes
            .iter()
            .any(|b| b.expanded(MIN_SPACING).intersects(&bbox))
        {
            continue;
        }
        // Stop rather than badly overshoot the published complexity.
        let p = estimated_points(&shape);
        if points + p > target_points + p / 2 && points > 0 {
            if points >= target_points.saturating_sub(p / 2) {
                break;
            }
            continue;
        }
        points += p;
        boxes.push(bbox);
        shapes.push(shape);
    }
    shapes
}

fn straight_wire(rng: &mut SplitMix64, width: f64, length: f64, horizontal: bool) -> Polygon {
    let x = rng.range_f64(0.0, METAL_CLIP_SIZE).round();
    let y = rng.range_f64(0.0, METAL_CLIP_SIZE).round();
    if horizontal {
        Polygon::rect(Point::new(x, y), Point::new(x + length, y + width))
    } else {
        Polygon::rect(Point::new(x, y), Point::new(x + width, y + length))
    }
}

/// An L-shaped wire: a horizontal arm and a vertical arm joined at a corner.
fn l_shape(rng: &mut SplitMix64, width: f64, length: f64, flip: bool) -> Polygon {
    let x = rng.range_f64(0.0, METAL_CLIP_SIZE).round();
    let y = rng.range_f64(0.0, METAL_CLIP_SIZE).round();
    let arm = (length * 0.6).max(width * 2.0).round();
    if flip {
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + length, y),
            Point::new(x + length, y + width),
            Point::new(x + width, y + width),
            Point::new(x + width, y + arm),
            Point::new(x, y + arm),
        ])
    } else {
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + arm, y),
            Point::new(x + arm, y + width),
            Point::new(x + width, y + width),
            Point::new(x + width, y + length),
            Point::new(x, y + length),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_clips_generated() {
        let clips = metal_clips();
        assert_eq!(clips.len(), 10);
        assert_eq!(clips[0].name(), "M1");
        assert_eq!(clips[9].name(), "M10");
        for c in &clips {
            assert_eq!(c.width(), METAL_CLIP_SIZE);
            assert!(!c.targets().is_empty(), "{} is empty", c.name());
            assert!(c.targets_in_window(), "{}", c.name());
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(metal_clips(), metal_clips());
    }

    #[test]
    fn complexity_tracks_published_point_counts() {
        let clips = metal_clips();
        for (clip, &target) in clips.iter().zip(&POINT_COUNTS) {
            let est: usize = clip.targets().iter().map(estimated_points).sum();
            let lo = target.saturating_sub(target / 3);
            let hi = target + target / 3;
            assert!(
                (lo..=hi).contains(&est),
                "{}: estimated {est} points, published {target}",
                clip.name()
            );
        }
        // M8 (24 points) must be the simplest clip, M10 (120) the busiest.
        let est_of = |i: usize| -> usize { clips[i].targets().iter().map(estimated_points).sum() };
        assert!(est_of(7) < est_of(9));
    }

    #[test]
    fn wires_are_rectilinear_and_separated() {
        for clip in metal_clips() {
            for t in clip.targets() {
                assert!(t.is_rectilinear(), "{}", clip.name());
                assert!(t.area() > 0.0);
            }
            let boxes: Vec<BBox> = clip.targets().iter().map(Polygon::bbox).collect();
            for i in 0..boxes.len() {
                for j in i + 1..boxes.len() {
                    assert!(
                        !boxes[i].expanded(MIN_SPACING - 1.0).intersects(&boxes[j]),
                        "{}: wires {i}/{j} closer than min spacing",
                        clip.name()
                    );
                }
            }
        }
    }

    #[test]
    fn mix_of_straight_and_l_shapes() {
        let clips = metal_clips();
        let total: usize = clips.iter().map(|c| c.targets().len()).sum();
        let l_count: usize = clips
            .iter()
            .flat_map(|c| c.targets())
            .filter(|t| t.len() == 6)
            .count();
        assert!(l_count > 0, "expected at least one L-shape");
        assert!(l_count < total, "expected at least one straight wire");
    }
}
