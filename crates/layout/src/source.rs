//! The design-source seam: one enum that runtime, serve, fleet, and the
//! CLI all build their input [`Clip`] through, whether the design is a
//! synthetic generator recipe or a real GDSII file.
//!
//! ## GDS clip convention
//!
//! A clip is more than its shapes — it has a named window. When a clip
//! is exported with [`write_clip_gds`], the window is recorded as a
//! rectangle on the reserved marker layer [`WINDOW_LAYER`]`:0` inside a
//! structure named after the clip. [`read_gds_clip`] looks for that
//! marker: when present, the clip window, origin, and name are restored
//! exactly (so a generated design exported to GDS and re-ingested
//! produces a byte-identical correction manifest); when absent — a file
//! from a foreign tool — the window falls back to the bounding box of
//! the selected shapes, translated to the origin. Marker-layer shapes
//! are never targets: the reader excludes [`WINDOW_LAYER`] from every
//! selection.

use std::path::{Path, PathBuf};

use cardopc_gds::{flatten, FlattenLimits, GdsWriter, LayerFilter};
use cardopc_geometry::{BBox, Point};

use crate::clip::Clip;
use crate::largescale::{design_tiles, DesignKind};

/// Reserved GDS layer marking the clip window (never a target layer).
pub const WINDOW_LAYER: i16 = 255;

/// Default layer:datatype for exported target shapes.
pub const TARGET_LAYER: i16 = 1;

/// Where a correction input clip comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum DesignSource {
    /// A synthetic generator recipe (deterministic in its fields).
    Generated {
        /// Which paper design to instantiate.
        kind: DesignKind,
        /// Number of design tiles laid side by side.
        tiles: usize,
        /// Optional centred square crop, nm.
        crop: Option<f64>,
    },
    /// A GDSII file on disk.
    Gds {
        /// Path to the `.gds` file.
        path: PathBuf,
        /// Which `layer[:datatype]` carries the target shapes.
        layer: LayerFilter,
        /// Optional centred square crop, nm.
        crop: Option<f64>,
    },
}

impl DesignSource {
    /// Builds the input clip. Generated sources are infallible by
    /// construction; GDS sources surface read/flatten failures as
    /// human-readable messages (serve forwards them in 400 bodies).
    ///
    /// # Errors
    ///
    /// A message describing the I/O, parse, or flatten failure.
    pub fn build_clip(&self) -> Result<Clip, String> {
        match self {
            DesignSource::Generated { kind, tiles, crop } => {
                Ok(generated_clip(*kind, *tiles, *crop))
            }
            DesignSource::Gds { path, layer, crop } => read_gds_clip(path, *layer, *crop),
        }
    }
}

/// Builds the synthetic input clip: `count` design tiles side by side,
/// optionally cropped to a centred window. Shared by the CLI, the
/// service, and the fleet so every expansion of the same recipe sees the
/// same input.
pub fn generated_clip(kind: DesignKind, count: usize, crop: Option<f64>) -> Clip {
    let tiles: Vec<Clip> = design_tiles(kind, count.max(1)).collect();
    let tile_w = tiles[0].width();
    let tile_h = tiles[0].height();
    let mut shapes = Vec::new();
    for (i, tile) in tiles.iter().enumerate() {
        let dx = Point::new(i as f64 * tile_w, 0.0);
        shapes.extend(tile.targets().iter().map(|t| t.translated(dx)));
    }
    let clip = Clip::new(
        format!("{}x{}", kind.name(), count.max(1)),
        tile_w * count.max(1) as f64,
        tile_h,
        shapes,
    );
    apply_crop(clip, crop)
}

fn apply_crop(clip: Clip, crop: Option<f64>) -> Clip {
    match crop {
        Some(size) => {
            let origin = Point::new(
                ((clip.width() - size) * 0.5).max(0.0),
                ((clip.height() - size) * 0.5).max(0.0),
            );
            let name = format!("{}@{}", clip.name(), size);
            clip.crop_intersecting(origin, size, size, name)
        }
        None => clip,
    }
}

/// Serialises a clip to GDSII bytes at 1 nm/dbu: targets on
/// `layer:datatype`, the clip window on [`WINDOW_LAYER`]`:0`, structure
/// named after the clip.
///
/// # Errors
///
/// A message when a target polygon cannot be encoded (coordinate
/// overflow — generated designs never trip this).
pub fn write_clip_gds(clip: &Clip, layer: i16, datatype: i16) -> Result<Vec<u8>, String> {
    let mut w = GdsWriter::new("CARDOPC", 1.0).map_err(|e| e.to_string())?;
    // GDS structure names are conservative ASCII; clip names stay within
    // [A-Za-z0-9_@.\[\]x-], all printable ASCII, which our reader accepts.
    w.begin_struct(clip.name());
    let window = cardopc_geometry::Polygon::rect(
        Point::new(0.0, 0.0),
        Point::new(clip.width(), clip.height()),
    );
    w.boundary(WINDOW_LAYER, 0, &window)
        .map_err(|e| format!("window rectangle: {e}"))?;
    for (i, target) in clip.targets().iter().enumerate() {
        w.boundary(layer, datatype, target)
            .map_err(|e| format!("target {i}: {e}"))?;
    }
    w.end_struct();
    Ok(w.finish())
}

/// Reads a clip from a GDSII file: flattens the first top-level
/// structure, selects target shapes through `layer` (the
/// [`WINDOW_LAYER`] marker is always excluded), and restores the clip
/// window from the marker rectangle when present — else from the shape
/// bounding box.
///
/// # Errors
///
/// A message for I/O, parse, flatten, or empty-selection failures.
pub fn read_gds_clip(path: &Path, layer: LayerFilter, crop: Option<f64>) -> Result<Clip, String> {
    let lib = cardopc_gds::read_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    clip_from_lib(&lib, layer, crop).map_err(|e| format!("{}: {e}", path.display()))
}

/// [`read_gds_clip`] on an already-parsed library (used by the serve
/// fuzz tests and anywhere the bytes never touch disk).
///
/// # Errors
///
/// A message for flatten or empty-selection failures.
pub fn clip_from_lib(
    lib: &cardopc_gds::GdsLib,
    layer: LayerFilter,
    crop: Option<f64>,
) -> Result<Clip, String> {
    let top = lib
        .top_structs()
        .first()
        .map(|s| s.to_string())
        .ok_or("library holds no structures")?;
    let shapes = flatten(lib, &top, LayerFilter::All, FlattenLimits::default())
        .map_err(|e| e.to_string())?;

    let window: Option<BBox> = shapes
        .iter()
        .find(|s| s.layer == WINDOW_LAYER && s.datatype == 0)
        .map(|s| s.polygon.bbox());

    let mut targets: Vec<cardopc_geometry::Polygon> = shapes
        .into_iter()
        .filter(|s| s.layer != WINDOW_LAYER && layer.matches(s.layer, s.datatype))
        .map(|s| s.polygon)
        .collect();
    if targets.is_empty() {
        return Err(format!(
            "structure '{top}' has no shapes on layer {layer} (window marker excluded)"
        ));
    }

    let window = window.unwrap_or_else(|| {
        targets
            .iter()
            .fold(BBox::EMPTY, |acc, t| acc.union(t.bbox()))
    });
    if !(window.width() > 0.0 && window.height() > 0.0) {
        return Err("clip window is degenerate".into());
    }

    // A corrupt file can place shapes light-years from the window. Shapes
    // that miss it entirely can never be corrected (the partitioner only
    // visits the window), so they are dropped; a shape that *intersects*
    // the window but dwarfs it would stall every tile it touches, so the
    // clip is refused outright.
    targets.retain(|t| t.bbox().intersects(&window));
    if targets.is_empty() {
        return Err(format!(
            "structure '{top}' has no layer-{layer} shapes inside the clip window"
        ));
    }
    // Cropped clips legitimately keep whole shapes poking past the
    // window, so the bound is generous — 16 windows of slack on every
    // side — while still rejecting the ~1e9 nm coordinates a flipped
    // byte produces. The slack scales with the window's *smaller*
    // dimension: a corrupted marker that stretches one axis must not
    // loosen the bound with it.
    let margin = 16.0 * window.width().min(window.height());
    let keep = window.expanded(margin);
    if let Some(huge) = targets.iter().find(|t| !keep.contains_bbox(&t.bbox())) {
        let b = huge.bbox();
        return Err(format!(
            "a shape spans ({:.0}, {:.0})..({:.0}, {:.0}) nm — far beyond the \
             {:.0}x{:.0} nm clip window; refusing a likely-corrupt file",
            b.min.x,
            b.min.y,
            b.max.x,
            b.max.y,
            window.width(),
            window.height()
        ));
    }
    let origin = window.min;
    let targets = targets.into_iter().map(|t| t.translated(-origin)).collect();
    let clip = Clip::new(top, window.width(), window.height(), targets);
    Ok(apply_crop(clip, crop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::Polygon;

    #[test]
    fn generated_clip_tiles_side_by_side() {
        let one = generated_clip(DesignKind::Gcd, 1, None);
        let two = generated_clip(DesignKind::Gcd, 2, None);
        assert_eq!(one.name(), "gcdx1");
        assert_eq!(two.width(), one.width() * 2.0);
        // Tile 0's shapes appear verbatim; tile 1 is seeded differently.
        assert_eq!(&two.targets()[..one.targets().len()], one.targets());
        assert!(two.targets().len() > one.targets().len());
        let cropped = generated_clip(DesignKind::Gcd, 1, Some(2048.0));
        assert_eq!(cropped.name(), "gcdx1@2048");
        assert_eq!(cropped.width(), 2048.0);
    }

    #[test]
    fn gds_roundtrip_restores_the_exact_clip() {
        let clip = generated_clip(DesignKind::Gcd, 1, Some(4096.0));
        let bytes = write_clip_gds(&clip, TARGET_LAYER, 0).unwrap();
        let lib = cardopc_gds::parse_lib(&bytes).unwrap();
        let back = clip_from_lib(&lib, LayerFilter::Layer(TARGET_LAYER), None).unwrap();
        // Exact equality: name, window, every vertex. Generated designs
        // are integer-nm, so the 1 nm/dbu quantisation is lossless.
        assert_eq!(clip, back);
    }

    #[test]
    fn design_source_seam_builds_both_kinds() {
        let generated = DesignSource::Generated {
            kind: DesignKind::Gcd,
            tiles: 1,
            crop: Some(2048.0),
        };
        let clip = generated.build_clip().unwrap();
        assert_eq!(clip.name(), "gcdx1@2048");

        let dir = std::env::temp_dir().join("cardopc-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.gds");
        let bytes = write_clip_gds(&clip, TARGET_LAYER, 0).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        let gds = DesignSource::Gds {
            path: path.clone(),
            layer: LayerFilter::Layer(TARGET_LAYER),
            crop: None,
        };
        assert_eq!(gds.build_clip().unwrap(), clip);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_fall_back_to_shape_bbox() {
        // No window marker: clip window = shape bbox anchored at origin.
        let mut w = GdsWriter::new("FOREIGN", 1.0).unwrap();
        w.begin_struct("CHIP");
        w.boundary(
            5,
            0,
            &Polygon::rect(Point::new(100.0, 200.0), Point::new(300.0, 400.0)),
        )
        .unwrap();
        w.boundary(
            5,
            0,
            &Polygon::rect(Point::new(500.0, 200.0), Point::new(600.0, 500.0)),
        )
        .unwrap();
        w.end_struct();
        let lib = cardopc_gds::parse_lib(&w.finish()).unwrap();
        let clip = clip_from_lib(&lib, LayerFilter::Layer(5), None).unwrap();
        assert_eq!(clip.name(), "CHIP");
        assert_eq!((clip.width(), clip.height()), (500.0, 300.0));
        assert_eq!(clip.targets()[0].bbox().min, Point::new(0.0, 0.0));
        assert!(clip.targets_in_window());
    }

    #[test]
    fn far_away_shapes_are_dropped_and_colossal_ones_refused() {
        // A 1000×1000 window with one good shape, one shape a metre away
        // (dropped), and — in the second file — one shape that overlaps
        // the window but extends a metre past it (refused).
        let window = Polygon::rect(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let good = Polygon::rect(Point::new(100.0, 100.0), Point::new(300.0, 200.0));
        let far = Polygon::rect(
            Point::new(1.0e9, 1.0e9),
            Point::new(1.0e9 + 100.0, 1.0e9 + 100.0),
        );
        let mut w = GdsWriter::new("T", 1.0).unwrap();
        w.begin_struct("TOP");
        w.boundary(WINDOW_LAYER, 0, &window).unwrap();
        w.boundary(TARGET_LAYER, 0, &good).unwrap();
        w.boundary(TARGET_LAYER, 0, &far).unwrap();
        w.end_struct();
        let lib = cardopc_gds::parse_lib(&w.finish()).unwrap();
        let clip = clip_from_lib(&lib, LayerFilter::Layer(TARGET_LAYER), None).unwrap();
        assert_eq!(clip.targets().len(), 1, "far-away shape dropped");

        let colossal = Polygon::rect(Point::new(500.0, 500.0), Point::new(1.0e9, 600.0));
        let mut w = GdsWriter::new("T", 1.0).unwrap();
        w.begin_struct("TOP");
        w.boundary(WINDOW_LAYER, 0, &window).unwrap();
        w.boundary(TARGET_LAYER, 0, &colossal).unwrap();
        w.end_struct();
        let lib = cardopc_gds::parse_lib(&w.finish()).unwrap();
        let err = clip_from_lib(&lib, LayerFilter::Layer(TARGET_LAYER), None).unwrap_err();
        assert!(err.contains("far beyond"), "{err}");
    }

    #[test]
    fn wrong_layer_selection_is_an_error_not_empty() {
        let clip = generated_clip(DesignKind::Gcd, 1, Some(2048.0));
        let bytes = write_clip_gds(&clip, TARGET_LAYER, 0).unwrap();
        let lib = cardopc_gds::parse_lib(&bytes).unwrap();
        let err = clip_from_lib(&lib, LayerFilter::Layer(42), None).unwrap_err();
        assert!(err.contains("no shapes on layer 42"), "{err}");
        // The window marker alone never counts as a target.
        let err = clip_from_lib(&lib, LayerFilter::Layer(WINDOW_LAYER), None).unwrap_err();
        assert!(err.contains("no shapes"), "{err}");
    }
}
