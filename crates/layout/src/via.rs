//! Via-layer testcases `V1`–`V13` (Table I workload).
//!
//! The published clips are 2×2 µm windows holding 2–6 contact-sized vias.
//! We synthesise equivalents: 70 nm square vias placed uniformly at random
//! inside the central region with a minimum centre-to-centre spacing, from
//! fixed seeds. The via counts follow the paper exactly:
//! `[2,2,3,3,4,4,5,5,6,6,6,6,6]`.

use crate::Clip;
use cardopc_geometry::{Point, Polygon, SplitMix64};

/// Clip window edge length in nanometres (2 µm).
pub const VIA_CLIP_SIZE: f64 = 2000.0;
/// Drawn via edge length in nanometres.
pub const VIA_SIZE: f64 = 70.0;
/// Minimum centre-to-centre spacing between vias.
const MIN_SPACING: f64 = 250.0;
/// Margin from the clip border (leave room for SRAFs and optical context).
const MARGIN: f64 = 500.0;

/// Via counts of `V1`–`V13` as published in Table I.
pub const VIA_COUNTS: [usize; 13] = [2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 6, 6, 6];

/// Generates the 13 via-layer clips.
pub fn via_clips() -> Vec<Clip> {
    VIA_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            let name = format!("V{}", i + 1);
            let targets = place_vias(count, 0xCA4D_0000 + i as u64);
            Clip::new(name, VIA_CLIP_SIZE, VIA_CLIP_SIZE, targets)
        })
        .collect()
}

/// Rejection-samples `count` via centres with minimum spacing.
fn place_vias(count: usize, seed: u64) -> Vec<Polygon> {
    let mut rng = SplitMix64::new(seed);
    let mut centers: Vec<Point> = Vec::with_capacity(count);
    let lo = MARGIN;
    let hi = VIA_CLIP_SIZE - MARGIN;
    let mut guard = 0;
    while centers.len() < count {
        guard += 1;
        assert!(guard < 100_000, "via placement failed to converge");
        // Snap centres to the integer-nm grid (the via half-size is 35 nm,
        // so corners land on the grid too and GDS export is lossless);
        // the spacing constraint is checked on the snapped position.
        let c = Point::new(rng.range_f64(lo, hi).round(), rng.range_f64(lo, hi).round());
        if centers.iter().all(|&p| p.distance(c) >= MIN_SPACING) {
            centers.push(c);
        }
    }
    centers
        .into_iter()
        .map(|c| {
            let h = VIA_SIZE / 2.0;
            Polygon::rect(c - Point::new(h, h), c + Point::new(h, h))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_clips_with_published_counts() {
        let clips = via_clips();
        assert_eq!(clips.len(), 13);
        for (clip, &count) in clips.iter().zip(&VIA_COUNTS) {
            assert_eq!(clip.targets().len(), count, "{}", clip.name());
            assert_eq!(clip.width(), VIA_CLIP_SIZE);
        }
        assert_eq!(clips[0].name(), "V1");
        assert_eq!(clips[12].name(), "V13");
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(via_clips(), via_clips());
    }

    #[test]
    fn vias_are_squares_of_published_size() {
        for clip in via_clips() {
            for via in clip.targets() {
                let b = via.bbox();
                assert!((b.width() - VIA_SIZE).abs() < 1e-9);
                assert!((b.height() - VIA_SIZE).abs() < 1e-9);
                assert!((via.area() - VIA_SIZE * VIA_SIZE).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn vias_respect_spacing_and_window() {
        for clip in via_clips() {
            assert!(clip.targets_in_window(), "{}", clip.name());
            let centers: Vec<Point> = clip.targets().iter().map(|v| v.centroid()).collect();
            for i in 0..centers.len() {
                for j in i + 1..centers.len() {
                    assert!(
                        centers[i].distance(centers[j]) >= MIN_SPACING - 1e-9,
                        "{}: vias {i} and {j} too close",
                        clip.name()
                    );
                }
            }
        }
    }

    #[test]
    fn clips_differ_from_each_other() {
        let clips = via_clips();
        // V1 and V2 have the same count but different placements.
        assert_ne!(clips[0].targets(), clips[1].targets());
    }
}
