//! The [`LithoBackend`] seam: simulation precision as a runtime choice.
//!
//! [`LithoEngine`](crate::LithoEngine) always *synthesises* its SOCS kernel
//! stacks in `f64` — kernel synthesis is cheap, runs once, and keeping a
//! single reference stack means every backend is derived from the same
//! physics. What varies per run is the arithmetic the convolution hot loop
//! executes: the default [`CpuBackend<f64>`] runs the reference
//! double-precision path (4-lane AVX2), while [`CpuBackend<f32>`] narrows
//! the kernels once at construction and runs the same algorithms in single
//! precision (8-lane AVX2) for roughly double the SIMD throughput and half
//! the memory traffic.
//!
//! Masks enter and intensities leave every backend as `f64`: only the
//! simulation interior downcasts. Geometry, MRC and spline fitting never
//! see reduced precision. Within one backend, outputs remain byte-identical
//! across worker counts (the workspace's per-kernel strip reduction pins
//! the summation tree); across backends the accuracy contract is relative —
//! see the f32-vs-f64 tolerance tests.

use crate::optics::SocsKernel;
use crate::pool::WorkerPool;
use crate::scalar::{Precision, Scalar};
use crate::workspace::LithoWorkspace;
use std::sync::{Arc, Mutex, TryLockError};

/// Precision-erased simulation backend: turns `f64` mask rasters into `f64`
/// aerial intensities using an implementation-chosen interior arithmetic.
///
/// Implementations must be safe to call from several threads at once
/// (engines are shared across tile-correction workers).
pub trait LithoBackend: std::fmt::Debug + Send + Sync {
    /// The interior arithmetic this backend runs.
    fn precision(&self) -> Precision;

    /// Full-frame SOCS intensity for one focus state into `intensity`
    /// (`width*height` samples, overwritten).
    fn intensity(
        &self,
        mask: &[f64],
        defocused: bool,
        pool: &WorkerPool,
        parallelism: usize,
        intensity: &mut [f64],
    );

    /// Multi-condition SOCS intensity from a single forward mask FFT: one
    /// output per entry of `states` (`true` = defocused kernel stack).
    fn intensity_multi(
        &self,
        mask: &[f64],
        states: &[bool],
        pool: &WorkerPool,
        parallelism: usize,
        outputs: &mut [&mut [f64]],
    );

    /// Column-restricted SOCS intensity (see
    /// [`LithoWorkspace::socs_intensity_cols`]); off-ROI pixels are zeroed.
    #[allow(clippy::too_many_arguments)]
    fn intensity_cols(
        &self,
        mask: &[f64],
        defocused: bool,
        cols: &[usize],
        pool: &WorkerPool,
        parallelism: usize,
        intensity: &mut [f64],
    );

    /// Clones the backend (kernel stacks are shared; scratch is not).
    fn clone_box(&self) -> Box<dyn LithoBackend>;
}

/// CPU SOCS backend generic over the interior [`Scalar`].
///
/// Holds the kernel stacks at its own precision (`f64` backends share the
/// engine's reference stacks by `Arc`; `f32` backends hold a one-time
/// narrowed copy) plus a reusable [`LithoWorkspace`] so repeat calls are
/// allocation-free. Concurrent callers fall back to a transient workspace
/// rather than serialising on the lock.
#[derive(Debug)]
pub struct CpuBackend<T: Scalar = f64> {
    width: usize,
    height: usize,
    nominal: Arc<Vec<SocsKernel<T>>>,
    defocused: Arc<Vec<SocsKernel<T>>>,
    workspace: Mutex<LithoWorkspace<T>>,
}

impl<T: Scalar> CpuBackend<T> {
    /// Builds a backend over pre-narrowed kernel stacks.
    pub fn new(
        width: usize,
        height: usize,
        nominal: Arc<Vec<SocsKernel<T>>>,
        defocused: Arc<Vec<SocsKernel<T>>>,
    ) -> CpuBackend<T> {
        CpuBackend {
            width,
            height,
            nominal,
            defocused,
            workspace: Mutex::new(LithoWorkspace::new()),
        }
    }

    /// Builds a backend by narrowing `f64` reference kernel stacks to `T`
    /// (an `Arc` bump, not a copy, when `T` = `f64` would make this
    /// redundant — use [`CpuBackend::new`] there).
    pub fn from_reference(
        width: usize,
        height: usize,
        nominal: &[SocsKernel],
        defocused: &[SocsKernel],
    ) -> CpuBackend<T> {
        CpuBackend::new(
            width,
            height,
            Arc::new(nominal.iter().map(SocsKernel::to_precision).collect()),
            Arc::new(defocused.iter().map(SocsKernel::to_precision).collect()),
        )
    }

    fn kernels(&self, defocused: bool) -> &[SocsKernel<T>] {
        if defocused {
            &self.defocused
        } else {
            &self.nominal
        }
    }

    fn with_workspace<R>(&self, f: impl FnOnce(&mut LithoWorkspace<T>) -> R) -> R {
        match self.workspace.try_lock() {
            Ok(mut ws) => f(&mut ws),
            Err(TryLockError::Poisoned(poisoned)) => f(&mut poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => f(&mut LithoWorkspace::new()),
        }
    }
}

impl<T: Scalar> LithoBackend for CpuBackend<T> {
    fn precision(&self) -> Precision {
        T::PRECISION
    }

    fn intensity(
        &self,
        mask: &[f64],
        defocused: bool,
        pool: &WorkerPool,
        parallelism: usize,
        intensity: &mut [f64],
    ) {
        self.with_workspace(|ws| {
            ws.socs_intensity(
                self.width,
                self.height,
                mask,
                self.kernels(defocused),
                pool,
                parallelism,
                intensity,
            );
        });
    }

    fn intensity_multi(
        &self,
        mask: &[f64],
        states: &[bool],
        pool: &WorkerPool,
        parallelism: usize,
        outputs: &mut [&mut [f64]],
    ) {
        let kernel_sets: Vec<&[SocsKernel<T>]> = states.iter().map(|&d| self.kernels(d)).collect();
        self.with_workspace(|ws| {
            ws.socs_intensity_multi(
                self.width,
                self.height,
                mask,
                &kernel_sets,
                pool,
                parallelism,
                outputs,
            );
        });
    }

    fn intensity_cols(
        &self,
        mask: &[f64],
        defocused: bool,
        cols: &[usize],
        pool: &WorkerPool,
        parallelism: usize,
        intensity: &mut [f64],
    ) {
        self.with_workspace(|ws| {
            ws.socs_intensity_cols(
                self.width,
                self.height,
                mask,
                self.kernels(defocused),
                cols,
                pool,
                parallelism,
                intensity,
            );
        });
    }

    fn clone_box(&self) -> Box<dyn LithoBackend> {
        Box::new(CpuBackend {
            width: self.width,
            height: self.height,
            nominal: Arc::clone(&self.nominal),
            defocused: Arc::clone(&self.defocused),
            workspace: Mutex::new(LithoWorkspace::new()),
        })
    }
}

/// Builds the backend for a precision from the `f64` reference stacks:
/// `F64` shares the stacks by `Arc`, `F32` narrows them once.
pub(crate) fn make_backend(
    precision: Precision,
    width: usize,
    height: usize,
    nominal: &Arc<Vec<SocsKernel>>,
    defocused: &Arc<Vec<SocsKernel>>,
) -> Box<dyn LithoBackend> {
    match precision {
        Precision::F64 => Box::new(CpuBackend::new(
            width,
            height,
            Arc::clone(nominal),
            Arc::clone(defocused),
        )),
        Precision::F32 => Box::new(CpuBackend::<f32>::from_reference(
            width, height, nominal, defocused,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optics::{build_kernels, OpticsConfig};

    fn stacks() -> (Arc<Vec<SocsKernel>>, Arc<Vec<SocsKernel>>) {
        let cfg = OpticsConfig {
            source_rings: 1,
            points_per_ring: 4,
            ..OpticsConfig::default()
        };
        let nominal = build_kernels(&cfg, 64, 64, 8.0, 0.0).unwrap();
        let defocused = build_kernels(&cfg, 64, 64, 8.0, cfg.defocus).unwrap();
        (Arc::new(nominal), Arc::new(defocused))
    }

    #[test]
    fn backends_report_their_precision() {
        let (nominal, defocused) = stacks();
        let b64 = make_backend(Precision::F64, 64, 64, &nominal, &defocused);
        let b32 = make_backend(Precision::F32, 64, 64, &nominal, &defocused);
        assert_eq!(b64.precision(), Precision::F64);
        assert_eq!(b32.precision(), Precision::F32);
        assert_eq!(b64.clone_box().precision(), Precision::F64);
        assert_eq!(b32.clone_box().precision(), Precision::F32);
    }

    #[test]
    fn f64_backend_shares_reference_stacks() {
        let (nominal, defocused) = stacks();
        let _backend = make_backend(Precision::F64, 64, 64, &nominal, &defocused);
        // One count for the local Arc, one inside the backend.
        assert_eq!(Arc::strong_count(&nominal), 2);
        assert_eq!(Arc::strong_count(&defocused), 2);
    }

    #[test]
    fn f32_backend_tracks_f64_on_both_focus_states() {
        let (nominal, defocused) = stacks();
        let b64 = make_backend(Precision::F64, 64, 64, &nominal, &defocused);
        let b32 = make_backend(Precision::F32, 64, 64, &nominal, &defocused);
        let mut rng = cardopc_geometry::SplitMix64::new(11);
        let mask: Vec<f64> = (0..64 * 64).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let pool = WorkerPool::new(2);
        for defocus in [false, true] {
            let mut a = vec![0.0; 64 * 64];
            let mut b = vec![0.0; 64 * 64];
            b64.intensity(&mask, defocus, &pool, 2, &mut a);
            b32.intensity(&mask, defocus, &pool, 2, &mut b);
            let peak = a.iter().cloned().fold(0.0f64, f64::max);
            for (i, (&x, &y)) in b.iter().zip(&a).enumerate() {
                assert!(
                    (x - y).abs() < 2e-4 * peak,
                    "defocus {defocus}, pixel {i}: f32 {x} vs f64 {y}"
                );
            }
        }
    }
}
