//! The lithography simulation engine (Hopkins Eq. 1 via SOCS kernels).

use crate::backend::{make_backend, LithoBackend};
use crate::optics::{build_kernels, OpticsConfig, SocsKernel};
use crate::pool::WorkerPool;
use crate::scalar::Precision;
use crate::LithoError;
use cardopc_geometry::Grid;
use std::sync::Arc;

/// A process condition at which the mask can be printed.
///
/// The process variation band compares prints at the extreme corners of
/// dose and focus, as §II-B of the paper describes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcessCondition {
    /// `true` to use the defocused kernel stack.
    pub defocused: bool,
    /// Relative exposure dose (1.0 = nominal). Higher dose lowers the
    /// effective print threshold, enlarging printed features.
    pub dose: f64,
}

impl ProcessCondition {
    /// Nominal focus and dose.
    pub const NOMINAL: ProcessCondition = ProcessCondition {
        defocused: false,
        dose: 1.0,
    };

    /// The *outer* PV-band corner: overexposed at nominal focus (largest
    /// printed area).
    pub fn outer(dose_delta: f64) -> Self {
        ProcessCondition {
            defocused: false,
            dose: 1.0 + dose_delta,
        }
    }

    /// The *inner* PV-band corner: underexposed and defocused (smallest
    /// printed area).
    pub fn inner(dose_delta: f64) -> Self {
        ProcessCondition {
            defocused: true,
            dose: 1.0 - dose_delta,
        }
    }
}

/// Partially coherent lithography simulator over a fixed grid.
///
/// Construction precomputes the frequency-domain SOCS kernel stacks for
/// nominal and defocused conditions; each [`LithoEngine::aerial_image`] call
/// then costs one forward FFT of the mask plus one inverse FFT per kernel.
///
/// ```no_run
/// use cardopc_geometry::Grid;
/// use cardopc_litho::{LithoEngine, OpticsConfig};
///
/// let engine = LithoEngine::new(OpticsConfig::default(), 256, 256, 4.0)?;
/// let mask = Grid::zeros(256, 256, 4.0);
/// let aerial = engine.aerial_image(&mask)?;
/// assert_eq!(aerial.width(), 256);
/// # Ok::<(), cardopc_litho::LithoError>(())
/// ```
#[derive(Debug)]
pub struct LithoEngine {
    config: OpticsConfig,
    width: usize,
    height: usize,
    pitch: f64,
    threshold: f64,
    /// Reference (`f64`) kernel stacks — always synthesised in double
    /// precision whatever the simulation backend runs, so gradient-based
    /// ILT and kernel introspection see one set of physics.
    nominal: Arc<Vec<SocsKernel>>,
    defocused: Arc<Vec<SocsKernel>>,
    /// Parallel task-slot count, resolved once at construction from the
    /// shared pool (itself sized from `CARDOPC_THREADS` or the machine's
    /// available parallelism) — never queried per call.
    workers: usize,
    /// Interior arithmetic of the simulation backend.
    precision: Precision,
    /// The simulation backend: owns the hot-loop workspace and, for reduced
    /// precisions, a narrowed copy of the kernel stacks. Repeat calls are
    /// allocation-free; concurrent callers on the same engine fall back to
    /// a transient workspace rather than serialising on the lock.
    backend: Box<dyn LithoBackend>,
}

impl Clone for LithoEngine {
    fn clone(&self) -> LithoEngine {
        LithoEngine {
            config: self.config.clone(),
            width: self.width,
            height: self.height,
            pitch: self.pitch,
            threshold: self.threshold,
            nominal: Arc::clone(&self.nominal),
            defocused: Arc::clone(&self.defocused),
            workers: self.workers,
            precision: self.precision,
            // Kernel stacks are shared; scratch is not — it refills lazily.
            backend: self.backend.clone_box(),
        }
    }
}

impl LithoEngine {
    /// Default resist threshold as a fraction of the open-frame intensity.
    ///
    /// For partially coherent annular illumination the intensity at a large
    /// feature's edge sits near 0.25–0.35 of the clear-field level; 0.3
    /// makes large features print approximately at size. Use
    /// [`LithoEngine::calibrate_threshold`] for an exact match.
    pub const DEFAULT_THRESHOLD: f64 = 0.3;

    /// Builds an engine for a `width`×`height` grid with `pitch` nm pixels.
    ///
    /// # Errors
    ///
    /// * [`LithoError::EmptyGrid`] for zero-sized dimensions (any nonzero
    ///   grid is FFT-compatible: 5-smooth sizes run on the direct
    ///   mixed-radix path, everything else via Bluestein),
    /// * [`LithoError::InvalidOptics`] for bad physical parameters.
    pub fn new(
        config: OpticsConfig,
        width: usize,
        height: usize,
        pitch: f64,
    ) -> Result<Self, LithoError> {
        Self::with_precision(config, width, height, pitch, Precision::F64)
    }

    /// Builds an engine whose simulation interior runs at `precision`.
    ///
    /// Kernel synthesis always happens in `f64`; an `F32` engine narrows
    /// the stacks once at construction and runs the convolution hot loop
    /// (spectrum, per-kernel products, pruned inverse transforms, `|z|²`
    /// accumulation) in single precision — masks and intensities remain
    /// `f64` at the API boundary. See `DESIGN.md` §12 for the accuracy
    /// contract.
    ///
    /// # Errors
    ///
    /// Same as [`LithoEngine::new`].
    pub fn with_precision(
        config: OpticsConfig,
        width: usize,
        height: usize,
        pitch: f64,
        precision: Precision,
    ) -> Result<Self, LithoError> {
        let nominal = Arc::new(build_kernels(&config, width, height, pitch, 0.0)?);
        let defocused = Arc::new(build_kernels(
            &config,
            width,
            height,
            pitch,
            config.defocus,
        )?);
        let backend = make_backend(precision, width, height, &nominal, &defocused);
        Ok(LithoEngine {
            config,
            width,
            height,
            pitch,
            threshold: Self::DEFAULT_THRESHOLD,
            nominal,
            defocused,
            workers: WorkerPool::global().parallelism(),
            precision,
            backend,
        })
    }

    /// The interior arithmetic of the simulation backend.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The optics configuration.
    pub fn config(&self) -> &OpticsConfig {
        &self.config
    }

    /// Grid width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel pitch in nanometres.
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    /// The resist threshold `I_th` used by [`LithoEngine::print`].
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The nominal-focus SOCS kernel stack (used by gradient-based ILT to
    /// backpropagate through the imaging model).
    pub fn nominal_kernels(&self) -> &[SocsKernel] {
        &self.nominal
    }

    /// The defocused SOCS kernel stack.
    pub fn defocused_kernels(&self) -> &[SocsKernel] {
        &self.defocused
    }

    /// Overrides the resist threshold.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The number of parallel task slots used by the SOCS convolution.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Overrides the parallel task-slot count (clamped to at least 1).
    ///
    /// The summation order of the SOCS reduction is pinned to ascending
    /// kernel order regardless of this setting, so results agree across
    /// worker counts to within reassociation rounding (< 1e-12).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    fn check_mask(&self, mask: &Grid) -> Result<(), LithoError> {
        if mask.width() != self.width || mask.height() != self.height {
            return Err(LithoError::GridMismatch {
                expected: (self.width, self.height),
                got: (mask.width(), mask.height()),
            });
        }
        Ok(())
    }

    fn image_with(&self, defocused: bool, mask: &Grid) -> Grid {
        let mut intensity = vec![0.0f64; self.width * self.height];
        self.backend.intensity(
            mask.data(),
            defocused,
            WorkerPool::global(),
            self.workers,
            &mut intensity,
        );
        Grid::from_data(self.width, self.height, self.pitch, intensity)
    }

    fn image_with_cols(&self, defocused: bool, mask: &Grid, cols: &[usize]) -> Grid {
        let mut intensity = vec![0.0f64; self.width * self.height];
        self.backend.intensity_cols(
            mask.data(),
            defocused,
            cols,
            WorkerPool::global(),
            self.workers,
            &mut intensity,
        );
        Grid::from_data(self.width, self.height, self.pitch, intensity)
    }

    /// Computes the aerial image `I = Σ_k w_k |M ⊗ h_k|²` at nominal focus.
    ///
    /// # Errors
    ///
    /// [`LithoError::GridMismatch`] when the mask grid has the wrong shape.
    pub fn aerial_image(&self, mask: &Grid) -> Result<Grid, LithoError> {
        self.check_mask(mask)?;
        Ok(self.image_with(false, mask))
    }

    /// Nominal-focus aerial image restricted to the given pixel columns
    /// (x indices); every other pixel of the result is zero.
    ///
    /// Computed columns are bit-identical to [`LithoEngine::aerial_image`]
    /// at the same worker count, but the per-kernel inverse transform skips
    /// both transposes and all off-ROI column transforms — the OPC
    /// correction loop uses this because EPE evaluation only samples the
    /// image near the frozen measurement anchors.
    ///
    /// # Errors
    ///
    /// [`LithoError::GridMismatch`] when the mask grid has the wrong shape.
    ///
    /// # Panics
    ///
    /// Panics when a column index is out of range.
    pub fn aerial_image_cols(&self, mask: &Grid, cols: &[usize]) -> Result<Grid, LithoError> {
        self.check_mask(mask)?;
        Ok(self.image_with_cols(false, mask, cols))
    }

    /// Aerial image at the defocused condition.
    ///
    /// # Errors
    ///
    /// [`LithoError::GridMismatch`] when the mask grid has the wrong shape.
    pub fn aerial_image_defocused(&self, mask: &Grid) -> Result<Grid, LithoError> {
        self.check_mask(mask)?;
        Ok(self.image_with(true, mask))
    }

    /// Aerial images at several process conditions from a **single**
    /// forward mask FFT.
    ///
    /// The mask spectrum is computed once and shared across every
    /// condition's SOCS convolution; distinct focus states are convolved in
    /// one fan-out over the worker pool and duplicated focus states (dose
    /// only changes thresholding, not the image) are served by cloning the
    /// state's image. The returned grids align with `conditions`, and each
    /// is **bit-identical** to the serial [`LithoEngine::aerial_image`] /
    /// [`LithoEngine::aerial_image_defocused`] call at the same worker
    /// count — every kernel set keeps its standalone chunking and
    /// slot-ordered reduction
    /// ([`LithoWorkspace::socs_intensity_multi`]).
    ///
    /// # Errors
    ///
    /// [`LithoError::GridMismatch`] when the mask grid has the wrong shape.
    pub fn aerial_images_multi(
        &self,
        mask: &Grid,
        conditions: &[ProcessCondition],
    ) -> Result<Vec<Grid>, LithoError> {
        self.check_mask(mask)?;
        if conditions.is_empty() {
            return Ok(Vec::new());
        }
        // Unique focus states in first-appearance order.
        let mut states: Vec<bool> = Vec::with_capacity(2);
        for c in conditions {
            if !states.contains(&c.defocused) {
                states.push(c.defocused);
            }
        }
        let n = self.width * self.height;
        let mut buffers: Vec<Vec<f64>> = states.iter().map(|_| vec![0.0f64; n]).collect();
        {
            let mut outputs: Vec<&mut [f64]> =
                buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
            self.backend.intensity_multi(
                mask.data(),
                &states,
                WorkerPool::global(),
                self.workers,
                &mut outputs,
            );
        }
        let state_grids: Vec<Grid> = buffers
            .into_iter()
            .map(|b| Grid::from_data(self.width, self.height, self.pitch, b))
            .collect();
        Ok(conditions
            .iter()
            .map(|c| {
                let idx = states
                    .iter()
                    .position(|&d| d == c.defocused)
                    .expect("state collected above");
                state_grids[idx].clone()
            })
            .collect())
    }

    /// Aerial image at an arbitrary process condition (focus part only —
    /// dose affects thresholding, not the image).
    ///
    /// # Errors
    ///
    /// [`LithoError::GridMismatch`] when the mask grid has the wrong shape.
    pub fn aerial_image_at(
        &self,
        mask: &Grid,
        condition: ProcessCondition,
    ) -> Result<Grid, LithoError> {
        if condition.defocused {
            self.aerial_image_defocused(mask)
        } else {
            self.aerial_image(mask)
        }
    }

    /// The effective print threshold at a process condition: dose scales
    /// exposure, which is equivalent to dividing the threshold.
    pub fn effective_threshold(&self, condition: ProcessCondition) -> f64 {
        self.threshold / condition.dose
    }

    /// Simulates printing: binary wafer image (1 = resist exposed) at a
    /// process condition.
    ///
    /// # Errors
    ///
    /// [`LithoError::GridMismatch`] when the mask grid has the wrong shape.
    pub fn print(&self, mask: &Grid, condition: ProcessCondition) -> Result<Grid, LithoError> {
        let aerial = self.aerial_image_at(mask, condition)?;
        Ok(aerial.binarize(self.effective_threshold(condition)))
    }

    /// Calibrates the resist threshold so that a large feature's edge
    /// prints exactly at its drawn position, and installs it.
    ///
    /// Simulates a half-plane mask and reads the intensity at the edge.
    pub fn calibrate_threshold(&mut self) {
        let mut mask = Grid::zeros(self.width, self.height, self.pitch);
        for iy in 0..self.height {
            for ix in 0..self.width / 2 {
                mask[(ix, iy)] = 1.0;
            }
        }
        let aerial = self.image_with(false, &mask);
        // Intensity exactly at the edge (x = width/2 · pitch), mid-height.
        let edge_x = (self.width / 2) as f64 * self.pitch;
        let mid_y = self.height as f64 * self.pitch * 0.5;
        self.threshold = aerial.sample(edge_x, mid_y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> LithoEngine {
        let config = OpticsConfig {
            source_rings: 1,
            points_per_ring: 4,
            ..OpticsConfig::default()
        };
        LithoEngine::new(config, 64, 64, 8.0).unwrap()
    }

    fn center_square_mask(engine: &LithoEngine, half: usize) -> Grid {
        let mut mask = Grid::zeros(engine.width(), engine.height(), engine.pitch());
        let c = engine.width() / 2;
        for iy in c - half..c + half {
            for ix in c - half..c + half {
                mask[(ix, iy)] = 1.0;
            }
        }
        mask
    }

    #[test]
    fn empty_mask_dark_image() {
        let engine = small_engine();
        let mask = Grid::zeros(64, 64, 8.0);
        let aerial = engine.aerial_image(&mask).unwrap();
        assert!(aerial.max_value() < 1e-12);
    }

    #[test]
    fn clear_field_prints_at_unity() {
        let engine = small_engine();
        let mask = Grid::filled(64, 64, 8.0, 1.0);
        let aerial = engine.aerial_image(&mask).unwrap();
        // Every source point passes DC; image should be ~1 everywhere.
        assert!((aerial.min_value() - 1.0).abs() < 1e-9);
        assert!((aerial.max_value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_is_nonnegative_and_bandlimited_blur_spreads() {
        let engine = small_engine();
        let mask = center_square_mask(&engine, 8);
        let aerial = engine.aerial_image(&mask).unwrap();
        assert!(aerial.min_value() >= -1e-12);
        // Centre is bright, far corner is dark.
        assert!(aerial[(32, 32)] > 0.5);
        assert!(aerial[(2, 2)] < 0.1);
        // Diffraction spreads light beyond the mask edge.
        assert!(aerial[(32 + 10, 32)] > 1e-6);
    }

    #[test]
    fn aerial_image_is_identical_across_worker_counts() {
        let mut rng = cardopc_geometry::SplitMix64::new(77);
        let mut mask = Grid::zeros(64, 64, 8.0);
        for v in mask.data_mut() {
            *v = rng.range_f64(0.0, 1.0);
        }
        let mut engine = small_engine();
        engine.set_workers(1);
        let reference = engine.aerial_image(&mask).unwrap();
        for workers in [2usize, 3, 4, 16] {
            engine.set_workers(workers);
            assert_eq!(engine.workers(), workers);
            let got = engine.aerial_image(&mask).unwrap();
            for (i, (&a, &b)) in got.data().iter().zip(reference.data()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12 * (1.0 + b.abs()),
                    "workers {workers}, pixel {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn aerial_images_multi_matches_serial_pair_bitwise() {
        let mut rng = cardopc_geometry::SplitMix64::new(79);
        let mut mask = Grid::zeros(64, 64, 8.0);
        for v in mask.data_mut() {
            *v = rng.range_f64(0.0, 1.0);
        }
        let mut engine = small_engine();
        // Three conditions over two focus states: the outer corner repeats
        // the nominal focus state and must be served from the same image.
        let conditions = [
            ProcessCondition::NOMINAL,
            ProcessCondition::inner(0.02),
            ProcessCondition::outer(0.02),
        ];
        for workers in [1usize, 2, 3, 4, 16] {
            engine.set_workers(workers);
            let nominal = engine.aerial_image(&mask).unwrap();
            let defocused = engine.aerial_image_defocused(&mask).unwrap();
            let multi = engine.aerial_images_multi(&mask, &conditions).unwrap();
            assert_eq!(multi.len(), 3);
            assert_eq!(multi[0].data(), nominal.data(), "nominal @ {workers}");
            assert_eq!(multi[1].data(), defocused.data(), "defocused @ {workers}");
            assert_eq!(multi[2].data(), nominal.data(), "outer corner @ {workers}");
        }
    }

    #[test]
    fn aerial_images_multi_empty_conditions() {
        let engine = small_engine();
        let mask = Grid::zeros(64, 64, 8.0);
        assert!(engine.aerial_images_multi(&mask, &[]).unwrap().is_empty());
    }

    #[test]
    fn aerial_image_cols_matches_full_image() {
        let mut rng = cardopc_geometry::SplitMix64::new(78);
        let mut mask = Grid::zeros(64, 64, 8.0);
        for v in mask.data_mut() {
            *v = rng.range_f64(0.0, 1.0);
        }
        let engine = small_engine();
        let full = engine.aerial_image(&mask).unwrap();
        let cols: Vec<usize> = (10..30).chain(40..45).collect();
        let roi = engine.aerial_image_cols(&mask, &cols).unwrap();
        for iy in 0..64 {
            for ix in 0..64 {
                if cols.contains(&ix) {
                    assert_eq!(
                        roi[(ix, iy)],
                        full[(ix, iy)],
                        "pixel ({ix},{iy}) not bit-identical"
                    );
                } else {
                    assert_eq!(roi[(ix, iy)], 0.0);
                }
            }
        }
    }

    #[test]
    fn symmetric_mask_gives_symmetric_image() {
        let engine = small_engine();
        let mask = center_square_mask(&engine, 8);
        let aerial = engine.aerial_image(&mask).unwrap();
        // The mask covers pixels 24..39, so the mirror axis sits between
        // pixels 31 and 32.
        for d in 1..16 {
            let right = aerial[(32 + d, 32)];
            let left = aerial[(31 - d, 32)];
            assert!(
                (right - left).abs() < 1e-9 * (1.0 + right.abs()),
                "asymmetry at offset {d}: {right} vs {left}"
            );
        }
    }

    #[test]
    fn defocus_blurs_the_image() {
        let engine = small_engine();
        let mask = center_square_mask(&engine, 6);
        let focus = engine.aerial_image(&mask).unwrap();
        let blur = engine.aerial_image_defocused(&mask).unwrap();
        // Peak intensity drops with defocus.
        assert!(blur.max_value() < focus.max_value() + 1e-12);
        // Total energy is conserved-ish but redistributed; check contrast:
        let contrast = |g: &Grid| g.max_value() - g.min_value();
        assert!(contrast(&blur) <= contrast(&focus) + 1e-12);
    }

    #[test]
    fn dose_scales_printed_area_monotonically() {
        let engine = small_engine();
        let mask = center_square_mask(&engine, 8);
        let area = |dose: f64| {
            engine
                .print(
                    &mask,
                    ProcessCondition {
                        defocused: false,
                        dose,
                    },
                )
                .unwrap()
                .count(|v| v > 0.5)
        };
        let lo = area(0.9);
        let mid = area(1.0);
        let hi = area(1.1);
        assert!(lo <= mid && mid <= hi, "areas {lo} {mid} {hi}");
        assert!(hi > lo, "dose must change printed area");
    }

    #[test]
    fn grid_mismatch_detected() {
        let engine = small_engine();
        let mask = Grid::zeros(32, 32, 8.0);
        assert!(matches!(
            engine.aerial_image(&mask),
            Err(LithoError::GridMismatch { .. })
        ));
    }

    #[test]
    fn calibrated_threshold_prints_edge_at_position() {
        let mut engine = small_engine();
        engine.calibrate_threshold();
        let th = engine.threshold();
        assert!(th > 0.1 && th < 0.6, "implausible threshold {th}");

        // A wide line should now print with its edge within a pixel or two
        // of the drawn edge.
        let mut mask = Grid::zeros(64, 64, 8.0);
        for iy in 0..64 {
            for ix in 16..48 {
                mask[(ix, iy)] = 1.0;
            }
        }
        let printed = engine.print(&mask, ProcessCondition::NOMINAL).unwrap();
        // Scan the mid row for the printed left edge.
        let mut edge = None;
        for ix in 1..64 {
            if printed[(ix - 1, 32)] < 0.5 && printed[(ix, 32)] > 0.5 {
                edge = Some(ix);
                break;
            }
        }
        let edge = edge.expect("line should print");
        assert!(
            (edge as i64 - 16).unsigned_abs() <= 2,
            "printed edge at {edge}, drawn at 16"
        );
    }

    fn small_engine_f32() -> LithoEngine {
        let config = OpticsConfig {
            source_rings: 1,
            points_per_ring: 4,
            ..OpticsConfig::default()
        };
        LithoEngine::with_precision(config, 64, 64, 8.0, Precision::F32).unwrap()
    }

    #[test]
    fn default_engine_runs_f64_and_with_precision_selects_f32() {
        assert_eq!(small_engine().precision(), Precision::F64);
        let engine = small_engine_f32();
        assert_eq!(engine.precision(), Precision::F32);
        // Clones keep the backend precision.
        assert_eq!(engine.clone().precision(), Precision::F32);
        // Reference kernels stay f64 whatever the backend runs.
        assert!(!engine.nominal_kernels().is_empty());
    }

    #[test]
    fn f32_engine_tracks_f64_within_tolerance() {
        let mut rng = cardopc_geometry::SplitMix64::new(80);
        let mut mask = Grid::zeros(64, 64, 8.0);
        for v in mask.data_mut() {
            *v = rng.range_f64(0.0, 1.0);
        }
        let e64 = small_engine();
        let e32 = small_engine_f32();
        let conditions = [ProcessCondition::NOMINAL, ProcessCondition::inner(0.02)];
        let multi64 = e64.aerial_images_multi(&mask, &conditions).unwrap();
        let multi32 = e32.aerial_images_multi(&mask, &conditions).unwrap();
        for (c, (a, b)) in multi32.iter().zip(&multi64).enumerate() {
            let peak = b.max_value();
            assert!(peak > 0.0);
            for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
                assert!(
                    (x - y).abs() < 2e-4 * peak,
                    "condition {c}, pixel {i}: f32 {x} vs f64 {y}"
                );
            }
        }
    }

    #[test]
    fn f32_engine_is_identical_across_worker_counts() {
        let mut rng = cardopc_geometry::SplitMix64::new(81);
        let mut mask = Grid::zeros(64, 64, 8.0);
        for v in mask.data_mut() {
            *v = rng.range_f64(0.0, 1.0);
        }
        let mut engine = small_engine_f32();
        engine.set_workers(1);
        let reference = engine.aerial_image(&mask).unwrap();
        for workers in [2usize, 3, 16] {
            engine.set_workers(workers);
            let got = engine.aerial_image(&mask).unwrap();
            assert_eq!(got.data(), reference.data(), "workers {workers}");
        }
    }

    #[test]
    fn process_corners_order_print_areas() {
        let mut engine = small_engine();
        engine.calibrate_threshold();
        let mask = center_square_mask(&engine, 8);
        let outer = engine
            .print(&mask, ProcessCondition::outer(0.05))
            .unwrap()
            .count(|v| v > 0.5);
        let nominal = engine
            .print(&mask, ProcessCondition::NOMINAL)
            .unwrap()
            .count(|v| v > 0.5);
        let inner = engine
            .print(&mask, ProcessCondition::inner(0.05))
            .unwrap()
            .count(|v| v > 0.5);
        assert!(
            inner <= nominal && nominal <= outer,
            "corner ordering violated: {inner} {nominal} {outer}"
        );
        assert!(outer > inner);
    }
}
