//! Error type for the lithography engine.

use std::error::Error;
use std::fmt;

/// Errors returned by lithography engine construction and simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LithoError {
    /// Simulation grid dimensions must be nonzero. (Any nonzero size is
    /// transformable: 5-smooth lengths on the direct mixed-radix path,
    /// everything else via Bluestein.)
    EmptyGrid {
        /// Offending width.
        width: usize,
        /// Offending height.
        height: usize,
    },
    /// A physical parameter (wavelength, NA, pitch, …) is out of range.
    InvalidOptics(&'static str),
    /// The mask grid does not match the engine's grid.
    GridMismatch {
        /// Expected (width, height).
        expected: (usize, usize),
        /// Provided (width, height).
        got: (usize, usize),
    },
    /// A rasterisation parameter (pitch, grid extent) is unusable.
    InvalidRaster(&'static str),
    /// A worker thread could not be spawned.
    WorkerSpawn(String),
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::EmptyGrid { width, height } => write!(
                f,
                "simulation grid must have nonzero dimensions, got {width}x{height}"
            ),
            LithoError::InvalidOptics(what) => write!(f, "invalid optics parameter: {what}"),
            LithoError::GridMismatch { expected, got } => write!(
                f,
                "mask grid is {}x{} but engine expects {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            LithoError::InvalidRaster(what) => write!(f, "invalid raster parameter: {what}"),
            LithoError::WorkerSpawn(what) => write!(f, "failed to spawn litho worker: {what}"),
        }
    }
}

impl Error for LithoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        let e = LithoError::EmptyGrid {
            width: 100,
            height: 64,
        };
        assert!(e.to_string().contains("100x64"));
        assert!(!LithoError::InvalidOptics("na").to_string().is_empty());
        let g = LithoError::GridMismatch {
            expected: (64, 64),
            got: (32, 32),
        };
        assert!(g.to_string().contains("32x32"));
    }
}
