//! Complex numbers, split-complex 2-D fields, and FFT entry points.
//!
//! The lithography engine computes Hopkins/Abbe partially coherent images as
//! weighted sums of `|IFFT(FFT(mask) · H_k)|²` terms; no FFT crate is on the
//! approved dependency list, so the transforms are implemented in
//! [`crate::plan`] (mixed-radix Stockham + Bluestein) and driven from here.
//!
//! [`Field`] stores its samples **split-complex** (structure-of-arrays:
//! separate `re[]`/`im[]` vectors) rather than interleaved. Every hot loop —
//! butterflies, twiddle rotation, frequency-domain products, the SOCS
//! `w·|z|²` reduction — then runs over packed lanes with no shuffles, which
//! is what lets the scalar bodies autovectorize and the AVX2/FMA kernels in
//! [`crate::simd`] stream at full width. Fields are generic over the
//! [`Scalar`] element (`f64` by default, `f32` for the single-precision
//! simulation backend); the boundary values — mask samples in, intensities
//! out — stay `f64` and are narrowed/widened at the edges, so for
//! `T = f64` every path is bit-identical to the pre-generic code. Any
//! nonzero dimensions are accepted; 5-smooth sizes (`2^a·3^b·5^c`) run the
//! direct mixed-radix pipeline and are what [`next_five_smooth`] rounds
//! grids to, while other sizes transparently fall back to Bluestein.

use crate::plan::FftPlan;
use crate::scalar::Scalar;
use crate::simd::{self, SimdMode};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number (double precision).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

/// Returns `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n`.
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// Returns `true` when `n` has no prime factors other than 2, 3 and 5
/// (and is nonzero) — the lengths the direct mixed-radix FFT handles.
pub fn is_five_smooth(n: usize) -> bool {
    if n == 0 {
        return false;
    }
    let mut n = n;
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// Smallest 5-smooth number `>= n` (`>= 1` for `n == 0`).
///
/// Grid sizing rounds up to this instead of the next power of two: 5-smooth
/// numbers are dense (worst-case overhead a few percent, vs up to 2× for
/// pow2 padding), and the FFT runs its direct mixed-radix path on them.
pub fn next_five_smooth(n: usize) -> usize {
    let mut m = n.max(1);
    while !is_five_smooth(m) {
        m += 1;
    }
    m
}

/// In-place iterative FFT over interleaved complex samples (any length).
///
/// `inverse = true` computes the inverse transform *including* the `1/n`
/// normalisation, so `ifft(fft(x)) == x`. Compatibility/diagnostic entry
/// point — hot paths use the split-complex [`Field`]/[`FftPlan`] APIs.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    if data.len() <= 1 {
        return;
    }
    FftPlan::<f64>::get(data.len()).execute(data, inverse);
}

/// Cache-blocked widening transpose: `src` is `rows` rows of `cols`
/// samples, `dst[c * rows + r] = src[r * cols + c]` converted to `f64`.
///
/// With the split-complex layout this is the only transpose the SOCS
/// reduction needs on its way out: it unfolds the transposed accumulator of
/// [`Field::ifft2_pruned_accumulate_t`] back to row-major while widening the
/// simulation precision to the `f64` output domain (identity for `T = f64`).
pub(crate) fn transpose_real_into<T: Scalar>(src: &[T], rows: usize, cols: usize, dst: &mut [f64]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TILE: usize = 32;
    for r0 in (0..rows).step_by(TILE) {
        let r1 = (r0 + TILE).min(rows);
        for c0 in (0..cols).step_by(TILE) {
            let c1 = (c0 + TILE).min(cols);
            for r in r0..r1 {
                let row = r * cols;
                for c in c0..c1 {
                    dst[c * rows + r] = src[row + c].to_f64();
                }
            }
        }
    }
}

/// Column stride for the 2-D transpose scratch: `height`, padded by one
/// cache line when a tight stride would be a multiple of 256 samples.
///
/// Power-of-two strides ≥ 2 KiB alias to a handful of L1 sets, so the
/// blocked transposes and the column transforms thrash the cache exactly at
/// the "nice" grid sizes (512, 1024, …). Padding the scratch stride — the
/// side of every transpose that needs lines to *persist* across the tile —
/// spreads the accesses over all sets. Field layout stays tight; only the
/// scratch pays one cache line (8 `f64` or 16 `f32` samples) per pad.
#[inline]
pub(crate) fn padded_stride<T: Scalar>(height: usize) -> usize {
    if height.is_multiple_of(256) {
        height + 64 / std::mem::size_of::<T>()
    } else {
        height
    }
}

/// Cache-blocked strided-destination transpose:
/// `dst[c * dst_stride + r] = src[r * cols + c]`.
///
/// The inner loop reads `src` sequentially and writes the strided `dst`
/// lines that persist across the tile — pair with a padded `dst_stride`
/// (see [`padded_stride`]) to keep those lines in distinct cache sets.
pub(crate) fn transpose_scatter<T: Scalar>(
    src: &[T],
    rows: usize,
    cols: usize,
    dst: &mut [T],
    dst_stride: usize,
) {
    debug_assert!(dst_stride >= rows);
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert!(dst.len() >= (cols - 1) * dst_stride + rows);
    crate::simd::transpose_strided(
        crate::simd::active_mode(),
        src,
        cols,
        rows,
        cols,
        dst,
        dst_stride,
        false,
    );
}

/// Cache-blocked strided-source transpose, the inverse access pattern of
/// [`transpose_scatter`]: `dst[r * cols + c] = src[c * src_stride + r]`.
///
/// The inner loop writes `dst` sequentially and re-reads the strided `src`
/// lines across the tile — the persistent side, so `src` should carry the
/// padded stride.
pub(crate) fn transpose_gather<T: Scalar>(
    src: &[T],
    src_stride: usize,
    rows: usize,
    cols: usize,
    dst: &mut [T],
) {
    debug_assert!(src_stride >= rows);
    debug_assert!(src.len() >= (cols - 1) * src_stride + rows);
    debug_assert_eq!(dst.len(), rows * cols);
    crate::simd::transpose_strided(
        crate::simd::active_mode(),
        src,
        src_stride,
        cols,
        rows,
        dst,
        cols,
        true,
    );
}

/// Reusable scratch buffers for FFT execution, one per worker/slot.
///
/// Holds the Stockham ping-pong pair, the Bluestein convolution pair, the
/// 2-D transpose pair and the column-gather pair as separate allocations so
/// the borrow checker can hand disjoint `&mut` views to nested plan
/// executions. All buffers start empty and grow on demand, then are reused
/// without further allocation — replacing the seed's per-call
/// `Vec<Complex>` scratch arguments.
#[derive(Clone, Debug, Default)]
pub struct FftScratch<T: Scalar = f64> {
    /// Stockham ping-pong partner (re lane).
    pub(crate) pong_re: Vec<T>,
    /// Stockham ping-pong partner (im lane).
    pub(crate) pong_im: Vec<T>,
    /// Bluestein convolution workspace (re lane).
    pub(crate) blu_re: Vec<T>,
    /// Bluestein convolution workspace (im lane).
    pub(crate) blu_im: Vec<T>,
    /// Blocked-transpose buffer for 2-D column passes (re lane).
    pub(crate) t_re: Vec<T>,
    /// Blocked-transpose buffer for 2-D column passes (im lane).
    pub(crate) t_im: Vec<T>,
    /// Column gather buffer for the fused accumulate paths (re lane).
    pub(crate) col_re: Vec<T>,
    /// Column gather buffer for the fused accumulate paths (im lane).
    pub(crate) col_im: Vec<T>,
}

impl<T: Scalar> FftScratch<T> {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> FftScratch<T> {
        FftScratch::default()
    }
}

#[inline]
fn ensure<T: Scalar>(buf: &mut Vec<T>, n: usize) -> &mut [T] {
    if buf.len() < n {
        buf.resize(n, T::ZERO);
    }
    &mut buf[..n]
}

/// A 2-D complex field, row-major, stored split-complex (separate re/im
/// lanes of [`Scalar`] samples, `f64` by default). Any nonzero dimensions
/// are accepted.
#[derive(Clone, Debug, PartialEq)]
pub struct Field<T: Scalar = f64> {
    width: usize,
    height: usize,
    re: Vec<T>,
    im: Vec<T>,
}

impl<T: Scalar> Field<T> {
    /// Zero-filled field.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn zeros(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "field dimensions must be nonzero");
        Field {
            width,
            height,
            re: vec![T::ZERO; width * height],
            im: vec![T::ZERO; width * height],
        }
    }

    /// Builds a field from real `f64` samples (imaginary parts zero),
    /// narrowing to the field's precision on the way in.
    ///
    /// # Panics
    ///
    /// Panics on sample-count mismatch or a zero dimension.
    pub fn from_real(width: usize, height: usize, real: &[f64]) -> Self {
        assert_eq!(real.len(), width * height, "sample count mismatch");
        let mut f = Field::zeros(width, height);
        for (d, &s) in f.re.iter_mut().zip(real) {
            *d = T::from_f64(s);
        }
        f
    }

    /// Converts the field to another simulation precision sample-by-sample
    /// (through the `f64` reference domain; identity for the same scalar).
    pub fn to_precision<U: Scalar>(&self) -> Field<U> {
        Field {
            width: self.width,
            height: self.height,
            re: self.re.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
            im: self.im.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Real lane, row-major.
    #[inline]
    pub fn re(&self) -> &[T] {
        &self.re
    }

    /// Imaginary lane, row-major.
    #[inline]
    pub fn im(&self) -> &[T] {
        &self.im
    }

    /// Mutable real lane, row-major.
    #[inline]
    pub fn re_mut(&mut self) -> &mut [T] {
        &mut self.re
    }

    /// Mutable imaginary lane, row-major.
    #[inline]
    pub fn im_mut(&mut self) -> &mut [T] {
        &mut self.im
    }

    /// Sample accessor (widened to the `f64` [`Complex`] domain).
    #[inline]
    pub fn at(&self, ix: usize, iy: usize) -> Complex {
        let i = iy * self.width + ix;
        Complex::new(self.re[i].to_f64(), self.im[i].to_f64())
    }

    /// Sample writer (the split layout has no `&mut Complex` to hand out;
    /// narrows to the field's precision).
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, z: Complex) {
        let i = iy * self.width + ix;
        self.re[i] = T::from_f64(z.re);
        self.im[i] = T::from_f64(z.im);
    }

    /// Iterates the samples in row-major order as [`Complex`] values.
    pub fn iter(&self) -> impl Iterator<Item = Complex> + '_ {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| Complex::new(r.to_f64(), i.to_f64()))
    }

    /// In-place 2-D FFT (rows then columns).
    ///
    /// Allocates a transient scratch; hot paths should hold a
    /// [`crate::LithoWorkspace`] or call [`Field::fft2_inplace_with`] with a
    /// reused [`FftScratch`] instead.
    pub fn fft2_inplace(&mut self, inverse: bool) {
        let mut scratch = FftScratch::new();
        self.fft2_inplace_with(inverse, &mut scratch);
    }

    /// In-place 2-D FFT reusing `scratch` for the ping-pong and
    /// blocked-transpose passes (buffers grow on first use, then are reused
    /// without further allocation).
    pub fn fft2_inplace_with(&mut self, inverse: bool, scratch: &mut FftScratch<T>) {
        self.fft2_core(inverse, scratch, None, true);
    }

    /// Inverse 2-D FFT without the `1/(width*height)` normalisation,
    /// skipping the row-pass transform of rows whose `live_rows` entry is
    /// `false`.
    ///
    /// This is the SOCS convolution hot path: the frequency-domain product
    /// `FFT(mask) · H_k` is zero on every row outside the (shifted) pupil
    /// support, so those rows' inverse row transforms are identically zero
    /// and can be skipped — the caller guarantees dead rows hold zeros (see
    /// [`Field::mul_pointwise_pruned_into`]). The missing normalisation is
    /// folded into the caller's accumulation weight (`|z/n|² = |z|²/n²`).
    ///
    /// # Panics
    ///
    /// Panics when `live_rows.len() != height`.
    pub fn ifft2_pruned_unscaled(&mut self, live_rows: &[bool], scratch: &mut FftScratch<T>) {
        assert_eq!(live_rows.len(), self.height, "row mask length mismatch");
        self.fft2_core(true, scratch, Some(live_rows), false);
    }

    /// Row-pruned unscaled inverse transform restricted to the given
    /// columns, fused with the SOCS reduction into a **column-contiguous**
    /// accumulator: `acc[ci·height + y] += weight · |z(cols[ci], y)|²`.
    ///
    /// Runs the same pruned inverse *row* pass as
    /// [`Field::ifft2_pruned_unscaled`], then — instead of transposing the
    /// whole field, transforming every column and transposing back —
    /// gathers each requested column into a contiguous buffer, applies the
    /// identical column transform, and accumulates the weighted squared
    /// magnitudes contiguously. The accumulated pixels are bit-identical to
    /// the full path (the same [`crate::FftPlan`] and the same contiguous
    /// [`crate::simd`] reduction kernel run on the same values in the same
    /// order), and both transposes plus the off-ROI column transforms are
    /// skipped entirely; callers scatter the per-column strips back to
    /// row-major once per image.
    ///
    /// This is the OPC-iteration hot path: EPE correction only reads the
    /// aerial image near the frozen measurement anchors, so only those
    /// columns need spatial-domain values. `self` is left partially
    /// transformed (rows done, columns untouched) — callers must treat the
    /// field as scratch afterwards.
    ///
    /// # Panics
    ///
    /// Panics when `acc.len() != cols.len() * height`, on a row-mask length
    /// mismatch, or on an out-of-range column index.
    pub fn ifft2_pruned_cols_accumulate(
        &mut self,
        live_rows: &[bool],
        cols: &[usize],
        scratch: &mut FftScratch<T>,
        weight: T,
        acc: &mut [T],
    ) {
        let (w, h) = (self.width, self.height);
        assert_eq!(live_rows.len(), h, "row mask length mismatch");
        assert_eq!(acc.len(), cols.len() * h, "accumulator length mismatch");
        let mode = simd::active_mode();
        let plan_w = FftPlan::<T>::get(w);
        let plan_h = FftPlan::<T>::get(h);
        let FftScratch {
            pong_re,
            pong_im,
            blu_re,
            blu_im,
            col_re,
            col_im,
            ..
        } = scratch;
        for ((rr, ri), &live) in self
            .re
            .chunks_exact_mut(w)
            .zip(self.im.chunks_exact_mut(w))
            .zip(live_rows)
        {
            if live {
                plan_w.execute_split_parts(mode, rr, ri, pong_re, pong_im, blu_re, blu_im, true);
            }
        }
        let col_re = ensure(col_re, h);
        let col_im = ensure(col_im, h);
        for (ci, &x) in cols.iter().enumerate() {
            assert!(x < w, "column index out of range");
            for y in 0..h {
                col_re[y] = self.re[y * w + x];
                col_im[y] = self.im[y * w + x];
            }
            plan_h
                .execute_split_parts(mode, col_re, col_im, pong_re, pong_im, blu_re, blu_im, true);
            simd::acc_norm_sq(mode, col_re, col_im, weight, &mut acc[ci * h..(ci + 1) * h]);
        }
    }

    /// Row-pruned unscaled inverse transform over *every* column, fused
    /// with the SOCS reduction into a **transposed** accumulator:
    /// `acc_t[x·height + y] += weight · |z(x, y)|²`.
    ///
    /// Runs the same pruned inverse row pass as
    /// [`Field::ifft2_pruned_unscaled`], then gathers each column's live
    /// entries into a contiguous buffer (dead rows contribute exact zeros
    /// and are **never read**, so callers may leave them unwritten — see
    /// [`Field::mul_pointwise_live_rows_into`]), applies the identical
    /// column transform, and accumulates the weighted squared magnitudes
    /// column-contiguously. Compared to the full path this skips both
    /// blocked transposes, the write-back of the transformed field, and
    /// every dead-row load/store — the accumulated values are bit-identical
    /// (the same [`crate::FftPlan`] and reduction kernel run on the same
    /// values in the same order), only stored transposed; callers undo the
    /// layout with one real-valued transpose after the kernel loop.
    ///
    /// `self` is left partially transformed (rows done, columns untouched)
    /// — callers must treat the field as scratch afterwards.
    ///
    /// # Panics
    ///
    /// Panics on row-mask or accumulator length mismatch.
    pub fn ifft2_pruned_accumulate_t(
        &mut self,
        live_rows: &[bool],
        scratch: &mut FftScratch<T>,
        weight: T,
        acc_t: &mut [T],
    ) {
        let (w, h) = (self.width, self.height);
        assert_eq!(live_rows.len(), h, "row mask length mismatch");
        assert_eq!(acc_t.len(), w * h, "accumulator length mismatch");
        let mode = simd::active_mode();
        let plan_w = FftPlan::<T>::get(w);
        let plan_h = FftPlan::<T>::get(h);
        let FftScratch {
            pong_re,
            pong_im,
            blu_re,
            blu_im,
            col_re,
            col_im,
            ..
        } = scratch;
        for ((rr, ri), &live) in self
            .re
            .chunks_exact_mut(w)
            .zip(self.im.chunks_exact_mut(w))
            .zip(live_rows)
        {
            if live {
                plan_w.execute_split_parts(mode, rr, ri, pong_re, pong_im, blu_re, blu_im, true);
            }
        }
        // Gather 8 adjacent columns per pass so each cache line of the
        // row-major field is consumed once, into padded column lanes that
        // don't alias each other (see [`padded_stride`]). The per-column
        // transform + accumulate below is unchanged, so results stay
        // bitwise identical to a column-at-a-time gather.
        const COLS: usize = 8;
        let cs = padded_stride::<T>(h);
        let col_re = ensure(col_re, COLS * cs);
        let col_im = ensure(col_im, COLS * cs);
        for x0 in (0..w).step_by(COLS) {
            let bw = COLS.min(w - x0);
            for (y, &live) in live_rows.iter().enumerate() {
                if live {
                    let row = y * w + x0;
                    for j in 0..bw {
                        col_re[j * cs + y] = self.re[row + j];
                        col_im[j * cs + y] = self.im[row + j];
                    }
                } else {
                    for j in 0..bw {
                        col_re[j * cs + y] = T::ZERO;
                        col_im[j * cs + y] = T::ZERO;
                    }
                }
            }
            for j in 0..bw {
                let (cr, ci) = (
                    &mut col_re[j * cs..j * cs + h],
                    &mut col_im[j * cs..j * cs + h],
                );
                plan_h.execute_split_parts(mode, cr, ci, pong_re, pong_im, blu_re, blu_im, true);
                let x = x0 + j;
                simd::acc_norm_sq(mode, cr, ci, weight, &mut acc_t[x * h..(x + 1) * h]);
            }
        }
    }

    fn fft2_core(
        &mut self,
        inverse: bool,
        scratch: &mut FftScratch<T>,
        live_rows: Option<&[bool]>,
        normalize: bool,
    ) {
        let (w, h) = (self.width, self.height);
        let mode = simd::active_mode();
        let plan_w = FftPlan::<T>::get(w);
        let plan_h = FftPlan::<T>::get(h);
        let FftScratch {
            pong_re,
            pong_im,
            blu_re,
            blu_im,
            t_re,
            t_im,
            ..
        } = scratch;
        match live_rows {
            None => {
                for (rr, ri) in self.re.chunks_exact_mut(w).zip(self.im.chunks_exact_mut(w)) {
                    plan_w.execute_split_parts(
                        mode, rr, ri, pong_re, pong_im, blu_re, blu_im, inverse,
                    );
                }
            }
            Some(mask) => {
                for ((rr, ri), &live) in self
                    .re
                    .chunks_exact_mut(w)
                    .zip(self.im.chunks_exact_mut(w))
                    .zip(mask)
                {
                    if live {
                        plan_w.execute_split_parts(
                            mode, rr, ri, pong_re, pong_im, blu_re, blu_im, inverse,
                        );
                    }
                }
            }
        }

        // Column pass on the transposed lanes: contiguous butterflies
        // instead of stride-`width` gather/scatter. The scratch stride is
        // padded so pow2 heights don't alias the cache (see
        // [`padded_stride`]).
        let cs = padded_stride::<T>(h);
        let t_re = ensure(t_re, w * cs);
        let t_im = ensure(t_im, w * cs);
        transpose_scatter(&self.re, h, w, t_re, cs);
        transpose_scatter(&self.im, h, w, t_im, cs);
        for (cr, ci) in t_re.chunks_exact_mut(cs).zip(t_im.chunks_exact_mut(cs)) {
            plan_h.execute_split_parts(
                mode,
                &mut cr[..h],
                &mut ci[..h],
                pong_re,
                pong_im,
                blu_re,
                blu_im,
                inverse,
            );
        }
        transpose_gather(t_re, cs, h, w, &mut self.re);
        transpose_gather(t_im, cs, h, w, &mut self.im);

        if inverse && normalize {
            let inv = T::from_f64(1.0 / (w * h) as f64);
            for v in self.re.iter_mut() {
                *v *= inv;
            }
            for v in self.im.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Builds the forward 2-D spectrum of a real-valued field.
    ///
    /// Convenience wrapper over [`Field::fill_forward_real_with`] that
    /// allocates its own output and scratch.
    ///
    /// # Panics
    ///
    /// Panics on sample-count mismatch or a zero dimension.
    pub fn forward_real(width: usize, height: usize, real: &[f64]) -> Field<T> {
        let mut out = Field::zeros(width, height);
        let mut scratch = FftScratch::new();
        out.fill_forward_real_with(real, &mut scratch);
        out
    }

    /// Fills `self` with the forward 2-D FFT of `real` (row-major `f64`
    /// samples, narrowed to the field's precision on the way in).
    ///
    /// Exploits that the input is real: two rows are packed into the real
    /// and imaginary lanes of a single complex transform and separated
    /// afterwards via Hermitian symmetry, roughly halving the row-pass cost
    /// relative to transforming a zero-imaginary complex field. With the
    /// split layout the packing itself is two row copies. An odd trailing
    /// row (odd heights) is transformed unpaired.
    ///
    /// # Panics
    ///
    /// Panics when `real.len() != width * height`.
    pub fn fill_forward_real_with(&mut self, real: &[f64], scratch: &mut FftScratch<T>) {
        let (w, h) = (self.width, self.height);
        assert_eq!(real.len(), w * h, "sample count mismatch");
        let mode = simd::active_mode();
        let plan_w = FftPlan::<T>::get(w);
        let FftScratch {
            pong_re,
            pong_im,
            blu_re,
            blu_im,
            t_re,
            t_im,
            ..
        } = scratch;

        #[inline]
        fn narrow<T: Scalar>(dst: &mut [T], src: &[f64]) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = T::from_f64(s);
            }
        }

        if h == 1 {
            narrow(&mut self.re, real);
            self.im.fill(T::ZERO);
            plan_w.execute_split_parts(
                mode,
                &mut self.re,
                &mut self.im,
                pong_re,
                pong_im,
                blu_re,
                blu_im,
                false,
            );
            return;
        }

        // Row pass: pack real rows (2t, 2t+1) as the re/im lanes of one
        // complex row, transform, then split with
        // A[k] = (Z[k] + conj(Z[-k]))/2 and B[k] = (Z[k] - conj(Z[-k]))/(2i).
        let pairs = h / 2;
        for t in 0..pairs {
            let (re_a, re_b) = self.re[2 * t * w..(2 * t + 2) * w].split_at_mut(w);
            let (im_a, im_b) = self.im[2 * t * w..(2 * t + 2) * w].split_at_mut(w);
            narrow(re_a, &real[2 * t * w..(2 * t + 1) * w]);
            narrow(im_a, &real[(2 * t + 1) * w..(2 * t + 2) * w]);
            plan_w.execute_split_parts(mode, re_a, im_a, pong_re, pong_im, blu_re, blu_im, false);
            for k in 0..=w / 2 {
                let km = (w - k) % w;
                let (zkr, zki) = (re_a[k], im_a[k]);
                let (zmr, zmi) = (re_a[km], im_a[km]);
                re_a[k] = T::HALF * (zkr + zmr);
                im_a[k] = T::HALF * (zki - zmi);
                re_b[k] = T::HALF * (zki + zmi);
                im_b[k] = T::HALF * (zmr - zkr);
                if km != k {
                    re_a[km] = T::HALF * (zmr + zkr);
                    im_a[km] = T::HALF * (zmi - zki);
                    re_b[km] = T::HALF * (zmi + zki);
                    im_b[km] = T::HALF * (zkr - zmr);
                }
            }
        }
        if h % 2 == 1 {
            // Unpaired last row: plain transform with a zero imaginary lane.
            let row = (h - 1) * w;
            let re_l = &mut self.re[row..row + w];
            let im_l = &mut self.im[row..row + w];
            narrow(re_l, &real[row..row + w]);
            im_l.fill(T::ZERO);
            plan_w.execute_split_parts(mode, re_l, im_l, pong_re, pong_im, blu_re, blu_im, false);
        }

        // Column pass, identical to the complex path (padded scratch
        // stride, see [`padded_stride`]).
        let plan_h = FftPlan::<T>::get(h);
        let cs = padded_stride::<T>(h);
        let t_re = ensure(t_re, w * cs);
        let t_im = ensure(t_im, w * cs);
        transpose_scatter(&self.re, h, w, t_re, cs);
        transpose_scatter(&self.im, h, w, t_im, cs);
        for (cr, ci) in t_re.chunks_exact_mut(cs).zip(t_im.chunks_exact_mut(cs)) {
            plan_h.execute_split_parts(
                mode,
                &mut cr[..h],
                &mut ci[..h],
                pong_re,
                pong_im,
                blu_re,
                blu_im,
                false,
            );
        }
        transpose_gather(t_re, cs, h, w, &mut self.re);
        transpose_gather(t_im, cs, h, w, &mut self.im);
    }

    fn assert_same_dims(&self, other: &Field<T>) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "dimension mismatch"
        );
    }

    /// Pointwise multiplication by another field of identical dimensions.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_pointwise(&self, other: &Field<T>) -> Field<T> {
        self.assert_same_dims(other);
        let mut dst = Field::zeros(self.width, self.height);
        self.mul_pointwise_into(other, &mut dst);
        dst
    }

    /// Pointwise multiplication into a preallocated destination field.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn mul_pointwise_into(&self, other: &Field<T>, dst: &mut Field<T>) {
        self.assert_same_dims(other);
        self.assert_same_dims(dst);
        simd::cmul(
            simd::active_mode(),
            &self.re,
            &self.im,
            &other.re,
            &other.im,
            &mut dst.re,
            &mut dst.im,
        );
    }

    /// Row-pruned pointwise multiplication into a preallocated destination:
    /// rows whose `live_rows` entry is `false` are written as zeros without
    /// reading the operands (the SOCS transfer functions are zero there).
    ///
    /// Pairs with [`Field::ifft2_pruned_unscaled`], which then skips those
    /// rows' inverse transforms.
    ///
    /// # Panics
    ///
    /// Panics on dimension or mask-length mismatch.
    pub fn mul_pointwise_pruned_into(
        &self,
        other: &Field<T>,
        live_rows: &[bool],
        dst: &mut Field<T>,
    ) {
        self.mul_rows(other, live_rows, dst, true, false);
    }

    /// Row-pruned pointwise multiplication writing **only** the live rows
    /// of `dst`; dead rows are left untouched (possibly holding stale data
    /// from a previous kernel).
    ///
    /// Pairs with [`Field::ifft2_pruned_accumulate_t`], which never reads
    /// dead rows — together they skip every dead-row store and load of the
    /// SOCS hot loop. Do **not** combine with the transposing inverse
    /// paths, which read the whole field.
    ///
    /// # Panics
    ///
    /// Panics on dimension or mask-length mismatch.
    pub fn mul_pointwise_live_rows_into(
        &self,
        other: &Field<T>,
        live_rows: &[bool],
        dst: &mut Field<T>,
    ) {
        self.mul_rows(other, live_rows, dst, false, false);
    }

    /// Row-pruned pointwise multiplication by the *conjugate* of `other`
    /// (`dst = self · conj(other)`), zeroing dead rows — the backward-pass
    /// twin of [`Field::mul_pointwise_pruned_into`] used by ILT gradients.
    ///
    /// # Panics
    ///
    /// Panics on dimension or mask-length mismatch.
    pub fn mul_conj_pointwise_pruned_into(
        &self,
        other: &Field<T>,
        live_rows: &[bool],
        dst: &mut Field<T>,
    ) {
        self.mul_rows(other, live_rows, dst, true, true);
    }

    fn mul_rows(
        &self,
        other: &Field<T>,
        live_rows: &[bool],
        dst: &mut Field<T>,
        zero_dead: bool,
        conj: bool,
    ) {
        self.assert_same_dims(other);
        self.assert_same_dims(dst);
        assert_eq!(live_rows.len(), self.height, "row mask length mismatch");
        let w = self.width;
        let mode = simd::active_mode();
        for (y, &live) in live_rows.iter().enumerate() {
            let row = y * w..(y + 1) * w;
            if live {
                let (ar, ai) = (&self.re[row.clone()], &self.im[row.clone()]);
                let (br, bi) = (&other.re[row.clone()], &other.im[row.clone()]);
                let (dr, di) = (&mut dst.re[row.clone()], &mut dst.im[row]);
                if conj {
                    simd::cmul_conj(mode, ar, ai, br, bi, dr, di);
                } else {
                    simd::cmul(mode, ar, ai, br, bi, dr, di);
                }
            } else if zero_dead {
                dst.re[row.clone()].fill(T::ZERO);
                dst.im[row].fill(T::ZERO);
            }
        }
    }

    /// Pointwise multiplication by a real-valued vector into a preallocated
    /// destination (`dst[i] = self[i] · real[i]`).
    ///
    /// # Panics
    ///
    /// Panics on dimension or length mismatch.
    pub fn mul_real_into(&self, real: &[T], dst: &mut Field<T>) {
        self.assert_same_dims(dst);
        assert_eq!(real.len(), self.re.len(), "sample count mismatch");
        simd::mul_real(
            simd::active_mode(),
            &self.re,
            &self.im,
            real,
            &mut dst.re,
            &mut dst.im,
        );
    }

    /// Fused `acc[i] += weight · |self[i]|²` accumulation — the reduction
    /// step of the SOCS sum, performed without materialising `|z|²` vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn accumulate_norm_sq(&self, weight: T, acc: &mut [T]) {
        assert_eq!(acc.len(), self.re.len(), "sample count mismatch");
        simd::acc_norm_sq(simd::active_mode(), &self.re, &self.im, weight, acc);
    }

    /// Fused `acc[i] += weight · Re(self[i])` accumulation (ILT gradient
    /// reduction).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn accumulate_re(&self, weight: T, acc: &mut [T]) {
        assert_eq!(acc.len(), self.re.len(), "sample count mismatch");
        simd::acc_re(simd::active_mode(), &self.re, weight, acc);
    }

    /// The per-sample squared magnitudes as a real `f64` vector.
    pub fn norm_sq_vec(&self) -> Vec<f64> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| {
                let (r, i) = (r.to_f64(), i.to_f64());
                r * r + i * i
            })
            .collect()
    }

    /// Sum of squared magnitudes (for Parseval checks), accumulated in
    /// `f64` regardless of the field precision.
    pub fn energy(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| {
                let (r, i) = (r.to_f64(), i.to_f64());
                r * r + i * i
            })
            .sum()
    }

    /// The dispatch mode pointwise/accumulate kernels currently run with
    /// (diagnostic; forwards [`crate::simd::active_mode`]).
    pub fn simd_mode() -> SimdMode {
        simd::active_mode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::SplitMix64;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect()
    }

    fn random_field(w: usize, h: usize, seed: u64) -> Field {
        let mut rng = SplitMix64::new(seed);
        let mut f: Field = Field::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                f.set(
                    x,
                    y,
                    Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)),
                );
            }
        }
        f
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!((-a), Complex::new(-1.0, -2.0));
        assert!((Complex::from_angle(std::f64::consts::PI).re + 1.0).abs() < 1e-12);
        assert_eq!(a.norm_sq(), 5.0);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft_inplace(&mut x, false);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut x = vec![Complex::ONE; 16];
        fft_inplace(&mut x, false);
        assert!((x[0].re - 16.0).abs() < 1e-12);
        for z in &x[1..] {
            assert!(z.norm() < 1e-10);
        }
    }

    #[test]
    fn fft_roundtrip() {
        // Pow2, mixed-radix 5-smooth, and Bluestein lengths all roundtrip.
        for n in [64usize, 60, 45, 13] {
            let orig = random_signal(n, 1);
            let mut x = orig.clone();
            fft_inplace(&mut x, false);
            fft_inplace(&mut x, true);
            for (a, b) in x.iter().zip(&orig) {
                assert!((*a - *b).norm() < 1e-10, "n {n}");
            }
        }
    }

    #[test]
    fn fft_single_tone_lands_in_right_bin() {
        for n in [32usize, 30] {
            let k = 5;
            let mut x: Vec<Complex> = (0..n)
                .map(|i| {
                    Complex::from_angle(std::f64::consts::TAU * k as f64 * i as f64 / n as f64)
                })
                .collect();
            fft_inplace(&mut x, false);
            for (bin, z) in x.iter().enumerate() {
                if bin == k {
                    assert!((z.re - n as f64).abs() < 1e-9);
                } else {
                    assert!(z.norm() < 1e-9, "leakage in bin {bin} (n {n})");
                }
            }
        }
    }

    #[test]
    fn parseval_identity() {
        for n in [128usize, 120] {
            let orig = random_signal(n, 2);
            let time_energy: f64 = orig.iter().map(|z| z.norm_sq()).sum();
            let mut x = orig;
            fft_inplace(&mut x, false);
            let freq_energy: f64 = x.iter().map(|z| z.norm_sq()).sum::<f64>() / n as f64;
            assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
        }
    }

    #[test]
    fn fft_linearity() {
        for n in [32usize, 24] {
            let a = random_signal(n, 3);
            let b = random_signal(n, 4);
            let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
            let mut fa = a;
            let mut fb = b;
            let mut fs = sum;
            fft_inplace(&mut fa, false);
            fft_inplace(&mut fb, false);
            fft_inplace(&mut fs, false);
            for i in 0..n {
                assert!(((fa[i] + fb[i]) - fs[i]).norm() < 1e-10);
            }
        }
    }

    #[test]
    fn field_roundtrip_2d() {
        // Pow2, mixed 5-smooth, and non-5-smooth (Bluestein) dimensions.
        for (w, h, seed) in [(16, 8, 9u64), (12, 10, 10), (15, 9, 11), (7, 13, 12)] {
            let mut rng = SplitMix64::new(seed);
            let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let orig: Field = Field::from_real(w, h, &real);
            let mut f = orig.clone();
            f.fft2_inplace(false);
            f.fft2_inplace(true);
            for (a, b) in f.iter().zip(orig.iter()) {
                assert!((a - b).norm() < 1e-10, "{w}x{h}");
            }
        }
    }

    #[test]
    fn field_2d_impulse_flat_spectrum() {
        let mut f: Field = Field::zeros(8, 8);
        f.set(0, 0, Complex::ONE);
        f.fft2_inplace(false);
        for z in f.iter() {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn field_convolution_theorem() {
        // Convolving with a shifted impulse shifts the signal (cyclically) —
        // checked on a non-power-of-two grid.
        let (w, h) = (12, 12);
        let mut rng = SplitMix64::new(11);
        let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let sig: Field = Field::from_real(w, h, &real);

        let mut kernel: Field = Field::zeros(w, h);
        kernel.set(1, 0, Complex::ONE); // shift by one in x

        let mut fs = sig.clone();
        fs.fft2_inplace(false);
        let mut fk = kernel;
        fk.fft2_inplace(false);
        let mut prod = fs.mul_pointwise(&fk);
        prod.fft2_inplace(true);

        for y in 0..h {
            for x in 0..w {
                let expected = sig.at((x + w - 1) % w, y);
                assert!((prod.at(x, y) - expected).norm() < 1e-10);
            }
        }
    }

    #[test]
    fn f32_field_roundtrip_and_precision_conversion() {
        let (w, h) = (16, 12);
        let mut rng = SplitMix64::new(77);
        let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let mut f: Field<f32> = Field::from_real(w, h, &real);
        f.fft2_inplace(false);
        f.fft2_inplace(true);
        for (z, &r) in f.iter().zip(&real) {
            assert!((z.re - r).abs() < 1e-5 && z.im.abs() < 1e-5);
        }
        // Narrow-then-widen keeps the f32 value exactly.
        let f64_field: Field = Field::from_real(w, h, &real);
        let narrowed: Field<f32> = f64_field.to_precision();
        let widened: Field<f64> = narrowed.to_precision();
        for (a, b) in narrowed.iter().zip(widened.iter()) {
            assert_eq!(a.re, b.re);
            assert_eq!(a.im, b.im);
        }
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
        assert_eq!(next_power_of_two(100), 128);
    }

    #[test]
    fn five_smooth_helpers() {
        for n in [1usize, 2, 3, 4, 5, 6, 8, 9, 10, 125, 192, 320, 640, 4096] {
            assert!(is_five_smooth(n), "{n}");
        }
        for n in [0usize, 7, 11, 13, 14, 97, 121, 508] {
            assert!(!is_five_smooth(n), "{n}");
        }
        assert_eq!(next_five_smooth(0), 1);
        assert_eq!(next_five_smooth(125), 125);
        assert_eq!(next_five_smooth(126), 128);
        assert_eq!(next_five_smooth(129), 135);
        assert_eq!(next_five_smooth(321), 324);
        assert_eq!(next_five_smooth(2049), 2160);
    }

    #[test]
    fn real_packed_forward_matches_complex_path() {
        // The two-rows-per-transform packed path must agree with the plain
        // complex transform on real input, including non-square grids, odd
        // heights (unpaired trailing row), non-power-of-two widths (the
        // `% w` Hermitian mirror), and the single-row degenerate case.
        for (w, h, seed) in [
            (8, 1, 20u64),
            (8, 2, 21),
            (16, 8, 22),
            (8, 16, 23),
            (64, 64, 24),
            (8, 5, 25),
            (12, 9, 26),
            (15, 7, 27),
            (20, 15, 28),
        ] {
            let mut rng = SplitMix64::new(seed);
            let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let packed: Field = Field::forward_real(w, h, &real);
            let mut reference: Field = Field::from_real(w, h, &real);
            reference.fft2_inplace(false);
            for (i, (a, b)) in packed.iter().zip(reference.iter()).enumerate() {
                assert!(
                    (a - b).norm() < 1e-9,
                    "{w}x{h}, sample {i}: packed {a} vs complex {b}"
                );
            }
        }
    }

    #[test]
    fn real_packed_forward_is_reusable() {
        // Refilling the same field with new data must not leak state.
        let mut rng = SplitMix64::new(30);
        let a: Vec<f64> = (0..16 * 16).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..16 * 16).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let mut field: Field = Field::zeros(16, 16);
        let mut scratch = FftScratch::new();
        field.fill_forward_real_with(&a, &mut scratch);
        field.fill_forward_real_with(&b, &mut scratch);
        let fresh: Field = Field::forward_real(16, 16, &b);
        for (x, y) in field.iter().zip(fresh.iter()) {
            assert!((x - y).norm() < 1e-12);
        }
    }

    #[test]
    fn pruned_inverse_matches_full_inverse() {
        // A spectrum whose dead rows are zero must invert identically
        // through the pruned path (up to the folded 1/n scale).
        let (w, h) = (16, 12);
        let mut rng = SplitMix64::new(40);
        let mut spec: Field = Field::zeros(w, h);
        let live: Vec<bool> = (0..h).map(|y| y < 3 || y >= h - 2).collect();
        for (y, &is_live) in live.iter().enumerate() {
            if is_live {
                for x in 0..w {
                    spec.set(
                        x,
                        y,
                        Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)),
                    );
                }
            }
        }
        let mut full = spec.clone();
        full.fft2_inplace(true);
        let mut pruned = spec;
        let mut scratch = FftScratch::new();
        pruned.ifft2_pruned_unscaled(&live, &mut scratch);
        let inv_n = 1.0 / (w * h) as f64;
        for (a, b) in pruned.iter().zip(full.iter()) {
            assert!((a.scale(inv_n) - b).norm() < 1e-12);
        }
    }

    #[test]
    fn pruned_cols_accumulate_matches_full_path() {
        // The fused column-restricted inverse must reproduce the full
        // pruned-inverse + accumulate_norm_sq result *bit-identically* on
        // the requested columns (column-contiguous accumulator layout).
        let (w, h) = (16, 8);
        let mut rng = SplitMix64::new(60);
        let mut spec: Field = Field::zeros(w, h);
        let live: Vec<bool> = (0..h).map(|y| y < 3 || y >= h - 2).collect();
        for (y, &is_live) in live.iter().enumerate() {
            if is_live {
                for x in 0..w {
                    spec.set(
                        x,
                        y,
                        Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)),
                    );
                }
            }
        }
        let weight = 0.37;
        let mut full = spec.clone();
        let mut scratch = FftScratch::new();
        full.ifft2_pruned_unscaled(&live, &mut scratch);
        let mut expected = vec![0.5f64; w * h];
        full.accumulate_norm_sq(weight, &mut expected);

        let cols = [0usize, 3, 7, 15];
        let mut roi = spec;
        let mut acc = vec![0.5f64; cols.len() * h];
        roi.ifft2_pruned_cols_accumulate(&live, &cols, &mut scratch, weight, &mut acc);
        for (ci, &x) in cols.iter().enumerate() {
            for y in 0..h {
                assert_eq!(
                    acc[ci * h + y],
                    expected[y * w + x],
                    "pixel ({x},{y}) not bit-identical"
                );
            }
        }
    }

    #[test]
    fn pruned_accumulate_t_matches_full_path() {
        let (w, h) = (12, 10);
        let mut rng = SplitMix64::new(70);
        let mut spec: Field = Field::zeros(w, h);
        let live: Vec<bool> = (0..h).map(|y| y < 4 || y >= h - 3).collect();
        for (y, &is_live) in live.iter().enumerate() {
            if is_live {
                for x in 0..w {
                    spec.set(
                        x,
                        y,
                        Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)),
                    );
                }
            }
        }
        let weight = 1.21;
        let mut full = spec.clone();
        let mut scratch = FftScratch::new();
        full.ifft2_pruned_unscaled(&live, &mut scratch);
        let mut expected = vec![0.0f64; w * h];
        full.accumulate_norm_sq(weight, &mut expected);

        let mut fused = spec;
        let mut acc_t = vec![0.0f64; w * h];
        fused.ifft2_pruned_accumulate_t(&live, &mut scratch, weight, &mut acc_t);
        for y in 0..h {
            for x in 0..w {
                assert_eq!(acc_t[x * h + y], expected[y * w + x], "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn pointwise_helpers_match_scalar_definitions() {
        let (w, h) = (8, 4);
        let a = random_field(w, h, 50);
        let b = random_field(w, h, 51);
        let mut rng = SplitMix64::new(52);
        let live = vec![true; h];
        let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();

        let idx = |i: usize| (i % w, i / w);
        let mut dst: Field = Field::zeros(w, h);
        a.mul_pointwise_pruned_into(&b, &live, &mut dst);
        for i in 0..w * h {
            let (x, y) = idx(i);
            assert!((dst.at(x, y) - a.at(x, y) * b.at(x, y)).norm() < 1e-12);
        }
        a.mul_conj_pointwise_pruned_into(&b, &live, &mut dst);
        for i in 0..w * h {
            let (x, y) = idx(i);
            assert!((dst.at(x, y) - a.at(x, y) * b.at(x, y).conj()).norm() < 1e-12);
        }
        a.mul_real_into(&real, &mut dst);
        for (i, &r) in real.iter().enumerate() {
            let (x, y) = idx(i);
            assert!((dst.at(x, y) - a.at(x, y).scale(r)).norm() < 1e-12);
        }

        let mut acc = vec![1.0f64; w * h];
        a.accumulate_norm_sq(2.0, &mut acc);
        for (i, v) in acc.iter().enumerate() {
            let (x, y) = idx(i);
            assert!((v - (1.0 + 2.0 * a.at(x, y).norm_sq())).abs() < 1e-12);
        }
        let mut acc = vec![0.0f64; w * h];
        a.accumulate_re(3.0, &mut acc);
        for (i, v) in acc.iter().enumerate() {
            let (x, y) = idx(i);
            assert!((v - 3.0 * a.at(x, y).re).abs() < 1e-12);
        }

        // Dead rows are zeroed by the pruned products.
        let mut partial = vec![true; h];
        partial[1] = false;
        a.mul_pointwise_pruned_into(&b, &partial, &mut dst);
        for x in 0..w {
            assert_eq!(dst.at(x, 1), Complex::ZERO);
        }
    }
}
