//! Complex numbers and radix-2 FFT (1-D and 2-D).
//!
//! The lithography engine computes Hopkins/Abbe partially coherent images as
//! weighted sums of `|IFFT(FFT(mask) · H_k)|²` terms; no FFT crate is on the
//! approved dependency list, so this module implements an iterative
//! decimation-in-time radix-2 transform with precomputed twiddle factors.
//! Sizes must be powers of two — the engine pads rasters accordingly.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number (double precision).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

/// Returns `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n`.
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place iterative radix-2 FFT.
///
/// `inverse = true` computes the inverse transform *including* the `1/n`
/// normalisation, so `ifft(fft(x)) == x`.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(is_power_of_two(n), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    crate::plan::FftPlan::get(n).execute(data, inverse);
}

/// Cache-blocked out-of-place transpose: `src` is `height` rows of `width`,
/// `dst` becomes `width` rows of `height`.
///
/// The 2-D FFT's column pass runs row transforms on the transposed field
/// instead of gather/scatter copies with stride `width`, keeping every
/// butterfly pass on contiguous memory.
fn transpose_into(src: &[Complex], width: usize, height: usize, dst: &mut [Complex]) {
    debug_assert_eq!(src.len(), width * height);
    debug_assert_eq!(dst.len(), width * height);
    const TILE: usize = 32;
    for y0 in (0..height).step_by(TILE) {
        let y1 = (y0 + TILE).min(height);
        for x0 in (0..width).step_by(TILE) {
            let x1 = (x0 + TILE).min(width);
            for y in y0..y1 {
                let row = y * width;
                for x in x0..x1 {
                    dst[x * height + y] = src[row + x];
                }
            }
        }
    }
}

/// Cache-blocked real-valued transpose: `src` is `rows` rows of `cols`
/// samples, `dst[c * rows + r] = src[r * cols + c]`.
///
/// Used to unfold the transposed SOCS accumulator layout of
/// [`Field::ifft2_pruned_accumulate_t`] back to row-major, once per image
/// instead of once per kernel.
pub(crate) fn transpose_real_into(src: &[f64], rows: usize, cols: usize, dst: &mut [f64]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TILE: usize = 32;
    for r0 in (0..rows).step_by(TILE) {
        let r1 = (r0 + TILE).min(rows);
        for c0 in (0..cols).step_by(TILE) {
            let c1 = (c0 + TILE).min(cols);
            for r in r0..r1 {
                let row = r * cols;
                for c in c0..c1 {
                    dst[c * rows + r] = src[row + c];
                }
            }
        }
    }
}

/// A 2-D complex field of power-of-two dimensions, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    width: usize,
    height: usize,
    data: Vec<Complex>,
}

impl Field {
    /// Zero-filled field.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is not a power of two.
    pub fn zeros(width: usize, height: usize) -> Self {
        assert!(
            is_power_of_two(width) && is_power_of_two(height),
            "field dimensions must be powers of two"
        );
        Field {
            width,
            height,
            data: vec![Complex::ZERO; width * height],
        }
    }

    /// Builds a field from real samples (imaginary parts zero).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-power-of-two dimensions.
    pub fn from_real(width: usize, height: usize, real: &[f64]) -> Self {
        assert_eq!(real.len(), width * height, "sample count mismatch");
        let mut f = Field::zeros(width, height);
        for (dst, &src) in f.data.iter_mut().zip(real) {
            dst.re = src;
        }
        f
    }

    /// Width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw samples, row-major.
    #[inline]
    pub fn data(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable raw samples, row-major.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Sample accessor.
    #[inline]
    pub fn at(&self, ix: usize, iy: usize) -> Complex {
        self.data[iy * self.width + ix]
    }

    /// Mutable sample accessor.
    #[inline]
    pub fn at_mut(&mut self, ix: usize, iy: usize) -> &mut Complex {
        &mut self.data[iy * self.width + ix]
    }

    /// In-place 2-D FFT (rows then columns).
    ///
    /// Allocates a transient transpose scratch buffer; hot paths should hold
    /// a [`crate::LithoWorkspace`] or call [`Field::fft2_inplace_with`] with
    /// a reused buffer instead.
    pub fn fft2_inplace(&mut self, inverse: bool) {
        let mut scratch = Vec::new();
        self.fft2_inplace_with(inverse, &mut scratch);
    }

    /// In-place 2-D FFT reusing `scratch` for the blocked-transpose column
    /// pass (resized to `width * height` on first use, then reused without
    /// further allocation).
    pub fn fft2_inplace_with(&mut self, inverse: bool, scratch: &mut Vec<Complex>) {
        self.fft2_core(inverse, scratch, None, true);
    }

    /// Inverse 2-D FFT without the `1/(width*height)` normalisation,
    /// skipping the row-pass transform of rows whose `live_rows` entry is
    /// `false`.
    ///
    /// This is the SOCS convolution hot path: the frequency-domain product
    /// `FFT(mask) · H_k` is zero on every row outside the (shifted) pupil
    /// support, so those rows' inverse row transforms are identically zero
    /// and can be skipped — the caller guarantees dead rows hold zeros (see
    /// [`Field::mul_pointwise_pruned_into`]). The missing normalisation is
    /// folded into the caller's accumulation weight (`|z/n|² = |z|²/n²`).
    ///
    /// # Panics
    ///
    /// Panics when `live_rows.len() != height`.
    pub fn ifft2_pruned_unscaled(&mut self, live_rows: &[bool], scratch: &mut Vec<Complex>) {
        assert_eq!(live_rows.len(), self.height, "row mask length mismatch");
        self.fft2_core(true, scratch, Some(live_rows), false);
    }

    /// Row-pruned unscaled inverse transform restricted to the given
    /// columns, fused with the SOCS reduction
    /// `acc[y·width + x] += weight · |z(x, y)|²`.
    ///
    /// Runs the same pruned inverse *row* pass as
    /// [`Field::ifft2_pruned_unscaled`], then — instead of transposing the
    /// whole field, transforming every column and transposing back —
    /// gathers each requested column into a contiguous buffer, applies the
    /// identical column transform, and accumulates the weighted squared
    /// magnitudes directly. The accumulated pixels are bit-identical to the
    /// full path (the same [`crate::FftPlan`] runs on the same contiguous
    /// values), and both transposes plus the off-ROI column transforms are
    /// skipped entirely.
    ///
    /// This is the OPC-iteration hot path: EPE correction only reads the
    /// aerial image near the frozen measurement anchors, so only those
    /// columns need spatial-domain values. `self` is left partially
    /// transformed (rows done, columns untouched) — callers must treat the
    /// field as scratch afterwards.
    ///
    /// # Panics
    ///
    /// Panics on mask/accumulator length mismatch or an out-of-range column
    /// index.
    pub fn ifft2_pruned_cols_accumulate(
        &mut self,
        live_rows: &[bool],
        cols: &[usize],
        scratch: &mut Vec<Complex>,
        weight: f64,
        acc: &mut [f64],
    ) {
        assert_eq!(live_rows.len(), self.height, "row mask length mismatch");
        assert_eq!(
            acc.len(),
            self.width * self.height,
            "accumulator length mismatch"
        );
        let plan_w = crate::plan::FftPlan::get(self.width);
        let plan_h = crate::plan::FftPlan::get(self.height);
        for (row, &live) in self.data.chunks_exact_mut(self.width).zip(live_rows) {
            if live {
                plan_w.execute_unscaled(row, true);
            }
        }
        if scratch.len() < self.height {
            scratch.resize(self.height, Complex::ZERO);
        }
        let col_buf = &mut scratch[..self.height];
        for &x in cols {
            assert!(x < self.width, "column index out of range");
            for (y, dst) in col_buf.iter_mut().enumerate() {
                *dst = self.data[y * self.width + x];
            }
            plan_h.execute_unscaled(col_buf, true);
            for (y, z) in col_buf.iter().enumerate() {
                acc[y * self.width + x] += weight * z.norm_sq();
            }
        }
    }

    /// Row-pruned unscaled inverse transform over *every* column, fused
    /// with the SOCS reduction into a **transposed** accumulator:
    /// `acc_t[x·height + y] += weight · |z(x, y)|²`.
    ///
    /// Runs the same pruned inverse row pass as
    /// [`Field::ifft2_pruned_unscaled`], then gathers each column's live
    /// entries into a contiguous buffer (dead rows contribute exact zeros
    /// and are **never read**, so callers may leave them unwritten — see
    /// [`Field::mul_pointwise_live_rows_into`]), applies the identical
    /// column transform, and accumulates the weighted squared magnitudes
    /// column-contiguously. Compared to the full path this skips both
    /// blocked transposes, the write-back of the transformed field, and
    /// every dead-row load/store — the accumulated values are bit-identical
    /// (the same [`crate::FftPlan`] runs on the same values in the same
    /// order), only stored transposed; callers undo the layout with one
    /// real-valued transpose after the kernel loop.
    ///
    /// `self` is left partially transformed (rows done, columns untouched)
    /// — callers must treat the field as scratch afterwards.
    ///
    /// # Panics
    ///
    /// Panics on row-mask or accumulator length mismatch.
    pub fn ifft2_pruned_accumulate_t(
        &mut self,
        live_rows: &[bool],
        scratch: &mut Vec<Complex>,
        weight: f64,
        acc_t: &mut [f64],
    ) {
        assert_eq!(live_rows.len(), self.height, "row mask length mismatch");
        assert_eq!(
            acc_t.len(),
            self.width * self.height,
            "accumulator length mismatch"
        );
        let plan_w = crate::plan::FftPlan::get(self.width);
        let plan_h = crate::plan::FftPlan::get(self.height);
        for (row, &live) in self.data.chunks_exact_mut(self.width).zip(live_rows) {
            if live {
                plan_w.execute_unscaled(row, true);
            }
        }
        if scratch.len() < self.height {
            scratch.resize(self.height, Complex::ZERO);
        }
        let col_buf = &mut scratch[..self.height];
        for x in 0..self.width {
            for (y, (dst, &live)) in col_buf.iter_mut().zip(live_rows).enumerate() {
                *dst = if live {
                    self.data[y * self.width + x]
                } else {
                    Complex::ZERO
                };
            }
            plan_h.execute_unscaled(col_buf, true);
            let acc_col = &mut acc_t[x * self.height..(x + 1) * self.height];
            for (a, z) in acc_col.iter_mut().zip(col_buf.iter()) {
                *a += weight * z.norm_sq();
            }
        }
    }

    fn fft2_core(
        &mut self,
        inverse: bool,
        scratch: &mut Vec<Complex>,
        live_rows: Option<&[bool]>,
        normalize: bool,
    ) {
        let plan_w = crate::plan::FftPlan::get(self.width);
        let plan_h = crate::plan::FftPlan::get(self.height);
        match live_rows {
            None => {
                for row in self.data.chunks_exact_mut(self.width) {
                    plan_w.execute_unscaled(row, inverse);
                }
            }
            Some(mask) => {
                for (row, &live) in self.data.chunks_exact_mut(self.width).zip(mask) {
                    if live {
                        plan_w.execute_unscaled(row, inverse);
                    }
                }
            }
        }

        // Column pass on the transposed field: contiguous butterflies
        // instead of stride-`width` gather/scatter.
        scratch.resize(self.width * self.height, Complex::ZERO);
        transpose_into(&self.data, self.width, self.height, scratch);
        for col in scratch.chunks_exact_mut(self.height) {
            plan_h.execute_unscaled(col, inverse);
        }
        transpose_into(scratch, self.height, self.width, &mut self.data);

        if inverse && normalize {
            let inv = 1.0 / (self.width * self.height) as f64;
            for z in self.data.iter_mut() {
                *z = z.scale(inv);
            }
        }
    }

    /// Builds the forward 2-D spectrum of a real-valued field.
    ///
    /// Convenience wrapper over [`Field::fill_forward_real_with`] that
    /// allocates its own output and scratch.
    ///
    /// # Panics
    ///
    /// Panics on sample-count mismatch or non-power-of-two dimensions.
    pub fn forward_real(width: usize, height: usize, real: &[f64]) -> Field {
        let mut out = Field::zeros(width, height);
        let mut scratch = Vec::new();
        out.fill_forward_real_with(real, &mut scratch);
        out
    }

    /// Fills `self` with the forward 2-D FFT of `real` (row-major samples).
    ///
    /// Exploits that the input is real: two rows are packed into the real
    /// and imaginary lanes of a single complex transform and separated
    /// afterwards via Hermitian symmetry, roughly halving the row-pass cost
    /// relative to transforming a zero-imaginary complex field.
    ///
    /// # Panics
    ///
    /// Panics when `real.len() != width * height`.
    pub fn fill_forward_real_with(&mut self, real: &[f64], scratch: &mut Vec<Complex>) {
        let (w, h) = (self.width, self.height);
        assert_eq!(real.len(), w * h, "sample count mismatch");
        let plan_w = crate::plan::FftPlan::get(w);

        if h == 1 {
            for (dst, &src) in self.data.iter_mut().zip(real) {
                *dst = Complex::new(src, 0.0);
            }
            plan_w.execute_unscaled(&mut self.data, false);
            return;
        }

        // Row pass: pack real rows (2y, 2y+1) as re/im lanes of one complex
        // row, transform, then split with A[k] = (Z[k] + conj(Z[-k]))/2 and
        // B[k] = (Z[k] - conj(Z[-k]))/(2i).
        for (pair, rpair) in self
            .data
            .chunks_exact_mut(2 * w)
            .zip(real.chunks_exact(2 * w))
        {
            let (row_a, row_b) = pair.split_at_mut(w);
            let (real_a, real_b) = rpair.split_at(w);
            for j in 0..w {
                row_a[j] = Complex::new(real_a[j], real_b[j]);
            }
            plan_w.execute_unscaled(row_a, false);
            for k in 0..=w / 2 {
                let km = (w - k) & (w - 1);
                let zk = row_a[k];
                let zm = row_a[km];
                row_a[k] = Complex::new(0.5 * (zk.re + zm.re), 0.5 * (zk.im - zm.im));
                row_b[k] = Complex::new(0.5 * (zk.im + zm.im), 0.5 * (zm.re - zk.re));
                if km != k {
                    row_a[km] = Complex::new(0.5 * (zm.re + zk.re), 0.5 * (zm.im - zk.im));
                    row_b[km] = Complex::new(0.5 * (zm.im + zk.im), 0.5 * (zk.re - zm.re));
                }
            }
        }

        // Column pass, identical to the complex path.
        let plan_h = crate::plan::FftPlan::get(h);
        scratch.resize(w * h, Complex::ZERO);
        transpose_into(&self.data, w, h, scratch);
        for col in scratch.chunks_exact_mut(h) {
            plan_h.execute_unscaled(col, false);
        }
        transpose_into(scratch, h, w, &mut self.data);
    }

    /// Pointwise multiplication by another field of identical dimensions.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_pointwise(&self, other: &Field) -> Field {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.height, other.height, "height mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Field {
            width: self.width,
            height: self.height,
            data,
        }
    }

    /// Pointwise multiplication into a preallocated destination field.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn mul_pointwise_into(&self, other: &Field, dst: &mut Field) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "dimension mismatch"
        );
        assert_eq!(
            (self.width, self.height),
            (dst.width, dst.height),
            "dimension mismatch"
        );
        for (d, (&a, &b)) in dst.data.iter_mut().zip(self.data.iter().zip(&other.data)) {
            *d = a * b;
        }
    }

    /// Row-pruned pointwise multiplication into a preallocated destination:
    /// rows whose `live_rows` entry is `false` are written as zeros without
    /// reading the operands (the SOCS transfer functions are zero there).
    ///
    /// Pairs with [`Field::ifft2_pruned_unscaled`], which then skips those
    /// rows' inverse transforms.
    ///
    /// # Panics
    ///
    /// Panics on dimension or mask-length mismatch.
    pub fn mul_pointwise_pruned_into(&self, other: &Field, live_rows: &[bool], dst: &mut Field) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "dimension mismatch"
        );
        assert_eq!(
            (self.width, self.height),
            (dst.width, dst.height),
            "dimension mismatch"
        );
        assert_eq!(live_rows.len(), self.height, "row mask length mismatch");
        let w = self.width;
        for (y, &live) in live_rows.iter().enumerate() {
            let row = y * w..(y + 1) * w;
            let d = &mut dst.data[row.clone()];
            if live {
                for (d, (&a, &b)) in d
                    .iter_mut()
                    .zip(self.data[row.clone()].iter().zip(&other.data[row]))
                {
                    *d = a * b;
                }
            } else {
                d.fill(Complex::ZERO);
            }
        }
    }

    /// Row-pruned pointwise multiplication writing **only** the live rows
    /// of `dst`; dead rows are left untouched (possibly holding stale data
    /// from a previous kernel).
    ///
    /// Pairs with [`Field::ifft2_pruned_accumulate_t`], which never reads
    /// dead rows — together they skip every dead-row store and load of the
    /// SOCS hot loop. Do **not** combine with the transposing inverse
    /// paths, which read the whole field.
    ///
    /// # Panics
    ///
    /// Panics on dimension or mask-length mismatch.
    pub fn mul_pointwise_live_rows_into(&self, other: &Field, live_rows: &[bool], dst: &mut Field) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "dimension mismatch"
        );
        assert_eq!(
            (self.width, self.height),
            (dst.width, dst.height),
            "dimension mismatch"
        );
        assert_eq!(live_rows.len(), self.height, "row mask length mismatch");
        let w = self.width;
        for (y, &live) in live_rows.iter().enumerate() {
            if !live {
                continue;
            }
            let row = y * w..(y + 1) * w;
            for (d, (&a, &b)) in dst.data[row.clone()]
                .iter_mut()
                .zip(self.data[row.clone()].iter().zip(&other.data[row]))
            {
                *d = a * b;
            }
        }
    }

    /// Row-pruned pointwise multiplication by the *conjugate* of `other`
    /// (`dst = self · conj(other)`), zeroing dead rows — the backward-pass
    /// twin of [`Field::mul_pointwise_pruned_into`] used by ILT gradients.
    ///
    /// # Panics
    ///
    /// Panics on dimension or mask-length mismatch.
    pub fn mul_conj_pointwise_pruned_into(
        &self,
        other: &Field,
        live_rows: &[bool],
        dst: &mut Field,
    ) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "dimension mismatch"
        );
        assert_eq!(
            (self.width, self.height),
            (dst.width, dst.height),
            "dimension mismatch"
        );
        assert_eq!(live_rows.len(), self.height, "row mask length mismatch");
        let w = self.width;
        for (y, &live) in live_rows.iter().enumerate() {
            let row = y * w..(y + 1) * w;
            let d = &mut dst.data[row.clone()];
            if live {
                for (d, (&a, &b)) in d
                    .iter_mut()
                    .zip(self.data[row.clone()].iter().zip(&other.data[row]))
                {
                    *d = a * b.conj();
                }
            } else {
                d.fill(Complex::ZERO);
            }
        }
    }

    /// Pointwise multiplication by a real-valued vector into a preallocated
    /// destination (`dst[i] = self[i] · real[i]`).
    ///
    /// # Panics
    ///
    /// Panics on dimension or length mismatch.
    pub fn mul_real_into(&self, real: &[f64], dst: &mut Field) {
        assert_eq!(
            (self.width, self.height),
            (dst.width, dst.height),
            "dimension mismatch"
        );
        assert_eq!(real.len(), self.data.len(), "sample count mismatch");
        for (d, (&z, &r)) in dst.data.iter_mut().zip(self.data.iter().zip(real)) {
            *d = z.scale(r);
        }
    }

    /// Fused `acc[i] += weight · |self[i]|²` accumulation — the reduction
    /// step of the SOCS sum, performed without materialising `|z|²` vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn accumulate_norm_sq(&self, weight: f64, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.data.len(), "sample count mismatch");
        for (a, z) in acc.iter_mut().zip(&self.data) {
            *a += weight * z.norm_sq();
        }
    }

    /// Fused `acc[i] += weight · Re(self[i])` accumulation (ILT gradient
    /// reduction).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn accumulate_re(&self, weight: f64, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.data.len(), "sample count mismatch");
        for (a, z) in acc.iter_mut().zip(&self.data) {
            *a += weight * z.re;
        }
    }

    /// The per-sample squared magnitudes as a real vector.
    pub fn norm_sq_vec(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sq()).collect()
    }

    /// Sum of squared magnitudes (for Parseval checks).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sq()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::SplitMix64;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!((-a), Complex::new(-1.0, -2.0));
        assert!((Complex::from_angle(std::f64::consts::PI).re + 1.0).abs() < 1e-12);
        assert_eq!(a.norm_sq(), 5.0);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft_inplace(&mut x, false);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut x = vec![Complex::ONE; 16];
        fft_inplace(&mut x, false);
        assert!((x[0].re - 16.0).abs() < 1e-12);
        for z in &x[1..] {
            assert!(z.norm() < 1e-10);
        }
    }

    #[test]
    fn fft_roundtrip() {
        let orig = random_signal(64, 1);
        let mut x = orig.clone();
        fft_inplace(&mut x, false);
        fft_inplace(&mut x, true);
        for (a, b) in x.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn fft_single_tone_lands_in_right_bin() {
        let n = 32;
        let k = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_angle(std::f64::consts::TAU * k as f64 * i as f64 / n as f64))
            .collect();
        fft_inplace(&mut x, false);
        for (bin, z) in x.iter().enumerate() {
            if bin == k {
                assert!((z.re - n as f64).abs() < 1e-9);
            } else {
                assert!(z.norm() < 1e-9, "leakage in bin {bin}");
            }
        }
    }

    #[test]
    fn parseval_identity() {
        let orig = random_signal(128, 2);
        let time_energy: f64 = orig.iter().map(|z| z.norm_sq()).sum();
        let mut x = orig;
        fft_inplace(&mut x, false);
        let freq_energy: f64 = x.iter().map(|z| z.norm_sq()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn fft_linearity() {
        let a = random_signal(32, 3);
        let b = random_signal(32, 4);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a;
        let mut fb = b;
        let mut fs = sum;
        fft_inplace(&mut fa, false);
        fft_inplace(&mut fb, false);
        fft_inplace(&mut fs, false);
        for i in 0..32 {
            assert!(((fa[i] + fb[i]) - fs[i]).norm() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_inplace(&mut x, false);
    }

    #[test]
    fn field_roundtrip_2d() {
        let mut rng = SplitMix64::new(9);
        let real: Vec<f64> = (0..16 * 8).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let orig = Field::from_real(16, 8, &real);
        let mut f = orig.clone();
        f.fft2_inplace(false);
        f.fft2_inplace(true);
        for (a, b) in f.data().iter().zip(orig.data()) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn field_2d_impulse_flat_spectrum() {
        let mut f = Field::zeros(8, 8);
        *f.at_mut(0, 0) = Complex::ONE;
        f.fft2_inplace(false);
        for z in f.data() {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn field_convolution_theorem() {
        // Convolving with a shifted impulse shifts the signal (cyclically).
        let mut rng = SplitMix64::new(11);
        let real: Vec<f64> = (0..8 * 8).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let sig = Field::from_real(8, 8, &real);

        let mut kernel = Field::zeros(8, 8);
        *kernel.at_mut(1, 0) = Complex::ONE; // shift by one in x

        let mut fs = sig.clone();
        fs.fft2_inplace(false);
        let mut fk = kernel;
        fk.fft2_inplace(false);
        let mut prod = fs.mul_pointwise(&fk);
        prod.fft2_inplace(true);

        for y in 0..8 {
            for x in 0..8 {
                let expected = sig.at((x + 8 - 1) % 8, y);
                assert!((prod.at(x, y) - expected).norm() < 1e-10);
            }
        }
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
        assert_eq!(next_power_of_two(100), 128);
    }

    #[test]
    fn real_packed_forward_matches_complex_path() {
        // The two-rows-per-transform packed path must agree with the plain
        // complex transform on real input, including non-square grids and
        // the single-row degenerate case.
        for (w, h, seed) in [
            (8, 1, 20u64),
            (8, 2, 21),
            (16, 8, 22),
            (8, 16, 23),
            (64, 64, 24),
        ] {
            let mut rng = SplitMix64::new(seed);
            let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let packed = Field::forward_real(w, h, &real);
            let mut reference = Field::from_real(w, h, &real);
            reference.fft2_inplace(false);
            for (i, (a, b)) in packed.data().iter().zip(reference.data()).enumerate() {
                assert!(
                    (*a - *b).norm() < 1e-9,
                    "{w}x{h}, sample {i}: packed {a} vs complex {b}"
                );
            }
        }
    }

    #[test]
    fn real_packed_forward_is_reusable() {
        // Refilling the same field with new data must not leak state.
        let mut rng = SplitMix64::new(30);
        let a: Vec<f64> = (0..16 * 16).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..16 * 16).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let mut field = Field::zeros(16, 16);
        let mut scratch = Vec::new();
        field.fill_forward_real_with(&a, &mut scratch);
        field.fill_forward_real_with(&b, &mut scratch);
        let fresh = Field::forward_real(16, 16, &b);
        for (x, y) in field.data().iter().zip(fresh.data()) {
            assert!((*x - *y).norm() < 1e-12);
        }
    }

    #[test]
    fn pruned_inverse_matches_full_inverse() {
        // A spectrum whose dead rows are zero must invert identically
        // through the pruned path (up to the folded 1/n scale).
        let (w, h) = (16, 16);
        let mut rng = SplitMix64::new(40);
        let mut spec = Field::zeros(w, h);
        let live: Vec<bool> = (0..h).map(|y| y < 3 || y >= h - 2).collect();
        for (y, &is_live) in live.iter().enumerate() {
            if is_live {
                for x in 0..w {
                    *spec.at_mut(x, y) =
                        Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0));
                }
            }
        }
        let mut full = spec.clone();
        full.fft2_inplace(true);
        let mut pruned = spec;
        let mut scratch = Vec::new();
        pruned.ifft2_pruned_unscaled(&live, &mut scratch);
        let inv_n = 1.0 / (w * h) as f64;
        for (a, b) in pruned.data().iter().zip(full.data()) {
            assert!((a.scale(inv_n) - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn pruned_cols_accumulate_matches_full_path() {
        // The fused column-restricted inverse must reproduce the full
        // pruned-inverse + accumulate_norm_sq result *bit-identically* on
        // the requested columns and leave all other pixels untouched.
        let (w, h) = (16, 8);
        let mut rng = SplitMix64::new(60);
        let mut spec = Field::zeros(w, h);
        let live: Vec<bool> = (0..h).map(|y| y < 3 || y >= h - 2).collect();
        for (y, &is_live) in live.iter().enumerate() {
            if is_live {
                for x in 0..w {
                    *spec.at_mut(x, y) =
                        Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0));
                }
            }
        }
        let weight = 0.37;
        let mut full = spec.clone();
        let mut scratch = Vec::new();
        full.ifft2_pruned_unscaled(&live, &mut scratch);
        let mut expected = vec![0.5f64; w * h];
        full.accumulate_norm_sq(weight, &mut expected);

        let cols = [0usize, 3, 7, 15];
        let mut roi = spec;
        let mut acc = vec![0.5f64; w * h];
        roi.ifft2_pruned_cols_accumulate(&live, &cols, &mut scratch, weight, &mut acc);
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if cols.contains(&x) {
                    assert_eq!(acc[i], expected[i], "pixel ({x},{y}) not bit-identical");
                } else {
                    assert_eq!(acc[i], 0.5, "pixel ({x},{y}) outside ROI was written");
                }
            }
        }
    }

    #[test]
    fn pointwise_helpers_match_scalar_definitions() {
        let (w, h) = (8, 4);
        let mut rng = SplitMix64::new(50);
        let mut a = Field::zeros(w, h);
        let mut b = Field::zeros(w, h);
        for z in a.data_mut().iter_mut().chain(b.data_mut().iter_mut()) {
            *z = Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0));
        }
        let live = vec![true; h];
        let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();

        let mut dst = Field::zeros(w, h);
        a.mul_pointwise_pruned_into(&b, &live, &mut dst);
        for (i, d) in dst.data().iter().enumerate() {
            assert!((*d - a.data()[i] * b.data()[i]).norm() < 1e-12);
        }
        a.mul_conj_pointwise_pruned_into(&b, &live, &mut dst);
        for (i, d) in dst.data().iter().enumerate() {
            assert!((*d - a.data()[i] * b.data()[i].conj()).norm() < 1e-12);
        }
        a.mul_real_into(&real, &mut dst);
        for (i, d) in dst.data().iter().enumerate() {
            assert!((*d - a.data()[i].scale(real[i])).norm() < 1e-12);
        }

        let mut acc = vec![1.0f64; w * h];
        a.accumulate_norm_sq(2.0, &mut acc);
        for (i, v) in acc.iter().enumerate() {
            assert!((v - (1.0 + 2.0 * a.data()[i].norm_sq())).abs() < 1e-12);
        }
        let mut acc = vec![0.0f64; w * h];
        a.accumulate_re(3.0, &mut acc);
        for (i, v) in acc.iter().enumerate() {
            assert!((v - 3.0 * a.data()[i].re).abs() < 1e-12);
        }

        // Dead rows are zeroed by the pruned products.
        let mut partial = vec![true; h];
        partial[1] = false;
        a.mul_pointwise_pruned_into(&b, &partial, &mut dst);
        for x in 0..w {
            assert_eq!(dst.at(x, 1), Complex::ZERO);
        }
    }
}
