//! Complex numbers and radix-2 FFT (1-D and 2-D).
//!
//! The lithography engine computes Hopkins/Abbe partially coherent images as
//! weighted sums of `|IFFT(FFT(mask) · H_k)|²` terms; no FFT crate is on the
//! approved dependency list, so this module implements an iterative
//! decimation-in-time radix-2 transform with precomputed twiddle factors.
//! Sizes must be powers of two — the engine pads rasters accordingly.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number (double precision).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

/// Returns `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n`.
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place iterative radix-2 FFT.
///
/// `inverse = true` computes the inverse transform *including* the `1/n`
/// normalisation, so `ifft(fft(x)) == x`.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(is_power_of_two(n), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }

    if inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// A 2-D complex field of power-of-two dimensions, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    width: usize,
    height: usize,
    data: Vec<Complex>,
}

impl Field {
    /// Zero-filled field.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is not a power of two.
    pub fn zeros(width: usize, height: usize) -> Self {
        assert!(
            is_power_of_two(width) && is_power_of_two(height),
            "field dimensions must be powers of two"
        );
        Field {
            width,
            height,
            data: vec![Complex::ZERO; width * height],
        }
    }

    /// Builds a field from real samples (imaginary parts zero).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-power-of-two dimensions.
    pub fn from_real(width: usize, height: usize, real: &[f64]) -> Self {
        assert_eq!(real.len(), width * height, "sample count mismatch");
        let mut f = Field::zeros(width, height);
        for (dst, &src) in f.data.iter_mut().zip(real) {
            dst.re = src;
        }
        f
    }

    /// Width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw samples, row-major.
    #[inline]
    pub fn data(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable raw samples, row-major.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Sample accessor.
    #[inline]
    pub fn at(&self, ix: usize, iy: usize) -> Complex {
        self.data[iy * self.width + ix]
    }

    /// Mutable sample accessor.
    #[inline]
    pub fn at_mut(&mut self, ix: usize, iy: usize) -> &mut Complex {
        &mut self.data[iy * self.width + ix]
    }

    /// In-place 2-D FFT (rows then columns).
    pub fn fft2_inplace(&mut self, inverse: bool) {
        // Rows.
        for row in self.data.chunks_mut(self.width) {
            fft_inplace(row, inverse);
        }
        // Columns, via a scratch buffer.
        let mut col = vec![Complex::ZERO; self.height];
        for x in 0..self.width {
            for (y, c) in col.iter_mut().enumerate() {
                *c = self.data[y * self.width + x];
            }
            fft_inplace(&mut col, inverse);
            for (y, c) in col.iter().enumerate() {
                self.data[y * self.width + x] = *c;
            }
        }
    }

    /// Pointwise multiplication by another field of identical dimensions.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_pointwise(&self, other: &Field) -> Field {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.height, other.height, "height mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Field {
            width: self.width,
            height: self.height,
            data,
        }
    }

    /// The per-sample squared magnitudes as a real vector.
    pub fn norm_sq_vec(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sq()).collect()
    }

    /// Sum of squared magnitudes (for Parseval checks).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sq()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::SplitMix64;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!((-a), Complex::new(-1.0, -2.0));
        assert!((Complex::from_angle(std::f64::consts::PI).re + 1.0).abs() < 1e-12);
        assert_eq!(a.norm_sq(), 5.0);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft_inplace(&mut x, false);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut x = vec![Complex::ONE; 16];
        fft_inplace(&mut x, false);
        assert!((x[0].re - 16.0).abs() < 1e-12);
        for z in &x[1..] {
            assert!(z.norm() < 1e-10);
        }
    }

    #[test]
    fn fft_roundtrip() {
        let orig = random_signal(64, 1);
        let mut x = orig.clone();
        fft_inplace(&mut x, false);
        fft_inplace(&mut x, true);
        for (a, b) in x.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn fft_single_tone_lands_in_right_bin() {
        let n = 32;
        let k = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_angle(std::f64::consts::TAU * k as f64 * i as f64 / n as f64))
            .collect();
        fft_inplace(&mut x, false);
        for (bin, z) in x.iter().enumerate() {
            if bin == k {
                assert!((z.re - n as f64).abs() < 1e-9);
            } else {
                assert!(z.norm() < 1e-9, "leakage in bin {bin}");
            }
        }
    }

    #[test]
    fn parseval_identity() {
        let orig = random_signal(128, 2);
        let time_energy: f64 = orig.iter().map(|z| z.norm_sq()).sum();
        let mut x = orig;
        fft_inplace(&mut x, false);
        let freq_energy: f64 = x.iter().map(|z| z.norm_sq()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn fft_linearity() {
        let a = random_signal(32, 3);
        let b = random_signal(32, 4);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a;
        let mut fb = b;
        let mut fs = sum;
        fft_inplace(&mut fa, false);
        fft_inplace(&mut fb, false);
        fft_inplace(&mut fs, false);
        for i in 0..32 {
            assert!(((fa[i] + fb[i]) - fs[i]).norm() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_inplace(&mut x, false);
    }

    #[test]
    fn field_roundtrip_2d() {
        let mut rng = SplitMix64::new(9);
        let real: Vec<f64> = (0..16 * 8).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let orig = Field::from_real(16, 8, &real);
        let mut f = orig.clone();
        f.fft2_inplace(false);
        f.fft2_inplace(true);
        for (a, b) in f.data().iter().zip(orig.data()) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn field_2d_impulse_flat_spectrum() {
        let mut f = Field::zeros(8, 8);
        *f.at_mut(0, 0) = Complex::ONE;
        f.fft2_inplace(false);
        for z in f.data() {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn field_convolution_theorem() {
        // Convolving with a shifted impulse shifts the signal (cyclically).
        let mut rng = SplitMix64::new(11);
        let real: Vec<f64> = (0..8 * 8).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let sig = Field::from_real(8, 8, &real);

        let mut kernel = Field::zeros(8, 8);
        *kernel.at_mut(1, 0) = Complex::ONE; // shift by one in x

        let mut fs = sig.clone();
        fs.fft2_inplace(false);
        let mut fk = kernel;
        fk.fft2_inplace(false);
        let mut prod = fs.mul_pointwise(&fk);
        prod.fft2_inplace(true);

        for y in 0..8 {
            for x in 0..8 {
                let expected = sig.at((x + 8 - 1) % 8, y);
                assert!((prod.at(x, y) - expected).norm() < 1e-10);
            }
        }
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
        assert_eq!(next_power_of_two(100), 128);
    }
}
