//! # cardopc-litho
//!
//! Lithography simulation substrate for the CardOPC framework.
//!
//! The paper's experiments run on the ICCAD-13 contest simulator (Hopkins
//! diffraction model, Eq. 1) and on Calibre; neither is redistributable, so
//! this crate implements the full imaging chain from scratch:
//!
//! * [`fft`] / [`plan`] / [`simd`] — an in-repo split-complex FFT core
//!   (mixed-radix Stockham for 5-smooth sizes, Bluestein otherwise; no FFT
//!   crate is on the approved dependency list) with runtime-dispatched
//!   AVX2/FMA kernels behind a scalar fallback (`CARDOPC_SIMD=off`),
//! * [`OpticsConfig`] / SOCS kernel synthesis — an annular partially
//!   coherent source discretised by Abbe's method into a kernel stack with
//!   exactly the Hopkins structure `I = Σ w_k |M ⊗ h_k|²`,
//! * [`LithoEngine`] — aerial images at nominal/defocused conditions,
//!   threshold resist, dose scaling, process corners,
//! * [`LithoBackend`] / [`Precision`] — the simulation-precision seam:
//!   kernels are always synthesised in `f64`, and the convolution hot loop
//!   runs at a per-run precision ([`CpuBackend<f64>`] reference path or the
//!   narrowed [`CpuBackend<f32>`] 8-lane AVX2 path); masks and intensities
//!   stay `f64` at the API boundary,
//! * [`rasterize`] — anti-aliased polygon rasterisation bridging the
//!   geometric OPC world and image-space simulation,
//! * [`metrics`] — EPE (per-site, signed), L2 and PV-band, with the paper's
//!   measure point conventions for via and metal layers.
//!
//! ```no_run
//! use cardopc_geometry::{Point, Polygon};
//! use cardopc_litho::{rasterize, LithoEngine, OpticsConfig, ProcessCondition};
//!
//! let mut engine = LithoEngine::new(OpticsConfig::default(), 256, 256, 4.0)?;
//! engine.calibrate_threshold();
//!
//! let mask = vec![Polygon::rect(Point::new(400.0, 400.0), Point::new(600.0, 600.0))];
//! let raster = rasterize(&mask, 256, 256, 4.0);
//! let printed = engine.print(&raster, ProcessCondition::NOMINAL)?;
//! assert_eq!(printed.width(), 256);
//! # Ok::<(), cardopc_litho::LithoError>(())
//! ```

#![warn(missing_docs)]

mod backend;
mod engine;
mod error;
pub mod fft;
pub mod metrics;
mod optics;
pub mod plan;
pub mod pool;
mod raster;
mod scalar;
pub mod simd;
mod stage_ps;
mod workspace;

pub use backend::{CpuBackend, LithoBackend};
pub use engine::{LithoEngine, ProcessCondition};
pub use error::LithoError;
pub use fft::{next_five_smooth, FftScratch, Field};
pub use metrics::{
    epe_at, l2_error, measure_epe, measure_epe_into, metal_measure_points,
    metal_measure_points_into, pvb_area, thresholded_xor_area, via_measure_points,
    via_measure_points_into, EpeReport, MeasurePoint,
};
pub use optics::{build_kernels, OpticsConfig, SocsKernel};
pub use plan::FftPlan;
pub use pool::WorkerPool;
pub use raster::{rasterize, rasterize_into, try_rasterize, RasterCache};
pub use scalar::{Precision, Scalar};
pub use simd::SimdMode;
pub use workspace::LithoWorkspace;
