//! OPC quality metrics: EPE, L2 and the process variation band (§II-B).
//!
//! Every metric has a zero-allocation form for scoring loops: site
//! generation and EPE evaluation write into caller-owned buffers
//! ([`via_measure_points_into`], [`metal_measure_points_into`],
//! [`measure_epe_into`]), and the binary-image comparisons fuse the
//! thresholding with the XOR count ([`thresholded_xor_area`]) instead of
//! materialising binarized grids.

use cardopc_geometry::{Grid, Orientation, Point, Polygon, Segment};

/// An edge placement error measurement site: a point on a target edge and
/// the outward normal of that edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasurePoint {
    /// Position on the target pattern edge, nanometres.
    pub position: Point,
    /// Unit outward normal of the target edge.
    pub normal: Point,
}

/// Result of evaluating EPE over a set of measure points.
#[derive(Clone, Debug, Default)]
pub struct EpeReport {
    /// Signed EPE per measure point (nm); positive = printed edge outside
    /// the target.
    pub values: Vec<f64>,
    /// Search range used; points with no contour crossing saturate at this.
    pub search_range: f64,
}

impl EpeReport {
    /// Sum of absolute EPEs in nanometres — the quantity Tables I/II report.
    pub fn sum_abs(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Largest absolute EPE.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Mean absolute EPE (0 when there are no measure points).
    pub fn mean_abs(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum_abs() / self.values.len() as f64
        }
    }

    /// Number of points whose |EPE| exceeds `tolerance` — the EPE
    /// violation count Table III reports.
    pub fn violations(&self, tolerance: f64) -> usize {
        self.values.iter().filter(|v| v.abs() > tolerance).count()
    }
}

/// Measures the signed EPE at one site by marching along the normal of the
/// target edge until the aerial image crosses `threshold`.
///
/// Positive EPE means the printed contour lies *outside* the target edge
/// (over-print); negative means under-print. When no crossing is found
/// within `search_range` nanometres the result saturates at
/// `±search_range`.
pub fn epe_at(aerial: &Grid, threshold: f64, site: &MeasurePoint, search_range: f64) -> f64 {
    let step = 0.5 * aerial.pitch();
    let at = |d: f64| {
        let p = site.position + site.normal * d;
        aerial.sample(p.x, p.y) - threshold
    };
    let here = at(0.0);
    // If the point is printed (intensity above threshold), the printed edge
    // is somewhere outward; otherwise inward.
    let dir = if here >= 0.0 { 1.0 } else { -1.0 };
    let mut prev = here;
    let mut d = 0.0;
    while d < search_range {
        let next_d = d + step;
        let cur = at(dir * next_d);
        if (prev >= 0.0) != (cur >= 0.0) {
            // Crossing between d and next_d: linear interpolation.
            let frac = if (cur - prev).abs() < 1e-300 {
                0.5
            } else {
                prev.abs() / (cur - prev).abs()
            };
            return dir * (d + frac * step);
        }
        prev = cur;
        d = next_d;
    }
    dir * search_range
}

/// Evaluates EPE at every measure point into a caller-owned buffer
/// (cleared first) — the zero-allocation form of [`measure_epe`].
pub fn measure_epe_into(
    aerial: &Grid,
    threshold: f64,
    sites: &[MeasurePoint],
    search_range: f64,
    values: &mut Vec<f64>,
) {
    values.clear();
    values.extend(
        sites
            .iter()
            .map(|s| epe_at(aerial, threshold, s, search_range)),
    );
}

/// Evaluates EPE at every measure point.
pub fn measure_epe(
    aerial: &Grid,
    threshold: f64,
    sites: &[MeasurePoint],
    search_range: f64,
) -> EpeReport {
    let mut values = Vec::with_capacity(sites.len());
    measure_epe_into(aerial, threshold, sites, search_range, &mut values);
    EpeReport {
        values,
        search_range,
    }
}

/// Visits a polygon's edges in counter-clockwise ring order without
/// cloning: clockwise rings are walked through the same index reflection
/// `into_ccw`'s vertex reversal would produce, so the edge sequence is
/// identical to `poly.clone().into_ccw().edges()`.
fn for_each_ccw_edge(poly: &Polygon, mut f: impl FnMut(Segment)) {
    let v = poly.vertices();
    let n = v.len();
    if n == 0 {
        return;
    }
    if poly.orientation() == Orientation::Clockwise {
        for i in 0..n {
            f(Segment::new(v[n - 1 - i], v[(2 * n - 2 - i) % n]));
        }
    } else {
        for i in 0..n {
            f(Segment::new(v[i], v[(i + 1) % n]));
        }
    }
}

/// Generates via-layer measure points into a caller-owned buffer (cleared
/// first) — the zero-allocation form of [`via_measure_points`].
pub fn via_measure_points_into(targets: &[Polygon], out: &mut Vec<MeasurePoint>) {
    out.clear();
    for poly in targets {
        for_each_ccw_edge(poly, |e| {
            if let Some(dir) = e.delta().normalized() {
                out.push(MeasurePoint {
                    position: e.midpoint(),
                    // CCW ring: interior on the left, so outward = -perp.
                    normal: -dir.perp(),
                });
            }
        });
    }
}

/// Generates via-layer measure points: the centre of every polygon edge
/// (the paper's convention for via clips).
pub fn via_measure_points(targets: &[Polygon]) -> Vec<MeasurePoint> {
    let mut out = Vec::new();
    via_measure_points_into(targets, &mut out);
    out
}

/// Generates metal-layer measure points into a caller-owned buffer
/// (cleared first) — the zero-allocation form of [`metal_measure_points`].
pub fn metal_measure_points_into(targets: &[Polygon], spacing: f64, out: &mut Vec<MeasurePoint>) {
    out.clear();
    for poly in targets {
        for_each_ccw_edge(poly, |e| {
            let len = e.length();
            let Some(dir) = e.delta().normalized() else {
                return;
            };
            let normal = -dir.perp();
            let count = (len / spacing).floor() as usize;
            if count == 0 {
                out.push(MeasurePoint {
                    position: e.midpoint(),
                    normal,
                });
            } else {
                // Centre the sites along the edge.
                let margin = (len - count as f64 * spacing) * 0.5 + spacing * 0.5;
                for k in 0..count {
                    out.push(MeasurePoint {
                        position: e.at((margin + k as f64 * spacing) / len),
                        normal,
                    });
                }
            }
        });
    }
}

/// Generates metal-layer measure points: sites every `spacing` nanometres
/// along each edge (plus the edge midpoint for short edges), matching the
/// paper's 60 nm-pitch convention.
pub fn metal_measure_points(targets: &[Polygon], spacing: f64) -> Vec<MeasurePoint> {
    let mut out = Vec::new();
    metal_measure_points_into(targets, spacing, &mut out);
    out
}

/// Fused threshold-and-XOR area: the area (nm²) where `(a >= threshold_a)`
/// and `(b >= threshold_b)` disagree.
///
/// Exactly equivalent to `l2_error(&a.binarize(threshold_a),
/// &b.binarize(threshold_b))` — `Grid::binarize` maps `v >= t` to 1.0 and
/// the XOR counts compare against 0.5 — but without materialising either
/// binarized grid. Evaluation loops use this for both the L2 term (nominal
/// print vs rasterised target) and the PV band (outer vs inner corner
/// prints on the raw aerial images).
///
/// # Panics
///
/// Panics when the two grids have different dimensions.
pub fn thresholded_xor_area(a: &Grid, threshold_a: f64, b: &Grid, threshold_b: f64) -> f64 {
    assert_eq!(a.width(), b.width(), "grid width mismatch");
    assert_eq!(a.height(), b.height(), "grid height mismatch");
    let px = a.pitch() * a.pitch();
    let mut count = 0usize;
    for (&va, &vb) in a.data().iter().zip(b.data()) {
        if (va >= threshold_a) != (vb >= threshold_b) {
            count += 1;
        }
    }
    count as f64 * px
}

/// Squared L2 error between a printed binary image and the binary target:
/// the XOR pixel count scaled to nm² (for binary images the sum of squared
/// differences equals the XOR area).
///
/// # Panics
///
/// Panics when the two grids have different dimensions.
pub fn l2_error(printed: &Grid, target: &Grid) -> f64 {
    assert_eq!(printed.width(), target.width(), "grid width mismatch");
    assert_eq!(printed.height(), target.height(), "grid height mismatch");
    let px = printed.pitch() * printed.pitch();
    let mut count = 0usize;
    for (&a, &b) in printed.data().iter().zip(target.data()) {
        if (a > 0.5) != (b > 0.5) {
            count += 1;
        }
    }
    count as f64 * px
}

/// Process variation band area in nm²: pixels printed at the outer corner
/// but not at the inner corner (plus any inverse discrepancies).
///
/// # Panics
///
/// Panics when the two grids have different dimensions.
pub fn pvb_area(outer: &Grid, inner: &Grid) -> f64 {
    assert_eq!(outer.width(), inner.width(), "grid width mismatch");
    assert_eq!(outer.height(), inner.height(), "grid height mismatch");
    let px = outer.pitch() * outer.pitch();
    let mut count = 0usize;
    for (&a, &b) in outer.data().iter().zip(inner.data()) {
        if (a > 0.5) != (b > 0.5) {
            count += 1;
        }
    }
    count as f64 * px
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::Polygon;

    /// A synthetic aerial image: intensity ramps down with distance from a
    /// disc of radius `r` centred at `c` — contour of level 0.5 is the
    /// circle itself.
    fn disc_field(w: usize, h: usize, c: Point, r: f64) -> Grid {
        let mut g = Grid::zeros(w, h, 1.0);
        for iy in 0..h {
            for ix in 0..w {
                let p = Point::new(ix as f64 + 0.5, iy as f64 + 0.5);
                let d = p.distance(c) - r;
                g[(ix, iy)] = 0.5 - d * 0.05;
            }
        }
        g
    }

    #[test]
    fn epe_zero_when_contour_matches_target() {
        let g = disc_field(64, 64, Point::new(32.0, 32.0), 10.0);
        let site = MeasurePoint {
            position: Point::new(42.0, 32.0),
            normal: Point::new(1.0, 0.0),
        };
        let e = epe_at(&g, 0.5, &site, 20.0);
        assert!(e.abs() < 0.5, "EPE {e}");
    }

    #[test]
    fn epe_sign_overprint_and_underprint() {
        let g = disc_field(64, 64, Point::new(32.0, 32.0), 10.0);
        // Target edge 3 nm inside the printed circle -> positive EPE ~ +3.
        let inside = MeasurePoint {
            position: Point::new(39.0, 32.0),
            normal: Point::new(1.0, 0.0),
        };
        let e = epe_at(&g, 0.5, &inside, 20.0);
        assert!((e - 3.0).abs() < 0.6, "EPE {e}, want ~3");
        // Target edge 3 nm outside -> negative EPE ~ -3.
        let outside = MeasurePoint {
            position: Point::new(45.0, 32.0),
            normal: Point::new(1.0, 0.0),
        };
        let e = epe_at(&g, 0.5, &outside, 20.0);
        assert!((e + 3.0).abs() < 0.6, "EPE {e}, want ~-3");
    }

    #[test]
    fn epe_saturates_at_search_range() {
        let g = Grid::zeros(32, 32, 1.0); // nothing prints
        let site = MeasurePoint {
            position: Point::new(16.0, 16.0),
            normal: Point::new(1.0, 0.0),
        };
        let e = epe_at(&g, 0.5, &site, 8.0);
        assert_eq!(e.abs(), 8.0);
    }

    #[test]
    fn report_statistics() {
        let report = EpeReport {
            values: vec![1.0, -2.0, 0.5, 3.0],
            search_range: 10.0,
        };
        assert_eq!(report.sum_abs(), 6.5);
        assert_eq!(report.max_abs(), 3.0);
        assert_eq!(report.mean_abs(), 1.625);
        assert_eq!(report.violations(1.0), 2);
        assert_eq!(report.violations(0.0), 4);
        assert_eq!(EpeReport::default().mean_abs(), 0.0);
    }

    #[test]
    fn via_measure_points_outward_normals() {
        let sq = Polygon::rect(Point::new(10.0, 10.0), Point::new(20.0, 20.0));
        let pts = via_measure_points(&[sq]);
        assert_eq!(pts.len(), 4);
        let c = Point::new(15.0, 15.0);
        for mp in &pts {
            // Outward: moving along the normal increases distance to centre.
            let before = mp.position.distance(c);
            let after = (mp.position + mp.normal * 1.0).distance(c);
            assert!(after > before, "normal not outward at {}", mp.position);
            assert!((mp.normal.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn via_points_outward_even_for_cw_input() {
        let mut sq = Polygon::rect(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        sq.reverse(); // clockwise input
        let pts = via_measure_points(&[sq]);
        let c = Point::new(5.0, 5.0);
        for mp in &pts {
            let before = mp.position.distance(c);
            let after = (mp.position + mp.normal * 1.0).distance(c);
            assert!(after > before);
        }
    }

    #[test]
    fn metal_measure_point_density() {
        // 300x50 rectangle with 60 nm spacing: long edges get 5 sites each,
        // short edges 0 -> midpoint fallback.
        let rect = Polygon::rect(Point::new(0.0, 0.0), Point::new(300.0, 50.0));
        let pts = metal_measure_points(&[rect], 60.0);
        // 2 long edges * 5 + 2 short edges * (50/60 -> 0 -> midpoint) = 12.
        assert_eq!(pts.len(), 12);
    }

    #[test]
    fn l2_counts_xor_area() {
        let mut a = Grid::zeros(4, 4, 2.0);
        let mut b = Grid::zeros(4, 4, 2.0);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        b[(1, 1)] = 1.0;
        b[(2, 2)] = 1.0;
        // XOR = {(0,0), (2,2)} = 2 pixels * 4 nm² = 8.
        assert_eq!(l2_error(&a, &b), 8.0);
        assert_eq!(l2_error(&a, &a), 0.0);
    }

    #[test]
    fn pvb_of_identical_prints_is_zero() {
        let g = Grid::filled(8, 8, 1.0, 1.0);
        assert_eq!(pvb_area(&g, &g), 0.0);
    }

    #[test]
    fn pvb_band_width() {
        // Outer print: 6x6; inner print: 4x4 -> band = 36 - 16 = 20 px.
        let mut outer = Grid::zeros(8, 8, 1.0);
        let mut inner = Grid::zeros(8, 8, 1.0);
        for iy in 1..7 {
            for ix in 1..7 {
                outer[(ix, iy)] = 1.0;
            }
        }
        for iy in 2..6 {
            for ix in 2..6 {
                inner[(ix, iy)] = 1.0;
            }
        }
        assert_eq!(pvb_area(&outer, &inner), 20.0);
    }

    #[test]
    #[should_panic(expected = "grid width mismatch")]
    fn l2_dimension_mismatch_panics() {
        let a = Grid::zeros(4, 4, 1.0);
        let b = Grid::zeros(8, 4, 1.0);
        let _ = l2_error(&a, &b);
    }
}
