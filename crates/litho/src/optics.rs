//! Partially coherent projection optics: source discretisation and SOCS
//! kernel synthesis.
//!
//! The ICCAD-13 contest distributes its Hopkins optical kernels as opaque
//! binary data; this reproduction synthesises an equivalent kernel stack
//! from first principles instead (see DESIGN.md, substitution 1). The source
//! is an annular partially coherent illuminator discretised into point
//! sources (Abbe's method). Each source point `s` contributes the coherent
//! kernel
//!
//! ```text
//! H_s(f) = P(f + f_s) · exp(−iπλz·|f + f_s|²)
//! ```
//!
//! where `P` is the circular pupil of cutoff `NA/λ` and `z` the defocus.
//! The aerial image is then exactly the Hopkins/SOCS form of Eq. (1):
//! `I = Σ_s w_s · |M ⊗ h_s|²`, evaluated in the frequency domain.

use crate::fft::{Complex, Field};
use crate::scalar::Scalar;
use crate::LithoError;

/// Physical configuration of the projection system.
///
/// Defaults approximate a 193 nm immersion scanner with annular
/// illumination — the regime of the paper's testcases.
#[derive(Clone, Debug, PartialEq)]
pub struct OpticsConfig {
    /// Exposure wavelength λ in nanometres.
    pub wavelength: f64,
    /// Numerical aperture of the projection lens.
    pub na: f64,
    /// Inner radius of the annular source, as a fraction of `NA/λ`.
    pub sigma_inner: f64,
    /// Outer radius of the annular source, as a fraction of `NA/λ`.
    pub sigma_outer: f64,
    /// Number of radial rings in the source discretisation.
    pub source_rings: usize,
    /// Number of azimuthal points per ring.
    pub points_per_ring: usize,
    /// Defocus distance `z` in nanometres used by the defocus process
    /// corner.
    pub defocus: f64,
}

impl Default for OpticsConfig {
    fn default() -> Self {
        OpticsConfig {
            wavelength: 193.0,
            na: 1.35,
            sigma_inner: 0.5,
            sigma_outer: 0.8,
            source_rings: 2,
            points_per_ring: 8,
            defocus: 60.0,
        }
    }
}

impl OpticsConfig {
    /// Pupil cutoff frequency `NA/λ` in cycles per nanometre.
    #[inline]
    pub fn cutoff(&self) -> f64 {
        self.na / self.wavelength
    }

    /// Validates physical sanity of the parameters.
    ///
    /// # Errors
    ///
    /// [`LithoError::InvalidOptics`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), LithoError> {
        if !(self.wavelength > 0.0 && self.wavelength.is_finite()) {
            return Err(LithoError::InvalidOptics("wavelength must be positive"));
        }
        if !(self.na > 0.0 && self.na.is_finite()) {
            return Err(LithoError::InvalidOptics(
                "numerical aperture must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.sigma_inner)
            || !(0.0..=1.0).contains(&self.sigma_outer)
            || self.sigma_inner > self.sigma_outer
        {
            return Err(LithoError::InvalidOptics(
                "source sigmas must satisfy 0 <= inner <= outer <= 1",
            ));
        }
        if self.source_rings == 0 || self.points_per_ring == 0 {
            return Err(LithoError::InvalidOptics(
                "source discretisation needs at least one ring and one point",
            ));
        }
        if !self.defocus.is_finite() {
            return Err(LithoError::InvalidOptics("defocus must be finite"));
        }
        Ok(())
    }

    /// Discretised source points in frequency space (cycles/nm), with equal
    /// weights summing to one.
    pub fn source_points(&self) -> Vec<(f64, f64, f64)> {
        let fc = self.cutoff();
        let mut pts = Vec::new();
        for ring in 0..self.source_rings {
            // Ring radii spread across the annulus (midpoint rule).
            let frac = (ring as f64 + 0.5) / self.source_rings as f64;
            let sigma = self.sigma_inner + (self.sigma_outer - self.sigma_inner) * frac;
            for k in 0..self.points_per_ring {
                // Stagger alternate rings for better angular coverage.
                let theta = std::f64::consts::TAU * (k as f64 + 0.5 * (ring % 2) as f64)
                    / self.points_per_ring as f64;
                pts.push((sigma * fc * theta.cos(), sigma * fc * theta.sin(), 0.0));
            }
        }
        let w = 1.0 / pts.len() as f64;
        pts.into_iter().map(|(x, y, _)| (x, y, w)).collect()
    }
}

/// One SOCS kernel: a weight and its frequency-domain transfer function.
///
/// Kernels are always *synthesised* in `f64` ([`build_kernels`]); the
/// single-precision backend narrows a finished stack once per engine via
/// [`SocsKernel::to_precision`]. The weight stays `f64` — it is folded into
/// accumulation weights in the reference domain and narrowed at the point
/// of use.
#[derive(Clone, Debug)]
pub struct SocsKernel<T: Scalar = f64> {
    /// Hopkins weight `w_k`.
    pub weight: f64,
    /// Frequency-domain transfer function on the simulation grid.
    pub transfer: Field<T>,
    /// Per-row support mask: `live_rows[y]` is `true` when row `y` of
    /// `transfer` has any nonzero sample. The pupil is band-limited, so on
    /// production grids most rows are dead and the convolution hot loop
    /// skips both their pointwise products and their inverse row
    /// transforms (see [`crate::fft::Field::ifft2_pruned_unscaled`]).
    pub live_rows: Vec<bool>,
}

impl<T: Scalar> SocsKernel<T> {
    /// Builds a kernel from a weight and transfer function, computing the
    /// row support mask.
    pub fn new(weight: f64, transfer: Field<T>) -> SocsKernel<T> {
        let width = transfer.width();
        let live_rows = transfer
            .re()
            .chunks_exact(width)
            .zip(transfer.im().chunks_exact(width))
            .map(|(re, im)| re.iter().any(|&v| v != T::ZERO) || im.iter().any(|&v| v != T::ZERO))
            .collect();
        SocsKernel {
            weight,
            transfer,
            live_rows,
        }
    }

    /// Converts the kernel to another simulation precision. The row support
    /// mask carries over unchanged: narrowing maps zeros to zeros, and any
    /// sample small enough to flush to a subnormal-zero still lies on a row
    /// the mask already marks live (harmless — the row transforms run, they
    /// just produce zeros).
    pub fn to_precision<U: Scalar>(&self) -> SocsKernel<U> {
        SocsKernel {
            weight: self.weight,
            transfer: self.transfer.to_precision(),
            live_rows: self.live_rows.clone(),
        }
    }
}

/// Builds the SOCS kernel stack for a simulation grid.
///
/// `width`/`height` are the grid dimensions in pixels (any nonzero sizes;
/// 5-smooth lengths run on the direct mixed-radix path, everything else
/// falls back to Bluestein), `pitch` the pixel size in nanometres, `defocus`
/// the defocus distance in nanometres (0 for the nominal-focus stack).
///
/// Zero-defocus stacks fold antipodal source-point pairs into single
/// kernels with doubled weights (the transfers are real, so the paired
/// intensities are equal for any real mask) — on the default annular
/// source this halves the nominal stack from 16 to 8 kernels without
/// changing the aerial image.
///
/// # Errors
///
/// Propagates [`OpticsConfig::validate`] failures and rejects empty
/// grids.
pub fn build_kernels(
    config: &OpticsConfig,
    width: usize,
    height: usize,
    pitch: f64,
    defocus: f64,
) -> Result<Vec<SocsKernel>, LithoError> {
    config.validate()?;
    if width == 0 || height == 0 {
        return Err(LithoError::EmptyGrid { width, height });
    }
    if !(pitch > 0.0 && pitch.is_finite()) {
        return Err(LithoError::InvalidOptics("pitch must be positive"));
    }

    let fc = config.cutoff();
    let lambda = config.wavelength;

    // Hermitian fold, zero-defocus stacks only. At nominal focus the
    // transfer is the real-valued pupil indicator, and for a *real* mask
    // the coherent amplitude at source point `−s` is the pointwise complex
    // conjugate of the amplitude at `+s` (the transfer at `−s` is the
    // `f → −f` reflection of the one at `+s`, and the mask spectrum is
    // Hermitian), so `|A_{−s}|² == |A_s|²` — identically in the mask, which
    // also keeps ILT gradients exact. Each azimuthal ring places points at
    // equal angular steps, so with an even point count every source point's
    // antipode is also a source point: folding each pair into one kernel
    // with doubled weight halves the SOCS stack. The fold is skipped when
    // the shifted pupil could reach the Nyquist row/column, whose frequency
    // does not negate under the grid's `f → −f` index reflection.
    let fold = defocus == 0.0
        && config.points_per_ring.is_multiple_of(2)
        && 0.5 / pitch > fc * (1.0 + config.sigma_outer);
    let half_ring = config.points_per_ring / 2;
    let mut kernels = Vec::new();

    for (index, (fsx, fsy, weight)) in config.source_points().into_iter().enumerate() {
        let weight = if fold {
            if index % config.points_per_ring >= half_ring {
                // Covered by its antipodal partner's doubled weight.
                continue;
            }
            2.0 * weight
        } else {
            weight
        };
        let mut transfer: Field = Field::zeros(width, height);
        for ky in 0..height {
            // FFT frequency layout: wrap the upper half to negatives.
            let fy_idx = if ky <= height / 2 {
                ky as f64
            } else {
                ky as f64 - height as f64
            };
            let fy = fy_idx / (height as f64 * pitch);
            for kx in 0..width {
                let fx_idx = if kx <= width / 2 {
                    kx as f64
                } else {
                    kx as f64 - width as f64
                };
                let fx = fx_idx / (width as f64 * pitch);
                let gx = fx + fsx;
                let gy = fy + fsy;
                let g2 = gx * gx + gy * gy;
                if g2 <= fc * fc {
                    // Paraxial defocus aberration phase.
                    let phase = -std::f64::consts::PI * lambda * defocus * g2;
                    transfer.set(kx, ky, Complex::from_angle(phase));
                }
            }
        }
        kernels.push(SocsKernel::new(weight, transfer));
    }
    Ok(kernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(OpticsConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = [
            OpticsConfig {
                wavelength: -1.0,
                ..OpticsConfig::default()
            },
            OpticsConfig {
                na: 0.0,
                ..OpticsConfig::default()
            },
            OpticsConfig {
                sigma_inner: 0.9,
                sigma_outer: 0.5,
                ..OpticsConfig::default()
            },
            OpticsConfig {
                source_rings: 0,
                ..OpticsConfig::default()
            },
            OpticsConfig {
                defocus: f64::NAN,
                ..OpticsConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn source_weights_sum_to_one() {
        let pts = OpticsConfig::default().source_points();
        assert_eq!(pts.len(), 16);
        let total: f64 = pts.iter().map(|&(_, _, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn source_points_inside_annulus() {
        let cfg = OpticsConfig::default();
        let fc = cfg.cutoff();
        for (x, y, _) in cfg.source_points() {
            let r = (x * x + y * y).sqrt() / fc;
            assert!(r >= cfg.sigma_inner - 1e-12 && r <= cfg.sigma_outer + 1e-12);
        }
    }

    #[test]
    fn kernels_pass_dc_and_block_high_frequencies() {
        let cfg = OpticsConfig::default();
        let ks = build_kernels(&cfg, 64, 64, 4.0, 0.0).unwrap();
        // 16 source points, Hermitian-folded into 8 nominal kernels.
        assert_eq!(ks.len(), 8);
        for k in &ks {
            // DC term passes (source points lie inside the pupil).
            assert!((k.transfer.at(0, 0).norm() - 1.0).abs() < 1e-12);
            // The Nyquist corner is far beyond cutoff for 4 nm pitch:
            // f_nyq = 1/8 = 0.125 cycles/nm >> fc ≈ 0.007.
            assert_eq!(k.transfer.at(32, 32).norm(), 0.0);
        }
    }

    #[test]
    fn defocus_changes_phase_not_magnitude() {
        let cfg = OpticsConfig::default();
        let nominal = build_kernels(&cfg, 32, 32, 8.0, 0.0).unwrap();
        let defocused = build_kernels(&cfg, 32, 32, 8.0, 80.0).unwrap();
        // The nominal stack is Hermitian-folded (first half of each ring);
        // pair each folded kernel with the defocused kernel for the same
        // source point.
        assert_eq!(nominal.len(), 8);
        assert_eq!(defocused.len(), 16);
        let half = cfg.points_per_ring / 2;
        for (i, a) in nominal.iter().enumerate() {
            let source_index = (i / half) * cfg.points_per_ring + i % half;
            let b = &defocused[source_index];
            let mut phase_differs = false;
            for (za, zb) in a.transfer.iter().zip(b.transfer.iter()) {
                assert!((za.norm() - zb.norm()).abs() < 1e-12);
                if (za.im - zb.im).abs() > 1e-9 {
                    phase_differs = true;
                }
            }
            assert!(phase_differs, "defocus should modify kernel phase");
        }
    }

    #[test]
    fn hermitian_fold_preserves_intensity() {
        // The folded nominal stack must reproduce the unfolded sum: for a
        // real mask, the kernel at `−s` (the `f → −f` reflection of the
        // kernel at `+s`) contributes exactly the intensity of its partner.
        let cfg = OpticsConfig::default();
        let (w, h, pitch) = (32usize, 32usize, 8.0);
        let folded = build_kernels(&cfg, w, h, pitch, 0.0).unwrap();
        assert_eq!(folded.len(), 8);

        let mut rng = cardopc_geometry::SplitMix64::new(314);
        let mask: Vec<f64> = (0..w * h).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let mut spectrum: Field = Field::from_real(w, h, &mask);
        spectrum.fft2_inplace(false);

        let intensity = |transfer: &Field, weight: f64| {
            let mut f = spectrum.mul_pointwise(transfer);
            f.fft2_inplace(true);
            f.iter().map(|z| weight * z.norm_sq()).collect::<Vec<f64>>()
        };

        for k in &folded {
            // Reconstruct the dropped partner by index reflection f → −f.
            let mut mirror: Field = Field::zeros(w, h);
            for ky in 0..h {
                for kx in 0..w {
                    let mx = (w - kx) % w;
                    let my = (h - ky) % h;
                    mirror.set(kx, ky, k.transfer.at(mx, my));
                }
            }
            let a = intensity(&k.transfer, 0.5 * k.weight);
            let b = intensity(&mirror, 0.5 * k.weight);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert!(
                    (x - y).abs() < 1e-12 * (1.0 + x.abs()),
                    "pixel {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn empty_grid_rejected() {
        let cfg = OpticsConfig::default();
        assert!(matches!(
            build_kernels(&cfg, 0, 64, 1.0, 0.0),
            Err(LithoError::EmptyGrid { .. })
        ));
    }

    #[test]
    fn non_power_of_two_grid_accepted() {
        // 100 = 2²·5² is 5-smooth; the kernel stack builds and the DC term
        // passes exactly as on pow2 grids.
        let cfg = OpticsConfig::default();
        let ks = build_kernels(&cfg, 100, 60, 4.0, 0.0).unwrap();
        assert_eq!(ks.len(), 8);
        for k in &ks {
            assert!((k.transfer.at(0, 0).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bad_pitch_rejected() {
        let cfg = OpticsConfig::default();
        assert!(build_kernels(&cfg, 64, 64, 0.0, 0.0).is_err());
    }
}
