//! Cached FFT execution plans: mixed-radix Stockham autosort + Bluestein.
//!
//! Every transform size used by the engine gets one [`FftPlan`], built once
//! and shared process-wide through a registry behind a `OnceLock`. Plans
//! execute on *split-complex* data (separate `re[]`/`im[]` slices — see
//! [`crate::Field`]) so every butterfly and twiddle loop runs over packed
//! lanes with no interleave shuffles.
//!
//! Plans are generic over the [`Scalar`] element type: one registry entry
//! per `(precision, size)` pair, so the `f32` backend gets its own narrowed
//! twiddle tables without touching the `f64` reference plans. All twiddles
//! and chirps are *computed* in `f64` and narrowed through
//! [`Scalar::from_f64`] — for `T = f64` the tables (and the executed
//! arithmetic) are bit-identical to the pre-generic implementation.
//!
//! 5-smooth lengths (`2^a·3^b·5^c`, which covers every size the litho
//! engine schedules) run a **Stockham autosort** decimation-in-frequency
//! pipeline: radix-4 stages are peeled greedily, then one radix-2, then
//! radix-3/5 — so the large-stride stages that dominate runtime are radix-4
//! and the inner `q` loops are contiguous and autovectorize. Stockham
//! ping-pongs between the data and a scratch buffer instead of performing a
//! bit-reversal permutation, which is what makes the split layout pay: no
//! index shuffling, just streaming passes.
//!
//! All other lengths fall back to **Bluestein's chirp-z** algorithm: the
//! size-`n` DFT becomes a cyclic convolution of length `M = next 5-smooth
//! ≥ 2n−1`, evaluated with the Stockham pipeline above. Any `n ≥ 1` is
//! therefore accepted; 5-smooth sizes are simply faster (and are what
//! [`crate::fft::next_five_smooth`] rounds grids to).
//!
//! Twiddles are precomputed per stage at plan build (`exp(∓2πi·pj/n_cur)`
//! with the inverse table stored as the conjugate), replacing the seed's
//! per-call `sin_cos` recurrence that accumulated rounding error along each
//! stage.

use crate::fft::{Complex, FftScratch};
use crate::scalar::Scalar;
use crate::simd::{self, SimdMode};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// One Stockham stage: combines `m` sub-DFTs of the current length into
/// `m/radix` longer ones, with `s` interleaved transforms at this depth.
#[derive(Clone, Copy, Debug)]
struct Stage {
    radix: u8,
    /// `n_cur / radix` where `n_cur` is the sub-transform length entering
    /// this stage (`n_cur · s == n` throughout).
    m: usize,
    /// Stride: the product of all earlier stages' radices.
    s: usize,
    /// Offset of this stage's `(radix−1)·m` twiddles in the shared tables.
    tw_off: usize,
}

/// Stockham pipeline for a 5-smooth length.
#[derive(Debug)]
struct Stages<T: Scalar> {
    stages: Vec<Stage>,
    /// Twiddle real parts (shared by both directions).
    tw_re: Vec<T>,
    /// Forward twiddle imaginary parts (`exp(−2πi·pj/n_cur)`).
    tw_im_fwd: Vec<T>,
    /// Inverse twiddle imaginary parts (conjugates).
    tw_im_inv: Vec<T>,
}

impl<T: Scalar> Stages<T> {
    fn build(n: usize) -> Stages<T> {
        debug_assert!(crate::fft::is_five_smooth(n));
        let mut stages = Vec::new();
        let mut tw_re = Vec::new();
        let mut tw_im_fwd: Vec<T> = Vec::new();
        let mut n_cur = n;
        let mut s = 1usize;
        while n_cur > 1 {
            let radix = if n_cur.is_multiple_of(4) {
                4
            } else if n_cur.is_multiple_of(2) {
                2
            } else if n_cur.is_multiple_of(3) {
                3
            } else {
                5
            };
            let m = n_cur / radix;
            let tw_off = tw_re.len();
            for j in 1..radix {
                for p in 0..m {
                    let ang = -std::f64::consts::TAU * (p * j) as f64 / n_cur as f64;
                    let (si, co) = ang.sin_cos();
                    tw_re.push(T::from_f64(co));
                    tw_im_fwd.push(T::from_f64(si));
                }
            }
            stages.push(Stage {
                radix: radix as u8,
                m,
                s,
                tw_off,
            });
            n_cur = m;
            s *= radix;
        }
        let tw_im_inv = tw_im_fwd.iter().map(|&v| -v).collect();
        Stages {
            stages,
            tw_re,
            tw_im_fwd,
            tw_im_inv,
        }
    }

    /// Runs the full pipeline; the result always ends in `(re, im)`
    /// (`(pr, pi)` is the ping-pong partner, clobbered).
    fn run(
        &self,
        mode: SimdMode,
        inverse: bool,
        re: &mut [T],
        im: &mut [T],
        pr: &mut [T],
        pi: &mut [T],
    ) {
        let tw_im = if inverse {
            &self.tw_im_inv
        } else {
            &self.tw_im_fwd
        };
        #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
        if mode == SimdMode::Avx2 {
            // SAFETY: `SimdMode::Avx2` is only produced after runtime
            // AVX2+FMA detection (crate::simd::active_mode / force_mode).
            unsafe {
                if inverse {
                    stages_avx2::<false, T>(self, tw_im, re, im, pr, pi);
                } else {
                    stages_avx2::<true, T>(self, tw_im, re, im, pr, pi);
                }
            }
            return;
        }
        let _ = mode;
        if inverse {
            stages_body::<false, T>(self, tw_im, re, im, pr, pi);
        } else {
            stages_body::<true, T>(self, tw_im, re, im, pr, pi);
        }
    }
}

/// The whole pipeline compiled with AVX2+FMA enabled. The body is the same
/// as the scalar instantiation — Rust never contracts `a*b+c` into an FMA,
/// so both instantiations are **bitwise identical**; this one just lets the
/// autovectorizer use 256-bit lanes (4 `f64` or 8 `f32` per op).
///
/// # Safety
/// Caller must have verified AVX2+FMA support at runtime.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[target_feature(enable = "avx2,fma")]
unsafe fn stages_avx2<const FWD: bool, T: Scalar>(
    plan: &Stages<T>,
    tw_im: &[T],
    re: &mut [T],
    im: &mut [T],
    pr: &mut [T],
    pi: &mut [T],
) {
    if T::PRECISION == crate::scalar::Precision::F32 {
        // SAFETY: `Scalar` is sealed, so `PRECISION == F32` implies
        // `T == f32`; the casts below are identity reinterpretations.
        unsafe {
            let plan = &*(plan as *const Stages<T> as *const Stages<f32>);
            let tw_im = &*(tw_im as *const [T] as *const [f32]);
            let re = &mut *(re as *mut [T] as *mut [f32]);
            let im = &mut *(im as *mut [T] as *mut [f32]);
            let pr = &mut *(pr as *mut [T] as *mut [f32]);
            let pi = &mut *(pi as *mut [T] as *mut [f32]);
            stages_body_ps::<FWD>(plan, tw_im, re, im, pr, pi);
        }
        return;
    }
    stages_body::<FWD, T>(plan, tw_im, re, im, pr, pi);
}

/// The `f32` pipeline over the hand-written 8-lane stage kernels in
/// [`crate::stage_ps`] (bitwise identical to the scalar dispatch — the
/// kernels use the same per-lane expressions without FMA contraction).
///
/// # Safety
/// Caller must have verified AVX2+FMA support at runtime.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[target_feature(enable = "avx2,fma")]
unsafe fn stages_body_ps<const FWD: bool>(
    plan: &Stages<f32>,
    tw_im: &[f32],
    re: &mut [f32],
    im: &mut [f32],
    pr: &mut [f32],
    pi: &mut [f32],
) {
    use crate::stage_ps::{stage2_ps, stage3_ps, stage4_ps, stage5_ps};
    let mut in_data = true;
    for st in &plan.stages {
        let tw_len = (st.radix as usize - 1) * st.m;
        let twr = &plan.tw_re[st.tw_off..st.tw_off + tw_len];
        let twi = &tw_im[st.tw_off..st.tw_off + tw_len];
        let (xr, xi, yr, yi) = if in_data {
            (&*re, &*im, &mut *pr, &mut *pi)
        } else {
            (&*pr, &*pi, &mut *re, &mut *im)
        };
        match st.radix {
            2 => stage2_ps(st.m, st.s, twr, twi, xr, xi, yr, yi),
            3 => stage3_ps::<FWD>(st.m, st.s, twr, twi, xr, xi, yr, yi),
            4 => stage4_ps::<FWD>(st.m, st.s, twr, twi, xr, xi, yr, yi),
            _ => stage5_ps::<FWD>(st.m, st.s, twr, twi, xr, xi, yr, yi),
        }
        in_data = !in_data;
    }
    if !in_data {
        re.copy_from_slice(pr);
        im.copy_from_slice(pi);
    }
}

#[inline(always)]
fn stages_body<const FWD: bool, T: Scalar>(
    plan: &Stages<T>,
    tw_im: &[T],
    re: &mut [T],
    im: &mut [T],
    pr: &mut [T],
    pi: &mut [T],
) {
    let mut in_data = true;
    for st in &plan.stages {
        let tw_len = (st.radix as usize - 1) * st.m;
        let twr = &plan.tw_re[st.tw_off..st.tw_off + tw_len];
        let twi = &tw_im[st.tw_off..st.tw_off + tw_len];
        if in_data {
            stage_any::<FWD, T>(st, twr, twi, re, im, pr, pi);
        } else {
            stage_any::<FWD, T>(st, twr, twi, pr, pi, re, im);
        }
        in_data = !in_data;
    }
    if !in_data {
        re.copy_from_slice(pr);
        im.copy_from_slice(pi);
    }
}

#[inline(always)]
fn stage_any<const FWD: bool, T: Scalar>(
    st: &Stage,
    twr: &[T],
    twi: &[T],
    xr: &mut [T],
    xi: &mut [T],
    yr: &mut [T],
    yi: &mut [T],
) {
    let (xr, xi) = (&*xr, &*xi);
    match st.radix {
        2 => stage2_generic(st.m, st.s, twr, twi, xr, xi, yr, yi),
        3 => stage3_generic::<FWD, T>(st.m, st.s, twr, twi, xr, xi, yr, yi),
        4 => stage4_generic::<FWD, T>(st.m, st.s, twr, twi, xr, xi, yr, yi),
        _ => stage5_generic::<FWD, T>(st.m, st.s, twr, twi, xr, xi, yr, yi),
    }
}

// Stage kernels. Input layout `x[q + s·(p + j·m)]`, output
// `y[q + s·(radix·p + j)]`, twiddle `w_j[p] = tw[(j−1)·m + p]` applied to
// output `j` (the radix-2 case needs no direction flag: its butterfly is
// real-coefficient, and direction lives entirely in the twiddle table).
// The inner `q` loops run over exactly-`s` sub-slices so bounds checks hoist
// and the loops autovectorize.

#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage2_generic<T: Scalar>(
    m: usize,
    s: usize,
    twr: &[T],
    twi: &[T],
    xr: &[T],
    xi: &[T],
    yr: &mut [T],
    yi: &mut [T],
) {
    if s == 1 {
        for p in 0..m {
            let (wr, wi) = (twr[p], twi[p]);
            let (ar, ai) = (xr[p], xi[p]);
            let (br, bi) = (xr[p + m], xi[p + m]);
            yr[2 * p] = ar + br;
            yi[2 * p] = ai + bi;
            let (ur, ui) = (ar - br, ai - bi);
            yr[2 * p + 1] = ur * wr - ui * wi;
            yi[2 * p + 1] = ur * wi + ui * wr;
        }
    } else {
        for p in 0..m {
            let (wr, wi) = (twr[p], twi[p]);
            let x0r = &xr[s * p..s * p + s];
            let x0i = &xi[s * p..s * p + s];
            let x1r = &xr[s * (p + m)..s * (p + m) + s];
            let x1i = &xi[s * (p + m)..s * (p + m) + s];
            let (y0r, y1r) = yr[2 * s * p..2 * s * p + 2 * s].split_at_mut(s);
            let (y0i, y1i) = yi[2 * s * p..2 * s * p + 2 * s].split_at_mut(s);
            for q in 0..s {
                let (ar, ai) = (x0r[q], x0i[q]);
                let (br, bi) = (x1r[q], x1i[q]);
                y0r[q] = ar + br;
                y0i[q] = ai + bi;
                let (ur, ui) = (ar - br, ai - bi);
                y1r[q] = ur * wr - ui * wi;
                y1i[q] = ur * wi + ui * wr;
            }
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage4_generic<const FWD: bool, T: Scalar>(
    m: usize,
    s: usize,
    twr: &[T],
    twi: &[T],
    xr: &[T],
    xi: &[T],
    yr: &mut [T],
    yi: &mut [T],
) {
    // Forward butterfly: b0 = t0+t2, b1 = t1 − i·u, b2 = t0−t2,
    // b3 = t1 + i·u with t0 = a0+a2, t1 = a0−a2, t2 = a1+a3, u = a1−a3;
    // inverse swaps b1/b3. Each b_j is then rotated by w_j.
    macro_rules! butterfly {
        ($a0r:expr, $a0i:expr, $a1r:expr, $a1i:expr, $a2r:expr, $a2i:expr,
         $a3r:expr, $a3i:expr) => {{
            let (t0r, t0i) = ($a0r + $a2r, $a0i + $a2i);
            let (t1r, t1i) = ($a0r - $a2r, $a0i - $a2i);
            let (t2r, t2i) = ($a1r + $a3r, $a1i + $a3i);
            let (ur, ui) = ($a1r - $a3r, $a1i - $a3i);
            let (b1r, b1i, b3r, b3i) = if FWD {
                (t1r + ui, t1i - ur, t1r - ui, t1i + ur)
            } else {
                (t1r - ui, t1i + ur, t1r + ui, t1i - ur)
            };
            (
                t0r + t2r,
                t0i + t2i,
                b1r,
                b1i,
                t0r - t2r,
                t0i - t2i,
                b3r,
                b3i,
            )
        }};
    }
    if s == 1 {
        for p in 0..m {
            let (w1r, w1i) = (twr[p], twi[p]);
            let (w2r, w2i) = (twr[m + p], twi[m + p]);
            let (w3r, w3i) = (twr[2 * m + p], twi[2 * m + p]);
            let (b0r, b0i, b1r, b1i, b2r, b2i, b3r, b3i) = butterfly!(
                xr[p],
                xi[p],
                xr[p + m],
                xi[p + m],
                xr[p + 2 * m],
                xi[p + 2 * m],
                xr[p + 3 * m],
                xi[p + 3 * m]
            );
            yr[4 * p] = b0r;
            yi[4 * p] = b0i;
            yr[4 * p + 1] = b1r * w1r - b1i * w1i;
            yi[4 * p + 1] = b1r * w1i + b1i * w1r;
            yr[4 * p + 2] = b2r * w2r - b2i * w2i;
            yi[4 * p + 2] = b2r * w2i + b2i * w2r;
            yr[4 * p + 3] = b3r * w3r - b3i * w3i;
            yi[4 * p + 3] = b3r * w3i + b3i * w3r;
        }
    } else {
        for p in 0..m {
            let (w1r, w1i) = (twr[p], twi[p]);
            let (w2r, w2i) = (twr[m + p], twi[m + p]);
            let (w3r, w3i) = (twr[2 * m + p], twi[2 * m + p]);
            let x0r = &xr[s * p..s * p + s];
            let x0i = &xi[s * p..s * p + s];
            let x1r = &xr[s * (p + m)..s * (p + m) + s];
            let x1i = &xi[s * (p + m)..s * (p + m) + s];
            let x2r = &xr[s * (p + 2 * m)..s * (p + 2 * m) + s];
            let x2i = &xi[s * (p + 2 * m)..s * (p + 2 * m) + s];
            let x3r = &xr[s * (p + 3 * m)..s * (p + 3 * m) + s];
            let x3i = &xi[s * (p + 3 * m)..s * (p + 3 * m) + s];
            let (y0r, rest) = yr[4 * s * p..4 * s * p + 4 * s].split_at_mut(s);
            let (y1r, rest) = rest.split_at_mut(s);
            let (y2r, y3r) = rest.split_at_mut(s);
            let (y0i, rest) = yi[4 * s * p..4 * s * p + 4 * s].split_at_mut(s);
            let (y1i, rest) = rest.split_at_mut(s);
            let (y2i, y3i) = rest.split_at_mut(s);
            for q in 0..s {
                let (b0r, b0i, b1r, b1i, b2r, b2i, b3r, b3i) =
                    butterfly!(x0r[q], x0i[q], x1r[q], x1i[q], x2r[q], x2i[q], x3r[q], x3i[q]);
                y0r[q] = b0r;
                y0i[q] = b0i;
                y1r[q] = b1r * w1r - b1i * w1i;
                y1i[q] = b1r * w1i + b1i * w1r;
                y2r[q] = b2r * w2r - b2i * w2i;
                y2i[q] = b2r * w2i + b2i * w2r;
                y3r[q] = b3r * w3r - b3i * w3i;
                y3i[q] = b3r * w3i + b3i * w3r;
            }
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage3_generic<const FWD: bool, T: Scalar>(
    m: usize,
    s: usize,
    twr: &[T],
    twi: &[T],
    xr: &[T],
    xi: &[T],
    yr: &mut [T],
    yi: &mut [T],
) {
    // X1 = m0 − i·h·u, X2 = m0 + i·h·u (forward) with t = a1+a2,
    // u = a1−a2, m0 = a0 − t/2, h = √3/2; inverse swaps X1/X2.
    let h = T::from_f64(0.5 * 3.0f64.sqrt());
    for p in 0..m {
        let (w1r, w1i) = (twr[p], twi[p]);
        let (w2r, w2i) = (twr[m + p], twi[m + p]);
        let x0r = &xr[s * p..s * p + s];
        let x0i = &xi[s * p..s * p + s];
        let x1r = &xr[s * (p + m)..s * (p + m) + s];
        let x1i = &xi[s * (p + m)..s * (p + m) + s];
        let x2r = &xr[s * (p + 2 * m)..s * (p + 2 * m) + s];
        let x2i = &xi[s * (p + 2 * m)..s * (p + 2 * m) + s];
        let (y0r, rest) = yr[3 * s * p..3 * s * p + 3 * s].split_at_mut(s);
        let (y1r, y2r) = rest.split_at_mut(s);
        let (y0i, rest) = yi[3 * s * p..3 * s * p + 3 * s].split_at_mut(s);
        let (y1i, y2i) = rest.split_at_mut(s);
        for q in 0..s {
            let (a0r, a0i) = (x0r[q], x0i[q]);
            let (a1r, a1i) = (x1r[q], x1i[q]);
            let (a2r, a2i) = (x2r[q], x2i[q]);
            let (tr, ti) = (a1r + a2r, a1i + a2i);
            let (ur, ui) = (a1r - a2r, a1i - a2i);
            y0r[q] = a0r + tr;
            y0i[q] = a0i + ti;
            let (m0r, m0i) = (a0r - T::HALF * tr, a0i - T::HALF * ti);
            let (b1r, b1i, b2r, b2i) = if FWD {
                (m0r + h * ui, m0i - h * ur, m0r - h * ui, m0i + h * ur)
            } else {
                (m0r - h * ui, m0i + h * ur, m0r + h * ui, m0i - h * ur)
            };
            y1r[q] = b1r * w1r - b1i * w1i;
            y1i[q] = b1r * w1i + b1i * w1r;
            y2r[q] = b2r * w2r - b2i * w2i;
            y2i[q] = b2r * w2i + b2i * w2r;
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage5_generic<const FWD: bool, T: Scalar>(
    m: usize,
    s: usize,
    twr: &[T],
    twi: &[T],
    xr: &[T],
    xi: &[T],
    yr: &mut [T],
    yi: &mut [T],
) {
    // Winograd-style radix-5: with t1 = a1+a4, t2 = a2+a3, t3 = a1−a4,
    // t4 = a2−a3, m1 = a0 + c1·t1 + c2·t2, m2 = a0 + c2·t1 + c1·t2,
    // m3 = −i(s1·t3 + s2·t4), m4 = −i(s2·t3 − s1·t4):
    // X1 = m1+m3, X2 = m2+m4, X3 = m2−m4, X4 = m1−m3 (signs of m3/m4 flip
    // for the inverse).
    let (s1f, c1f) = (std::f64::consts::TAU / 5.0).sin_cos();
    let (s2f, c2f) = (2.0 * std::f64::consts::TAU / 5.0).sin_cos();
    let (s1, c1) = (T::from_f64(s1f), T::from_f64(c1f));
    let (s2, c2) = (T::from_f64(s2f), T::from_f64(c2f));
    let sg = if FWD { T::ONE } else { -T::ONE };
    for p in 0..m {
        let base = |j: usize| s * (p + j * m);
        let x0r = &xr[base(0)..base(0) + s];
        let x0i = &xi[base(0)..base(0) + s];
        let x1r = &xr[base(1)..base(1) + s];
        let x1i = &xi[base(1)..base(1) + s];
        let x2r = &xr[base(2)..base(2) + s];
        let x2i = &xi[base(2)..base(2) + s];
        let x3r = &xr[base(3)..base(3) + s];
        let x3i = &xi[base(3)..base(3) + s];
        let x4r = &xr[base(4)..base(4) + s];
        let x4i = &xi[base(4)..base(4) + s];
        let (y0r, rest) = yr[5 * s * p..5 * s * p + 5 * s].split_at_mut(s);
        let (y1r, rest) = rest.split_at_mut(s);
        let (y2r, rest) = rest.split_at_mut(s);
        let (y3r, y4r) = rest.split_at_mut(s);
        let (y0i, rest) = yi[5 * s * p..5 * s * p + 5 * s].split_at_mut(s);
        let (y1i, rest) = rest.split_at_mut(s);
        let (y2i, rest) = rest.split_at_mut(s);
        let (y3i, y4i) = rest.split_at_mut(s);
        for q in 0..s {
            let (a0r, a0i) = (x0r[q], x0i[q]);
            let (t1r, t1i) = (x1r[q] + x4r[q], x1i[q] + x4i[q]);
            let (t2r, t2i) = (x2r[q] + x3r[q], x2i[q] + x3i[q]);
            let (t3r, t3i) = (x1r[q] - x4r[q], x1i[q] - x4i[q]);
            let (t4r, t4i) = (x2r[q] - x3r[q], x2i[q] - x3i[q]);
            y0r[q] = a0r + t1r + t2r;
            y0i[q] = a0i + t1i + t2i;
            let (m1r, m1i) = (a0r + c1 * t1r + c2 * t2r, a0i + c1 * t1i + c2 * t2i);
            let (m2r, m2i) = (a0r + c2 * t1r + c1 * t2r, a0i + c2 * t1i + c1 * t2i);
            // v1 = s1·t3 + s2·t4, v2 = s2·t3 − s1·t4; m3 = ∓i·v1, m4 = ∓i·v2.
            let (v1r, v1i) = (s1 * t3r + s2 * t4r, s1 * t3i + s2 * t4i);
            let (v2r, v2i) = (s2 * t3r - s1 * t4r, s2 * t3i - s1 * t4i);
            let (m3r, m3i) = (sg * v1i, -sg * v1r);
            let (m4r, m4i) = (sg * v2i, -sg * v2r);
            let (b1r, b1i) = (m1r + m3r, m1i + m3i);
            let (b2r, b2i) = (m2r + m4r, m2i + m4i);
            let (b3r, b3i) = (m2r - m4r, m2i - m4i);
            let (b4r, b4i) = (m1r - m3r, m1i - m3i);
            let (w1r, w1i) = (twr[p], twi[p]);
            let (w2r, w2i) = (twr[m + p], twi[m + p]);
            let (w3r, w3i) = (twr[2 * m + p], twi[2 * m + p]);
            let (w4r, w4i) = (twr[3 * m + p], twi[3 * m + p]);
            y1r[q] = b1r * w1r - b1i * w1i;
            y1i[q] = b1r * w1i + b1i * w1r;
            y2r[q] = b2r * w2r - b2i * w2i;
            y2i[q] = b2r * w2i + b2i * w2r;
            y3r[q] = b3r * w3r - b3i * w3i;
            y3i[q] = b3r * w3i + b3i * w3r;
            y4r[q] = b4r * w4r - b4i * w4i;
            y4i[q] = b4r * w4i + b4i * w4r;
        }
    }
}

/// Bluestein chirp-z fallback: DFT of arbitrary `n` as a length-`m` cyclic
/// convolution with a chirp, `m` 5-smooth and ≥ `2n−1`.
#[derive(Debug)]
struct Bluestein<T: Scalar> {
    n: usize,
    m: usize,
    /// The (always-Direct) plan for the convolution length.
    plan_m: Arc<FftPlan<T>>,
    /// `exp(−iπk²/n)` for `k in 0..n` (angles reduced with `k² mod 2n`).
    chirp_re: Vec<T>,
    chirp_im: Vec<T>,
    /// Forward FFT of the conjugate-chirp filter, pre-scaled by `1/m` so the
    /// unscaled inverse convolution comes out exactly normalised.
    bf_re: Vec<T>,
    bf_im: Vec<T>,
}

impl<T: Scalar> Bluestein<T> {
    fn build(n: usize) -> Bluestein<T> {
        let m = crate::fft::next_five_smooth(2 * n - 1);
        let plan_m = FftPlan::<T>::get(m);
        let two_n = 2 * n as u128;
        let mut chirp_re = Vec::with_capacity(n);
        let mut chirp_im = Vec::with_capacity(n);
        for k in 0..n as u128 {
            let sq = ((k * k) % two_n) as f64;
            let ang = -std::f64::consts::PI * sq / n as f64;
            let (si, co) = ang.sin_cos();
            chirp_re.push(T::from_f64(co));
            chirp_im.push(T::from_f64(si));
        }
        let mut bf_re = vec![T::ZERO; m];
        let mut bf_im = vec![T::ZERO; m];
        for k in 0..n {
            bf_re[k] = chirp_re[k];
            bf_im[k] = -chirp_im[k];
            if k > 0 {
                bf_re[m - k] = chirp_re[k];
                bf_im[m - k] = -chirp_im[k];
            }
        }
        // One-time build cost: the scalar path keeps the filter spectrum
        // independent of the runtime dispatch decision (the Stockham stages
        // are bitwise mode-identical anyway; this just makes it obvious).
        let mut scratch = FftScratch::new();
        plan_m.execute_unscaled_split_with(
            SimdMode::Scalar,
            &mut bf_re,
            &mut bf_im,
            &mut scratch,
            false,
        );
        let inv_m = T::from_f64(1.0 / m as f64);
        for v in bf_re.iter_mut().chain(bf_im.iter_mut()) {
            *v *= inv_m;
        }
        Bluestein {
            n,
            m,
            plan_m,
            chirp_re,
            chirp_im,
            bf_re,
            bf_im,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        mode: SimdMode,
        re: &mut [T],
        im: &mut [T],
        pong_re: &mut Vec<T>,
        pong_im: &mut Vec<T>,
        blu_re: &mut Vec<T>,
        blu_im: &mut Vec<T>,
        inverse: bool,
    ) {
        let (n, m) = (self.n, self.m);
        // Unscaled IDFT via conjugation: conj(DFT(conj(x))).
        if inverse {
            for v in im.iter_mut() {
                *v = -*v;
            }
        }
        let stages = self.plan_m.direct_stages();
        if pong_re.len() < m {
            pong_re.resize(m, T::ZERO);
        }
        if pong_im.len() < m {
            pong_im.resize(m, T::ZERO);
        }
        if blu_re.len() < m {
            blu_re.resize(m, T::ZERO);
        }
        if blu_im.len() < m {
            blu_im.resize(m, T::ZERO);
        }
        // a = x·chirp, zero-padded to m.
        simd::cmul(
            mode,
            re,
            im,
            &self.chirp_re,
            &self.chirp_im,
            &mut blu_re[..n],
            &mut blu_im[..n],
        );
        blu_re[n..m].fill(T::ZERO);
        blu_im[n..m].fill(T::ZERO);
        // A = FFT_m(a), C = A·(B/m), c = unscaled IFFT_m(C).
        stages.run(
            mode,
            false,
            &mut blu_re[..m],
            &mut blu_im[..m],
            &mut pong_re[..m],
            &mut pong_im[..m],
        );
        simd::cmul(
            mode,
            &blu_re[..m],
            &blu_im[..m],
            &self.bf_re,
            &self.bf_im,
            &mut pong_re[..m],
            &mut pong_im[..m],
        );
        stages.run(
            mode,
            true,
            &mut pong_re[..m],
            &mut pong_im[..m],
            &mut blu_re[..m],
            &mut blu_im[..m],
        );
        // y = c·chirp (first n samples).
        simd::cmul(
            mode,
            &pong_re[..n],
            &pong_im[..n],
            &self.chirp_re,
            &self.chirp_im,
            re,
            im,
        );
        if inverse {
            for v in im.iter_mut() {
                *v = -*v;
            }
        }
    }
}

#[derive(Debug)]
enum PlanKind<T: Scalar> {
    Direct(Stages<T>),
    Bluestein(Box<Bluestein<T>>),
}

/// A reusable execution plan for one transform size (any `n ≥ 1`) at one
/// [`Scalar`] precision (defaulting to the `f64` reference).
#[derive(Debug)]
pub struct FftPlan<T: Scalar = f64> {
    n: usize,
    kind: PlanKind<T>,
}

impl<T: Scalar> FftPlan<T> {
    /// Transform size this plan executes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate size-0 plan (never constructed in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn build(n: usize) -> FftPlan<T> {
        assert!(n >= 1, "FFT length must be at least 1");
        let kind = if crate::fft::is_five_smooth(n) {
            PlanKind::Direct(Stages::build(n))
        } else {
            PlanKind::Bluestein(Box::new(Bluestein::build(n)))
        };
        FftPlan { n, kind }
    }

    fn direct_stages(&self) -> &Stages<T> {
        match &self.kind {
            PlanKind::Direct(s) => s,
            PlanKind::Bluestein(_) => unreachable!("convolution length is always 5-smooth"),
        }
    }

    /// Fetches (building on first use) the shared plan for size `n` at this
    /// precision. `f64` and `f32` plans are distinct registry entries —
    /// each precision carries its own narrowed twiddle/chirp tables.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn get(n: usize) -> Arc<FftPlan<T>> {
        assert!(n >= 1, "FFT length must be at least 1");
        // One registry for both precisions, keyed by the scalar's TypeId;
        // entries are type-erased and downcast on the way out (infallible
        // by construction of the key).
        type Registry = RwLock<HashMap<(TypeId, usize), Arc<dyn Any + Send + Sync>>>;
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        let registry = REGISTRY.get_or_init(|| RwLock::new(HashMap::new()));
        let key = (TypeId::of::<T>(), n);
        // A poisoned registry only means some unrelated thread panicked
        // while inserting; the map itself is still consistent.
        if let Some(plan) = registry.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            return match Arc::clone(plan).downcast::<FftPlan<T>>() {
                Ok(p) => p,
                Err(_) => unreachable!("registry entry matches its TypeId key"),
            };
        }
        // Build outside the lock: a Bluestein plan recursively fetches its
        // convolution-length plan, which must not re-enter a held write
        // lock. A racing duplicate build is harmless (one Arc wins).
        let plan: Arc<dyn Any + Send + Sync> = Arc::new(FftPlan::<T>::build(n));
        let mut map = registry.write().unwrap_or_else(|e| e.into_inner());
        match Arc::clone(map.entry(key).or_insert(plan)).downcast::<FftPlan<T>>() {
            Ok(p) => p,
            Err(_) => unreachable!("registry entry matches its TypeId key"),
        }
    }

    /// Executes the transform on split-complex data without the inverse
    /// `1/n` normalisation, using the process-wide dispatch mode.
    ///
    /// The 2-D paths use this to fold both axes' normalisations into a
    /// single pass (or into the SOCS accumulation weight) instead of
    /// re-scaling the whole field after every 1-D transform.
    ///
    /// # Panics
    ///
    /// Panics when `re`/`im` lengths differ from the plan size.
    #[inline]
    pub fn execute_unscaled_split(
        &self,
        re: &mut [T],
        im: &mut [T],
        scratch: &mut FftScratch<T>,
        inverse: bool,
    ) {
        self.execute_unscaled_split_with(simd::active_mode(), re, im, scratch, inverse);
    }

    /// [`FftPlan::execute_unscaled_split`] with an explicit dispatch mode
    /// (equivalence tests and benchmarks compare both paths in-process).
    ///
    /// # Panics
    ///
    /// Panics when `re`/`im` lengths differ from the plan size.
    pub fn execute_unscaled_split_with(
        &self,
        mode: SimdMode,
        re: &mut [T],
        im: &mut [T],
        scratch: &mut FftScratch<T>,
        inverse: bool,
    ) {
        let FftScratch {
            pong_re,
            pong_im,
            blu_re,
            blu_im,
            ..
        } = scratch;
        self.execute_split_parts(mode, re, im, pong_re, pong_im, blu_re, blu_im, inverse);
    }

    /// Split execution with the scratch vectors passed individually, so 2-D
    /// drivers holding other parts of an [`FftScratch`] (transpose/gather
    /// lanes) can run row and column transforms without borrow conflicts.
    ///
    /// # Panics
    ///
    /// Panics when `re`/`im` lengths differ from the plan size.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn execute_split_parts(
        &self,
        mode: SimdMode,
        re: &mut [T],
        im: &mut [T],
        pong_re: &mut Vec<T>,
        pong_im: &mut Vec<T>,
        blu_re: &mut Vec<T>,
        blu_im: &mut Vec<T>,
        inverse: bool,
    ) {
        assert_eq!(re.len(), self.n, "re length does not match plan size");
        assert_eq!(im.len(), self.n, "im length does not match plan size");
        if self.n <= 1 {
            return;
        }
        match &self.kind {
            PlanKind::Direct(stages) => {
                if pong_re.len() < self.n {
                    pong_re.resize(self.n, T::ZERO);
                }
                if pong_im.len() < self.n {
                    pong_im.resize(self.n, T::ZERO);
                }
                stages.run(
                    mode,
                    inverse,
                    re,
                    im,
                    &mut pong_re[..self.n],
                    &mut pong_im[..self.n],
                );
            }
            PlanKind::Bluestein(b) => {
                b.execute(mode, re, im, pong_re, pong_im, blu_re, blu_im, inverse)
            }
        }
    }
}

impl FftPlan<f64> {
    /// Executes the transform in place on interleaved [`Complex`] samples,
    /// including the `1/n` normalisation on the inverse so
    /// `ifft(fft(x)) == x`.
    ///
    /// Compatibility wrapper: splits into a transient SoA pair per call.
    /// Hot paths hold a [`crate::Field`] / [`FftScratch`] and use
    /// [`FftPlan::execute_unscaled_split`] instead. [`Complex`] is `f64`,
    /// so the interleaved surface exists on the reference-precision plan
    /// only.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan size.
    #[inline]
    pub fn execute(&self, data: &mut [Complex], inverse: bool) {
        self.execute_unscaled(data, inverse);
        if inverse && self.n > 1 {
            let inv = 1.0 / self.n as f64;
            for z in data.iter_mut() {
                *z = z.scale(inv);
            }
        }
    }

    /// Executes the transform on interleaved samples without the inverse
    /// `1/n` normalisation (compatibility wrapper, see [`FftPlan::execute`]).
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan size.
    pub fn execute_unscaled(&self, data: &mut [Complex], inverse: bool) {
        assert_eq!(data.len(), self.n, "data length does not match plan size");
        if self.n <= 1 {
            return;
        }
        let mut re: Vec<f64> = data.iter().map(|z| z.re).collect();
        let mut im: Vec<f64> = data.iter().map(|z| z.im).collect();
        let mut scratch = FftScratch::new();
        self.execute_unscaled_split(&mut re, &mut im, &mut scratch, inverse);
        for (z, (r, i)) in data.iter_mut().zip(re.iter().zip(&im)) {
            *z = Complex::new(*r, *i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) DFT used as the ground truth.
    fn dft(input: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = input.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, &x) in input.iter().enumerate() {
                let ang = sign * std::f64::consts::TAU * (k * j) as f64 / n as f64;
                *o += x * Complex::from_angle(ang);
            }
        }
        if inverse {
            for o in out.iter_mut() {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    fn check_against_dft(n: usize) {
        use cardopc_geometry::SplitMix64;
        let mut rng = SplitMix64::new(n as u64 + 7);
        let input: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect();
        for inverse in [false, true] {
            let expected = dft(&input, inverse);
            let mut got = input.clone();
            FftPlan::<f64>::get(n).execute(&mut got, inverse);
            let scale = (n as f64).max(1.0);
            for (a, b) in got.iter().zip(&expected) {
                assert!(
                    (*a - *b).norm() < 1e-9 * scale,
                    "size {n} inverse {inverse}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn plan_matches_naive_dft_for_all_small_sizes() {
        // Every length 1..=36 — exercises all radix butterflies, every
        // greedy factoring order, and the Bluestein fallback (7, 11, 13,
        // 14, 17, 19, 21, 22, 23, 26, 28, 29, 31, 33, 34, 35 are not
        // 5-smooth).
        for n in 1..=36 {
            check_against_dft(n);
        }
    }

    #[test]
    fn plan_matches_naive_dft_for_structured_sizes() {
        // Pure powers of each radix, mixed 5-smooth composites, a prime,
        // and a prime power.
        for n in [64, 81, 125, 120, 135, 192, 243, 320, 360, 500, 512, 97, 121] {
            check_against_dft(n);
        }
    }

    #[test]
    fn f32_plan_matches_f64_reference_within_tolerance() {
        use cardopc_geometry::SplitMix64;
        // Direct (5-smooth) and Bluestein sizes through the f32 plan, with
        // the f64 plan of the same size as the reference.
        for n in [16usize, 60, 97, 125] {
            let mut rng = SplitMix64::new(n as u64 + 3);
            let re64: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let im64: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let mut re32: Vec<f32> = re64.iter().map(|&v| v as f32).collect();
            let mut im32: Vec<f32> = im64.iter().map(|&v| v as f32).collect();
            let (mut re, mut im) = (re64.clone(), im64.clone());
            let mut s64 = FftScratch::new();
            FftPlan::<f64>::get(n).execute_unscaled_split(&mut re, &mut im, &mut s64, false);
            let mut s32 = FftScratch::new();
            FftPlan::<f32>::get(n).execute_unscaled_split(&mut re32, &mut im32, &mut s32, false);
            let tol = 1e-4 * n as f64;
            for k in 0..n {
                assert!(
                    (f64::from(re32[k]) - re[k]).abs() < tol
                        && (f64::from(im32[k]) - im[k]).abs() < tol,
                    "n {n} sample {k}: ({}, {}) vs ({}, {})",
                    re32[k],
                    im32[k],
                    re[k],
                    im[k]
                );
            }
        }
    }

    #[test]
    fn split_path_matches_interleaved_path_bitwise() {
        use cardopc_geometry::SplitMix64;
        for n in [16usize, 15, 13] {
            let mut rng = SplitMix64::new(n as u64);
            let input: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
                .collect();
            let plan = FftPlan::<f64>::get(n);
            let mut interleaved = input.clone();
            plan.execute_unscaled(&mut interleaved, false);
            let mut re: Vec<f64> = input.iter().map(|z| z.re).collect();
            let mut im: Vec<f64> = input.iter().map(|z| z.im).collect();
            let mut scratch = FftScratch::new();
            plan.execute_unscaled_split(&mut re, &mut im, &mut scratch, false);
            for (k, z) in interleaved.iter().enumerate() {
                assert_eq!(z.re, re[k], "n {n} sample {k}");
                assert_eq!(z.im, im[k], "n {n} sample {k}");
            }
        }
    }

    #[test]
    fn registry_returns_shared_plans_per_precision() {
        let a = FftPlan::<f64>::get(64);
        let b = FftPlan::<f64>::get(64);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 64);
        assert!(!a.is_empty());
        // The f32 registry entry for the same size is its own plan (and is
        // likewise shared across fetches).
        let c = FftPlan::<f32>::get(64);
        let d = FftPlan::<f32>::get(64);
        assert!(Arc::ptr_eq(&c, &d));
        assert_eq!(c.len(), 64);
    }

    #[test]
    fn unscaled_inverse_differs_by_n() {
        for n in [8usize, 12, 11] {
            let plan = FftPlan::<f64>::get(n);
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64)))
                .collect();
            let mut scaled = input.clone();
            plan.execute(&mut scaled, true);
            let mut unscaled = input;
            plan.execute_unscaled(&mut unscaled, true);
            for (s, u) in scaled.iter().zip(&unscaled) {
                assert!((u.scale(1.0 / n as f64) - *s).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn non_five_smooth_sizes_roundtrip() {
        use cardopc_geometry::SplitMix64;
        // Bluestein path: prime, prime-squared, and 2·prime lengths.
        for n in [7usize, 49, 14, 97] {
            let mut rng = SplitMix64::new(n as u64);
            let input: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
                .collect();
            let plan = FftPlan::<f64>::get(n);
            let mut x = input.clone();
            plan.execute(&mut x, false);
            plan.execute(&mut x, true);
            for (a, b) in x.iter().zip(&input) {
                assert!((*a - *b).norm() < 1e-10, "n {n}");
            }
        }
    }

    #[test]
    fn zero_length_plan_rejected() {
        assert!(std::panic::catch_unwind(|| FftPlan::<f64>::get(0)).is_err());
    }
}
