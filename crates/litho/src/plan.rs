//! Cached FFT execution plans.
//!
//! Every transform size used by the engine gets one [`FftPlan`] holding the
//! bit-reversal permutation and a precomputed twiddle table, built once and
//! shared process-wide through a registry behind a `OnceLock`. This replaces
//! the seed implementation's per-call `sin_cos` recurrence, which both
//! recomputed the twiddles on every transform and accumulated rounding error
//! multiplicatively along each butterfly stage.
//!
//! The table layout is the classic radix-2 one: `n/2` forward twiddles
//! `w_n^k = exp(-2πik/n)`; a stage of length `len` reads them with stride
//! `n/len`. Inverse twiddles are the conjugate table, stored separately so
//! the butterfly loop stays branch-free.

use crate::fft::Complex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// A reusable execution plan for power-of-two radix-2 FFTs of one size.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// Index pairs `(i, j)` with `i < j` to swap for the bit-reversal pass.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles `exp(-2πik/n)` for `k in 0..n/2`.
    forward: Vec<Complex>,
    /// Inverse twiddles (conjugates of `forward`).
    inverse: Vec<Complex>,
}

impl FftPlan {
    /// Transform size this plan executes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate size-0 plan (never constructed in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn build(n: usize) -> FftPlan {
        assert!(
            crate::fft::is_power_of_two(n),
            "FFT length must be a power of two"
        );
        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                swaps.push((i as u32, j as u32));
            }
        }
        let half = n / 2;
        let mut forward = Vec::with_capacity(half);
        let mut inverse = Vec::with_capacity(half);
        for k in 0..half {
            let w = Complex::from_angle(-std::f64::consts::TAU * k as f64 / n as f64);
            forward.push(w);
            inverse.push(w.conj());
        }
        FftPlan {
            n,
            swaps,
            forward,
            inverse,
        }
    }

    /// Fetches (building on first use) the shared plan for size `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two.
    pub fn get(n: usize) -> Arc<FftPlan> {
        assert!(
            crate::fft::is_power_of_two(n),
            "FFT length must be a power of two"
        );
        static REGISTRY: OnceLock<RwLock<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
        let registry = REGISTRY.get_or_init(|| RwLock::new(HashMap::new()));
        // A poisoned registry only means some unrelated thread panicked
        // while inserting; the map itself is still consistent.
        if let Some(plan) = registry.read().unwrap_or_else(|e| e.into_inner()).get(&n) {
            return Arc::clone(plan);
        }
        let mut map = registry.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(n).or_insert_with(|| Arc::new(FftPlan::build(n))))
    }

    /// Executes the transform in place, including the `1/n` normalisation on
    /// the inverse so `ifft(fft(x)) == x`.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan size.
    #[inline]
    pub fn execute(&self, data: &mut [Complex], inverse: bool) {
        self.execute_unscaled(data, inverse);
        if inverse && self.n > 1 {
            let inv = 1.0 / self.n as f64;
            for z in data.iter_mut() {
                *z = z.scale(inv);
            }
        }
    }

    /// Executes the transform without the inverse `1/n` normalisation.
    ///
    /// The 2-D paths use this to fold both axes' normalisations into a single
    /// pass (or into the SOCS accumulation weight) instead of re-scaling the
    /// whole field after every 1-D transform.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan size.
    pub fn execute_unscaled(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "data length does not match plan size");
        if n <= 1 {
            return;
        }

        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }

        let twiddles = if inverse {
            &self.inverse
        } else {
            &self.forward
        };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            let mut i = 0;
            while i < n {
                let (lo, hi) = data[i..i + len].split_at_mut(half);
                for k in 0..half {
                    let u = lo[k];
                    let v = hi[k] * twiddles[k * stride];
                    lo[k] = u + v;
                    hi[k] = u - v;
                }
                i += len;
            }
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) DFT used as the ground truth.
    fn dft(input: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = input.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, &x) in input.iter().enumerate() {
                let ang = sign * std::f64::consts::TAU * (k * j) as f64 / n as f64;
                *o += x * Complex::from_angle(ang);
            }
        }
        if inverse {
            for o in out.iter_mut() {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    #[test]
    fn plan_matches_naive_dft_for_all_sizes() {
        use cardopc_geometry::SplitMix64;
        let mut n = 2usize;
        while n <= 1024 {
            let mut rng = SplitMix64::new(n as u64);
            let input: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
                .collect();
            for inverse in [false, true] {
                let expected = dft(&input, inverse);
                let mut got = input.clone();
                FftPlan::get(n).execute(&mut got, inverse);
                let scale = (n as f64).max(1.0);
                for (a, b) in got.iter().zip(&expected) {
                    assert!(
                        (*a - *b).norm() < 1e-9 * scale,
                        "size {n} inverse {inverse}: {a} vs {b}"
                    );
                }
            }
            n *= 2;
        }
    }

    #[test]
    fn registry_returns_shared_plans() {
        let a = FftPlan::get(64);
        let b = FftPlan::get(64);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 64);
        assert!(!a.is_empty());
    }

    #[test]
    fn unscaled_inverse_differs_by_n() {
        let plan = FftPlan::get(8);
        let input: Vec<Complex> = (0..8)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let mut scaled = input.clone();
        plan.execute(&mut scaled, true);
        let mut unscaled = input;
        plan.execute_unscaled(&mut unscaled, true);
        for (s, u) in scaled.iter().zip(&unscaled) {
            assert!((u.scale(1.0 / 8.0) - *s).norm() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_plan_panics() {
        let _ = FftPlan::get(12);
    }
}
