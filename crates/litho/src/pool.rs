//! A persistent chunk-claiming worker pool for the litho hot paths.
//!
//! The seed engine spawned fresh OS threads inside every `aerial_image`
//! call via `std::thread::scope`. This module keeps a process-wide set of
//! workers alive instead (plus explicit pools for tests), parked on a
//! condvar between jobs. Tasks of a job are claimed with an atomic counter
//! ("work-stealing-lite": idle workers keep pulling the next unclaimed task
//! index, so uneven task costs still balance), and the submitting thread
//! participates in its own job, which both avoids a context switch for
//! single-task jobs and guarantees forward progress even when every worker
//! is busy with an outer job (nested `run` calls therefore cannot deadlock —
//! they degrade to the submitter draining its own tasks).
//!
//! Worker count resolution for the shared pool: the `CARDOPC_THREADS`
//! environment variable when set, otherwise `std::thread::available_
//! parallelism()` — queried exactly once, never per call.

use crate::error::LithoError;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// A lifetime-erased pointer to the job closure.
///
/// Soundness: `WorkerPool::run` does not return until every task of its job
/// has completed (`pending == 0`), so the closure outlives every dereference
/// of this pointer. Workers never call the closure for task indices `>=
/// total`, and never touch the pointer again once `pending` reaches zero.
struct JobFn(*const (dyn Fn(usize) + Sync));
unsafe impl Send for JobFn {}
unsafe impl Sync for JobFn {}

struct Job {
    func: JobFn,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total number of tasks.
    total: usize,
    /// Tasks claimed but not yet finished plus tasks unclaimed.
    pending: AtomicUsize,
    /// Set when any task panicked (the panic is rethrown by `run`).
    panicked: AtomicBool,
}

impl Job {
    /// Claims and runs tasks until the job is drained. Returns once no more
    /// tasks are claimable (other workers may still be finishing theirs).
    fn drain(&self) -> bool {
        let mut finished_last = false;
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            if t >= self.total {
                return finished_last;
            }
            let f = unsafe { &*self.func.0 };
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(t))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            finished_last = self.pending.fetch_sub(1, Ordering::AcqRel) == 1;
        }
    }
}

#[derive(Default)]
struct PoolState {
    job: Option<Arc<Job>>,
    /// Bumped when a new job is installed so sleeping workers can tell a new
    /// job from one they already drained.
    generation: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Wakes workers when a job is installed or the pool shuts down.
    work_ready: Condvar,
    /// Wakes submitters when the last task of a job finishes.
    job_done: Condvar,
}

impl Shared {
    /// Locks the pool state, recovering from mutex poisoning.
    ///
    /// Task panics are caught inside [`Job::drain`] (never under the lock),
    /// so a poisoned mutex can only come from a panic in one of the trivial
    /// critical sections below — all of which leave `PoolState` in a valid
    /// state (plain assignments). Recovering keeps an otherwise-healthy
    /// pool usable instead of cascading panics into every later job.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A fixed-size persistent worker pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Worker threads plus the participating submitter.
    parallelism: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `parallelism` total executors (the submitting
    /// thread counts as one, so `parallelism - 1` worker threads are
    /// spawned; `parallelism <= 1` spawns none and `run` executes inline).
    ///
    /// When the OS refuses a thread, the pool degrades to the executors
    /// that did spawn (worst case: inline execution on the submitter) —
    /// use [`WorkerPool::try_new`] to surface spawn failures instead.
    pub fn new(parallelism: usize) -> WorkerPool {
        Self::build(parallelism).0
    }

    /// [`WorkerPool::new`], surfacing thread-spawn failures as
    /// [`LithoError::WorkerSpawn`] instead of silently degrading.
    ///
    /// # Errors
    ///
    /// [`LithoError::WorkerSpawn`] when any worker thread could not be
    /// spawned (already-spawned workers are shut down and joined).
    pub fn try_new(parallelism: usize) -> Result<WorkerPool, LithoError> {
        let (pool, err) = Self::build(parallelism);
        match err {
            None => Ok(pool),
            Some(e) => Err(e), // dropping `pool` joins the partial spawn set
        }
    }

    /// Spawns up to `parallelism - 1` workers, stopping at the first spawn
    /// failure; returns the (possibly degraded) pool and the failure.
    fn build(parallelism: usize) -> (WorkerPool, Option<LithoError>) {
        let parallelism = parallelism.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(parallelism - 1);
        let mut err = None;
        for i in 1..parallelism {
            let worker_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("cardopc-litho-{i}"))
                .spawn(move || worker_loop(&worker_shared))
            {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    err = Some(LithoError::WorkerSpawn(e.to_string()));
                    break;
                }
            }
        }
        let pool = WorkerPool {
            shared,
            parallelism: handles.len() + 1,
            handles,
        };
        (pool, err)
    }

    /// The process-wide pool shared by the litho engine, pixel ILT and the
    /// benchmark harness. Sized once from `CARDOPC_THREADS` (when set to a
    /// positive integer) or `std::thread::available_parallelism()`.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(configured_parallelism()))
    }

    /// Total executors (worker threads + the participating submitter).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The parallelism [`WorkerPool::global`] resolves to:
    /// `CARDOPC_THREADS` when set to a positive integer, otherwise the
    /// machine's available parallelism. Exposed so embedders (the
    /// `cardopc` CLI and `cardopc-serve`) can document and implement
    /// thread-count precedence against the same source of truth.
    pub fn configured_parallelism() -> usize {
        configured_parallelism()
    }

    /// Runs `f(0..tasks)` across the pool, returning when every task has
    /// finished. Tasks are claimed dynamically in ascending index order.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) if any task panicked.
    pub fn run(&self, tasks: usize, f: impl Fn(usize) + Sync) {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || self.parallelism <= 1 {
            for t in 0..tasks {
                f(t);
            }
            return;
        }

        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // Erase the closure's lifetime; see `JobFn` for the soundness
        // argument (this function blocks until `pending == 0`).
        let func = JobFn(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f_ref as *const _)
        });
        let job = Arc::new(Job {
            func,
            next: AtomicUsize::new(0),
            total: tasks,
            pending: AtomicUsize::new(tasks),
            panicked: AtomicBool::new(false),
        });

        {
            let mut state = self.shared.lock_state();
            state.job = Some(Arc::clone(&job));
            state.generation = state.generation.wrapping_add(1);
            self.shared.work_ready.notify_all();
        }

        // Participate in our own job.
        job.drain();

        // Wait for stragglers, then retire the job slot if it is still ours.
        let mut state = self.shared.lock_state();
        while job.pending.load(Ordering::Acquire) != 0 {
            state = self
                .shared
                .job_done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state
            .job
            .as_ref()
            .is_some_and(|current| Arc::ptr_eq(current, &job))
        {
            state.job = None;
        }
        drop(state);

        if job.panicked.load(Ordering::Acquire) {
            panic!("litho worker task panicked");
        }
    }

    /// Runs one task per slot, handing each task exclusive mutable access to
    /// its slot — the scatter/gather idiom of the litho hot loops (per-task
    /// scratch buffers + partial accumulators, reduced by the caller in slot
    /// order afterwards).
    pub fn run_with_slots<S: Send>(&self, slots: &mut [S], f: impl Fn(usize, &mut S) + Sync) {
        struct SlicePtr<S>(*mut S);
        // Safety: each slot is handed to exactly one task (indices are
        // distinct) and `run` joins every task before returning, so the
        // mutable borrows are disjoint and contained in `slots`'s borrow.
        unsafe impl<S: Send> Send for SlicePtr<S> {}
        unsafe impl<S: Send> Sync for SlicePtr<S> {}
        impl<S> SlicePtr<S> {
            #[allow(clippy::mut_from_ref)]
            unsafe fn get(&self, i: usize) -> &mut S {
                &mut *self.0.add(i)
            }
        }
        let base = SlicePtr(slots.as_mut_ptr());
        self.run(slots.len(), |i| {
            // Safety: `i < slots.len()` and each index occurs at most once.
            f(i, unsafe { base.get(i) });
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock_state();
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = shared.lock_state();
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    seen_generation = state.generation;
                    if let Some(job) = state.job.clone() {
                        break job;
                    }
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if job.drain() {
            // This worker finished the job's last task: wake the submitter.
            let _guard = shared.lock_state();
            shared.job_done.notify_all();
        }
    }
}

/// Resolves the shared pool's parallelism from `CARDOPC_THREADS` or the
/// machine's available parallelism (queried once, at pool construction).
fn configured_parallelism() -> usize {
    if let Ok(v) = std::env::var("CARDOPC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        for tasks in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicU64> = (0..tasks).map(|_| AtomicU64::new(0)).collect();
            pool.run(tasks, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {t} of {tasks}");
            }
        }
    }

    #[test]
    fn single_threaded_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.parallelism(), 1);
        let mut order = Vec::new();
        let order_cell = std::sync::Mutex::new(&mut order);
        pool.run(5, |t| order_cell.lock().unwrap().push(t));
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(3);
        let counter = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(16, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn nested_run_makes_progress() {
        let pool = WorkerPool::new(2);
        let counter = AtomicU64::new(0);
        pool.run(4, |_| {
            pool.run(8, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panicking_task_propagates_without_deadlock() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, |t| {
                if t == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic should propagate");
        // And the pool must still be usable afterwards.
        let counter = AtomicU64::new(0);
        pool.run(4, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn try_new_spawns_and_runs() {
        let pool = WorkerPool::try_new(3).expect("spawn failed");
        assert_eq!(pool.parallelism(), 3);
        let counter = AtomicU64::new(0);
        pool.run(9, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn global_pool_initialises_once() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.parallelism() >= 1);
    }
}
