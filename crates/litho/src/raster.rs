//! Polygon-to-grid rasterisation with anti-aliased coverage.
//!
//! OPC iterates between geometry (control points, spline polylines) and
//! image space (the litho engine works on pixel grids), so rasterisation
//! quality directly bounds achievable EPE. This module fills polygons with
//! a scanline algorithm: vertical anti-aliasing via sub-scanlines, exact
//! horizontal span-fraction coverage.

use crate::error::LithoError;
use cardopc_geometry::{Grid, Polygon};

/// Number of sub-scanlines per pixel row (vertical anti-aliasing quality).
const SUBSAMPLES: usize = 4;

/// Validates a raster grid specification (pitch must be a positive finite
/// number; the span-filling math divides by it).
fn validate_raster(pitch: f64) -> Result<(), LithoError> {
    if !pitch.is_finite() {
        return Err(LithoError::InvalidRaster("pitch must be finite"));
    }
    if pitch <= 0.0 {
        return Err(LithoError::InvalidRaster("pitch must be positive"));
    }
    Ok(())
}

/// Rasterises a set of polygons into a fresh grid; overlapping shapes union
/// (coverage saturates at 1).
///
/// ```
/// use cardopc_geometry::{Point, Polygon};
/// use cardopc_litho::rasterize;
///
/// let square = Polygon::rect(Point::new(4.0, 4.0), Point::new(12.0, 12.0));
/// let grid = rasterize(&[square], 16, 16, 1.0);
/// // 8x8 nm of coverage at 1 nm pitch.
/// assert!((grid.sum() - 64.0).abs() < 1.0);
/// ```
pub fn rasterize(polygons: &[Polygon], width: usize, height: usize, pitch: f64) -> Grid {
    try_rasterize(polygons, width, height, pitch).expect("invalid raster grid")
}

/// [`rasterize`], rejecting unusable grid specifications instead of
/// producing a garbage raster (a zero/NaN pitch sends every coverage
/// division to ±∞).
///
/// # Errors
///
/// [`LithoError::InvalidRaster`] when `pitch` is not a positive finite
/// number.
pub fn try_rasterize(
    polygons: &[Polygon],
    width: usize,
    height: usize,
    pitch: f64,
) -> Result<Grid, LithoError> {
    validate_raster(pitch)?;
    let mut grid = Grid::zeros(width, height, pitch);
    for poly in polygons {
        rasterize_into(&mut grid, poly);
    }
    grid.map_inplace(|v| v.min(1.0));
    Ok(grid)
}

/// Adds one polygon's coverage into an existing grid (no clamping — callers
/// that union multiple shapes clamp once at the end).
pub fn rasterize_into(grid: &mut Grid, poly: &Polygon) {
    if poly.len() < 3 {
        return;
    }
    let pitch = grid.pitch();
    let (w, h) = (grid.width(), grid.height());
    let bbox = poly.bbox();
    let iy0 = ((bbox.min.y / pitch).floor().max(0.0)) as usize;
    let iy1 = (((bbox.max.y / pitch).ceil()) as usize).min(h);

    let verts = poly.vertices();
    let n = verts.len();
    let weight = 1.0 / SUBSAMPLES as f64;
    let mut xs: Vec<f64> = Vec::with_capacity(8);

    for iy in iy0..iy1 {
        for sub in 0..SUBSAMPLES {
            let y = (iy as f64 + (sub as f64 + 0.5) / SUBSAMPLES as f64) * pitch;
            // Gather crossings of the horizontal line with polygon edges
            // using the half-open rule [min, max) to avoid double-counting
            // shared vertices.
            xs.clear();
            for i in 0..n {
                let a = verts[i];
                let b = verts[(i + 1) % n];
                let (lo, hi) = if a.y <= b.y { (a, b) } else { (b, a) };
                if lo.y <= y && y < hi.y {
                    let t = (y - lo.y) / (hi.y - lo.y);
                    xs.push(lo.x + t * (hi.x - lo.x));
                }
            }
            xs.sort_by(|p, q| p.total_cmp(q));
            // Fill spans between crossing pairs.
            for pair in xs.chunks_exact(2) {
                let (x0, x1) = (pair[0] / pitch, pair[1] / pitch);
                fill_span(grid, iy, x0, x1, weight, w);
            }
        }
    }
}

/// Pixel-rectangle dirty region, `(ix0, ix1, iy0, iy1)` half-open.
type PixelRect = (usize, usize, usize, usize);

/// A two-layer raster cache for the OPC iteration loop.
///
/// The flow's shape set splits into a *frozen* layer (SRAFs, fixed after
/// initialisation) and a *moving* layer (the main shapes the correction loop
/// updates). The frozen layer is rasterised once into `base`; each iteration
/// then restores only the previously dirtied pixel rectangle of the working
/// grid from `base`, re-rasterises the moving polygons on top, and clamps
/// coverage inside the freshly dirtied rectangle — no per-iteration `Grid`
/// allocation and no full-grid re-rasterisation of frozen geometry.
///
/// The composite equals `rasterize(frozen ∪ moving)` because clamped union
/// coverage satisfies `min(1, min(1, s) + m) == min(1, s + m)` for `m ≥ 0`
/// (differences stay within reassociation rounding where layers overlap).
#[derive(Clone, Debug)]
pub struct RasterCache {
    base: Grid,
    work: Grid,
    dirty: Option<PixelRect>,
}

impl RasterCache {
    /// An empty cache over a `width`×`height` grid with `pitch` nm pixels.
    pub fn new(width: usize, height: usize, pitch: f64) -> RasterCache {
        Self::try_new(width, height, pitch).expect("invalid raster grid")
    }

    /// [`RasterCache::new`], rejecting unusable grid specifications.
    ///
    /// # Errors
    ///
    /// [`LithoError::InvalidRaster`] when `pitch` is not a positive finite
    /// number.
    pub fn try_new(width: usize, height: usize, pitch: f64) -> Result<RasterCache, LithoError> {
        validate_raster(pitch)?;
        let base = Grid::zeros(width, height, pitch);
        Ok(RasterCache {
            work: base.clone(),
            base,
            dirty: None,
        })
    }

    /// Rasterises the frozen layer (clamped union coverage) into the cached
    /// base and resets the working grid to it.
    pub fn set_base(&mut self, polygons: &[Polygon]) {
        self.base = rasterize(
            polygons,
            self.base.width(),
            self.base.height(),
            self.base.pitch(),
        );
        self.work.data_mut().copy_from_slice(self.base.data());
        self.dirty = None;
    }

    /// The pixel rectangle a polygon's rasterisation can touch (superset of
    /// the rows/spans `rasterize_into` fills).
    fn pixel_rect(&self, poly: &Polygon) -> PixelRect {
        let pitch = self.base.pitch();
        let (w, h) = (self.base.width(), self.base.height());
        let bbox = poly.bbox();
        let ix0 = ((bbox.min.x / pitch).floor().max(0.0)) as usize;
        let ix1 = (((bbox.max.x / pitch).ceil()).max(0.0) as usize).min(w);
        let iy0 = ((bbox.min.y / pitch).floor().max(0.0)) as usize;
        let iy1 = (((bbox.max.y / pitch).ceil()).max(0.0) as usize).min(h);
        (ix0, ix1, iy0, iy1)
    }

    /// Restores the base layer inside `rect`.
    fn restore(&mut self, rect: PixelRect) {
        let (ix0, ix1, iy0, iy1) = rect;
        let w = self.base.width();
        for iy in iy0..iy1 {
            let row = iy * w + ix0..iy * w + ix1;
            self.work.data_mut()[row.clone()].copy_from_slice(&self.base.data()[row]);
        }
    }

    /// Composites the moving polygons over the cached base layer and
    /// returns the full mask grid (coverage clamped to 1).
    pub fn composite(&mut self, polygons: &[Polygon]) -> &Grid {
        if let Some(rect) = self.dirty.take() {
            self.restore(rect);
        }
        let mut rect: Option<PixelRect> = None;
        for poly in polygons {
            if poly.len() < 3 {
                continue;
            }
            rasterize_into(&mut self.work, poly);
            let r = self.pixel_rect(poly);
            rect = Some(match rect {
                None => r,
                Some((ax0, ax1, ay0, ay1)) => {
                    (ax0.min(r.0), ax1.max(r.1), ay0.min(r.2), ay1.max(r.3))
                }
            });
        }
        if let Some((ix0, ix1, iy0, iy1)) = rect {
            let w = self.work.width();
            let data = self.work.data_mut();
            for iy in iy0..iy1 {
                for v in &mut data[iy * w + ix0..iy * w + ix1] {
                    *v = v.min(1.0);
                }
            }
        }
        self.dirty = rect;
        &self.work
    }

    /// The current composite grid (base when [`RasterCache::composite`] has
    /// not run yet).
    pub fn grid(&self) -> &Grid {
        &self.work
    }
}

/// Accumulates a horizontal span `[x0, x1)` (pixel units) into row `iy` with
/// exact fractional coverage at the span ends.
fn fill_span(grid: &mut Grid, iy: usize, x0: f64, x1: f64, weight: f64, width: usize) {
    if x1 <= x0 {
        return;
    }
    let x0 = x0.max(0.0);
    let x1 = x1.min(width as f64);
    if x1 <= x0 {
        return;
    }
    let first = x0.floor() as usize;
    let last = (x1.ceil() as usize).min(width);
    for ix in first..last {
        let cell_lo = ix as f64;
        let cell_hi = cell_lo + 1.0;
        let cover = (x1.min(cell_hi) - x0.max(cell_lo)).max(0.0);
        grid[(ix, iy)] += cover * weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::Point;

    #[test]
    fn aligned_square_exact_coverage() {
        let sq = Polygon::rect(Point::new(2.0, 2.0), Point::new(6.0, 6.0));
        let g = rasterize(&[sq], 8, 8, 1.0);
        assert!((g.sum() - 16.0).abs() < 1e-9);
        assert_eq!(g[(3, 3)], 1.0);
        assert_eq!(g[(0, 0)], 0.0);
        assert_eq!(g[(6, 6)], 0.0);
    }

    #[test]
    fn half_pixel_offset_gives_half_coverage() {
        let sq = Polygon::rect(Point::new(2.5, 2.0), Point::new(5.5, 6.0));
        let g = rasterize(&[sq], 8, 8, 1.0);
        // Total area preserved.
        assert!((g.sum() - 12.0).abs() < 1e-9);
        // Boundary pixels half covered.
        assert!((g[(2, 3)] - 0.5).abs() < 1e-9);
        assert!((g[(5, 3)] - 0.5).abs() < 1e-9);
        assert_eq!(g[(3, 3)], 1.0);
    }

    #[test]
    fn vertical_antialiasing() {
        let sq = Polygon::rect(Point::new(1.0, 2.25), Point::new(7.0, 5.75));
        let g = rasterize(&[sq], 8, 8, 1.0);
        // 6 x 3.5 = 21 area.
        assert!((g.sum() - 21.0).abs() < 1.0);
        // Top/bottom rows partially covered.
        assert!(g[(3, 2)] > 0.5 && g[(3, 2)] < 1.0);
        assert!(g[(3, 5)] > 0.5 && g[(3, 5)] < 1.0);
    }

    #[test]
    fn triangle_area_approximation() {
        let tri = Polygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(15.0, 1.0),
            Point::new(1.0, 15.0),
        ]);
        let g = rasterize(&[tri], 16, 16, 1.0);
        assert!((g.sum() - 98.0).abs() < 3.0, "triangle area {}", g.sum());
    }

    #[test]
    fn overlapping_shapes_saturate() {
        let a = Polygon::rect(Point::new(1.0, 1.0), Point::new(5.0, 5.0));
        let b = Polygon::rect(Point::new(3.0, 3.0), Point::new(7.0, 7.0));
        let g = rasterize(&[a, b], 8, 8, 1.0);
        assert!(g.max_value() <= 1.0 + 1e-12);
        // Union area = 16 + 16 - 4 = 28.
        assert!((g.sum() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn shape_outside_grid_is_clipped() {
        let sq = Polygon::rect(Point::new(-4.0, -4.0), Point::new(4.0, 4.0));
        let g = rasterize(&[sq], 8, 8, 1.0);
        assert!((g.sum() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_polygon_ignored() {
        let line = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)]);
        let g = rasterize(&[line], 8, 8, 1.0);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    fn pitch_scaling() {
        // Same physical square at 2 nm pitch covers 1/4 the pixels.
        let sq = Polygon::rect(Point::new(4.0, 4.0), Point::new(12.0, 12.0));
        let g1 = rasterize(
            &[std::iter::once(sq.clone()).collect::<Vec<_>>()[0].clone()],
            16,
            16,
            1.0,
        );
        let g2 = rasterize(&[sq], 8, 8, 2.0);
        assert!((g1.sum() - 64.0).abs() < 1e-9);
        assert!((g2.sum() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn raster_cache_matches_from_scratch_after_moves() {
        // Frozen layer: two small squares. Moving layer: a square that
        // drifts across the grid (including over a frozen square). The
        // cached composite must match the from-scratch union raster at
        // every step, and total coverage must be conserved.
        let frozen = vec![
            Polygon::rect(Point::new(2.0, 2.0), Point::new(6.0, 6.0)),
            Polygon::rect(Point::new(20.0, 20.0), Point::new(24.0, 24.0)),
        ];
        let mut cache = RasterCache::new(32, 32, 1.0);
        cache.set_base(&frozen);
        for step in 0..8 {
            let d = step as f64 * 2.5;
            let moving = vec![
                Polygon::rect(Point::new(1.0 + d, 1.0 + d), Point::new(7.0 + d, 7.0 + d)),
                Polygon::rect(Point::new(28.0 - d, 3.0), Point::new(31.0 - d, 9.5)),
            ];
            let cached = cache.composite(&moving).clone();
            let mut all = frozen.clone();
            all.extend(moving);
            let scratch = rasterize(&all, 32, 32, 1.0);
            assert!(
                (cached.sum() - scratch.sum()).abs() < 1e-9,
                "step {step}: cached sum {} vs scratch {}",
                cached.sum(),
                scratch.sum()
            );
            for (i, (&a, &b)) in cached.data().iter().zip(scratch.data()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "step {step}, pixel {i}: cached {a} vs scratch {b}"
                );
            }
        }
    }

    #[test]
    fn raster_cache_empty_layers() {
        let mut cache = RasterCache::new(8, 8, 1.0);
        cache.set_base(&[]);
        assert_eq!(cache.grid().sum(), 0.0);
        let g = cache.composite(&[]).clone();
        assert_eq!(g.sum(), 0.0);
        let sq = Polygon::rect(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        assert!((cache.composite(&[sq]).sum() - 4.0).abs() < 1e-9);
        // Moving layer removed again: base restored.
        assert_eq!(cache.composite(&[]).sum(), 0.0);
    }

    #[test]
    fn invalid_pitch_rejected() {
        for pitch in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                try_rasterize(&[], 8, 8, pitch),
                Err(LithoError::InvalidRaster(_))
            ));
            assert!(matches!(
                RasterCache::try_new(8, 8, pitch),
                Err(LithoError::InvalidRaster(_))
            ));
        }
        assert!(try_rasterize(&[], 8, 8, 1.0).is_ok());
    }

    #[test]
    fn concave_polygon_fills_correctly() {
        // U-shape: outer 10x10 minus inner 4x6 notch from the top.
        let u = Polygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(11.0, 1.0),
            Point::new(11.0, 11.0),
            Point::new(8.0, 11.0),
            Point::new(8.0, 5.0),
            Point::new(4.0, 5.0),
            Point::new(4.0, 11.0),
            Point::new(1.0, 11.0),
        ]);
        let expected = u.area();
        let g = rasterize(&[u], 12, 12, 1.0);
        assert!(
            (g.sum() - expected).abs() < 1e-6,
            "{} vs {}",
            g.sum(),
            expected
        );
        // The notch is empty.
        assert_eq!(g[(6, 8)], 0.0);
    }
}
