//! Polygon-to-grid rasterisation with anti-aliased coverage.
//!
//! OPC iterates between geometry (control points, spline polylines) and
//! image space (the litho engine works on pixel grids), so rasterisation
//! quality directly bounds achievable EPE. This module fills polygons with
//! a scanline algorithm: vertical anti-aliasing via sub-scanlines, exact
//! horizontal span-fraction coverage.

use cardopc_geometry::{Grid, Polygon};

/// Number of sub-scanlines per pixel row (vertical anti-aliasing quality).
const SUBSAMPLES: usize = 4;

/// Rasterises a set of polygons into a fresh grid; overlapping shapes union
/// (coverage saturates at 1).
///
/// ```
/// use cardopc_geometry::{Point, Polygon};
/// use cardopc_litho::rasterize;
///
/// let square = Polygon::rect(Point::new(4.0, 4.0), Point::new(12.0, 12.0));
/// let grid = rasterize(&[square], 16, 16, 1.0);
/// // 8x8 nm of coverage at 1 nm pitch.
/// assert!((grid.sum() - 64.0).abs() < 1.0);
/// ```
pub fn rasterize(polygons: &[Polygon], width: usize, height: usize, pitch: f64) -> Grid {
    let mut grid = Grid::zeros(width, height, pitch);
    for poly in polygons {
        rasterize_into(&mut grid, poly);
    }
    grid.map_inplace(|v| v.min(1.0));
    grid
}

/// Adds one polygon's coverage into an existing grid (no clamping — callers
/// that union multiple shapes clamp once at the end).
pub fn rasterize_into(grid: &mut Grid, poly: &Polygon) {
    if poly.len() < 3 {
        return;
    }
    let pitch = grid.pitch();
    let (w, h) = (grid.width(), grid.height());
    let bbox = poly.bbox();
    let iy0 = ((bbox.min.y / pitch).floor().max(0.0)) as usize;
    let iy1 = (((bbox.max.y / pitch).ceil()) as usize).min(h);

    let verts = poly.vertices();
    let n = verts.len();
    let weight = 1.0 / SUBSAMPLES as f64;
    let mut xs: Vec<f64> = Vec::with_capacity(8);

    for iy in iy0..iy1 {
        for sub in 0..SUBSAMPLES {
            let y = (iy as f64 + (sub as f64 + 0.5) / SUBSAMPLES as f64) * pitch;
            // Gather crossings of the horizontal line with polygon edges
            // using the half-open rule [min, max) to avoid double-counting
            // shared vertices.
            xs.clear();
            for i in 0..n {
                let a = verts[i];
                let b = verts[(i + 1) % n];
                let (lo, hi) = if a.y <= b.y { (a, b) } else { (b, a) };
                if lo.y <= y && y < hi.y {
                    let t = (y - lo.y) / (hi.y - lo.y);
                    xs.push(lo.x + t * (hi.x - lo.x));
                }
            }
            xs.sort_by(|p, q| p.total_cmp(q));
            // Fill spans between crossing pairs.
            for pair in xs.chunks_exact(2) {
                let (x0, x1) = (pair[0] / pitch, pair[1] / pitch);
                fill_span(grid, iy, x0, x1, weight, w);
            }
        }
    }
}

/// Accumulates a horizontal span `[x0, x1)` (pixel units) into row `iy` with
/// exact fractional coverage at the span ends.
fn fill_span(grid: &mut Grid, iy: usize, x0: f64, x1: f64, weight: f64, width: usize) {
    if x1 <= x0 {
        return;
    }
    let x0 = x0.max(0.0);
    let x1 = x1.min(width as f64);
    if x1 <= x0 {
        return;
    }
    let first = x0.floor() as usize;
    let last = (x1.ceil() as usize).min(width);
    for ix in first..last {
        let cell_lo = ix as f64;
        let cell_hi = cell_lo + 1.0;
        let cover = (x1.min(cell_hi) - x0.max(cell_lo)).max(0.0);
        grid[(ix, iy)] += cover * weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::Point;

    #[test]
    fn aligned_square_exact_coverage() {
        let sq = Polygon::rect(Point::new(2.0, 2.0), Point::new(6.0, 6.0));
        let g = rasterize(&[sq], 8, 8, 1.0);
        assert!((g.sum() - 16.0).abs() < 1e-9);
        assert_eq!(g[(3, 3)], 1.0);
        assert_eq!(g[(0, 0)], 0.0);
        assert_eq!(g[(6, 6)], 0.0);
    }

    #[test]
    fn half_pixel_offset_gives_half_coverage() {
        let sq = Polygon::rect(Point::new(2.5, 2.0), Point::new(5.5, 6.0));
        let g = rasterize(&[sq], 8, 8, 1.0);
        // Total area preserved.
        assert!((g.sum() - 12.0).abs() < 1e-9);
        // Boundary pixels half covered.
        assert!((g[(2, 3)] - 0.5).abs() < 1e-9);
        assert!((g[(5, 3)] - 0.5).abs() < 1e-9);
        assert_eq!(g[(3, 3)], 1.0);
    }

    #[test]
    fn vertical_antialiasing() {
        let sq = Polygon::rect(Point::new(1.0, 2.25), Point::new(7.0, 5.75));
        let g = rasterize(&[sq], 8, 8, 1.0);
        // 6 x 3.5 = 21 area.
        assert!((g.sum() - 21.0).abs() < 1.0);
        // Top/bottom rows partially covered.
        assert!(g[(3, 2)] > 0.5 && g[(3, 2)] < 1.0);
        assert!(g[(3, 5)] > 0.5 && g[(3, 5)] < 1.0);
    }

    #[test]
    fn triangle_area_approximation() {
        let tri = Polygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(15.0, 1.0),
            Point::new(1.0, 15.0),
        ]);
        let g = rasterize(&[tri], 16, 16, 1.0);
        assert!((g.sum() - 98.0).abs() < 3.0, "triangle area {}", g.sum());
    }

    #[test]
    fn overlapping_shapes_saturate() {
        let a = Polygon::rect(Point::new(1.0, 1.0), Point::new(5.0, 5.0));
        let b = Polygon::rect(Point::new(3.0, 3.0), Point::new(7.0, 7.0));
        let g = rasterize(&[a, b], 8, 8, 1.0);
        assert!(g.max_value() <= 1.0 + 1e-12);
        // Union area = 16 + 16 - 4 = 28.
        assert!((g.sum() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn shape_outside_grid_is_clipped() {
        let sq = Polygon::rect(Point::new(-4.0, -4.0), Point::new(4.0, 4.0));
        let g = rasterize(&[sq], 8, 8, 1.0);
        assert!((g.sum() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_polygon_ignored() {
        let line = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)]);
        let g = rasterize(&[line], 8, 8, 1.0);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    fn pitch_scaling() {
        // Same physical square at 2 nm pitch covers 1/4 the pixels.
        let sq = Polygon::rect(Point::new(4.0, 4.0), Point::new(12.0, 12.0));
        let g1 = rasterize(
            &[std::iter::once(sq.clone()).collect::<Vec<_>>()[0].clone()],
            16,
            16,
            1.0,
        );
        let g2 = rasterize(&[sq], 8, 8, 2.0);
        assert!((g1.sum() - 64.0).abs() < 1e-9);
        assert!((g2.sum() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn concave_polygon_fills_correctly() {
        // U-shape: outer 10x10 minus inner 4x6 notch from the top.
        let u = Polygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(11.0, 1.0),
            Point::new(11.0, 11.0),
            Point::new(8.0, 11.0),
            Point::new(8.0, 5.0),
            Point::new(4.0, 5.0),
            Point::new(4.0, 11.0),
            Point::new(1.0, 11.0),
        ]);
        let expected = u.area();
        let g = rasterize(&[u], 12, 12, 1.0);
        assert!(
            (g.sum() - expected).abs() < 1e-6,
            "{} vs {}",
            g.sum(),
            expected
        );
        // The notch is empty.
        assert_eq!(g[(6, 8)], 0.0);
    }
}
