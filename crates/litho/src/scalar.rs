//! The sealed scalar abstraction behind the mixed-precision simulation
//! backends.
//!
//! Everything downstream of the mask raster — [`crate::fft::Field`], the
//! FFT plans and twiddles, and the SOCS accumulate kernels — is generic
//! over [`Scalar`], which is implemented for exactly `f64` and `f32`.
//! The trait is *sealed*: the SIMD kernels, plan registries, and
//! tolerance contracts are written against these two types only, and a
//! third implementation outside this crate could not uphold them.
//!
//! Two invariants keep the genericization honest:
//!
//! * **`f64` is the reference.** All derived constants (twiddle factors,
//!   chirps, butterfly constants, normalisations) are computed in `f64`
//!   and narrowed through [`Scalar::from_f64`] — for `T = f64` that is
//!   the identity, so the double-precision path stays bit-identical to
//!   the pre-generic implementation.
//! * **Only simulation downcasts.** Geometry, MRC, and spline fitting
//!   stay `f64`; masks enter as `&[f64]` and intensities leave as
//!   `&mut [f64]` regardless of the simulation precision. [`Precision`]
//!   names the per-run choice on the engine/config/wire surface.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The floating-point precision a run simulates in.
///
/// Selected per run (CLI `--precision`, wire field `opc.precision`) and
/// threaded through the engine, tile scheduling, the content-addressed
/// tile cache key, and the fleet work-spec. Only the *simulation* core
/// (FFT + SOCS convolution) changes width; geometry, MRC, and fitting
/// are always double precision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Double-precision simulation (the reference path).
    #[default]
    F64,
    /// Single-precision simulation: half the memory bandwidth and twice
    /// the SIMD lanes, within the documented tolerance of the `f64`
    /// reference (see `DESIGN.md` §12).
    F32,
}

impl Precision {
    /// Strictly parses the canonical names `"f64"` and `"f32"`.
    ///
    /// Anything else — including case variants and aliases like
    /// `"double"` — returns `None`, so every config surface fails loudly
    /// instead of silently defaulting.
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f64" => Some(Precision::F64),
            "f32" => Some(Precision::F32),
            _ => None,
        }
    }

    /// The canonical lowercase name (`"f64"` / `"f32"`), the exact form
    /// [`Precision::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// A stable one-byte discriminant for content hashes (the tile cache
    /// key must never alias an `f32` result with an `f64` one).
    pub fn tag(self) -> u8 {
        match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// The scalar element type of the simulation pipeline (sealed; exactly
/// `f64` and `f32`).
///
/// Bounds cover everything the generic FFT/SOCS code needs: plain
/// arithmetic, conversions to and from the `f64` reference domain, a
/// fused multiply-add for the SIMD-path scalar tails, and per-type
/// hooks onto the hand-written AVX2 kernels in [`crate::simd`].
pub trait Scalar:
    private::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half (the Hermitian-split and radix-3 butterfly constant).
    const HALF: Self;
    /// The [`Precision`] this type implements.
    const PRECISION: Precision;

    /// Narrowing (for `f32`) or identity (for `f64`) conversion from the
    /// `f64` reference domain. All derived constants funnel through this
    /// so the `f64` path is bitwise unchanged by the genericization.
    fn from_f64(v: f64) -> Self;

    /// Widening (for `f32`) or identity (for `f64`) conversion back to
    /// the `f64` output domain.
    fn to_f64(self) -> f64;

    /// Fused multiply-add `self * a + b`, used by the scalar tails of
    /// the AVX2 kernels (same rounding as the vector FMA lanes).
    fn mul_add(self, a: Self, b: Self) -> Self;

    /// AVX2 kernel hook for `d = a · b` (split-complex pointwise).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support at runtime (on other
    /// targets the hook falls back to the scalar body and is safe).
    #[doc(hidden)]
    unsafe fn cmul_avx2(
        ar: &[Self],
        ai: &[Self],
        br: &[Self],
        bi: &[Self],
        dr: &mut [Self],
        di: &mut [Self],
    );

    /// AVX2 kernel hook for `d = a · conj(b)`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support at runtime.
    #[doc(hidden)]
    unsafe fn cmul_conj_avx2(
        ar: &[Self],
        ai: &[Self],
        br: &[Self],
        bi: &[Self],
        dr: &mut [Self],
        di: &mut [Self],
    );

    /// AVX2 kernel hook for `d = a · r` (complex × real vector).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support at runtime.
    #[doc(hidden)]
    unsafe fn mul_real_avx2(ar: &[Self], ai: &[Self], r: &[Self], dr: &mut [Self], di: &mut [Self]);

    /// AVX2 kernel hook for `acc += w · (re² + im²)`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support at runtime.
    #[doc(hidden)]
    unsafe fn acc_norm_sq_avx2(re: &[Self], im: &[Self], w: Self, acc: &mut [Self]);

    /// AVX2 kernel hook for `acc += w · re`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support at runtime.
    #[doc(hidden)]
    unsafe fn acc_re_avx2(re: &[Self], w: Self, acc: &mut [Self]);

    /// AVX2 kernel hook for the strided blocked transpose
    /// `dst[c·dst_stride + r] = src[r·src_stride + c]`. `seq_dst` selects
    /// the tile walk (see `crate::simd::transpose_body`).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support at runtime, and the
    /// slices must cover `(rows-1)·src_stride + cols` and
    /// `(cols-1)·dst_stride + rows` elements respectively.
    #[doc(hidden)]
    unsafe fn transpose_avx2(
        src: &[Self],
        src_stride: usize,
        rows: usize,
        cols: usize,
        dst: &mut [Self],
        dst_stride: usize,
        seq_dst: bool,
    );
}

/// Routes the six kernel hooks of one `Scalar` impl to the matching
/// `crate::simd::avx2` functions (x86-64 builds) or the scalar bodies
/// (everything else, where `SimdMode::Avx2` is never produced anyway).
macro_rules! avx2_hooks {
    ($cmul:ident, $cmul_conj:ident, $mul_real:ident, $acc_norm_sq:ident, $acc_re:ident,
     $transpose:ident) => {
        unsafe fn cmul_avx2(
            ar: &[Self],
            ai: &[Self],
            br: &[Self],
            bi: &[Self],
            dr: &mut [Self],
            di: &mut [Self],
        ) {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            crate::simd::avx2::$cmul(ar, ai, br, bi, dr, di);
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            crate::simd::cmul_body(ar, ai, br, bi, dr, di);
        }

        unsafe fn cmul_conj_avx2(
            ar: &[Self],
            ai: &[Self],
            br: &[Self],
            bi: &[Self],
            dr: &mut [Self],
            di: &mut [Self],
        ) {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            crate::simd::avx2::$cmul_conj(ar, ai, br, bi, dr, di);
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            crate::simd::cmul_conj_body(ar, ai, br, bi, dr, di);
        }

        unsafe fn mul_real_avx2(
            ar: &[Self],
            ai: &[Self],
            r: &[Self],
            dr: &mut [Self],
            di: &mut [Self],
        ) {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            crate::simd::avx2::$mul_real(ar, ai, r, dr, di);
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            crate::simd::mul_real_body(ar, ai, r, dr, di);
        }

        unsafe fn acc_norm_sq_avx2(re: &[Self], im: &[Self], w: Self, acc: &mut [Self]) {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            crate::simd::avx2::$acc_norm_sq(re, im, w, acc);
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            crate::simd::acc_norm_sq_body(re, im, w, acc);
        }

        unsafe fn acc_re_avx2(re: &[Self], w: Self, acc: &mut [Self]) {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            crate::simd::avx2::$acc_re(re, w, acc);
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            crate::simd::acc_re_body(re, w, acc);
        }

        unsafe fn transpose_avx2(
            src: &[Self],
            src_stride: usize,
            rows: usize,
            cols: usize,
            dst: &mut [Self],
            dst_stride: usize,
            seq_dst: bool,
        ) {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            crate::simd::avx2::$transpose(src, src_stride, rows, cols, dst, dst_stride, seq_dst);
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            crate::simd::transpose_body(src, src_stride, rows, cols, dst, dst_stride, seq_dst);
        }
    };
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const HALF: Self = 0.5;
    const PRECISION: Precision = Precision::F64;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }

    avx2_hooks!(
        cmul_pd,
        cmul_conj_pd,
        mul_real_pd,
        acc_norm_sq_pd,
        acc_re_pd,
        transpose_pd
    );
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const HALF: Self = 0.5;
    const PRECISION: Precision = Precision::F32;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }

    avx2_hooks!(
        cmul_ps,
        cmul_conj_ps,
        mul_real_ps,
        acc_norm_sq_ps,
        acc_re_ps,
        transpose_ps
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_strict() {
        assert_eq!(Precision::parse("f64"), Some(Precision::F64));
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        for bad in ["F64", "f16", "double", "single", "32", "", " f32"] {
            assert_eq!(Precision::parse(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn names_round_trip_and_tags_differ() {
        for p in [Precision::F64, Precision::F32] {
            assert_eq!(Precision::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_ne!(Precision::F64.tag(), Precision::F32.tag());
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn conversions_are_identity_for_f64_and_narrow_for_f32() {
        let v = 0.123_456_789_012_345_6_f64;
        assert_eq!(f64::from_f64(v).to_bits(), v.to_bits());
        assert_eq!(f32::from_f64(v), v as f32);
        assert_eq!(<f32 as Scalar>::to_f64(0.5f32), 0.5f64);
        assert_eq!(<f64 as Scalar>::PRECISION, Precision::F64);
        assert_eq!(<f32 as Scalar>::PRECISION, Precision::F32);
    }
}
