//! Runtime SIMD dispatch and the split-complex (structure-of-arrays) hot
//! kernels shared by the FFT stages and the SOCS convolution loop.
//!
//! Every hot loop in the imaging chain — butterflies, twiddle application,
//! frequency-domain products, and the `w·|z|²` reduction — operates on
//! *split-complex* data: separate `re[]`/`im[]` `f64` slices instead of
//! interleaved complex pairs. That layout removes every shuffle from the
//! vector code path: a complex multiply is two FMAs and two multiplies over
//! packed f64 lanes.
//!
//! Two implementations of each kernel exist:
//!
//! * a **scalar** reference written as fixed-width chunked loops (these
//!   autovectorize to baseline SSE2 on stable Rust, without FMA contraction,
//!   so results are bit-reproducible across machines), and
//! * an **AVX2/FMA** variant behind `std::arch` runtime detection, using
//!   fused multiply-adds (faster, and within 1e-15 relative of the scalar
//!   path per operation — consumer paths are guarded by ≤ 1e-9 equivalence
//!   tests).
//!
//! Dispatch is resolved once per process from, in priority order: the
//! `scalar-only` compile feature, the `CARDOPC_SIMD` environment variable
//! (`off`/`0`/`scalar` forces the scalar path; anything else auto-detects),
//! and CPUID. [`force_mode`] overrides the cached decision for equivalence
//! tests and benchmarks.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation the process is executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdMode {
    /// Portable chunked loops (no FMA contraction; bit-reproducible).
    Scalar,
    /// `std::arch` AVX2 + FMA kernels (x86-64 only, runtime-detected).
    Avx2,
}

/// `true` when the running CPU supports the AVX2/FMA kernels (and they were
/// not compiled out via the `scalar-only` feature).
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
    {
        false
    }
}

fn detect() -> SimdMode {
    if cfg!(feature = "scalar-only") {
        return SimdMode::Scalar;
    }
    if let Ok(v) = std::env::var("CARDOPC_SIMD") {
        let v = v.to_ascii_lowercase();
        if v == "off" || v == "0" || v == "scalar" {
            return SimdMode::Scalar;
        }
    }
    if avx2_available() {
        SimdMode::Avx2
    } else {
        SimdMode::Scalar
    }
}

/// 0 = no override, 1 = forced scalar, 2 = forced AVX2.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The dispatch mode all library entry points use.
///
/// Cached after the first call; [`force_mode`] takes precedence (tests).
pub fn active_mode() -> SimdMode {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdMode::Scalar,
        2 if avx2_available() => SimdMode::Avx2,
        2 => SimdMode::Scalar,
        _ => {
            static DETECTED: OnceLock<SimdMode> = OnceLock::new();
            *DETECTED.get_or_init(detect)
        }
    }
}

/// Overrides the process-wide dispatch mode (`None` restores env/CPUID
/// resolution).
///
/// Intended for equivalence tests and benchmarks that compare both paths in
/// one process; such tests must serialise themselves (the override is
/// global). Forcing [`SimdMode::Avx2`] on a machine without AVX2/FMA (or
/// under the `scalar-only` feature) silently stays scalar.
pub fn force_mode(mode: Option<SimdMode>) {
    let v = match mode {
        None => 0,
        Some(SimdMode::Scalar) => 1,
        Some(SimdMode::Avx2) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Scalar kernel bodies.
//
// Written over explicitly equal-length sub-slices so the autovectorizer sees
// bounds-check-free counted loops. These are the semantics of record: the
// AVX2 variants below must compute the same quantities (they differ only by
// FMA rounding).
// ---------------------------------------------------------------------------

#[inline(always)]
fn cmul_body(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], dr: &mut [f64], di: &mut [f64]) {
    let n = ar.len();
    let (ai, br, bi) = (&ai[..n], &br[..n], &bi[..n]);
    let (dr, di) = (&mut dr[..n], &mut di[..n]);
    for k in 0..n {
        let (xr, xi) = (ar[k], ai[k]);
        let (yr, yi) = (br[k], bi[k]);
        dr[k] = xr * yr - xi * yi;
        di[k] = xr * yi + xi * yr;
    }
}

#[inline(always)]
fn cmul_conj_body(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], dr: &mut [f64], di: &mut [f64]) {
    let n = ar.len();
    let (ai, br, bi) = (&ai[..n], &br[..n], &bi[..n]);
    let (dr, di) = (&mut dr[..n], &mut di[..n]);
    for k in 0..n {
        let (xr, xi) = (ar[k], ai[k]);
        let (yr, yi) = (br[k], bi[k]);
        dr[k] = xr * yr + xi * yi;
        di[k] = xi * yr - xr * yi;
    }
}

#[inline(always)]
fn mul_real_body(ar: &[f64], ai: &[f64], r: &[f64], dr: &mut [f64], di: &mut [f64]) {
    let n = ar.len();
    let (ai, r) = (&ai[..n], &r[..n]);
    let (dr, di) = (&mut dr[..n], &mut di[..n]);
    for k in 0..n {
        dr[k] = ar[k] * r[k];
        di[k] = ai[k] * r[k];
    }
}

#[inline(always)]
fn acc_norm_sq_body(re: &[f64], im: &[f64], w: f64, acc: &mut [f64]) {
    let n = re.len();
    let im = &im[..n];
    let acc = &mut acc[..n];
    for k in 0..n {
        acc[k] += w * (re[k] * re[k] + im[k] * im[k]);
    }
}

#[inline(always)]
fn acc_re_body(re: &[f64], w: f64, acc: &mut [f64]) {
    let n = re.len();
    let acc = &mut acc[..n];
    for k in 0..n {
        acc[k] += w * re[k];
    }
}

// ---------------------------------------------------------------------------
// AVX2/FMA kernels (hand-written `std::arch` intrinsics).
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
mod avx2 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn cmul(
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        dr: &mut [f64],
        di: &mut [f64],
    ) {
        let n = ar.len();
        let mut k = 0usize;
        while k + 4 <= n {
            let xr = _mm256_loadu_pd(ar.as_ptr().add(k));
            let xi = _mm256_loadu_pd(ai.as_ptr().add(k));
            let yr = _mm256_loadu_pd(br.as_ptr().add(k));
            let yi = _mm256_loadu_pd(bi.as_ptr().add(k));
            // re = xr·yr − xi·yi, im = xr·yi + xi·yr.
            let re = _mm256_fmsub_pd(xr, yr, _mm256_mul_pd(xi, yi));
            let im = _mm256_fmadd_pd(xr, yi, _mm256_mul_pd(xi, yr));
            _mm256_storeu_pd(dr.as_mut_ptr().add(k), re);
            _mm256_storeu_pd(di.as_mut_ptr().add(k), im);
            k += 4;
        }
        while k < n {
            let (xr, xi) = (ar[k], ai[k]);
            let (yr, yi) = (br[k], bi[k]);
            dr[k] = f64::mul_add(xr, yr, -(xi * yi));
            di[k] = f64::mul_add(xr, yi, xi * yr);
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn cmul_conj(
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        dr: &mut [f64],
        di: &mut [f64],
    ) {
        let n = ar.len();
        let mut k = 0usize;
        while k + 4 <= n {
            let xr = _mm256_loadu_pd(ar.as_ptr().add(k));
            let xi = _mm256_loadu_pd(ai.as_ptr().add(k));
            let yr = _mm256_loadu_pd(br.as_ptr().add(k));
            let yi = _mm256_loadu_pd(bi.as_ptr().add(k));
            // d = x·conj(y): re = xr·yr + xi·yi, im = xi·yr − xr·yi.
            let re = _mm256_fmadd_pd(xr, yr, _mm256_mul_pd(xi, yi));
            let im = _mm256_fmsub_pd(xi, yr, _mm256_mul_pd(xr, yi));
            _mm256_storeu_pd(dr.as_mut_ptr().add(k), re);
            _mm256_storeu_pd(di.as_mut_ptr().add(k), im);
            k += 4;
        }
        while k < n {
            let (xr, xi) = (ar[k], ai[k]);
            let (yr, yi) = (br[k], bi[k]);
            dr[k] = f64::mul_add(xr, yr, xi * yi);
            di[k] = f64::mul_add(xi, yr, -(xr * yi));
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mul_real(ar: &[f64], ai: &[f64], r: &[f64], dr: &mut [f64], di: &mut [f64]) {
        super::mul_real_body(ar, ai, r, dr, di);
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn acc_norm_sq(re: &[f64], im: &[f64], w: f64, acc: &mut [f64]) {
        let n = re.len();
        let wv = _mm256_set1_pd(w);
        let mut k = 0usize;
        while k + 4 <= n {
            let r = _mm256_loadu_pd(re.as_ptr().add(k));
            let i = _mm256_loadu_pd(im.as_ptr().add(k));
            let a = _mm256_loadu_pd(acc.as_ptr().add(k));
            // acc += w·(r² + i²)
            let n2 = _mm256_fmadd_pd(i, i, _mm256_mul_pd(r, r));
            let out = _mm256_fmadd_pd(wv, n2, a);
            _mm256_storeu_pd(acc.as_mut_ptr().add(k), out);
            k += 4;
        }
        while k < n {
            let n2 = f64::mul_add(im[k], im[k], re[k] * re[k]);
            acc[k] = f64::mul_add(w, n2, acc[k]);
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn acc_re(re: &[f64], w: f64, acc: &mut [f64]) {
        let n = re.len();
        let wv = _mm256_set1_pd(w);
        let mut k = 0usize;
        while k + 4 <= n {
            let r = _mm256_loadu_pd(re.as_ptr().add(k));
            let a = _mm256_loadu_pd(acc.as_ptr().add(k));
            _mm256_storeu_pd(acc.as_mut_ptr().add(k), _mm256_fmadd_pd(wv, r, a));
            k += 4;
        }
        while k < n {
            acc[k] = f64::mul_add(w, re[k], acc[k]);
            k += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points.
//
// All slices must share `ar.len()` (the scalar bodies re-slice and panic on
// shorter operands; the AVX2 kernels assume the caller upheld it, which every
// in-crate call site does via `Field` invariants).
// ---------------------------------------------------------------------------

/// `d = a · b` pointwise over split-complex slices.
pub(crate) fn cmul(
    mode: SimdMode,
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
) {
    debug_assert!(
        ai.len() == ar.len()
            && br.len() == ar.len()
            && bi.len() == ar.len()
            && dr.len() == ar.len()
            && di.len() == ar.len()
    );
    match mode {
        SimdMode::Scalar => cmul_body(ar, ai, br, bi, dr, di),
        SimdMode::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            // SAFETY: `SimdMode::Avx2` is only ever produced after runtime
            // AVX2+FMA detection (see `active_mode` / `force_mode`).
            unsafe {
                avx2::cmul(ar, ai, br, bi, dr, di)
            }
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            cmul_body(ar, ai, br, bi, dr, di)
        }
    }
}

/// `d = a · conj(b)` pointwise over split-complex slices.
pub(crate) fn cmul_conj(
    mode: SimdMode,
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
) {
    match mode {
        SimdMode::Scalar => cmul_conj_body(ar, ai, br, bi, dr, di),
        SimdMode::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support.
            unsafe {
                avx2::cmul_conj(ar, ai, br, bi, dr, di)
            }
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            cmul_conj_body(ar, ai, br, bi, dr, di)
        }
    }
}

/// `d = a · r` (complex × real vector).
pub(crate) fn mul_real(
    mode: SimdMode,
    ar: &[f64],
    ai: &[f64],
    r: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
) {
    match mode {
        SimdMode::Scalar => mul_real_body(ar, ai, r, dr, di),
        SimdMode::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support.
            unsafe {
                avx2::mul_real(ar, ai, r, dr, di)
            }
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            mul_real_body(ar, ai, r, dr, di)
        }
    }
}

/// `acc += w · (re² + im²)` — the SOCS reduction step.
pub(crate) fn acc_norm_sq(mode: SimdMode, re: &[f64], im: &[f64], w: f64, acc: &mut [f64]) {
    match mode {
        SimdMode::Scalar => acc_norm_sq_body(re, im, w, acc),
        SimdMode::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support.
            unsafe {
                avx2::acc_norm_sq(re, im, w, acc)
            }
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            acc_norm_sq_body(re, im, w, acc)
        }
    }
}

/// `acc += w · re` — the ILT gradient reduction step.
pub(crate) fn acc_re(mode: SimdMode, re: &[f64], w: f64, acc: &mut [f64]) {
    match mode {
        SimdMode::Scalar => acc_re_body(re, w, acc),
        SimdMode::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support.
            unsafe {
                avx2::acc_re(re, w, acc)
            }
            #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
            acc_re_body(re, w, acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::SplitMix64;

    fn randv(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.range_f64(-2.0, 2.0)).collect()
    }

    #[test]
    fn dispatch_modes_agree_within_fma_rounding() {
        // Lengths straddling the 4-lane width exercise both the vector body
        // and the scalar tail of every AVX2 kernel.
        for n in [1usize, 3, 4, 5, 8, 17, 64] {
            let ar = randv(n, 1);
            let ai = randv(n, 2);
            let br = randv(n, 3);
            let bi = randv(n, 4);
            let r = randv(n, 5);
            for mode in [SimdMode::Scalar, SimdMode::Avx2] {
                if mode == SimdMode::Avx2 && !avx2_available() {
                    continue;
                }
                let (mut dr, mut di) = (vec![0.0; n], vec![0.0; n]);
                cmul(mode, &ar, &ai, &br, &bi, &mut dr, &mut di);
                for k in 0..n {
                    let er = ar[k] * br[k] - ai[k] * bi[k];
                    let ei = ar[k] * bi[k] + ai[k] * br[k];
                    assert!((dr[k] - er).abs() < 1e-12 && (di[k] - ei).abs() < 1e-12);
                }
                cmul_conj(mode, &ar, &ai, &br, &bi, &mut dr, &mut di);
                for k in 0..n {
                    let er = ar[k] * br[k] + ai[k] * bi[k];
                    let ei = ai[k] * br[k] - ar[k] * bi[k];
                    assert!((dr[k] - er).abs() < 1e-12 && (di[k] - ei).abs() < 1e-12);
                }
                mul_real(mode, &ar, &ai, &r, &mut dr, &mut di);
                for k in 0..n {
                    assert_eq!(dr[k], ar[k] * r[k]);
                    assert_eq!(di[k], ai[k] * r[k]);
                }
                let mut acc = vec![0.25; n];
                acc_norm_sq(mode, &ar, &ai, 0.7, &mut acc);
                for k in 0..n {
                    let e = 0.25 + 0.7 * (ar[k] * ar[k] + ai[k] * ai[k]);
                    assert!((acc[k] - e).abs() < 1e-12);
                }
                let mut acc = vec![0.5; n];
                acc_re(mode, &ar, 1.3, &mut acc);
                for k in 0..n {
                    assert!((acc[k] - (0.5 + 1.3 * ar[k])).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn forced_mode_round_trips() {
        force_mode(Some(SimdMode::Scalar));
        assert_eq!(active_mode(), SimdMode::Scalar);
        force_mode(None);
        let auto = active_mode();
        assert!(auto == SimdMode::Scalar || avx2_available());
    }
}
