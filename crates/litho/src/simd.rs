//! Runtime SIMD dispatch and the split-complex (structure-of-arrays) hot
//! kernels shared by the FFT stages and the SOCS convolution loop.
//!
//! Every hot loop in the imaging chain — butterflies, twiddle application,
//! frequency-domain products, and the `w·|z|²` reduction — operates on
//! *split-complex* data: separate `re[]`/`im[]` slices instead of
//! interleaved complex pairs. That layout removes every shuffle from the
//! vector code path: a complex multiply is two FMAs and two multiplies over
//! packed lanes.
//!
//! The kernels are generic over [`Scalar`] (`f64` and `f32`), and two
//! implementations of each exist:
//!
//! * a **scalar** reference written as fixed-width chunked loops (these
//!   autovectorize to baseline SSE2 on stable Rust, without FMA contraction,
//!   so results are bit-reproducible across machines), and
//! * an **AVX2/FMA** variant behind `std::arch` runtime detection, using
//!   fused multiply-adds — 4 lanes wide for `f64` (`_mm256_*_pd`), 8 lanes
//!   wide for `f32` (`_mm256_*_ps`). Faster, and within one FMA rounding of
//!   the scalar path per operation — consumer paths are guarded by
//!   equivalence tests at each precision's tolerance.
//!
//! Dispatch is resolved once per process from, in priority order: the
//! `scalar-only` compile feature, the `CARDOPC_SIMD` environment variable
//! (`off`/`0`/`scalar` forces the scalar path; anything else auto-detects),
//! and CPUID. [`force_mode`] overrides the cached decision for equivalence
//! tests and benchmarks. The per-type kernel selection rides on the same
//! dispatch: [`SimdMode::Avx2`] reaches the `_pd` or `_ps` variant through
//! the [`Scalar`] hook of the element type in play.

use crate::scalar::Scalar;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation the process is executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdMode {
    /// Portable chunked loops (no FMA contraction; bit-reproducible).
    Scalar,
    /// `std::arch` AVX2 + FMA kernels (x86-64 only, runtime-detected).
    Avx2,
}

/// `true` when the running CPU supports the AVX2/FMA kernels (and they were
/// not compiled out via the `scalar-only` feature).
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
    {
        false
    }
}

fn detect() -> SimdMode {
    if cfg!(feature = "scalar-only") {
        return SimdMode::Scalar;
    }
    if let Ok(v) = std::env::var("CARDOPC_SIMD") {
        let v = v.to_ascii_lowercase();
        if v == "off" || v == "0" || v == "scalar" {
            return SimdMode::Scalar;
        }
    }
    if avx2_available() {
        SimdMode::Avx2
    } else {
        SimdMode::Scalar
    }
}

/// 0 = no override, 1 = forced scalar, 2 = forced AVX2.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The dispatch mode all library entry points use.
///
/// Cached after the first call; [`force_mode`] takes precedence (tests).
pub fn active_mode() -> SimdMode {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdMode::Scalar,
        2 if avx2_available() => SimdMode::Avx2,
        2 => SimdMode::Scalar,
        _ => {
            static DETECTED: OnceLock<SimdMode> = OnceLock::new();
            *DETECTED.get_or_init(detect)
        }
    }
}

/// Overrides the process-wide dispatch mode (`None` restores env/CPUID
/// resolution).
///
/// Intended for equivalence tests and benchmarks that compare both paths in
/// one process; such tests must serialise themselves (the override is
/// global). Forcing [`SimdMode::Avx2`] on a machine without AVX2/FMA (or
/// under the `scalar-only` feature) silently stays scalar.
pub fn force_mode(mode: Option<SimdMode>) {
    let v = match mode {
        None => 0,
        Some(SimdMode::Scalar) => 1,
        Some(SimdMode::Avx2) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Scalar kernel bodies.
//
// Written over explicitly equal-length sub-slices so the autovectorizer sees
// bounds-check-free counted loops. These are the semantics of record: the
// AVX2 variants below must compute the same quantities (they differ only by
// FMA rounding). Generic over `Scalar`; for `f64` the monomorphization is
// instruction-for-instruction the pre-generic code.
// ---------------------------------------------------------------------------

#[inline(always)]
pub(crate) fn cmul_body<T: Scalar>(
    ar: &[T],
    ai: &[T],
    br: &[T],
    bi: &[T],
    dr: &mut [T],
    di: &mut [T],
) {
    let n = ar.len();
    let (ai, br, bi) = (&ai[..n], &br[..n], &bi[..n]);
    let (dr, di) = (&mut dr[..n], &mut di[..n]);
    for k in 0..n {
        let (xr, xi) = (ar[k], ai[k]);
        let (yr, yi) = (br[k], bi[k]);
        dr[k] = xr * yr - xi * yi;
        di[k] = xr * yi + xi * yr;
    }
}

#[inline(always)]
pub(crate) fn cmul_conj_body<T: Scalar>(
    ar: &[T],
    ai: &[T],
    br: &[T],
    bi: &[T],
    dr: &mut [T],
    di: &mut [T],
) {
    let n = ar.len();
    let (ai, br, bi) = (&ai[..n], &br[..n], &bi[..n]);
    let (dr, di) = (&mut dr[..n], &mut di[..n]);
    for k in 0..n {
        let (xr, xi) = (ar[k], ai[k]);
        let (yr, yi) = (br[k], bi[k]);
        dr[k] = xr * yr + xi * yi;
        di[k] = xi * yr - xr * yi;
    }
}

#[inline(always)]
pub(crate) fn mul_real_body<T: Scalar>(ar: &[T], ai: &[T], r: &[T], dr: &mut [T], di: &mut [T]) {
    let n = ar.len();
    let (ai, r) = (&ai[..n], &r[..n]);
    let (dr, di) = (&mut dr[..n], &mut di[..n]);
    for k in 0..n {
        dr[k] = ar[k] * r[k];
        di[k] = ai[k] * r[k];
    }
}

#[inline(always)]
pub(crate) fn acc_norm_sq_body<T: Scalar>(re: &[T], im: &[T], w: T, acc: &mut [T]) {
    let n = re.len();
    let im = &im[..n];
    let acc = &mut acc[..n];
    for k in 0..n {
        acc[k] += w * (re[k] * re[k] + im[k] * im[k]);
    }
}

#[inline(always)]
pub(crate) fn acc_re_body<T: Scalar>(re: &[T], w: T, acc: &mut [T]) {
    let n = re.len();
    let acc = &mut acc[..n];
    for k in 0..n {
        acc[k] += w * re[k];
    }
}

/// Strided transpose `dst[c·dst_stride + r] = src[r·src_stride + c]`,
/// cache-blocked in 32×32 tiles. Pure data movement — every dispatch mode
/// produces byte-identical output; the AVX2 variants just move whole
/// registers through in-register shuffles instead of one element at a
/// time (the scalar scatter/gather is what dominates mid-size 2-D FFTs).
///
/// `seq_dst` picks the walk inside each tile: `false` keeps source reads
/// sequential (pair with a conflict-padded `dst_stride`), `true` keeps
/// destination writes sequential (pair with a conflict-padded
/// `src_stride`). The wrong choice aliases the unpadded strided side into
/// a handful of cache sets and thrashes them.
#[inline(always)]
pub(crate) fn transpose_body<T: Scalar>(
    src: &[T],
    src_stride: usize,
    rows: usize,
    cols: usize,
    dst: &mut [T],
    dst_stride: usize,
    seq_dst: bool,
) {
    const TILE: usize = 32;
    for r0 in (0..rows).step_by(TILE) {
        let r1 = (r0 + TILE).min(rows);
        for c0 in (0..cols).step_by(TILE) {
            let c1 = (c0 + TILE).min(cols);
            if seq_dst {
                for c in c0..c1 {
                    let col = c * dst_stride;
                    for r in r0..r1 {
                        dst[col + r] = src[r * src_stride + c];
                    }
                }
            } else {
                for r in r0..r1 {
                    let row = r * src_stride;
                    for c in c0..c1 {
                        dst[c * dst_stride + r] = src[row + c];
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2/FMA kernels (hand-written `std::arch` intrinsics).
//
// The `_pd` functions process 4 `f64` lanes per iteration, the `_ps` twins
// 8 `f32` lanes — same shape, same FMA structure, double the width. The
// `Scalar` trait's `*_avx2` hooks pick the right family per element type.
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn cmul_pd(
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        dr: &mut [f64],
        di: &mut [f64],
    ) {
        let n = ar.len();
        let mut k = 0usize;
        while k + 4 <= n {
            let xr = _mm256_loadu_pd(ar.as_ptr().add(k));
            let xi = _mm256_loadu_pd(ai.as_ptr().add(k));
            let yr = _mm256_loadu_pd(br.as_ptr().add(k));
            let yi = _mm256_loadu_pd(bi.as_ptr().add(k));
            // re = xr·yr − xi·yi, im = xr·yi + xi·yr.
            let re = _mm256_fmsub_pd(xr, yr, _mm256_mul_pd(xi, yi));
            let im = _mm256_fmadd_pd(xr, yi, _mm256_mul_pd(xi, yr));
            _mm256_storeu_pd(dr.as_mut_ptr().add(k), re);
            _mm256_storeu_pd(di.as_mut_ptr().add(k), im);
            k += 4;
        }
        while k < n {
            let (xr, xi) = (ar[k], ai[k]);
            let (yr, yi) = (br[k], bi[k]);
            dr[k] = f64::mul_add(xr, yr, -(xi * yi));
            di[k] = f64::mul_add(xr, yi, xi * yr);
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn cmul_ps(
        ar: &[f32],
        ai: &[f32],
        br: &[f32],
        bi: &[f32],
        dr: &mut [f32],
        di: &mut [f32],
    ) {
        let n = ar.len();
        let mut k = 0usize;
        while k + 8 <= n {
            let xr = _mm256_loadu_ps(ar.as_ptr().add(k));
            let xi = _mm256_loadu_ps(ai.as_ptr().add(k));
            let yr = _mm256_loadu_ps(br.as_ptr().add(k));
            let yi = _mm256_loadu_ps(bi.as_ptr().add(k));
            // re = xr·yr − xi·yi, im = xr·yi + xi·yr.
            let re = _mm256_fmsub_ps(xr, yr, _mm256_mul_ps(xi, yi));
            let im = _mm256_fmadd_ps(xr, yi, _mm256_mul_ps(xi, yr));
            _mm256_storeu_ps(dr.as_mut_ptr().add(k), re);
            _mm256_storeu_ps(di.as_mut_ptr().add(k), im);
            k += 8;
        }
        while k < n {
            let (xr, xi) = (ar[k], ai[k]);
            let (yr, yi) = (br[k], bi[k]);
            dr[k] = f32::mul_add(xr, yr, -(xi * yi));
            di[k] = f32::mul_add(xr, yi, xi * yr);
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn cmul_conj_pd(
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        dr: &mut [f64],
        di: &mut [f64],
    ) {
        let n = ar.len();
        let mut k = 0usize;
        while k + 4 <= n {
            let xr = _mm256_loadu_pd(ar.as_ptr().add(k));
            let xi = _mm256_loadu_pd(ai.as_ptr().add(k));
            let yr = _mm256_loadu_pd(br.as_ptr().add(k));
            let yi = _mm256_loadu_pd(bi.as_ptr().add(k));
            // d = x·conj(y): re = xr·yr + xi·yi, im = xi·yr − xr·yi.
            let re = _mm256_fmadd_pd(xr, yr, _mm256_mul_pd(xi, yi));
            let im = _mm256_fmsub_pd(xi, yr, _mm256_mul_pd(xr, yi));
            _mm256_storeu_pd(dr.as_mut_ptr().add(k), re);
            _mm256_storeu_pd(di.as_mut_ptr().add(k), im);
            k += 4;
        }
        while k < n {
            let (xr, xi) = (ar[k], ai[k]);
            let (yr, yi) = (br[k], bi[k]);
            dr[k] = f64::mul_add(xr, yr, xi * yi);
            di[k] = f64::mul_add(xi, yr, -(xr * yi));
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn cmul_conj_ps(
        ar: &[f32],
        ai: &[f32],
        br: &[f32],
        bi: &[f32],
        dr: &mut [f32],
        di: &mut [f32],
    ) {
        let n = ar.len();
        let mut k = 0usize;
        while k + 8 <= n {
            let xr = _mm256_loadu_ps(ar.as_ptr().add(k));
            let xi = _mm256_loadu_ps(ai.as_ptr().add(k));
            let yr = _mm256_loadu_ps(br.as_ptr().add(k));
            let yi = _mm256_loadu_ps(bi.as_ptr().add(k));
            // d = x·conj(y): re = xr·yr + xi·yi, im = xi·yr − xr·yi.
            let re = _mm256_fmadd_ps(xr, yr, _mm256_mul_ps(xi, yi));
            let im = _mm256_fmsub_ps(xi, yr, _mm256_mul_ps(xr, yi));
            _mm256_storeu_ps(dr.as_mut_ptr().add(k), re);
            _mm256_storeu_ps(di.as_mut_ptr().add(k), im);
            k += 8;
        }
        while k < n {
            let (xr, xi) = (ar[k], ai[k]);
            let (yr, yi) = (br[k], bi[k]);
            dr[k] = f32::mul_add(xr, yr, xi * yi);
            di[k] = f32::mul_add(xi, yr, -(xr * yi));
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mul_real_pd(ar: &[f64], ai: &[f64], r: &[f64], dr: &mut [f64], di: &mut [f64]) {
        super::mul_real_body(ar, ai, r, dr, di);
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mul_real_ps(ar: &[f32], ai: &[f32], r: &[f32], dr: &mut [f32], di: &mut [f32]) {
        super::mul_real_body(ar, ai, r, dr, di);
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn acc_norm_sq_pd(re: &[f64], im: &[f64], w: f64, acc: &mut [f64]) {
        let n = re.len();
        let wv = _mm256_set1_pd(w);
        let mut k = 0usize;
        while k + 4 <= n {
            let r = _mm256_loadu_pd(re.as_ptr().add(k));
            let i = _mm256_loadu_pd(im.as_ptr().add(k));
            let a = _mm256_loadu_pd(acc.as_ptr().add(k));
            // acc += w·(r² + i²)
            let n2 = _mm256_fmadd_pd(i, i, _mm256_mul_pd(r, r));
            let out = _mm256_fmadd_pd(wv, n2, a);
            _mm256_storeu_pd(acc.as_mut_ptr().add(k), out);
            k += 4;
        }
        while k < n {
            let n2 = f64::mul_add(im[k], im[k], re[k] * re[k]);
            acc[k] = f64::mul_add(w, n2, acc[k]);
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn acc_norm_sq_ps(re: &[f32], im: &[f32], w: f32, acc: &mut [f32]) {
        let n = re.len();
        let wv = _mm256_set1_ps(w);
        let mut k = 0usize;
        while k + 8 <= n {
            let r = _mm256_loadu_ps(re.as_ptr().add(k));
            let i = _mm256_loadu_ps(im.as_ptr().add(k));
            let a = _mm256_loadu_ps(acc.as_ptr().add(k));
            // acc += w·(r² + i²)
            let n2 = _mm256_fmadd_ps(i, i, _mm256_mul_ps(r, r));
            let out = _mm256_fmadd_ps(wv, n2, a);
            _mm256_storeu_ps(acc.as_mut_ptr().add(k), out);
            k += 8;
        }
        while k < n {
            let n2 = f32::mul_add(im[k], im[k], re[k] * re[k]);
            acc[k] = f32::mul_add(w, n2, acc[k]);
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn acc_re_pd(re: &[f64], w: f64, acc: &mut [f64]) {
        let n = re.len();
        let wv = _mm256_set1_pd(w);
        let mut k = 0usize;
        while k + 4 <= n {
            let r = _mm256_loadu_pd(re.as_ptr().add(k));
            let a = _mm256_loadu_pd(acc.as_ptr().add(k));
            _mm256_storeu_pd(acc.as_mut_ptr().add(k), _mm256_fmadd_pd(wv, r, a));
            k += 4;
        }
        while k < n {
            acc[k] = f64::mul_add(w, re[k], acc[k]);
            k += 1;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn acc_re_ps(re: &[f32], w: f32, acc: &mut [f32]) {
        let n = re.len();
        let wv = _mm256_set1_ps(w);
        let mut k = 0usize;
        while k + 8 <= n {
            let r = _mm256_loadu_ps(re.as_ptr().add(k));
            let a = _mm256_loadu_ps(acc.as_ptr().add(k));
            _mm256_storeu_ps(acc.as_mut_ptr().add(k), _mm256_fmadd_ps(wv, r, a));
            k += 8;
        }
        while k < n {
            acc[k] = f32::mul_add(w, re[k], acc[k]);
            k += 1;
        }
    }

    /// `f64` transpose "kernel": delegates to the scalar tiled body.
    ///
    /// Measured on the fleet hardware, a 4×4 in-register `_pd` block walk
    /// is ~6% *slower* than the plain tiled loop at the 512² sizes the
    /// engine runs — the `f64` planes (2 MB each) are DRAM-bound, so the
    /// shuffle work buys nothing and the block walk only perturbs the
    /// hardware prefetcher. The 8-lane `f32` variant below is a clear win
    /// (1 MB planes stay cache-resident), so only `f32` gets real vector
    /// code.
    ///
    /// # Safety
    /// Same contract as [`transpose_ps`] (safe in practice — no vector
    /// instructions — but kept `unsafe` to match the hook signature).
    pub unsafe fn transpose_pd(
        src: &[f64],
        src_stride: usize,
        rows: usize,
        cols: usize,
        dst: &mut [f64],
        dst_stride: usize,
        seq_dst: bool,
    ) {
        crate::simd::transpose_body(src, src_stride, rows, cols, dst, dst_stride, seq_dst);
    }

    /// One 8×8 `f32` block: `dst[(c+j)·ds + r + i] = src[(r+i)·ss + c + j]`.
    #[inline(always)]
    unsafe fn t8_ps(sp: *const f32, ss: usize, dp: *mut f32, ds: usize, r: usize, c: usize) {
        let v0 = _mm256_loadu_ps(sp.add(r * ss + c));
        let v1 = _mm256_loadu_ps(sp.add((r + 1) * ss + c));
        let v2 = _mm256_loadu_ps(sp.add((r + 2) * ss + c));
        let v3 = _mm256_loadu_ps(sp.add((r + 3) * ss + c));
        let v4 = _mm256_loadu_ps(sp.add((r + 4) * ss + c));
        let v5 = _mm256_loadu_ps(sp.add((r + 5) * ss + c));
        let v6 = _mm256_loadu_ps(sp.add((r + 6) * ss + c));
        let v7 = _mm256_loadu_ps(sp.add((r + 7) * ss + c));
        let t0 = _mm256_unpacklo_ps(v0, v1);
        let t1 = _mm256_unpackhi_ps(v0, v1);
        let t2 = _mm256_unpacklo_ps(v2, v3);
        let t3 = _mm256_unpackhi_ps(v2, v3);
        let t4 = _mm256_unpacklo_ps(v4, v5);
        let t5 = _mm256_unpackhi_ps(v4, v5);
        let t6 = _mm256_unpacklo_ps(v6, v7);
        let t7 = _mm256_unpackhi_ps(v6, v7);
        let s0 = _mm256_shuffle_ps(t0, t2, 0x44);
        let s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
        let s2 = _mm256_shuffle_ps(t1, t3, 0x44);
        let s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
        let s4 = _mm256_shuffle_ps(t4, t6, 0x44);
        let s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
        let s6 = _mm256_shuffle_ps(t5, t7, 0x44);
        let s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
        let d = dp.add(c * ds + r);
        _mm256_storeu_ps(d, _mm256_permute2f128_ps(s0, s4, 0x20));
        _mm256_storeu_ps(d.add(ds), _mm256_permute2f128_ps(s1, s5, 0x20));
        _mm256_storeu_ps(d.add(2 * ds), _mm256_permute2f128_ps(s2, s6, 0x20));
        _mm256_storeu_ps(d.add(3 * ds), _mm256_permute2f128_ps(s3, s7, 0x20));
        _mm256_storeu_ps(d.add(4 * ds), _mm256_permute2f128_ps(s0, s4, 0x31));
        _mm256_storeu_ps(d.add(5 * ds), _mm256_permute2f128_ps(s1, s5, 0x31));
        _mm256_storeu_ps(d.add(6 * ds), _mm256_permute2f128_ps(s2, s6, 0x31));
        _mm256_storeu_ps(d.add(7 * ds), _mm256_permute2f128_ps(s3, s7, 0x31));
    }

    /// 32×32-tiled strided transpose over in-register 8×8 `f32` blocks.
    /// `seq_dst` as on [`transpose_pd`].
    ///
    /// # Safety
    /// AVX2 support verified at runtime; slice extents as for
    /// [`transpose_pd`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn transpose_ps(
        src: &[f32],
        src_stride: usize,
        rows: usize,
        cols: usize,
        dst: &mut [f32],
        dst_stride: usize,
        seq_dst: bool,
    ) {
        const TILE: usize = 32;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        for r0 in (0..rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(rows);
            for c0 in (0..cols).step_by(TILE) {
                let c1 = (c0 + TILE).min(cols);
                let rb = r0 + (r1 - r0) / 8 * 8;
                let cb = c0 + (c1 - c0) / 8 * 8;
                if seq_dst {
                    let mut c = c0;
                    while c < cb {
                        let mut r = r0;
                        while r < rb {
                            t8_ps(sp, src_stride, dp, dst_stride, r, c);
                            r += 8;
                        }
                        c += 8;
                    }
                } else {
                    let mut r = r0;
                    while r < rb {
                        let mut c = c0;
                        while c < cb {
                            t8_ps(sp, src_stride, dp, dst_stride, r, c);
                            c += 8;
                        }
                        r += 8;
                    }
                }
                for r in rb..r1 {
                    for c in c0..c1 {
                        *dp.add(c * dst_stride + r) = *sp.add(r * src_stride + c);
                    }
                }
                for c in cb..c1 {
                    for r in r0..rb {
                        *dp.add(c * dst_stride + r) = *sp.add(r * src_stride + c);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points.
//
// All slices must share `ar.len()` (the scalar bodies re-slice and panic on
// shorter operands; the AVX2 kernels assume the caller upheld it, which every
// in-crate call site does via `Field` invariants). The `SimdMode::Avx2` arm
// routes through the element type's `Scalar` hook, which resolves to the
// `_pd` or `_ps` kernel family (and to the scalar body on non-x86 targets,
// where `Avx2` is never produced).
// ---------------------------------------------------------------------------

/// `d = a · b` pointwise over split-complex slices.
pub(crate) fn cmul<T: Scalar>(
    mode: SimdMode,
    ar: &[T],
    ai: &[T],
    br: &[T],
    bi: &[T],
    dr: &mut [T],
    di: &mut [T],
) {
    debug_assert!(
        ai.len() == ar.len()
            && br.len() == ar.len()
            && bi.len() == ar.len()
            && dr.len() == ar.len()
            && di.len() == ar.len()
    );
    match mode {
        SimdMode::Scalar => cmul_body(ar, ai, br, bi, dr, di),
        // SAFETY: `SimdMode::Avx2` is only ever produced after runtime
        // AVX2+FMA detection (see `active_mode` / `force_mode`).
        SimdMode::Avx2 => unsafe { T::cmul_avx2(ar, ai, br, bi, dr, di) },
    }
}

/// `d = a · conj(b)` pointwise over split-complex slices.
pub(crate) fn cmul_conj<T: Scalar>(
    mode: SimdMode,
    ar: &[T],
    ai: &[T],
    br: &[T],
    bi: &[T],
    dr: &mut [T],
    di: &mut [T],
) {
    match mode {
        SimdMode::Scalar => cmul_conj_body(ar, ai, br, bi, dr, di),
        // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support.
        SimdMode::Avx2 => unsafe { T::cmul_conj_avx2(ar, ai, br, bi, dr, di) },
    }
}

/// `d = a · r` (complex × real vector).
pub(crate) fn mul_real<T: Scalar>(
    mode: SimdMode,
    ar: &[T],
    ai: &[T],
    r: &[T],
    dr: &mut [T],
    di: &mut [T],
) {
    match mode {
        SimdMode::Scalar => mul_real_body(ar, ai, r, dr, di),
        // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support.
        SimdMode::Avx2 => unsafe { T::mul_real_avx2(ar, ai, r, dr, di) },
    }
}

/// `acc += w · (re² + im²)` — the SOCS reduction step.
pub(crate) fn acc_norm_sq<T: Scalar>(mode: SimdMode, re: &[T], im: &[T], w: T, acc: &mut [T]) {
    match mode {
        SimdMode::Scalar => acc_norm_sq_body(re, im, w, acc),
        // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support.
        SimdMode::Avx2 => unsafe { T::acc_norm_sq_avx2(re, im, w, acc) },
    }
}

/// `acc += w · re` — the ILT gradient reduction step.
pub(crate) fn acc_re<T: Scalar>(mode: SimdMode, re: &[T], w: T, acc: &mut [T]) {
    match mode {
        SimdMode::Scalar => acc_re_body(re, w, acc),
        // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support.
        SimdMode::Avx2 => unsafe { T::acc_re_avx2(re, w, acc) },
    }
}

/// Strided blocked transpose `dst[c·dst_stride + r] = src[r·src_stride + c]`.
///
/// Pure data movement — both dispatch modes produce bitwise-identical
/// output, so this never perturbs cross-mode determinism. `seq_dst` as on
/// [`transpose_body`]: pass `false` when `dst_stride` is the
/// conflict-padded side, `true` when `src_stride` is.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transpose_strided<T: Scalar>(
    mode: SimdMode,
    src: &[T],
    src_stride: usize,
    rows: usize,
    cols: usize,
    dst: &mut [T],
    dst_stride: usize,
    seq_dst: bool,
) {
    debug_assert!(rows == 0 || cols == 0 || (rows - 1) * src_stride + cols <= src.len());
    debug_assert!(rows == 0 || cols == 0 || (cols - 1) * dst_stride + rows <= dst.len());
    match mode {
        SimdMode::Scalar => transpose_body(src, src_stride, rows, cols, dst, dst_stride, seq_dst),
        // SAFETY: `SimdMode::Avx2` implies runtime AVX2+FMA support; the
        // extent requirements are the debug-asserted bounds above, which
        // every in-crate call site upholds via `Field` invariants.
        SimdMode::Avx2 => unsafe {
            T::transpose_avx2(src, src_stride, rows, cols, dst, dst_stride, seq_dst)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::SplitMix64;

    fn randv<T: Scalar>(n: usize, seed: u64) -> Vec<T> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| T::from_f64(rng.range_f64(-2.0, 2.0)))
            .collect()
    }

    /// Both dispatch modes of every kernel, at every length straddling both
    /// the 4-lane (`f64`) and 8-lane (`f32`) widths, against the plain
    /// expression semantics, within `tol` (one FMA rounding at the type's
    /// own epsilon).
    fn check_modes_agree<T: Scalar>(tol: f64) {
        for n in [1usize, 3, 4, 5, 7, 8, 9, 17, 64] {
            let ar = randv::<T>(n, 1);
            let ai = randv::<T>(n, 2);
            let br = randv::<T>(n, 3);
            let bi = randv::<T>(n, 4);
            let r = randv::<T>(n, 5);
            for mode in [SimdMode::Scalar, SimdMode::Avx2] {
                if mode == SimdMode::Avx2 && !avx2_available() {
                    continue;
                }
                let (mut dr, mut di) = (vec![T::ZERO; n], vec![T::ZERO; n]);
                cmul(mode, &ar, &ai, &br, &bi, &mut dr, &mut di);
                for k in 0..n {
                    let er = ar[k] * br[k] - ai[k] * bi[k];
                    let ei = ar[k] * bi[k] + ai[k] * br[k];
                    assert!((dr[k] - er).to_f64().abs() < tol);
                    assert!((di[k] - ei).to_f64().abs() < tol);
                }
                cmul_conj(mode, &ar, &ai, &br, &bi, &mut dr, &mut di);
                for k in 0..n {
                    let er = ar[k] * br[k] + ai[k] * bi[k];
                    let ei = ai[k] * br[k] - ar[k] * bi[k];
                    assert!((dr[k] - er).to_f64().abs() < tol);
                    assert!((di[k] - ei).to_f64().abs() < tol);
                }
                mul_real(mode, &ar, &ai, &r, &mut dr, &mut di);
                for k in 0..n {
                    assert_eq!(dr[k], ar[k] * r[k]);
                    assert_eq!(di[k], ai[k] * r[k]);
                }
                let quarter = T::from_f64(0.25);
                let w = T::from_f64(0.7);
                let mut acc = vec![quarter; n];
                acc_norm_sq(mode, &ar, &ai, w, &mut acc);
                for k in 0..n {
                    let e = quarter + w * (ar[k] * ar[k] + ai[k] * ai[k]);
                    assert!((acc[k] - e).to_f64().abs() < tol);
                }
                let w = T::from_f64(1.3);
                let mut acc = vec![T::HALF; n];
                acc_re(mode, &ar, w, &mut acc);
                for k in 0..n {
                    assert!((acc[k] - (T::HALF + w * ar[k])).to_f64().abs() < tol);
                }
            }
        }
    }

    #[test]
    fn dispatch_modes_agree_within_fma_rounding_f64() {
        check_modes_agree::<f64>(1e-12);
    }

    #[test]
    fn dispatch_modes_agree_within_fma_rounding_f32() {
        check_modes_agree::<f32>(1e-5);
    }

    /// Transpose is pure data movement: both dispatch modes must produce
    /// bitwise-identical output at shapes exercising the vector blocks
    /// (4×4 pd / 8×8 ps), the scalar row/col remainders, and non-trivial
    /// destination strides.
    fn check_transpose_modes_identical<T: Scalar>() {
        for (rows, cols) in [(1usize, 1usize), (3, 5), (8, 8), (9, 7), (33, 40), (64, 64)] {
            for pad in [0usize, 3] {
                for seq_dst in [false, true] {
                    let src = randv::<T>(rows * cols, (rows * 131 + cols + pad) as u64);
                    let dst_stride = rows + pad;
                    let mut out_scalar = vec![T::ZERO; cols * dst_stride];
                    transpose_strided(
                        SimdMode::Scalar,
                        &src,
                        cols,
                        rows,
                        cols,
                        &mut out_scalar,
                        dst_stride,
                        seq_dst,
                    );
                    for r in 0..rows {
                        for c in 0..cols {
                            assert_eq!(out_scalar[c * dst_stride + r], src[r * cols + c]);
                        }
                    }
                    if avx2_available() {
                        let mut out_avx2 = vec![T::ZERO; cols * dst_stride];
                        transpose_strided(
                            SimdMode::Avx2,
                            &src,
                            cols,
                            rows,
                            cols,
                            &mut out_avx2,
                            dst_stride,
                            seq_dst,
                        );
                        assert_eq!(out_scalar, out_avx2);
                    }
                }
            }
        }
    }

    #[test]
    fn transpose_modes_bitwise_identical_f64() {
        check_transpose_modes_identical::<f64>();
    }

    #[test]
    fn transpose_modes_bitwise_identical_f32() {
        check_transpose_modes_identical::<f32>();
    }

    #[test]
    fn forced_mode_round_trips() {
        force_mode(Some(SimdMode::Scalar));
        assert_eq!(active_mode(), SimdMode::Scalar);
        force_mode(None);
        let auto = active_mode();
        assert!(auto == SimdMode::Scalar || avx2_available());
    }
}
