//! Hand-written 8-lane AVX2 stage kernels for the `f32` Stockham pipeline.
//!
//! The generic stage bodies in `plan` autovectorize acceptably at 4 `f64`
//! lanes, but the `f32` instantiation leaves most of the width on the
//! table: a stage's inner loop runs over `s` interleaved transforms, and
//! the early stages of every pow2 size have `s ∈ {1, 4}` — shorter than
//! an 8-lane vector, so exactly the stages that dominate small-to-medium
//! transforms execute scalar. These kernels vectorize *across
//! sub-transforms* (`p`) for `s ∈ {1, 4}`, using in-register transposes
//! for the radix-interleaved stores, and across `q` for `s ≥ 8`; every
//! other shape falls back to the generic bodies.
//!
//! Each vector lane computes the same expression, in the same
//! association order, as one iteration of the scalar body — multiplies,
//! adds and subtracts only, no FMA contraction — so the AVX2 `f32` FFT
//! stays **bitwise identical** to the scalar dispatch, exactly like the
//! autovectorized `f64` path (`plan::stages_avx2` documents the same
//! invariant).

#![cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
// Stage kernels mirror the generic bodies' signatures (split-complex in/out
// plus twiddle planes); bundling them into structs would only obscure the
// 1:1 correspondence.
#![allow(clippy::too_many_arguments)]

use crate::plan::{stage2_generic, stage3_generic, stage4_generic, stage5_generic};
use std::arch::x86_64::*;

/// Complex rotation `(br·wr − bi·wi, br·wi + bi·wr)`, the twiddle
/// application every stage shares (mirrors the scalar expression order).
#[inline(always)]
unsafe fn rot(br: __m256, bi: __m256, wr: __m256, wi: __m256) -> (__m256, __m256) {
    let re = _mm256_sub_ps(_mm256_mul_ps(br, wr), _mm256_mul_ps(bi, wi));
    let im = _mm256_add_ps(_mm256_mul_ps(br, wi), _mm256_mul_ps(bi, wr));
    (re, im)
}

/// `[w[0]; 4 | w[1]; 4]` — per-`p` twiddle broadcast for the paired
/// `s == 4` kernels.
#[inline(always)]
unsafe fn bcast2(w: *const f32) -> __m256 {
    _mm256_set_m128(_mm_broadcast_ss(&*w.add(1)), _mm_broadcast_ss(&*w))
}

/// Interleaves four lane vectors with period 1 into 32 consecutive
/// samples: `dst[4k + j] = v_j[k]` (the radix-4 `s == 1` store pattern).
#[inline(always)]
unsafe fn store_interleave4(dst: *mut f32, v0: __m256, v1: __m256, v2: __m256, v3: __m256) {
    let t0 = _mm256_unpacklo_ps(v0, v1);
    let t1 = _mm256_unpackhi_ps(v0, v1);
    let t2 = _mm256_unpacklo_ps(v2, v3);
    let t3 = _mm256_unpackhi_ps(v2, v3);
    let u0 = _mm256_shuffle_ps(t0, t2, 0x44);
    let u1 = _mm256_shuffle_ps(t0, t2, 0xEE);
    let u2 = _mm256_shuffle_ps(t1, t3, 0x44);
    let u3 = _mm256_shuffle_ps(t1, t3, 0xEE);
    _mm256_storeu_ps(dst, _mm256_permute2f128_ps(u0, u1, 0x20));
    _mm256_storeu_ps(dst.add(8), _mm256_permute2f128_ps(u2, u3, 0x20));
    _mm256_storeu_ps(dst.add(16), _mm256_permute2f128_ps(u0, u1, 0x31));
    _mm256_storeu_ps(dst.add(24), _mm256_permute2f128_ps(u2, u3, 0x31));
}

/// Radix-4 butterfly on 8 lanes (the scalar macro, lane-parallel).
#[allow(clippy::type_complexity)]
#[inline(always)]
unsafe fn bf4<const FWD: bool>(
    a0r: __m256,
    a0i: __m256,
    a1r: __m256,
    a1i: __m256,
    a2r: __m256,
    a2i: __m256,
    a3r: __m256,
    a3i: __m256,
) -> (
    __m256,
    __m256,
    __m256,
    __m256,
    __m256,
    __m256,
    __m256,
    __m256,
) {
    let t0r = _mm256_add_ps(a0r, a2r);
    let t0i = _mm256_add_ps(a0i, a2i);
    let t1r = _mm256_sub_ps(a0r, a2r);
    let t1i = _mm256_sub_ps(a0i, a2i);
    let t2r = _mm256_add_ps(a1r, a3r);
    let t2i = _mm256_add_ps(a1i, a3i);
    let ur = _mm256_sub_ps(a1r, a3r);
    let ui = _mm256_sub_ps(a1i, a3i);
    let (b1r, b1i, b3r, b3i) = if FWD {
        (
            _mm256_add_ps(t1r, ui),
            _mm256_sub_ps(t1i, ur),
            _mm256_sub_ps(t1r, ui),
            _mm256_add_ps(t1i, ur),
        )
    } else {
        (
            _mm256_sub_ps(t1r, ui),
            _mm256_add_ps(t1i, ur),
            _mm256_add_ps(t1r, ui),
            _mm256_sub_ps(t1i, ur),
        )
    };
    (
        _mm256_add_ps(t0r, t2r),
        _mm256_add_ps(t0i, t2i),
        b1r,
        b1i,
        _mm256_sub_ps(t0r, t2r),
        _mm256_sub_ps(t0i, t2i),
        b3r,
        b3i,
    )
}

/// Radix-2 stage (real-coefficient butterfly; direction lives in the
/// twiddles, so no `FWD` parameter — same contract as the generic body).
///
/// # Safety
///
/// AVX2 support verified by the caller; slice extents as in the generic
/// stage bodies (`x*`/`y*` of length `2·s·m`, twiddles of length `m`).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn stage2_ps(
    m: usize,
    s: usize,
    twr: &[f32],
    twi: &[f32],
    xr: &[f32],
    xi: &[f32],
    yr: &mut [f32],
    yi: &mut [f32],
) {
    let (xrp, xip) = (xr.as_ptr(), xi.as_ptr());
    let (yrp, yip) = (yr.as_mut_ptr(), yi.as_mut_ptr());
    if s >= 8 {
        for p in 0..m {
            let wr = _mm256_broadcast_ss(&twr[p]);
            let wi = _mm256_broadcast_ss(&twi[p]);
            let (x0, x1) = (s * p, s * (p + m));
            let (y0, y1) = (2 * s * p, 2 * s * p + s);
            let mut q = 0;
            while q + 8 <= s {
                let ar = _mm256_loadu_ps(xrp.add(x0 + q));
                let ai = _mm256_loadu_ps(xip.add(x0 + q));
                let br = _mm256_loadu_ps(xrp.add(x1 + q));
                let bi = _mm256_loadu_ps(xip.add(x1 + q));
                _mm256_storeu_ps(yrp.add(y0 + q), _mm256_add_ps(ar, br));
                _mm256_storeu_ps(yip.add(y0 + q), _mm256_add_ps(ai, bi));
                let (vr, vi) = rot(_mm256_sub_ps(ar, br), _mm256_sub_ps(ai, bi), wr, wi);
                _mm256_storeu_ps(yrp.add(y1 + q), vr);
                _mm256_storeu_ps(yip.add(y1 + q), vi);
                q += 8;
            }
            while q < s {
                let (ar, ai) = (xr[x0 + q], xi[x0 + q]);
                let (br, bi) = (xr[x1 + q], xi[x1 + q]);
                yr[y0 + q] = ar + br;
                yi[y0 + q] = ai + bi;
                let (wr, wi) = (twr[p], twi[p]);
                let (ur, ui) = (ar - br, ai - bi);
                yr[y1 + q] = ur * wr - ui * wi;
                yi[y1 + q] = ur * wi + ui * wr;
                q += 1;
            }
        }
    } else if s == 1 {
        // Vectorize across 8 sub-transforms; outputs interleave in pairs.
        let mut p = 0;
        while p + 8 <= m {
            let ar = _mm256_loadu_ps(xrp.add(p));
            let ai = _mm256_loadu_ps(xip.add(p));
            let br = _mm256_loadu_ps(xrp.add(p + m));
            let bi = _mm256_loadu_ps(xip.add(p + m));
            let wr = _mm256_loadu_ps(twr.as_ptr().add(p));
            let wi = _mm256_loadu_ps(twi.as_ptr().add(p));
            let (vr, vi) = rot(_mm256_sub_ps(ar, br), _mm256_sub_ps(ai, bi), wr, wi);
            let (sr, si) = (_mm256_add_ps(ar, br), _mm256_add_ps(ai, bi));
            for (dst, e, o) in [(yrp, sr, vr), (yip, si, vi)] {
                let t0 = _mm256_unpacklo_ps(e, o);
                let t1 = _mm256_unpackhi_ps(e, o);
                _mm256_storeu_ps(dst.add(2 * p), _mm256_permute2f128_ps(t0, t1, 0x20));
                _mm256_storeu_ps(dst.add(2 * p + 8), _mm256_permute2f128_ps(t0, t1, 0x31));
            }
            p += 8;
        }
        while p < m {
            let (wr, wi) = (twr[p], twi[p]);
            let (ar, ai) = (xr[p], xi[p]);
            let (br, bi) = (xr[p + m], xi[p + m]);
            yr[2 * p] = ar + br;
            yi[2 * p] = ai + bi;
            let (ur, ui) = (ar - br, ai - bi);
            yr[2 * p + 1] = ur * wr - ui * wi;
            yi[2 * p + 1] = ur * wi + ui * wr;
            p += 1;
        }
    } else {
        stage2_generic::<f32>(m, s, twr, twi, xr, xi, yr, yi);
    }
}

/// Radix-4 stage: `p`-vectorized for `s ∈ {1, 4}`, `q`-vectorized for
/// `s ≥ 8`, generic fallback otherwise.
///
/// # Safety
///
/// AVX2 support verified by the caller; slice extents as in the generic
/// stage bodies.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn stage4_ps<const FWD: bool>(
    m: usize,
    s: usize,
    twr: &[f32],
    twi: &[f32],
    xr: &[f32],
    xi: &[f32],
    yr: &mut [f32],
    yi: &mut [f32],
) {
    let (xrp, xip) = (xr.as_ptr(), xi.as_ptr());
    let (yrp, yip) = (yr.as_mut_ptr(), yi.as_mut_ptr());
    let (twrp, twip) = (twr.as_ptr(), twi.as_ptr());
    if s >= 8 {
        for p in 0..m {
            let w1r = _mm256_broadcast_ss(&twr[p]);
            let w1i = _mm256_broadcast_ss(&twi[p]);
            let w2r = _mm256_broadcast_ss(&twr[m + p]);
            let w2i = _mm256_broadcast_ss(&twi[m + p]);
            let w3r = _mm256_broadcast_ss(&twr[2 * m + p]);
            let w3i = _mm256_broadcast_ss(&twi[2 * m + p]);
            let x = [s * p, s * (p + m), s * (p + 2 * m), s * (p + 3 * m)];
            let y = 4 * s * p;
            let mut q = 0;
            while q + 8 <= s {
                let a0r = _mm256_loadu_ps(xrp.add(x[0] + q));
                let a0i = _mm256_loadu_ps(xip.add(x[0] + q));
                let a1r = _mm256_loadu_ps(xrp.add(x[1] + q));
                let a1i = _mm256_loadu_ps(xip.add(x[1] + q));
                let a2r = _mm256_loadu_ps(xrp.add(x[2] + q));
                let a2i = _mm256_loadu_ps(xip.add(x[2] + q));
                let a3r = _mm256_loadu_ps(xrp.add(x[3] + q));
                let a3i = _mm256_loadu_ps(xip.add(x[3] + q));
                let (b0r, b0i, b1r, b1i, b2r, b2i, b3r, b3i) =
                    bf4::<FWD>(a0r, a0i, a1r, a1i, a2r, a2i, a3r, a3i);
                let (c1r, c1i) = rot(b1r, b1i, w1r, w1i);
                let (c2r, c2i) = rot(b2r, b2i, w2r, w2i);
                let (c3r, c3i) = rot(b3r, b3i, w3r, w3i);
                _mm256_storeu_ps(yrp.add(y + q), b0r);
                _mm256_storeu_ps(yip.add(y + q), b0i);
                _mm256_storeu_ps(yrp.add(y + s + q), c1r);
                _mm256_storeu_ps(yip.add(y + s + q), c1i);
                _mm256_storeu_ps(yrp.add(y + 2 * s + q), c2r);
                _mm256_storeu_ps(yip.add(y + 2 * s + q), c2i);
                _mm256_storeu_ps(yrp.add(y + 3 * s + q), c3r);
                _mm256_storeu_ps(yip.add(y + 3 * s + q), c3i);
                q += 8;
            }
            debug_assert_eq!(q, s, "s >= 8 stages have 8-divisible strides");
        }
    } else if s == 4 {
        // Two sub-transforms per vector: the four stride-4 input blocks of
        // `p` and `p + 1` are contiguous 8-sample spans.
        let mut p = 0;
        while p + 2 <= m {
            let a0r = _mm256_loadu_ps(xrp.add(4 * p));
            let a0i = _mm256_loadu_ps(xip.add(4 * p));
            let a1r = _mm256_loadu_ps(xrp.add(4 * (p + m)));
            let a1i = _mm256_loadu_ps(xip.add(4 * (p + m)));
            let a2r = _mm256_loadu_ps(xrp.add(4 * (p + 2 * m)));
            let a2i = _mm256_loadu_ps(xip.add(4 * (p + 2 * m)));
            let a3r = _mm256_loadu_ps(xrp.add(4 * (p + 3 * m)));
            let a3i = _mm256_loadu_ps(xip.add(4 * (p + 3 * m)));
            let (b0r, b0i, b1r, b1i, b2r, b2i, b3r, b3i) =
                bf4::<FWD>(a0r, a0i, a1r, a1i, a2r, a2i, a3r, a3i);
            let (c1r, c1i) = rot(b1r, b1i, bcast2(twrp.add(p)), bcast2(twip.add(p)));
            let (c2r, c2i) = rot(b2r, b2i, bcast2(twrp.add(m + p)), bcast2(twip.add(m + p)));
            let (c3r, c3i) = rot(
                b3r,
                b3i,
                bcast2(twrp.add(2 * m + p)),
                bcast2(twip.add(2 * m + p)),
            );
            // Output blocks of 4: y[16p..16p+16) is the `p` group (lows),
            // y[16p+16..16p+32) the `p + 1` group (highs).
            for (dst, v0, v1, v2, v3) in [(yrp, b0r, c1r, c2r, c3r), (yip, b0i, c1i, c2i, c3i)] {
                let d = dst.add(16 * p);
                _mm256_storeu_ps(d, _mm256_permute2f128_ps(v0, v1, 0x20));
                _mm256_storeu_ps(d.add(8), _mm256_permute2f128_ps(v2, v3, 0x20));
                _mm256_storeu_ps(d.add(16), _mm256_permute2f128_ps(v0, v1, 0x31));
                _mm256_storeu_ps(d.add(24), _mm256_permute2f128_ps(v2, v3, 0x31));
            }
            p += 2;
        }
        if p < m {
            stage4_tail::<FWD>(p, m, s, twr, twi, xr, xi, yr, yi);
        }
    } else if s == 1 {
        // Eight sub-transforms per vector; outputs interleave with
        // period 4 via an in-register 8×4 transpose.
        let mut p = 0;
        while p + 8 <= m {
            let a0r = _mm256_loadu_ps(xrp.add(p));
            let a0i = _mm256_loadu_ps(xip.add(p));
            let a1r = _mm256_loadu_ps(xrp.add(p + m));
            let a1i = _mm256_loadu_ps(xip.add(p + m));
            let a2r = _mm256_loadu_ps(xrp.add(p + 2 * m));
            let a2i = _mm256_loadu_ps(xip.add(p + 2 * m));
            let a3r = _mm256_loadu_ps(xrp.add(p + 3 * m));
            let a3i = _mm256_loadu_ps(xip.add(p + 3 * m));
            let (b0r, b0i, b1r, b1i, b2r, b2i, b3r, b3i) =
                bf4::<FWD>(a0r, a0i, a1r, a1i, a2r, a2i, a3r, a3i);
            let w1r = _mm256_loadu_ps(twrp.add(p));
            let w1i = _mm256_loadu_ps(twip.add(p));
            let w2r = _mm256_loadu_ps(twrp.add(m + p));
            let w2i = _mm256_loadu_ps(twip.add(m + p));
            let w3r = _mm256_loadu_ps(twrp.add(2 * m + p));
            let w3i = _mm256_loadu_ps(twip.add(2 * m + p));
            let (c1r, c1i) = rot(b1r, b1i, w1r, w1i);
            let (c2r, c2i) = rot(b2r, b2i, w2r, w2i);
            let (c3r, c3i) = rot(b3r, b3i, w3r, w3i);
            store_interleave4(yrp.add(4 * p), b0r, c1r, c2r, c3r);
            store_interleave4(yip.add(4 * p), b0i, c1i, c2i, c3i);
            p += 8;
        }
        if p < m {
            stage4_tail::<FWD>(p, m, s, twr, twi, xr, xi, yr, yi);
        }
    } else {
        stage4_generic::<FWD, f32>(m, s, twr, twi, xr, xi, yr, yi);
    }
}

/// Scalar remainder of the `p`-vectorized radix-4 kernels: sub-transforms
/// `p0..m` with the exact generic expressions.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn stage4_tail<const FWD: bool>(
    p0: usize,
    m: usize,
    s: usize,
    twr: &[f32],
    twi: &[f32],
    xr: &[f32],
    xi: &[f32],
    yr: &mut [f32],
    yi: &mut [f32],
) {
    for p in p0..m {
        for q in 0..s {
            let (a0r, a0i) = (xr[s * p + q], xi[s * p + q]);
            let (a1r, a1i) = (xr[s * (p + m) + q], xi[s * (p + m) + q]);
            let (a2r, a2i) = (xr[s * (p + 2 * m) + q], xi[s * (p + 2 * m) + q]);
            let (a3r, a3i) = (xr[s * (p + 3 * m) + q], xi[s * (p + 3 * m) + q]);
            let (t0r, t0i) = (a0r + a2r, a0i + a2i);
            let (t1r, t1i) = (a0r - a2r, a0i - a2i);
            let (t2r, t2i) = (a1r + a3r, a1i + a3i);
            let (ur, ui) = (a1r - a3r, a1i - a3i);
            let (b1r, b1i, b3r, b3i) = if FWD {
                (t1r + ui, t1i - ur, t1r - ui, t1i + ur)
            } else {
                (t1r - ui, t1i + ur, t1r + ui, t1i - ur)
            };
            let (b0r, b0i) = (t0r + t2r, t0i + t2i);
            let (b2r, b2i) = (t0r - t2r, t0i - t2i);
            let y = 4 * s * p + q;
            yr[y] = b0r;
            yi[y] = b0i;
            let (w1r, w1i) = (twr[p], twi[p]);
            let (w2r, w2i) = (twr[m + p], twi[m + p]);
            let (w3r, w3i) = (twr[2 * m + p], twi[2 * m + p]);
            yr[y + s] = b1r * w1r - b1i * w1i;
            yi[y + s] = b1r * w1i + b1i * w1r;
            yr[y + 2 * s] = b2r * w2r - b2i * w2i;
            yi[y + 2 * s] = b2r * w2i + b2i * w2r;
            yr[y + 3 * s] = b3r * w3r - b3i * w3i;
            yi[y + 3 * s] = b3r * w3i + b3i * w3r;
        }
    }
}

/// Radix-3 stage: `q`-vectorized for `s ≥ 8`, generic fallback otherwise.
///
/// # Safety
///
/// AVX2 support verified by the caller; slice extents as in the generic
/// stage bodies.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn stage3_ps<const FWD: bool>(
    m: usize,
    s: usize,
    twr: &[f32],
    twi: &[f32],
    xr: &[f32],
    xi: &[f32],
    yr: &mut [f32],
    yi: &mut [f32],
) {
    if s < 8 {
        return stage3_generic::<FWD, f32>(m, s, twr, twi, xr, xi, yr, yi);
    }
    let (xrp, xip) = (xr.as_ptr(), xi.as_ptr());
    let (yrp, yip) = (yr.as_mut_ptr(), yi.as_mut_ptr());
    let h = _mm256_set1_ps((0.5 * 3.0f64.sqrt()) as f32);
    let half = _mm256_set1_ps(0.5);
    for p in 0..m {
        let w1r = _mm256_broadcast_ss(&twr[p]);
        let w1i = _mm256_broadcast_ss(&twi[p]);
        let w2r = _mm256_broadcast_ss(&twr[m + p]);
        let w2i = _mm256_broadcast_ss(&twi[m + p]);
        let x = [s * p, s * (p + m), s * (p + 2 * m)];
        let y = 3 * s * p;
        let mut q = 0;
        while q + 8 <= s {
            let a0r = _mm256_loadu_ps(xrp.add(x[0] + q));
            let a0i = _mm256_loadu_ps(xip.add(x[0] + q));
            let a1r = _mm256_loadu_ps(xrp.add(x[1] + q));
            let a1i = _mm256_loadu_ps(xip.add(x[1] + q));
            let a2r = _mm256_loadu_ps(xrp.add(x[2] + q));
            let a2i = _mm256_loadu_ps(xip.add(x[2] + q));
            let tr = _mm256_add_ps(a1r, a2r);
            let ti = _mm256_add_ps(a1i, a2i);
            let ur = _mm256_sub_ps(a1r, a2r);
            let ui = _mm256_sub_ps(a1i, a2i);
            _mm256_storeu_ps(yrp.add(y + q), _mm256_add_ps(a0r, tr));
            _mm256_storeu_ps(yip.add(y + q), _mm256_add_ps(a0i, ti));
            let m0r = _mm256_sub_ps(a0r, _mm256_mul_ps(half, tr));
            let m0i = _mm256_sub_ps(a0i, _mm256_mul_ps(half, ti));
            let (hur, hui) = (_mm256_mul_ps(h, ur), _mm256_mul_ps(h, ui));
            let (b1r, b1i, b2r, b2i) = if FWD {
                (
                    _mm256_add_ps(m0r, hui),
                    _mm256_sub_ps(m0i, hur),
                    _mm256_sub_ps(m0r, hui),
                    _mm256_add_ps(m0i, hur),
                )
            } else {
                (
                    _mm256_sub_ps(m0r, hui),
                    _mm256_add_ps(m0i, hur),
                    _mm256_add_ps(m0r, hui),
                    _mm256_sub_ps(m0i, hur),
                )
            };
            let (c1r, c1i) = rot(b1r, b1i, w1r, w1i);
            let (c2r, c2i) = rot(b2r, b2i, w2r, w2i);
            _mm256_storeu_ps(yrp.add(y + s + q), c1r);
            _mm256_storeu_ps(yip.add(y + s + q), c1i);
            _mm256_storeu_ps(yrp.add(y + 2 * s + q), c2r);
            _mm256_storeu_ps(yip.add(y + 2 * s + q), c2i);
            q += 8;
        }
        while q < s {
            let (a0r, a0i) = (xr[x[0] + q], xi[x[0] + q]);
            let (a1r, a1i) = (xr[x[1] + q], xi[x[1] + q]);
            let (a2r, a2i) = (xr[x[2] + q], xi[x[2] + q]);
            let (tr, ti) = (a1r + a2r, a1i + a2i);
            let (ur, ui) = (a1r - a2r, a1i - a2i);
            yr[y + q] = a0r + tr;
            yi[y + q] = a0i + ti;
            let hs = (0.5 * 3.0f64.sqrt()) as f32;
            let (m0r, m0i) = (a0r - 0.5 * tr, a0i - 0.5 * ti);
            let (b1r, b1i, b2r, b2i) = if FWD {
                (m0r + hs * ui, m0i - hs * ur, m0r - hs * ui, m0i + hs * ur)
            } else {
                (m0r - hs * ui, m0i + hs * ur, m0r + hs * ui, m0i - hs * ur)
            };
            let (w1r, w1i) = (twr[p], twi[p]);
            let (w2r, w2i) = (twr[m + p], twi[m + p]);
            yr[y + s + q] = b1r * w1r - b1i * w1i;
            yi[y + s + q] = b1r * w1i + b1i * w1r;
            yr[y + 2 * s + q] = b2r * w2r - b2i * w2i;
            yi[y + 2 * s + q] = b2r * w2i + b2i * w2r;
            q += 1;
        }
    }
}

/// Radix-5 stage: `q`-vectorized for `s ≥ 8`, generic fallback otherwise.
///
/// # Safety
///
/// AVX2 support verified by the caller; slice extents as in the generic
/// stage bodies.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn stage5_ps<const FWD: bool>(
    m: usize,
    s: usize,
    twr: &[f32],
    twi: &[f32],
    xr: &[f32],
    xi: &[f32],
    yr: &mut [f32],
    yi: &mut [f32],
) {
    if s < 8 || !s.is_multiple_of(8) {
        return stage5_generic::<FWD, f32>(m, s, twr, twi, xr, xi, yr, yi);
    }
    let (xrp, xip) = (xr.as_ptr(), xi.as_ptr());
    let (yrp, yip) = (yr.as_mut_ptr(), yi.as_mut_ptr());
    let (s1f, c1f) = (std::f64::consts::TAU / 5.0).sin_cos();
    let (s2f, c2f) = (2.0 * std::f64::consts::TAU / 5.0).sin_cos();
    let s1 = _mm256_set1_ps(s1f as f32);
    let c1 = _mm256_set1_ps(c1f as f32);
    let s2 = _mm256_set1_ps(s2f as f32);
    let c2 = _mm256_set1_ps(c2f as f32);
    let sign = _mm256_set1_ps(-0.0);
    for p in 0..m {
        let w = |j: usize| {
            (
                _mm256_broadcast_ss(&twr[j * m + p]),
                _mm256_broadcast_ss(&twi[j * m + p]),
            )
        };
        let (w1r, w1i) = w(0);
        let (w2r, w2i) = w(1);
        let (w3r, w3i) = w(2);
        let (w4r, w4i) = w(3);
        let x = [
            s * p,
            s * (p + m),
            s * (p + 2 * m),
            s * (p + 3 * m),
            s * (p + 4 * m),
        ];
        let y = 5 * s * p;
        let mut q = 0;
        while q + 8 <= s {
            let a0r = _mm256_loadu_ps(xrp.add(x[0] + q));
            let a0i = _mm256_loadu_ps(xip.add(x[0] + q));
            let a1r = _mm256_loadu_ps(xrp.add(x[1] + q));
            let a1i = _mm256_loadu_ps(xip.add(x[1] + q));
            let a2r = _mm256_loadu_ps(xrp.add(x[2] + q));
            let a2i = _mm256_loadu_ps(xip.add(x[2] + q));
            let a3r = _mm256_loadu_ps(xrp.add(x[3] + q));
            let a3i = _mm256_loadu_ps(xip.add(x[3] + q));
            let a4r = _mm256_loadu_ps(xrp.add(x[4] + q));
            let a4i = _mm256_loadu_ps(xip.add(x[4] + q));
            let t1r = _mm256_add_ps(a1r, a4r);
            let t1i = _mm256_add_ps(a1i, a4i);
            let t2r = _mm256_add_ps(a2r, a3r);
            let t2i = _mm256_add_ps(a2i, a3i);
            let t3r = _mm256_sub_ps(a1r, a4r);
            let t3i = _mm256_sub_ps(a1i, a4i);
            let t4r = _mm256_sub_ps(a2r, a3r);
            let t4i = _mm256_sub_ps(a2i, a3i);
            _mm256_storeu_ps(yrp.add(y + q), _mm256_add_ps(_mm256_add_ps(a0r, t1r), t2r));
            _mm256_storeu_ps(yip.add(y + q), _mm256_add_ps(_mm256_add_ps(a0i, t1i), t2i));
            let m1r = _mm256_add_ps(
                _mm256_add_ps(a0r, _mm256_mul_ps(c1, t1r)),
                _mm256_mul_ps(c2, t2r),
            );
            let m1i = _mm256_add_ps(
                _mm256_add_ps(a0i, _mm256_mul_ps(c1, t1i)),
                _mm256_mul_ps(c2, t2i),
            );
            let m2r = _mm256_add_ps(
                _mm256_add_ps(a0r, _mm256_mul_ps(c2, t1r)),
                _mm256_mul_ps(c1, t2r),
            );
            let m2i = _mm256_add_ps(
                _mm256_add_ps(a0i, _mm256_mul_ps(c2, t1i)),
                _mm256_mul_ps(c1, t2i),
            );
            let v1r = _mm256_add_ps(_mm256_mul_ps(s1, t3r), _mm256_mul_ps(s2, t4r));
            let v1i = _mm256_add_ps(_mm256_mul_ps(s1, t3i), _mm256_mul_ps(s2, t4i));
            let v2r = _mm256_sub_ps(_mm256_mul_ps(s2, t3r), _mm256_mul_ps(s1, t4r));
            let v2i = _mm256_sub_ps(_mm256_mul_ps(s2, t3i), _mm256_mul_ps(s1, t4i));
            // m3 = ∓i·v1, m4 = ∓i·v2 (`sg = ±1` in the scalar body is an
            // exact sign flip, so a sign-bit xor is bit-identical).
            let (m3r, m3i, m4r, m4i) = if FWD {
                (v1i, _mm256_xor_ps(v1r, sign), v2i, _mm256_xor_ps(v2r, sign))
            } else {
                (_mm256_xor_ps(v1i, sign), v1r, _mm256_xor_ps(v2i, sign), v2r)
            };
            let (c1r_, c1i_) = rot(_mm256_add_ps(m1r, m3r), _mm256_add_ps(m1i, m3i), w1r, w1i);
            let (c2r_, c2i_) = rot(_mm256_add_ps(m2r, m4r), _mm256_add_ps(m2i, m4i), w2r, w2i);
            let (c3r_, c3i_) = rot(_mm256_sub_ps(m2r, m4r), _mm256_sub_ps(m2i, m4i), w3r, w3i);
            let (c4r_, c4i_) = rot(_mm256_sub_ps(m1r, m3r), _mm256_sub_ps(m1i, m3i), w4r, w4i);
            _mm256_storeu_ps(yrp.add(y + s + q), c1r_);
            _mm256_storeu_ps(yip.add(y + s + q), c1i_);
            _mm256_storeu_ps(yrp.add(y + 2 * s + q), c2r_);
            _mm256_storeu_ps(yip.add(y + 2 * s + q), c2i_);
            _mm256_storeu_ps(yrp.add(y + 3 * s + q), c3r_);
            _mm256_storeu_ps(yip.add(y + 3 * s + q), c3i_);
            _mm256_storeu_ps(yrp.add(y + 4 * s + q), c4r_);
            _mm256_storeu_ps(yip.add(y + 4 * s + q), c4i_);
            q += 8;
        }
    }
}
