//! Reusable scratch state for the SOCS convolution hot loop.
//!
//! One [`LithoWorkspace`] holds every buffer `LithoEngine::image_with` (and
//! pixel ILT's forward/backward passes) needs: the mask spectrum, one work
//! field + column scratch + accumulator per parallel task slot. After the
//! first call at a given grid size, the per-kernel loop performs **zero heap
//! allocations** — the frequency product writes only the kernel's live rows
//! into the slot's field, the pruned inverse gathers each column through the
//! slot's scratch, and the `|z|²` reduction accumulates in place. The
//! multi-condition entry ([`LithoWorkspace::socs_intensity_multi`]) computes
//! every process condition's image from a single forward mask FFT.

use crate::fft::{Complex, Field};
use crate::optics::SocsKernel;
use crate::pool::WorkerPool;

/// Scratch owned by one parallel task slot.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkSlot {
    /// Frequency/space work field for the per-kernel product + inverse FFT
    /// (only live rows are ever written or read on the full-image path).
    pub field: Option<Field>,
    /// Column gather buffer for the fused inverse column pass (also the
    /// blocked-transpose scratch on the ROI-columns path).
    pub scratch: Vec<Complex>,
    /// Per-slot partial accumulator, reduced in slot order afterwards —
    /// transposed layout (`acc[x·height + y]`) on the full-image path,
    /// row-major on the ROI-columns path.
    pub acc: Vec<f64>,
}

/// Reusable buffers for aerial-image / ILT hot loops on one grid size.
#[derive(Clone, Debug, Default)]
pub struct LithoWorkspace {
    width: usize,
    height: usize,
    /// Forward spectrum of the current mask.
    pub(crate) spectrum: Option<Field>,
    /// Scratch for the forward transform's column pass.
    pub(crate) forward_scratch: Vec<Complex>,
    pub(crate) slots: Vec<WorkSlot>,
}

impl LithoWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> LithoWorkspace {
        LithoWorkspace::default()
    }

    /// Ensures buffers exist for a `width`×`height` grid and `slots`
    /// parallel task slots (no-op when already sized).
    fn prepare(&mut self, width: usize, height: usize, slots: usize) {
        let n = width * height;
        if self.width != width || self.height != height {
            self.width = width;
            self.height = height;
            self.spectrum = None;
            self.slots.clear();
        }
        if self.spectrum.is_none() {
            self.spectrum = Some(Field::zeros(width, height));
        }
        if self.slots.len() < slots {
            self.slots.resize_with(slots, WorkSlot::default);
        }
        for slot in &mut self.slots[..slots] {
            if slot.field.is_none() {
                slot.field = Some(Field::zeros(width, height));
            }
            if slot.acc.len() != n {
                slot.acc = vec![0.0; n];
            }
        }
    }

    /// Computes the SOCS intensity `Σ_k w_k |M ⊗ h_k|²` of a real-valued
    /// mask raster into `intensity`, using `pool` with `parallelism` task
    /// slots. `intensity` must have `width*height` elements; it is
    /// overwritten.
    ///
    /// The per-kernel normalisation `1/(width·height)²` (from the unscaled
    /// inverse transform) is folded into each kernel's weight, and kernels
    /// are statically chunked in ascending order with the slot partials
    /// reduced in slot order, so the summation order per pixel is the
    /// ascending kernel order regardless of `parallelism` (results match
    /// the single-threaded path to reassociation rounding, < 1e-12).
    ///
    /// The per-kernel loop is the fully fused path: the frequency product
    /// writes only the kernel's live rows, the pruned inverse gathers each
    /// column's live entries and accumulates `w·|z|²` into a transposed
    /// per-slot accumulator without ever touching dead rows, and one
    /// real-valued transpose after the reduction restores row-major layout
    /// ([`Field::ifft2_pruned_accumulate_t`]).
    ///
    /// # Panics
    ///
    /// Panics when `mask.len()` or `intensity.len()` differ from
    /// `width*height`.
    #[allow(clippy::too_many_arguments)]
    pub fn socs_intensity(
        &mut self,
        width: usize,
        height: usize,
        mask: &[f64],
        kernels: &[SocsKernel],
        pool: &WorkerPool,
        parallelism: usize,
        intensity: &mut [f64],
    ) {
        let n = width * height;
        assert_eq!(mask.len(), n, "mask sample count mismatch");
        assert_eq!(intensity.len(), n, "intensity sample count mismatch");
        let tasks = parallelism.clamp(1, kernels.len().max(1));
        self.prepare(width, height, tasks);

        let spectrum = self.spectrum.as_mut().expect("prepared above");
        spectrum.fill_forward_real_with(mask, &mut self.forward_scratch);
        let spectrum: &Field = spectrum;

        let slots = &mut self.slots[..tasks];
        // |IFFT_unscaled(z)/n|² = |z|²/n²: fold the normalisation into w_k.
        let inv_n2 = 1.0 / (n as f64 * n as f64);
        let chunk = kernels.len().div_ceil(tasks);
        pool.run_with_slots(slots, |t, slot| {
            Self::convolve_chunk(
                spectrum,
                kernels.iter().skip(t * chunk).take(chunk),
                inv_n2,
                slot,
            );
        });
        Self::reduce_set(slots, width, height, intensity);
    }

    /// One slot's share of a kernel set: the fused product → pruned
    /// inverse → `w·|z|²` accumulation loop over `kernels`.
    fn convolve_chunk<'k>(
        spectrum: &Field,
        kernels: impl Iterator<Item = &'k SocsKernel>,
        inv_n2: f64,
        slot: &mut WorkSlot,
    ) {
        let field = slot.field.as_mut().expect("prepared above");
        slot.acc.fill(0.0);
        for kernel in kernels {
            spectrum.mul_pointwise_live_rows_into(&kernel.transfer, &kernel.live_rows, field);
            field.ifft2_pruned_accumulate_t(
                &kernel.live_rows,
                &mut slot.scratch,
                kernel.weight * inv_n2,
                &mut slot.acc,
            );
        }
    }

    /// Reduces a contiguous slot range's transposed partial accumulators in
    /// slot order and writes the row-major intensity.
    fn reduce_set(slots: &mut [WorkSlot], width: usize, height: usize, intensity: &mut [f64]) {
        let (first, rest) = slots.split_first_mut().expect("at least one slot");
        for slot in rest.iter() {
            for (dst, &v) in first.acc.iter_mut().zip(&slot.acc) {
                *dst += v;
            }
        }
        crate::fft::transpose_real_into(&first.acc, width, height, intensity);
    }

    /// Multi-condition SOCS intensity: computes one aerial image per kernel
    /// set from a **single** forward mask FFT, dispatching every set's
    /// convolutions over `pool` in one fan-out.
    ///
    /// Each set is chunked exactly as a standalone
    /// [`LithoWorkspace::socs_intensity`] call at the same `parallelism`
    /// would chunk it (its own `tasks`/`chunk` split, its own slot range,
    /// slot-ordered reduction), so every output is **bit-identical** to the
    /// serial per-set path — the only sharing is the forward spectrum,
    /// which is a pure function of the mask.
    ///
    /// # Panics
    ///
    /// Panics when `outputs.len() != kernel_sets.len()`, or on any sample
    /// count mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn socs_intensity_multi(
        &mut self,
        width: usize,
        height: usize,
        mask: &[f64],
        kernel_sets: &[&[SocsKernel]],
        pool: &WorkerPool,
        parallelism: usize,
        outputs: &mut [&mut [f64]],
    ) {
        let n = width * height;
        assert_eq!(mask.len(), n, "mask sample count mismatch");
        assert_eq!(
            outputs.len(),
            kernel_sets.len(),
            "one output per kernel set required"
        );
        for out in outputs.iter() {
            assert_eq!(out.len(), n, "intensity sample count mismatch");
        }
        // Per-set slot ranges, identical to each set's standalone chunking.
        let tasks_per_set: Vec<usize> = kernel_sets
            .iter()
            .map(|set| parallelism.clamp(1, set.len().max(1)))
            .collect();
        let total_slots: usize = tasks_per_set.iter().sum();
        self.prepare(width, height, total_slots);

        let spectrum = self.spectrum.as_mut().expect("prepared above");
        spectrum.fill_forward_real_with(mask, &mut self.forward_scratch);
        let spectrum: &Field = spectrum;

        // One pool fan-out over every set's slots: global slot index `s`
        // maps statically to (set, in-set task) so results do not depend on
        // which worker claims which slot.
        let inv_n2 = 1.0 / (n as f64 * n as f64);
        let slots = &mut self.slots[..total_slots];
        let tasks_per_set = &tasks_per_set;
        pool.run_with_slots(slots, |s, slot| {
            let mut c = 0usize;
            let mut base = 0usize;
            while s >= base + tasks_per_set[c] {
                base += tasks_per_set[c];
                c += 1;
            }
            let set = kernel_sets[c];
            let chunk = set.len().div_ceil(tasks_per_set[c]);
            let t = s - base;
            Self::convolve_chunk(
                spectrum,
                set.iter().skip(t * chunk).take(chunk),
                inv_n2,
                slot,
            );
        });
        let mut slot_base = 0usize;
        for (out, &tasks) in outputs.iter_mut().zip(tasks_per_set) {
            Self::reduce_set(&mut slots[slot_base..slot_base + tasks], width, height, out);
            slot_base += tasks;
        }
    }

    /// Column-restricted SOCS intensity: like
    /// [`LithoWorkspace::socs_intensity`] but only the pixels in the given
    /// `cols` (x indices) are computed; every other pixel of `intensity` is
    /// left at zero.
    ///
    /// The per-kernel inverse transform skips both transposes and every
    /// off-ROI column transform ([`Field::ifft2_pruned_cols_accumulate`]),
    /// which is what makes restricted re-simulation inside the OPC
    /// correction loop cheap. Computed pixels are bit-identical to the full
    /// path for the same `parallelism` chunking (same kernel order, same
    /// slot-ordered reduction).
    ///
    /// # Panics
    ///
    /// Panics on sample-count mismatch or an out-of-range column index.
    #[allow(clippy::too_many_arguments)]
    pub fn socs_intensity_cols(
        &mut self,
        width: usize,
        height: usize,
        mask: &[f64],
        kernels: &[SocsKernel],
        cols: &[usize],
        pool: &WorkerPool,
        parallelism: usize,
        intensity: &mut [f64],
    ) {
        let n = width * height;
        assert_eq!(mask.len(), n, "mask sample count mismatch");
        assert_eq!(intensity.len(), n, "intensity sample count mismatch");
        let tasks = parallelism.clamp(1, kernels.len().max(1));
        self.prepare(width, height, tasks);

        let spectrum = self.spectrum.as_mut().expect("prepared above");
        spectrum.fill_forward_real_with(mask, &mut self.forward_scratch);
        let spectrum: &Field = spectrum;

        let inv_n2 = 1.0 / (n as f64 * n as f64);
        let chunk = kernels.len().div_ceil(tasks);
        let slots = &mut self.slots[..tasks];
        pool.run_with_slots(slots, |t, slot| {
            let field = slot.field.as_mut().expect("prepared above");
            slot.acc.fill(0.0);
            for kernel in kernels.iter().skip(t * chunk).take(chunk) {
                spectrum.mul_pointwise_pruned_into(&kernel.transfer, &kernel.live_rows, field);
                field.ifft2_pruned_cols_accumulate(
                    &kernel.live_rows,
                    cols,
                    &mut slot.scratch,
                    kernel.weight * inv_n2,
                    &mut slot.acc,
                );
            }
        });

        intensity.fill(0.0);
        for slot in slots.iter() {
            for &x in cols {
                for y in 0..height {
                    intensity[y * width + x] += slot.acc[y * width + x];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optics::{build_kernels, OpticsConfig};
    use cardopc_geometry::SplitMix64;

    fn kernels_64() -> Vec<SocsKernel> {
        let cfg = OpticsConfig {
            source_rings: 1,
            points_per_ring: 6,
            ..OpticsConfig::default()
        };
        build_kernels(&cfg, 64, 64, 8.0, 0.0).unwrap()
    }

    fn random_mask(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.range_f64(0.0, 1.0)).collect()
    }

    /// Reference SOCS intensity via the plain (allocating) field API.
    fn reference_intensity(mask: &[f64], kernels: &[SocsKernel]) -> Vec<f64> {
        let spectrum = {
            let mut f = Field::from_real(64, 64, mask);
            f.fft2_inplace(false);
            f
        };
        let mut intensity = vec![0.0; 64 * 64];
        for k in kernels {
            let mut field = spectrum.mul_pointwise(&k.transfer);
            field.fft2_inplace(true);
            for (dst, z) in intensity.iter_mut().zip(field.data()) {
                *dst += k.weight * z.norm_sq();
            }
        }
        intensity
    }

    #[test]
    fn socs_intensity_matches_reference_for_any_parallelism() {
        let kernels = kernels_64();
        let mask = random_mask(64 * 64, 42);
        let expected = reference_intensity(&mask, &kernels);
        let pool = WorkerPool::new(4);
        for parallelism in [1usize, 2, 3, 4, 16] {
            let mut ws = LithoWorkspace::new();
            let mut intensity = vec![0.0; 64 * 64];
            ws.socs_intensity(64, 64, &mask, &kernels, &pool, parallelism, &mut intensity);
            for (i, (&got, &want)) in intensity.iter().zip(&expected).enumerate() {
                assert!(
                    (got - want).abs() < 1e-12 * (1.0 + want.abs()),
                    "parallelism {parallelism}, pixel {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn socs_intensity_cols_matches_full_on_roi() {
        let kernels = kernels_64();
        let mask = random_mask(64 * 64, 7);
        let pool = WorkerPool::new(3);
        let cols: Vec<usize> = vec![0, 5, 9, 31, 63];
        for parallelism in [1usize, 3] {
            let mut ws = LithoWorkspace::new();
            let mut full = vec![0.0; 64 * 64];
            ws.socs_intensity(64, 64, &mask, &kernels, &pool, parallelism, &mut full);
            let mut roi = vec![f64::NAN; 64 * 64];
            ws.socs_intensity_cols(64, 64, &mask, &kernels, &cols, &pool, parallelism, &mut roi);
            for y in 0..64 {
                for x in 0..64 {
                    let i = y * 64 + x;
                    if cols.contains(&x) {
                        assert_eq!(
                            roi[i], full[i],
                            "parallelism {parallelism}, pixel ({x},{y}) not bit-identical"
                        );
                    } else {
                        assert_eq!(roi[i], 0.0, "off-ROI pixel ({x},{y}) not zero");
                    }
                }
            }
        }
    }

    #[test]
    fn workspace_is_reusable_across_calls_and_sizes() {
        let kernels = kernels_64();
        let pool = WorkerPool::new(2);
        let mut ws = LithoWorkspace::new();
        let mut out_a = vec![0.0; 64 * 64];
        let mut out_b = vec![0.0; 64 * 64];
        let mask_a = random_mask(64 * 64, 1);
        let mask_b = random_mask(64 * 64, 2);
        ws.socs_intensity(64, 64, &mask_a, &kernels, &pool, 2, &mut out_a);
        ws.socs_intensity(64, 64, &mask_b, &kernels, &pool, 2, &mut out_b);
        // Fresh workspace agrees: no state leaks between calls.
        let mut fresh = LithoWorkspace::new();
        let mut out_b2 = vec![0.0; 64 * 64];
        fresh.socs_intensity(64, 64, &mask_b, &kernels, &pool, 2, &mut out_b2);
        assert_eq!(out_b, out_b2);
    }
}
