//! Reusable scratch state for the SOCS convolution hot loop.
//!
//! One [`LithoWorkspace`] holds every buffer `LithoEngine::image_with` (and
//! pixel ILT's forward/backward passes) needs: the mask spectrum, one work
//! field + FFT scratch per parallel task slot, and one accumulator strip
//! per *kernel*. After the first call at a given grid size, the per-kernel
//! loop performs **zero heap allocations** — the frequency product writes
//! only the kernel's live rows into the slot's field, the pruned inverse
//! gathers each column through the slot's scratch, and the `|z|²` reduction
//! accumulates in place. The multi-condition entry
//! ([`LithoWorkspace::socs_intensity_multi`]) computes every process
//! condition's image from a single forward mask FFT.
//!
//! The workspace is generic over the simulation [`Scalar`]: masks enter and
//! intensities leave as `f64`, everything in between — spectrum, work
//! fields, accumulator strips — runs at the workspace precision, and the
//! kernel weight (including the folded `1/n²` normalisation) is narrowed
//! from the `f64` reference at the point of use.
//!
//! Accumulation granularity is one strip per kernel (not per task slot), and
//! strips are reduced in ascending kernel order. The per-pixel floating
//! point summation tree is therefore a fixed left fold over kernels no
//! matter how the kernels are chunked across tasks — outputs are
//! **byte-identical for any worker count**, per dispatch mode and precision.

use crate::fft::{FftScratch, Field};
use crate::optics::SocsKernel;
use crate::pool::WorkerPool;
use crate::scalar::Scalar;

/// Scratch owned by one parallel task slot.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkSlot<T: Scalar = f64> {
    /// Frequency/space work field for the per-kernel product + inverse FFT
    /// (only live rows are ever written or read on the full-image path).
    pub field: Option<Field<T>>,
    /// FFT scratch (ping-pong, transpose and column-gather lanes) for the
    /// fused inverse column pass.
    pub scratch: FftScratch<T>,
}

/// Reusable buffers for aerial-image / ILT hot loops on one grid size.
#[derive(Clone, Debug, Default)]
pub struct LithoWorkspace<T: Scalar = f64> {
    width: usize,
    height: usize,
    /// Forward spectrum of the current mask.
    pub(crate) spectrum: Option<Field<T>>,
    /// Scratch for the forward transform.
    pub(crate) forward_scratch: FftScratch<T>,
    pub(crate) slots: Vec<WorkSlot<T>>,
    /// Per-kernel accumulator strips (`strips[k·stride .. (k+1)·stride]`
    /// holds kernel `k`'s `w·|z|²` contribution), reduced in ascending
    /// kernel order after the fan-out so the summation tree is independent
    /// of the task count.
    strips: Vec<T>,
}

impl<T: Scalar> LithoWorkspace<T> {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> LithoWorkspace<T> {
        LithoWorkspace::default()
    }

    /// Ensures buffers exist for a `width`×`height` grid and `slots`
    /// parallel task slots (no-op when already sized).
    fn prepare(&mut self, width: usize, height: usize, slots: usize) {
        if self.width != width || self.height != height {
            self.width = width;
            self.height = height;
            self.spectrum = None;
            self.slots.clear();
            self.strips.clear();
        }
        if self.spectrum.is_none() {
            self.spectrum = Some(Field::zeros(width, height));
        }
        if self.slots.len() < slots {
            self.slots.resize_with(slots, WorkSlot::default);
        }
        for slot in &mut self.slots[..slots] {
            if slot.field.is_none() {
                slot.field = Some(Field::zeros(width, height));
            }
        }
    }

    /// Grows the per-kernel strip buffer to at least `len` samples.
    fn ensure_strips(&mut self, len: usize) {
        if self.strips.len() < len {
            self.strips.resize(len, T::ZERO);
        }
    }

    /// Computes the SOCS intensity `Σ_k w_k |M ⊗ h_k|²` of a real-valued
    /// mask raster into `intensity`, using `pool` with `parallelism` task
    /// slots. `intensity` must have `width*height` elements; it is
    /// overwritten.
    ///
    /// The per-kernel normalisation `1/(width·height)²` (from the unscaled
    /// inverse transform) is folded into each kernel's weight. Each kernel
    /// accumulates into its own strip and the strips are reduced in
    /// ascending kernel order, so the per-pixel summation tree is the same
    /// left fold over kernels regardless of `parallelism` — the output is
    /// **byte-identical** for any worker count (per dispatch mode and
    /// precision).
    ///
    /// The per-kernel loop is the fully fused path: the frequency product
    /// writes only the kernel's live rows, the pruned inverse gathers each
    /// column's live entries and accumulates `w·|z|²` into a transposed
    /// per-slot accumulator without ever touching dead rows, and one
    /// real-valued transpose after the reduction restores row-major layout
    /// ([`Field::ifft2_pruned_accumulate_t`]).
    ///
    /// # Panics
    ///
    /// Panics when `mask.len()` or `intensity.len()` differ from
    /// `width*height`.
    #[allow(clippy::too_many_arguments)]
    pub fn socs_intensity(
        &mut self,
        width: usize,
        height: usize,
        mask: &[f64],
        kernels: &[SocsKernel<T>],
        pool: &WorkerPool,
        parallelism: usize,
        intensity: &mut [f64],
    ) {
        let n = width * height;
        assert_eq!(mask.len(), n, "mask sample count mismatch");
        assert_eq!(intensity.len(), n, "intensity sample count mismatch");
        let nk = kernels.len();
        let tasks = parallelism.clamp(1, nk.max(1));
        self.prepare(width, height, tasks);
        self.ensure_strips(nk * n);

        let spectrum = self.spectrum.as_mut().expect("prepared above");
        spectrum.fill_forward_real_with(mask, &mut self.forward_scratch);
        let spectrum: &Field<T> = spectrum;
        if nk == 0 {
            intensity.fill(0.0);
            return;
        }

        // |IFFT_unscaled(z)/n|² = |z|²/n²: fold the normalisation into w_k.
        let inv_n2 = 1.0 / (n as f64 * n as f64);
        let chunk = nk.div_ceil(tasks);
        let strips = &mut self.strips[..nk * n];
        let mut units: Vec<(&mut WorkSlot<T>, &mut [T])> = self.slots[..tasks]
            .iter_mut()
            .zip(strips.chunks_mut(chunk * n))
            .collect();
        pool.run_with_slots(&mut units, |t, (slot, strip_chunk)| {
            Self::convolve_chunk(
                spectrum,
                kernels.iter().skip(t * chunk).take(chunk),
                inv_n2,
                slot,
                strip_chunk,
                n,
            );
        });
        Self::reduce_strips(strips, nk, n);
        crate::fft::transpose_real_into(&strips[..n], width, height, intensity);
    }

    /// One task's share of a kernel set: the fused product → pruned
    /// inverse → `w·|z|²` loop, each kernel accumulating into its own strip
    /// of `strips` (so results are independent of the chunking).
    fn convolve_chunk<'k>(
        spectrum: &Field<T>,
        kernels: impl Iterator<Item = &'k SocsKernel<T>>,
        inv_n2: f64,
        slot: &mut WorkSlot<T>,
        strips: &mut [T],
        stride: usize,
    ) {
        let field = slot.field.as_mut().expect("prepared above");
        for (kernel, strip) in kernels.zip(strips.chunks_mut(stride)) {
            strip.fill(T::ZERO);
            spectrum.mul_pointwise_live_rows_into(&kernel.transfer, &kernel.live_rows, field);
            field.ifft2_pruned_accumulate_t(
                &kernel.live_rows,
                &mut slot.scratch,
                T::from_f64(kernel.weight * inv_n2),
                strip,
            );
        }
    }

    /// Left-folds `count` per-kernel strips of `stride` samples into the
    /// first strip, in ascending kernel order — the canonical summation
    /// tree every entry point shares, whatever the task chunking was.
    fn reduce_strips(strips: &mut [T], count: usize, stride: usize) {
        let (first, rest) = strips.split_at_mut(stride);
        for k in 1..count {
            let src = &rest[(k - 1) * stride..k * stride];
            for (dst, &v) in first.iter_mut().zip(src) {
                *dst += v;
            }
        }
    }

    /// Multi-condition SOCS intensity: computes one aerial image per kernel
    /// set from a **single** forward mask FFT, dispatching every set's
    /// convolutions over `pool` in one fan-out.
    ///
    /// Each set accumulates into its own contiguous per-kernel strip region
    /// and is reduced in ascending kernel order, exactly as a standalone
    /// [`LithoWorkspace::socs_intensity`] call would — so every output is
    /// **bit-identical** to the serial per-set path at *any* `parallelism`;
    /// the only sharing is the forward spectrum, which is a pure function
    /// of the mask.
    ///
    /// # Panics
    ///
    /// Panics when `outputs.len() != kernel_sets.len()`, or on any sample
    /// count mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn socs_intensity_multi(
        &mut self,
        width: usize,
        height: usize,
        mask: &[f64],
        kernel_sets: &[&[SocsKernel<T>]],
        pool: &WorkerPool,
        parallelism: usize,
        outputs: &mut [&mut [f64]],
    ) {
        let n = width * height;
        assert_eq!(mask.len(), n, "mask sample count mismatch");
        assert_eq!(
            outputs.len(),
            kernel_sets.len(),
            "one output per kernel set required"
        );
        for out in outputs.iter() {
            assert_eq!(out.len(), n, "intensity sample count mismatch");
        }
        // Per-set chunk sizes, identical to each set's standalone chunking,
        // and one work unit (task) per chunk. Each unit descriptor is
        // `(set index, first kernel, kernel count)`.
        let mut descs: Vec<(usize, usize, usize)> = Vec::new();
        for (c, set) in kernel_sets.iter().enumerate() {
            let tasks = parallelism.clamp(1, set.len().max(1));
            let chunk = set.len().div_ceil(tasks).max(1);
            let mut start = 0usize;
            while start < set.len() {
                let count = chunk.min(set.len() - start);
                descs.push((c, start, count));
                start += count;
            }
        }
        let total_nk: usize = kernel_sets.iter().map(|set| set.len()).sum();
        self.prepare(width, height, descs.len().max(1));
        self.ensure_strips(total_nk * n);

        let spectrum = self.spectrum.as_mut().expect("prepared above");
        spectrum.fill_forward_real_with(mask, &mut self.forward_scratch);
        let spectrum: &Field<T> = spectrum;

        // One pool fan-out over every set's chunks. Unit `u` statically owns
        // its kernel range and strip region, so results do not depend on
        // which worker claims which unit.
        let inv_n2 = 1.0 / (n as f64 * n as f64);
        {
            let mut rest: &mut [T] = &mut self.strips[..total_nk * n];
            #[allow(clippy::type_complexity)]
            let mut units: Vec<((usize, usize, usize), &mut WorkSlot<T>, &mut [T])> =
                Vec::with_capacity(descs.len());
            for (&desc, slot) in descs.iter().zip(self.slots.iter_mut()) {
                let (head, tail) = rest.split_at_mut(desc.2 * n);
                rest = tail;
                units.push((desc, slot, head));
            }
            pool.run_with_slots(&mut units, |_u, ((c, start, count), slot, strips)| {
                let set = kernel_sets[*c];
                Self::convolve_chunk(
                    spectrum,
                    set[*start..*start + *count].iter(),
                    inv_n2,
                    slot,
                    strips,
                    n,
                );
            });
        }
        // Ascending-kernel-order reduction per set, over its strip region.
        let mut base = 0usize;
        for (out, set) in outputs.iter_mut().zip(kernel_sets) {
            if set.is_empty() {
                out.fill(0.0);
                continue;
            }
            let region = &mut self.strips[base * n..(base + set.len()) * n];
            Self::reduce_strips(region, set.len(), n);
            crate::fft::transpose_real_into(&region[..n], width, height, out);
            base += set.len();
        }
    }

    /// Column-restricted SOCS intensity: like
    /// [`LithoWorkspace::socs_intensity`] but only the pixels in the given
    /// `cols` (x indices) are computed; every other pixel of `intensity` is
    /// left at zero.
    ///
    /// The per-kernel inverse transform skips both transposes and every
    /// off-ROI column transform ([`Field::ifft2_pruned_cols_accumulate`]),
    /// which is what makes restricted re-simulation inside the OPC
    /// correction loop cheap. Computed pixels are bit-identical to the full
    /// path at *any* `parallelism` (identical per-column kernel operations,
    /// same ascending-kernel reduction order).
    ///
    /// # Panics
    ///
    /// Panics on sample-count mismatch or an out-of-range column index.
    #[allow(clippy::too_many_arguments)]
    pub fn socs_intensity_cols(
        &mut self,
        width: usize,
        height: usize,
        mask: &[f64],
        kernels: &[SocsKernel<T>],
        cols: &[usize],
        pool: &WorkerPool,
        parallelism: usize,
        intensity: &mut [f64],
    ) {
        let n = width * height;
        assert_eq!(mask.len(), n, "mask sample count mismatch");
        assert_eq!(intensity.len(), n, "intensity sample count mismatch");
        let nk = kernels.len();
        let tasks = parallelism.clamp(1, nk.max(1));
        let stride = cols.len() * height;
        self.prepare(width, height, tasks);
        self.ensure_strips(nk * stride);

        let spectrum = self.spectrum.as_mut().expect("prepared above");
        spectrum.fill_forward_real_with(mask, &mut self.forward_scratch);
        let spectrum: &Field<T> = spectrum;
        if nk == 0 || stride == 0 {
            intensity.fill(0.0);
            return;
        }

        let inv_n2 = 1.0 / (n as f64 * n as f64);
        let chunk = nk.div_ceil(tasks);
        let strips = &mut self.strips[..nk * stride];
        let mut units: Vec<(&mut WorkSlot<T>, &mut [T])> = self.slots[..tasks]
            .iter_mut()
            .zip(strips.chunks_mut(chunk * stride))
            .collect();
        pool.run_with_slots(&mut units, |t, (slot, strip_chunk)| {
            let field = slot.field.as_mut().expect("prepared above");
            for (kernel, strip) in kernels
                .iter()
                .skip(t * chunk)
                .take(chunk)
                .zip(strip_chunk.chunks_mut(stride))
            {
                strip.fill(T::ZERO);
                spectrum.mul_pointwise_pruned_into(&kernel.transfer, &kernel.live_rows, field);
                field.ifft2_pruned_cols_accumulate(
                    &kernel.live_rows,
                    cols,
                    &mut slot.scratch,
                    T::from_f64(kernel.weight * inv_n2),
                    strip,
                );
            }
        });

        // Ascending-kernel reduction, then scatter the column-contiguous
        // result back to row-major, widening to the f64 output domain
        // (bit-identical summation tree to the full path).
        Self::reduce_strips(strips, nk, stride);
        intensity.fill(0.0);
        let first = &strips[..stride];
        for (ci, &x) in cols.iter().enumerate() {
            for y in 0..height {
                intensity[y * width + x] = first[ci * height + y].to_f64();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optics::{build_kernels, OpticsConfig};
    use cardopc_geometry::SplitMix64;

    fn kernels_64() -> Vec<SocsKernel> {
        let cfg = OpticsConfig {
            source_rings: 1,
            points_per_ring: 6,
            ..OpticsConfig::default()
        };
        build_kernels(&cfg, 64, 64, 8.0, 0.0).unwrap()
    }

    fn random_mask(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.range_f64(0.0, 1.0)).collect()
    }

    /// Reference SOCS intensity via the plain (allocating) field API.
    fn reference_intensity(mask: &[f64], kernels: &[SocsKernel]) -> Vec<f64> {
        let spectrum = {
            let mut f: Field = Field::from_real(64, 64, mask);
            f.fft2_inplace(false);
            f
        };
        let mut intensity = vec![0.0; 64 * 64];
        for k in kernels {
            let mut field = spectrum.mul_pointwise(&k.transfer);
            field.fft2_inplace(true);
            for (dst, z) in intensity.iter_mut().zip(field.iter()) {
                *dst += k.weight * z.norm_sq();
            }
        }
        intensity
    }

    #[test]
    fn socs_intensity_matches_reference_for_any_parallelism() {
        let kernels = kernels_64();
        let mask = random_mask(64 * 64, 42);
        let expected = reference_intensity(&mask, &kernels);
        let pool = WorkerPool::new(4);
        for parallelism in [1usize, 2, 3, 4, 16] {
            let mut ws: LithoWorkspace = LithoWorkspace::new();
            let mut intensity = vec![0.0; 64 * 64];
            ws.socs_intensity(64, 64, &mask, &kernels, &pool, parallelism, &mut intensity);
            for (i, (&got, &want)) in intensity.iter().zip(&expected).enumerate() {
                assert!(
                    (got - want).abs() < 1e-12 * (1.0 + want.abs()),
                    "parallelism {parallelism}, pixel {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn f32_socs_intensity_tracks_f64_within_tolerance() {
        let kernels = kernels_64();
        let kernels_32: Vec<SocsKernel<f32>> = kernels.iter().map(|k| k.to_precision()).collect();
        let mask = random_mask(64 * 64, 43);
        let pool = WorkerPool::new(2);
        let mut ws64: LithoWorkspace = LithoWorkspace::new();
        let mut ws32: LithoWorkspace<f32> = LithoWorkspace::new();
        let mut i64 = vec![0.0; 64 * 64];
        let mut i32 = vec![0.0; 64 * 64];
        ws64.socs_intensity(64, 64, &mask, &kernels, &pool, 2, &mut i64);
        ws32.socs_intensity(64, 64, &mask, &kernels_32, &pool, 2, &mut i32);
        let peak = i64.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak > 0.0);
        for (i, (&a, &b)) in i32.iter().zip(&i64).enumerate() {
            assert!(
                (a - b).abs() < 2e-4 * peak,
                "pixel {i}: f32 {a} vs f64 {b} (peak {peak})"
            );
        }
    }

    #[test]
    fn f32_socs_intensity_is_deterministic_across_parallelism() {
        let kernels_32: Vec<SocsKernel<f32>> =
            kernels_64().iter().map(|k| k.to_precision()).collect();
        let mask = random_mask(64 * 64, 44);
        let pool = WorkerPool::new(4);
        let mut baseline = vec![0.0; 64 * 64];
        let mut ws: LithoWorkspace<f32> = LithoWorkspace::new();
        ws.socs_intensity(64, 64, &mask, &kernels_32, &pool, 1, &mut baseline);
        for parallelism in [2usize, 3, 4, 16] {
            let mut ws: LithoWorkspace<f32> = LithoWorkspace::new();
            let mut intensity = vec![0.0; 64 * 64];
            ws.socs_intensity(
                64,
                64,
                &mask,
                &kernels_32,
                &pool,
                parallelism,
                &mut intensity,
            );
            assert_eq!(intensity, baseline, "parallelism {parallelism}");
        }
    }

    #[test]
    fn socs_intensity_cols_matches_full_on_roi() {
        let kernels = kernels_64();
        let mask = random_mask(64 * 64, 7);
        let pool = WorkerPool::new(3);
        let cols: Vec<usize> = vec![0, 5, 9, 31, 63];
        for parallelism in [1usize, 3] {
            let mut ws: LithoWorkspace = LithoWorkspace::new();
            let mut full = vec![0.0; 64 * 64];
            ws.socs_intensity(64, 64, &mask, &kernels, &pool, parallelism, &mut full);
            let mut roi = vec![f64::NAN; 64 * 64];
            ws.socs_intensity_cols(64, 64, &mask, &kernels, &cols, &pool, parallelism, &mut roi);
            for y in 0..64 {
                for x in 0..64 {
                    let i = y * 64 + x;
                    if cols.contains(&x) {
                        assert_eq!(
                            roi[i], full[i],
                            "parallelism {parallelism}, pixel ({x},{y}) not bit-identical"
                        );
                    } else {
                        assert_eq!(roi[i], 0.0, "off-ROI pixel ({x},{y}) not zero");
                    }
                }
            }
        }
    }

    #[test]
    fn workspace_is_reusable_across_calls_and_sizes() {
        let kernels = kernels_64();
        let pool = WorkerPool::new(2);
        let mut ws: LithoWorkspace = LithoWorkspace::new();
        let mut out_a = vec![0.0; 64 * 64];
        let mut out_b = vec![0.0; 64 * 64];
        let mask_a = random_mask(64 * 64, 1);
        let mask_b = random_mask(64 * 64, 2);
        ws.socs_intensity(64, 64, &mask_a, &kernels, &pool, 2, &mut out_a);
        ws.socs_intensity(64, 64, &mask_b, &kernels, &pool, 2, &mut out_b);
        // Fresh workspace agrees: no state leaks between calls.
        let mut fresh: LithoWorkspace = LithoWorkspace::new();
        let mut out_b2 = vec![0.0; 64 * 64];
        fresh.socs_intensity(64, 64, &mask_b, &kernels, &pool, 2, &mut out_b2);
        assert_eq!(out_b, out_b2);
    }
}
