//! Property-based tests of the single-precision FFT backend.
//!
//! Mirrors the f64 suite in `properties.rs` at f32-appropriate
//! tolerances: the same structural invariants (round trip, Parseval,
//! linearity, real-packed agreement) must hold on the narrowed
//! twiddle/chirp tables and the 8-lane kernels, across every code path —
//! 5-smooth sizes run mixed-radix Stockham, everything else Bluestein.

use cardopc_geometry::SplitMix64;
use cardopc_litho::fft::{fft_inplace, Complex};
use cardopc_litho::{FftPlan, FftScratch, Field, Scalar};
use proptest::prelude::*;
use std::sync::Arc;

/// Forward or inverse f32 transform on split buffers, including the
/// inverse `1/n` normalisation (the split entry point leaves scaling to
/// the caller so 2-D drivers can fold it elsewhere).
fn fft32(re: &mut [f32], im: &mut [f32], scratch: &mut FftScratch<f32>, inverse: bool) {
    let n = re.len();
    let plan: Arc<FftPlan<f32>> = FftPlan::get(n);
    plan.execute_unscaled_split(re, im, scratch, inverse);
    if inverse {
        let scale = 1.0 / n as f32;
        for v in re.iter_mut() {
            *v *= scale;
        }
        for v in im.iter_mut() {
            *v *= scale;
        }
    }
}

proptest! {
    /// FFT round trip is the identity at any length in single precision.
    #[test]
    fn f32_fft_roundtrip(seed in 0u64..1000, n in 1usize..300) {
        let mut rng = SplitMix64::new(seed);
        let orig_re: Vec<f32> = (0..n).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect();
        let orig_im: Vec<f32> = (0..n).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect();
        let (mut re, mut im) = (orig_re.clone(), orig_im.clone());
        let mut scratch = FftScratch::new();
        fft32(&mut re, &mut im, &mut scratch, false);
        fft32(&mut re, &mut im, &mut scratch, true);
        for i in 0..n {
            prop_assert!((re[i] - orig_re[i]).abs() < 1e-3, "re[{i}]: {} vs {}", re[i], orig_re[i]);
            prop_assert!((im[i] - orig_im[i]).abs() < 1e-3, "im[{i}]: {} vs {}", im[i], orig_im[i]);
        }
    }

    /// Parseval in f32: time- and frequency-domain energies agree.
    #[test]
    fn f32_fft_parseval(seed in 0u64..1000, n in 1usize..300) {
        let mut rng = SplitMix64::new(seed);
        let mut re: Vec<f32> = (0..n).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect();
        let mut im: Vec<f32> = (0..n).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect();
        // Energies accumulate in f64 so the *transform's* error is what
        // the tolerance measures, not the summation's.
        let e_time: f64 = re.iter().zip(&im).map(|(&a, &b)| (a as f64).mul_add(a as f64, (b as f64) * (b as f64))).sum();
        let mut scratch = FftScratch::new();
        fft32(&mut re, &mut im, &mut scratch, false);
        let e_freq: f64 = re
            .iter()
            .zip(&im)
            .map(|(&a, &b)| (a as f64).mul_add(a as f64, (b as f64) * (b as f64)))
            .sum::<f64>()
            / n as f64;
        prop_assert!((e_time - e_freq).abs() < 1e-3 * (1.0 + e_time),
                     "energy {e_time} vs {e_freq} at n={n}");
    }

    /// Linearity in f32: FFT(αx + βy) == α·FFT(x) + β·FFT(y).
    #[test]
    fn f32_fft_linearity(seed in 0u64..500, n in 1usize..200,
                         alpha in -3.0..3.0f64, beta in -3.0..3.0f64) {
        let (alpha, beta) = (alpha as f32, beta as f32);
        let mut rng = SplitMix64::new(seed);
        let mut gen = || -> Vec<f32> { (0..n).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect() };
        let (x_re, x_im, y_re, y_im) = (gen(), gen(), gen(), gen());
        let mut combo_re: Vec<f32> = (0..n).map(|i| alpha * x_re[i] + beta * y_re[i]).collect();
        let mut combo_im: Vec<f32> = (0..n).map(|i| alpha * x_im[i] + beta * y_im[i]).collect();
        let (mut fx_re, mut fx_im, mut fy_re, mut fy_im) = (x_re, x_im, y_re, y_im);
        let mut scratch = FftScratch::new();
        fft32(&mut fx_re, &mut fx_im, &mut scratch, false);
        fft32(&mut fy_re, &mut fy_im, &mut scratch, false);
        fft32(&mut combo_re, &mut combo_im, &mut scratch, false);
        for i in 0..n {
            let want_re = alpha * fx_re[i] + beta * fy_re[i];
            let want_im = alpha * fx_im[i] + beta * fy_im[i];
            let err = ((combo_re[i] - want_re).powi(2) + (combo_im[i] - want_im).powi(2)).sqrt();
            let mag = (want_re * want_re + want_im * want_im).sqrt();
            prop_assert!(err < 2e-3 * (1.0 + mag), "bin {i}: err {err} at magnitude {mag}");
        }
    }

    /// The f32 transform tracks the f64 reference bin by bin.
    #[test]
    fn f32_fft_tracks_f64(seed in 0u64..500, n in 1usize..300) {
        let mut rng = SplitMix64::new(seed);
        let signal: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect();
        let mut reference = signal.clone();
        fft_inplace(&mut reference, false);
        let mut re: Vec<f32> = signal.iter().map(|z| z.re as f32).collect();
        let mut im: Vec<f32> = signal.iter().map(|z| z.im as f32).collect();
        let mut scratch = FftScratch::new();
        fft32(&mut re, &mut im, &mut scratch, false);
        for i in 0..n {
            let err = ((re[i] as f64 - reference[i].re).powi(2)
                + (im[i] as f64 - reference[i].im).powi(2))
            .sqrt();
            prop_assert!(err < 2e-3 * (1.0 + reference[i].norm()),
                         "bin {i}/{n}: f32 ({}, {}) vs f64 ({}, {})",
                         re[i], im[i], reference[i].re, reference[i].im);
        }
    }

    /// 2-D f32 round trip on Fields of arbitrary dimensions.
    #[test]
    fn f32_field_roundtrip(seed in 0u64..200, w in 1usize..40, h in 1usize..40) {
        let mut rng = SplitMix64::new(seed);
        let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let orig: Field<f32> = Field::from_real(w, h, &real);
        let mut f = orig.clone();
        f.fft2_inplace(false);
        f.fft2_inplace(true);
        for (a, b) in f.iter().zip(orig.iter()) {
            prop_assert!((a - b).norm() < 2e-3);
        }
    }

    /// Real-packed f32 forward transform agrees with the complex f32 path
    /// at arbitrary dimensions (both parities of height).
    #[test]
    fn f32_forward_real_matches_complex(seed in 0u64..200, w in 1usize..24, h in 1usize..24) {
        let mut rng = SplitMix64::new(seed);
        let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let packed: Field<f32> = Field::forward_real(w, h, &real);
        let mut full: Field<f32> = Field::from_real(w, h, &real);
        full.fft2_inplace(false);
        for (a, b) in packed.iter().zip(full.iter()) {
            prop_assert!((a - b).norm() < 5e-4 * (1.0 + b.norm()));
        }
    }
}

/// The narrowing conversion itself: `to_precision` rounds every sample to
/// the nearest representable value and widening back is exact.
#[test]
fn to_precision_roundtrip_is_f32_exact() {
    let mut rng = SplitMix64::new(7);
    let real: Vec<f64> = (0..64).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    let wide: Field = Field::from_real(8, 8, &real);
    let narrow: Field<f32> = wide.to_precision();
    let back: Field = narrow.to_precision();
    for (a, b) in back.iter().zip(wide.iter()) {
        assert_eq!(
            a.re, a.re as f32 as f64,
            "widened values are exactly representable"
        );
        assert!((a.re - b.re).abs() <= f64::from(f32::EPSILON) * (1.0 + b.re.abs()));
    }
    // The Scalar narrowing hook agrees with `as` casts.
    assert_eq!(<f32 as Scalar>::from_f64(0.1), 0.1f32);
    assert_eq!(<f64 as Scalar>::from_f64(0.1), 0.1f64);
}
