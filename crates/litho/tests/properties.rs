//! Property-based tests for the lithography substrate.

use cardopc_geometry::{Grid, Point, Polygon, SplitMix64};
use cardopc_litho::fft::{fft_inplace, Complex, Field};
use cardopc_litho::{epe_at, l2_error, pvb_area, rasterize, thresholded_xor_area, MeasurePoint};
use proptest::prelude::*;

proptest! {
    /// FFT round trip is the identity for arbitrary signals of *any*
    /// length — 5-smooth sizes exercise the mixed-radix Stockham path,
    /// everything else (primes, 7-smooth, …) the Bluestein fallback.
    #[test]
    fn fft_roundtrip(seed in 0u64..1000, n in 1usize..300) {
        let mut rng = SplitMix64::new(seed);
        let orig: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.range_f64(-10.0, 10.0), rng.range_f64(-10.0, 10.0)))
            .collect();
        let mut x = orig.clone();
        fft_inplace(&mut x, false);
        fft_inplace(&mut x, true);
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!((*a - *b).norm() < 1e-8);
        }
    }

    /// Parseval: time-domain and (normalised) frequency-domain energies
    /// agree at any transform length.
    #[test]
    fn fft_parseval(seed in 0u64..1000, n in 1usize..300) {
        let mut rng = SplitMix64::new(seed);
        let sig: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect();
        let e_time: f64 = sig.iter().map(|z| z.norm_sq()).sum();
        let mut x = sig;
        fft_inplace(&mut x, false);
        let e_freq: f64 = x.iter().map(|z| z.norm_sq()).sum::<f64>() / n as f64;
        prop_assert!((e_time - e_freq).abs() < 1e-8 * (1.0 + e_time));
    }

    /// 2-D FFT round trip on Fields of arbitrary (non-pow2 included)
    /// dimensions.
    #[test]
    fn field_roundtrip(seed in 0u64..200, w in 1usize..40, h in 1usize..40) {
        let mut rng = SplitMix64::new(seed);
        let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let orig: Field = Field::from_real(w, h, &real);
        let mut f = orig.clone();
        f.fft2_inplace(false);
        f.fft2_inplace(true);
        for (a, b) in f.iter().zip(orig.iter()) {
            prop_assert!((a - b).norm() < 1e-8);
        }
    }

    /// Linearity: FFT(αx + βy) == α·FFT(x) + β·FFT(y), any length.
    #[test]
    fn fft_linearity(seed in 0u64..500, n in 1usize..200,
                     alpha in -3.0..3.0f64, beta in -3.0..3.0f64) {
        let mut rng = SplitMix64::new(seed);
        let gen = |rng: &mut SplitMix64| -> Vec<Complex> {
            (0..n)
                .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
                .collect()
        };
        let x = gen(&mut rng);
        let y = gen(&mut rng);
        let mut combo: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| Complex::new(alpha * a.re + beta * b.re, alpha * a.im + beta * b.im))
            .collect();
        let (mut fx, mut fy) = (x, y);
        fft_inplace(&mut fx, false);
        fft_inplace(&mut fy, false);
        fft_inplace(&mut combo, false);
        for ((c, a), b) in combo.iter().zip(&fx).zip(&fy) {
            let want = Complex::new(alpha * a.re + beta * b.re, alpha * a.im + beta * b.im);
            prop_assert!((*c - want).norm() < 1e-7 * (1.0 + want.norm()));
        }
    }

    /// Real-packed forward transform agrees with the complex path at
    /// arbitrary dimensions (both parities of height).
    #[test]
    fn forward_real_matches_complex(seed in 0u64..200, w in 1usize..24, h in 1usize..24) {
        let mut rng = SplitMix64::new(seed);
        let real: Vec<f64> = (0..w * h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let packed: Field = Field::forward_real(w, h, &real);
        let mut full: Field = Field::from_real(w, h, &real);
        full.fft2_inplace(false);
        for (a, b) in packed.iter().zip(full.iter()) {
            prop_assert!((a - b).norm() < 1e-9 * (1.0 + b.norm()));
        }
    }

    /// Rasterised area of an axis-aligned rectangle equals its true area
    /// (when fully inside the grid), regardless of sub-pixel alignment.
    #[test]
    fn raster_preserves_rect_area(x0 in 1.0..10.0f64, y0 in 1.0..10.0f64,
                                   w in 0.5..10.0f64, h in 0.5..10.0f64) {
        let rect = Polygon::rect(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let g = rasterize(&[rect], 32, 32, 1.0);
        let expected = w * h;
        // Vertical AA quantises to 1/4 sub-scanline: error <= w * 0.25 per
        // horizontal boundary.
        prop_assert!((g.sum() - expected).abs() <= 0.6 * w + 1e-9,
                     "raster {} vs exact {}", g.sum(), expected);
    }

    /// Coverage values are always within [0, 1].
    #[test]
    fn raster_coverage_bounded(seed in 0u64..200, n in 1usize..6) {
        let mut rng = SplitMix64::new(seed);
        let polys: Vec<Polygon> = (0..n)
            .map(|_| {
                let x = rng.range_f64(0.0, 24.0);
                let y = rng.range_f64(0.0, 24.0);
                Polygon::rect(
                    Point::new(x, y),
                    Point::new(x + rng.range_f64(1.0, 8.0), y + rng.range_f64(1.0, 8.0)),
                )
            })
            .collect();
        let g = rasterize(&polys, 32, 32, 1.0);
        for &v in g.data() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }

    /// L2 metric properties: identity of indiscernibles and symmetry.
    #[test]
    fn l2_is_a_metric(seed in 0u64..200) {
        let mut rng = SplitMix64::new(seed);
        let mk = |rng: &mut SplitMix64| {
            let data: Vec<f64> = (0..64).map(|_| if rng.chance(0.5) { 1.0 } else { 0.0 }).collect();
            Grid::from_data(8, 8, 1.0, data)
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        prop_assert_eq!(l2_error(&a, &a), 0.0);
        prop_assert_eq!(l2_error(&a, &b), l2_error(&b, &a));
        prop_assert!(l2_error(&a, &b) >= 0.0);
    }

    /// PVB of nested prints equals outer minus inner area.
    #[test]
    fn pvb_nested_difference(inner_half in 1usize..6, growth in 1usize..4) {
        let outer_half = inner_half + growth;
        prop_assume!(outer_half < 16);
        let mut outer = Grid::zeros(32, 32, 1.0);
        let mut inner = Grid::zeros(32, 32, 1.0);
        for iy in 16 - outer_half..16 + outer_half {
            for ix in 16 - outer_half..16 + outer_half {
                outer[(ix, iy)] = 1.0;
            }
        }
        for iy in 16 - inner_half..16 + inner_half {
            for ix in 16 - inner_half..16 + inner_half {
                inner[(ix, iy)] = 1.0;
            }
        }
        let expected = (4 * outer_half * outer_half - 4 * inner_half * inner_half) as f64;
        prop_assert_eq!(pvb_area(&outer, &inner), expected);
    }

    /// PVB is symmetric in its arguments and monotone in the band width:
    /// widening either print of a nested pair can only grow the band.
    #[test]
    fn pvb_symmetric_and_monotone(inner_half in 1usize..6, g1 in 1usize..4, g2 in 1usize..4) {
        let mid_half = inner_half + g1;
        let outer_half = mid_half + g2;
        prop_assume!(outer_half < 16);
        let square = |half: usize| {
            let mut g = Grid::zeros(32, 32, 1.0);
            for iy in 16 - half..16 + half {
                for ix in 16 - half..16 + half {
                    g[(ix, iy)] = 1.0;
                }
            }
            g
        };
        let inner = square(inner_half);
        let mid = square(mid_half);
        let outer = square(outer_half);
        prop_assert_eq!(pvb_area(&outer, &inner), pvb_area(&inner, &outer));
        prop_assert!(pvb_area(&outer, &inner) >= pvb_area(&mid, &inner));
        prop_assert!(pvb_area(&outer, &inner) >= pvb_area(&outer, &mid));
    }

    /// The fused threshold-XOR count equals binarising both grids first and
    /// taking the 0.5-level XOR area — bit-for-bit, any thresholds.
    #[test]
    fn thresholded_xor_matches_binarized_pvb(seed in 0u64..200,
                                             ta in 0.2..0.8f64, tb in 0.2..0.8f64) {
        let mut rng = SplitMix64::new(seed);
        let mut mk = || {
            let data: Vec<f64> = (0..256).map(|_| rng.range_f64(0.0, 1.0)).collect();
            Grid::from_data(16, 16, 2.0, data)
        };
        let a = mk();
        let b = mk();
        let fused = thresholded_xor_area(&a, ta, &b, tb);
        let reference = pvb_area(&a.binarize(ta), &b.binarize(tb));
        prop_assert_eq!(fused, reference);
        // L2 against a binary target is the same fused count.
        prop_assert_eq!(thresholded_xor_area(&a, ta, &b.binarize(tb), 0.5),
                        l2_error(&a.binarize(ta), &b.binarize(tb)));
    }

    /// EPE sign convention on a linear aerial ramp: a printed edge lying
    /// outside the target edge measures positive (over-print), inside
    /// negative (under-print), with the exact offset recovered.
    #[test]
    fn epe_sign_convention_on_ramp(shift in 0.75..6.0f64) {
        // Intensity falls linearly with x; the 0.5-threshold print edge
        // sits at x = 16. Bilinear sampling and the crossing interpolation
        // are both exact on a linear field.
        let mut aerial = Grid::zeros(32, 32, 1.0);
        for iy in 0..32 {
            for ix in 0..32 {
                aerial[(ix, iy)] = 1.0 - (ix as f64 + 0.5) / 32.0;
            }
        }
        let site_at = |x: f64| MeasurePoint {
            position: Point::new(x, 16.0),
            normal: Point::new(1.0, 0.0),
        };
        // Target edge inside the print: printed edge is `shift` outward.
        let over = epe_at(&aerial, 0.5, &site_at(16.0 - shift), 20.0);
        prop_assert!((over - shift).abs() < 1e-6, "over-print EPE {} vs {}", over, shift);
        // Target edge outside the print: printed edge is `shift` inward.
        let under = epe_at(&aerial, 0.5, &site_at(16.0 + shift), 20.0);
        prop_assert!((under + shift).abs() < 1e-6, "under-print EPE {} vs {}", under, shift);
        // No crossing within range saturates at ±search_range.
        let saturated = epe_at(&aerial, 0.5, &site_at(16.0 - shift), shift * 0.5);
        prop_assert!((saturated - shift * 0.5).abs() < 1e-9);
    }
}
