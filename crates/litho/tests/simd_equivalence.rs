//! Scalar-vs-SIMD equivalence and determinism for the lithography engine.
//!
//! The FFT stages are bitwise mode-independent by contract: the `f64`
//! stages compile from identical Rust source in both dispatch modes (no
//! FMA contraction), and the hand-written 8-lane `f32` stage kernels
//! reproduce the scalar expression order exactly (mul/add/sub only, no
//! FMA). Only the AVX2 pointwise kernels (complex products and the
//! `w·|z|²` accumulate) differ from scalar, by FMA rounding. These tests
//! pin the FFT bitwise contract directly, bound the pointwise difference
//! at ≤1e-9 on the engine's end-to-end paths, and pin the scalar mode to
//! bitwise determinism across worker counts.
//!
//! All tests mutate the process-global forced dispatch mode, so they
//! serialise on one mutex and restore the default before releasing it.

use cardopc_geometry::{Grid, Point, Polygon, SplitMix64};
use cardopc_litho::fft::FftScratch;
use cardopc_litho::simd::{self, SimdMode};
use cardopc_litho::{rasterize, FftPlan, LithoEngine, OpticsConfig, ProcessCondition};
use std::sync::Mutex;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under a forced dispatch mode, restoring auto-detection after.
fn with_mode<T>(mode: SimdMode, f: impl FnOnce() -> T) -> T {
    simd::force_mode(Some(mode));
    let out = f();
    simd::force_mode(None);
    out
}

fn test_mask(w: usize, h: usize, pitch: f64) -> Grid {
    let extent = w as f64 * pitch;
    let polys = vec![
        Polygon::rect(
            Point::new(0.25 * extent, 0.2 * extent),
            Point::new(0.45 * extent, 0.8 * extent),
        ),
        Polygon::rect(
            Point::new(0.55 * extent, 0.3 * extent),
            Point::new(0.8 * extent, 0.5 * extent),
        ),
        Polygon::rect(
            Point::new(0.55 * extent, 0.6 * extent),
            Point::new(0.7 * extent, 0.75 * extent),
        ),
    ];
    rasterize(&polys, w, h, pitch)
}

fn engine(w: usize, h: usize, pitch: f64) -> LithoEngine {
    let mut e = LithoEngine::new(OpticsConfig::default(), w, h, pitch).unwrap();
    e.calibrate_threshold();
    e
}

fn max_rel_diff(a: &Grid, b: &Grid) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs() / (1.0 + x.abs()))
        .fold(0.0, f64::max)
}

/// The hand-written 8-lane `f32` stage kernels must match the scalar
/// stages bit for bit, at lengths covering every kernel shape: radix-4 at
/// strides 1/4/≥8 (with and without odd-`m` tails), radix-2 at strides
/// 1/≥8, radix-3 at the generic fallback (s<8) and vector strides,
/// radix-5 at vector strides and its non-multiple-of-8 stride fallback
/// (e.g. 60 = 4·3·5 hits s=12). Bluestein lengths are excluded: their
/// convolution runs through the pointwise FMA kernels, which differ from
/// scalar by design (one rounding), so only 5-smooth lengths carry the
/// bitwise guarantee.
#[test]
fn fft_f32_plan_bitwise_scalar_vs_avx2() {
    let _guard = MODE_LOCK.lock().unwrap();
    if !simd::avx2_available() {
        return;
    }
    for n in [
        8usize, 12, 16, 32, 48, 60, 64, 96, 120, 128, 160, 240, 320, 500, 512,
    ] {
        for inverse in [false, true] {
            let mut rng = SplitMix64::new(0x5eed ^ n as u64);
            let re0: Vec<f32> = (0..n).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect();
            let im0: Vec<f32> = (0..n).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect();
            let run = |mode| {
                with_mode(mode, || {
                    let plan = FftPlan::<f32>::get(n);
                    let mut scratch = FftScratch::<f32>::new();
                    let (mut re, mut im) = (re0.clone(), im0.clone());
                    plan.execute_unscaled_split(&mut re, &mut im, &mut scratch, inverse);
                    (re, im)
                })
            };
            let (sr, si) = run(SimdMode::Scalar);
            let (vr, vi) = run(SimdMode::Avx2);
            assert_eq!(sr, vr, "n={n} inverse={inverse}: re lanes drifted");
            assert_eq!(si, vi, "n={n} inverse={inverse}: im lanes drifted");
        }
    }
}

#[test]
fn aerial_image_scalar_vs_simd_within_1e9() {
    let _guard = MODE_LOCK.lock().unwrap();
    if !simd::avx2_available() {
        return; // single-mode machine: nothing to compare
    }
    for (w, h) in [(128usize, 128usize), (96, 80)] {
        let e = engine(w, h, 4.0);
        let mask = test_mask(w, h, 4.0);
        let scalar = with_mode(SimdMode::Scalar, || e.aerial_image(&mask).unwrap());
        let vector = with_mode(SimdMode::Avx2, || e.aerial_image(&mask).unwrap());
        let d = max_rel_diff(&scalar, &vector);
        assert!(d <= 1e-9, "{w}x{h}: scalar/SIMD aerial diff {d}");
    }
}

#[test]
fn multi_condition_scalar_vs_simd_within_1e9() {
    let _guard = MODE_LOCK.lock().unwrap();
    if !simd::avx2_available() {
        return;
    }
    let e = engine(128, 128, 4.0);
    let mask = test_mask(128, 128, 4.0);
    let conditions = [
        ProcessCondition::NOMINAL,
        ProcessCondition::outer(0.02),
        ProcessCondition::inner(0.02),
    ];
    let scalar = with_mode(SimdMode::Scalar, || {
        e.aerial_images_multi(&mask, &conditions).unwrap()
    });
    let vector = with_mode(SimdMode::Avx2, || {
        e.aerial_images_multi(&mask, &conditions).unwrap()
    });
    for (i, (a, b)) in scalar.iter().zip(&vector).enumerate() {
        let d = max_rel_diff(a, b);
        assert!(d <= 1e-9, "condition {i}: scalar/SIMD diff {d}");
    }
}

#[test]
fn scalar_mode_is_bitwise_deterministic_across_worker_counts() {
    let _guard = MODE_LOCK.lock().unwrap();
    with_mode(SimdMode::Scalar, || {
        let mask = test_mask(96, 96, 4.0);
        let mut reference: Option<Grid> = None;
        for workers in [1usize, 2, 3, 5, 8] {
            let mut e = engine(96, 96, 4.0);
            e.set_workers(workers);
            let img = e.aerial_image(&mask).unwrap();
            // A second run on the same (now warm-scratch) engine must also
            // be byte-identical: resume determinism.
            let img2 = e.aerial_image(&mask).unwrap();
            assert_eq!(img.data(), img2.data(), "workers={workers}: rerun drifted");
            match &reference {
                None => reference = Some(img),
                Some(r) => assert_eq!(
                    r.data(),
                    img.data(),
                    "workers={workers}: scalar output not byte-identical"
                ),
            }
        }
    });
}

#[test]
fn aerial_image_runs_unpadded_at_320() {
    // 320 = 2⁶·5 is 5-smooth: the engine must accept it directly instead of
    // padding up to 512², and produce a physically sane image end-to-end.
    let _guard = MODE_LOCK.lock().unwrap();
    let e = engine(320, 320, 4.0);
    assert_eq!(e.width(), 320);
    let mask = test_mask(320, 320, 4.0);
    let img = e.aerial_image(&mask).unwrap();
    assert_eq!((img.width(), img.height()), (320, 320));
    let peak = img.data().iter().cloned().fold(0.0, f64::max);
    assert!(peak > 0.1, "aerial peak {peak} implausibly dim");
    assert!(img.data().iter().all(|v| v.is_finite() && *v >= 0.0));
    let printed = e.print(&mask, ProcessCondition::NOMINAL).unwrap();
    assert!(printed.sum() > 0.0, "nothing printed on the 320\u{b2} grid");
}
