//! Curvilinear mask rule checking (§III-F).
//!
//! Spacing and width use probe segments against an R-tree of all sampled
//! mask edges (Fig. 5(a)); area uses the shoelace formula on the sampled
//! loop; curvature is evaluated analytically on the spline (Eq. 9) — the
//! property that makes spline-based curvilinear OPC cheaper to verify than
//! pixel ILT output.

use crate::{MrcRules, Violation, ViolationKind};
use cardopc_geometry::{BBox, Point, RTree, Segment};
use cardopc_spline::{CardinalSpline, SamplingPlan};

/// Offset applied to probe start points so a probe never grazes the very
/// boundary point it was launched from.
const PROBE_LIFT: f64 = 0.05;
/// Width probes ignore own edges within this circular index distance.
const WIDTH_ADJACENCY: usize = 3;

/// One sampled boundary point with its differential data.
#[derive(Clone, Copy, Debug)]
struct SamplePoint {
    position: Point,
    /// Unit outward normal.
    outward: Point,
    /// Spline segment the sample lies on.
    segment: usize,
    /// Local parameter on that segment.
    t: f64,
}

/// A shape sampled into a dense polyline with outward normals.
#[derive(Clone, Debug)]
struct SampledShape {
    samples: Vec<SamplePoint>,
    signed_area: f64,
    area: f64,
    centroid: Point,
}

/// Near-zero area threshold, matching `Polygon`'s internal epsilon.
const AREA_EPS: f64 = 1e-9;

/// Shoelace signed area of a closed sample loop, computed directly on the
/// point list (no intermediate `Polygon` allocation).
fn loop_signed_area(points: &[Point]) -> f64 {
    let n = points.len();
    let mut twice = 0.0;
    for i in 0..n {
        twice += points[i].cross(points[(i + 1) % n]);
    }
    0.5 * twice
}

/// Centroid of a closed sample loop; degenerate (near-zero area) loops
/// fall back to the vertex average, like `Polygon::centroid`.
fn loop_centroid(points: &[Point], signed_area: f64) -> Point {
    let n = points.len();
    if n == 0 {
        return Point::ZERO;
    }
    if signed_area.abs() <= AREA_EPS {
        let mut sum = Point::ZERO;
        for &p in points {
            sum += p;
        }
        return sum * (1.0 / n as f64);
    }
    let (mut cx, mut cy) = (0.0, 0.0);
    for i in 0..n {
        let p = points[i];
        let q = points[(i + 1) % n];
        let w = p.cross(q);
        cx += (p.x + q.x) * w;
        cy += (p.y + q.y) * w;
    }
    Point::new(cx / (6.0 * signed_area), cy / (6.0 * signed_area))
}

/// The dense sample loop of one shape (`segment_count * per_segment`
/// points in segment-major order), evaluated through the shared
/// [`SamplingPlan`] registry.
fn sampled_loop(spline: &CardinalSpline, per_segment: usize) -> Vec<Point> {
    let plan = SamplingPlan::get(per_segment, spline.tension());
    let mut pts = spline.sample_with_plan(&plan);
    // Open splines append their final endpoint; the rule checks work on
    // the plain seg-major loop.
    pts.truncate(spline.segment_count() * per_segment);
    pts
}

fn sample_shape(spline: &CardinalSpline, per_segment: usize) -> SampledShape {
    let plan = SamplingPlan::get(per_segment, spline.tension());
    let mut positions = spline.sample_with_plan(&plan);
    positions.truncate(spline.segment_count() * per_segment);
    let signed = loop_signed_area(&positions);
    // `perp` of the travel direction points inward on CCW loops.
    let flip = if signed > 0.0 { -1.0 } else { 1.0 };
    let m = positions.len();
    let samples = positions
        .iter()
        .enumerate()
        .map(|(j, &p)| {
            let segment = j / per_segment;
            let t = plan.ts()[j % per_segment];
            // Normals from the sampled loop itself (central difference):
            // robust even where the spline's parameter derivative vanishes
            // (e.g. tension 0 at control points).
            let chord = positions[(j + 1) % m] - positions[(j + m - 1) % m];
            let n = chord
                .normalized()
                .map(Point::perp)
                .or_else(|| spline.normal(segment, t))
                .unwrap_or(Point::new(1.0, 0.0));
            SamplePoint {
                position: p,
                outward: n * flip,
                segment,
                t,
            }
        })
        .collect();
    let centroid = loop_centroid(&positions, signed);
    SampledShape {
        samples,
        signed_area: signed,
        area: signed.abs(),
        centroid,
    }
}

/// A sampled boundary edge within one shape's loop.
#[derive(Clone, Copy, Debug)]
struct Edge {
    /// Edge index along the shape's sampled loop.
    index: usize,
    segment: Segment,
}

/// Per-shape sampling and edge index.
#[derive(Clone, Debug)]
struct ShapeCache {
    sampled: SampledShape,
    edges: RTree<Edge>,
    bbox: BBox,
}

impl ShapeCache {
    fn build(spline: &CardinalSpline, per_segment: usize) -> ShapeCache {
        let sampled = sample_shape(spline, per_segment);
        let m = sampled.samples.len();
        let mut items = Vec::with_capacity(m);
        for j in 0..m {
            let seg = Segment::new(
                sampled.samples[j].position,
                sampled.samples[(j + 1) % m].position,
            );
            items.push((
                seg.bbox(),
                Edge {
                    index: j,
                    segment: seg,
                },
            ));
        }
        let edges = RTree::bulk_load(items);
        let bbox = edges.bbox();
        ShapeCache {
            sampled,
            edges,
            bbox,
        }
    }
}

/// Cached per-shape sampling and edge indices, reusable across resolver
/// rounds: only shapes that actually moved pay for re-sampling and index
/// rebuilds.
#[derive(Clone, Debug)]
pub(crate) struct MrcWorld {
    per_segment: usize,
    shapes: Vec<ShapeCache>,
}

impl MrcWorld {
    /// Samples and indexes every shape.
    pub(crate) fn build(shapes: &[CardinalSpline], per_segment: usize) -> MrcWorld {
        MrcWorld {
            per_segment,
            shapes: shapes
                .iter()
                .map(|s| ShapeCache::build(s, per_segment))
                .collect(),
        }
    }

    /// Re-samples one shape after its control points changed.
    pub(crate) fn refresh(&mut self, idx: usize, spline: &CardinalSpline) {
        self.shapes[idx] = ShapeCache::build(spline, self.per_segment);
    }

    /// Drops one shape, shifting later indices down (mirrors
    /// `Vec::remove` on the shape list).
    pub(crate) fn remove(&mut self, idx: usize) {
        self.shapes.remove(idx);
    }

    /// Absolute sampled-loop area of one shape.
    pub(crate) fn area(&self, idx: usize) -> f64 {
        self.shapes[idx].sampled.area
    }

    /// `true` when the shape's sampled loop winds counter-clockwise.
    pub(crate) fn ccw(&self, idx: usize) -> bool {
        self.shapes[idx].sampled.signed_area > 0.0
    }

    /// Shape-level bbox index for candidate pruning in spacing probes.
    fn shape_tree(&self) -> RTree<usize> {
        RTree::bulk_load(
            self.shapes
                .iter()
                .enumerate()
                .map(|(i, c)| (c.bbox, i))
                .collect(),
        )
    }
}

/// The curvilinear mask rule checker.
///
/// ```
/// use cardopc_geometry::Point;
/// use cardopc_mrc::{MrcChecker, MrcRules};
/// use cardopc_spline::CardinalSpline;
///
/// // Two large squares 100 nm apart: clean under the default rules.
/// let mk = |x0: f64| {
///     CardinalSpline::closed(
///         vec![
///             Point::new(x0, 0.0),
///             Point::new(x0 + 200.0, 0.0),
///             Point::new(x0 + 200.0, 200.0),
///             Point::new(x0, 200.0),
///         ],
///         0.0,
///     )
///     .expect("valid loop")
/// };
/// let shapes = [mk(0.0), mk(300.0)];
/// let checker = MrcChecker::new(MrcRules::default());
/// assert!(checker.check(&shapes).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct MrcChecker {
    rules: MrcRules,
    samples_per_segment: usize,
}

impl MrcChecker {
    /// Creates a checker with the default sampling density (8 points per
    /// spline segment).
    ///
    /// # Panics
    ///
    /// Panics when `rules` contains non-positive limits.
    pub fn new(rules: MrcRules) -> Self {
        Self::with_sampling(rules, 8)
    }

    /// Creates a checker with an explicit sampling density.
    ///
    /// # Panics
    ///
    /// Panics when `rules` is invalid or `samples_per_segment == 0`.
    pub fn with_sampling(rules: MrcRules, samples_per_segment: usize) -> Self {
        rules.assert_valid();
        assert!(
            samples_per_segment > 0,
            "need at least one sample per segment"
        );
        MrcChecker {
            rules,
            samples_per_segment,
        }
    }

    /// The rule set.
    pub fn rules(&self) -> &MrcRules {
        &self.rules
    }

    /// Runs all four rule checks over a set of closed spline shapes.
    pub fn check(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let world = MrcWorld::build(shapes, self.samples_per_segment);
        self.check_with_world(shapes, &world)
    }

    /// Runs all four rule checks against a pre-built (possibly
    /// incrementally maintained) [`MrcWorld`]. `world` must describe
    /// exactly the shapes in `shapes`, in order.
    pub(crate) fn check_with_world(
        &self,
        shapes: &[CardinalSpline],
        world: &MrcWorld,
    ) -> Vec<Violation> {
        debug_assert_eq!(shapes.len(), world.shapes.len(), "world out of sync");
        let shape_tree = world.shape_tree();
        let mut out = Vec::new();
        self.check_spacing_into(world, &shape_tree, &mut out);
        self.check_width_into(world, &mut out);
        self.check_area_into(world, &mut out);
        let ccw: Vec<bool> = (0..world.shapes.len()).map(|i| world.ccw(i)).collect();
        self.check_curvature_core(shapes, &ccw, &mut out);
        out
    }

    /// Spacing-rule check only.
    pub fn check_spacing(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let world = MrcWorld::build(shapes, self.samples_per_segment);
        let shape_tree = world.shape_tree();
        let mut out = Vec::new();
        self.check_spacing_into(&world, &shape_tree, &mut out);
        out
    }

    /// Spacing-rule check restricted to a set of rectangular bands:
    /// probes are launched only from boundary samples inside one of the
    /// `bands`, and shapes whose bbox misses every band are skipped
    /// entirely.
    ///
    /// Tiled runtimes use this as the cross-boundary seam pass — each
    /// tile's interior was checked during its own MRC stage, so only the
    /// strips around tile boundaries (sized at least `min_space` each
    /// side) need the global re-check. A violation between shapes from
    /// different tiles is reported from the sample inside the band, so a
    /// band covering `± min_space` around a seam sees every cross-seam
    /// pair.
    pub fn check_spacing_in_bands(
        &self,
        shapes: &[CardinalSpline],
        bands: &[BBox],
    ) -> Vec<Violation> {
        if bands.is_empty() {
            return Vec::new();
        }
        let world = MrcWorld::build(shapes, self.samples_per_segment);
        let shape_tree = world.shape_tree();
        let c = self.rules.min_space;
        let mut out = Vec::new();
        for (si, cache) in world.shapes.iter().enumerate() {
            if !bands.iter().any(|b| b.intersects(&cache.bbox)) {
                continue;
            }
            for s in &cache.sampled.samples {
                if !bands.iter().any(|b| b.contains(s.position)) {
                    continue;
                }
                self.spacing_probe(world.shapes.as_slice(), &shape_tree, si, s, c, &mut out);
            }
        }
        out
    }

    /// Width-rule check only.
    pub fn check_width(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let world = MrcWorld::build(shapes, self.samples_per_segment);
        let mut out = Vec::new();
        self.check_width_into(&world, &mut out);
        out
    }

    /// Area-rule check only.
    pub fn check_area(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let world = MrcWorld::build(shapes, self.samples_per_segment);
        let mut out = Vec::new();
        self.check_area_into(&world, &mut out);
        out
    }

    /// Curvature-rule check only (fully analytic, no sampling of probes;
    /// the loop orientation comes from a direct shoelace pass).
    pub fn check_curvature(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let ccw: Vec<bool> = shapes
            .iter()
            .map(|s| loop_signed_area(&sampled_loop(s, self.samples_per_segment)) > 0.0)
            .collect();
        let mut out = Vec::new();
        self.check_curvature_core(shapes, &ccw, &mut out);
        out
    }

    fn check_spacing_into(
        &self,
        world: &MrcWorld,
        shape_tree: &RTree<usize>,
        out: &mut Vec<Violation>,
    ) {
        let c = self.rules.min_space;
        for (si, cache) in world.shapes.iter().enumerate() {
            for s in &cache.sampled.samples {
                self.spacing_probe(world.shapes.as_slice(), shape_tree, si, s, c, out);
            }
        }
    }

    /// Launches one spacing probe from sample `s` of shape `si` and
    /// appends a violation when a distinct shape's edge lies within `c`.
    fn spacing_probe(
        &self,
        shapes: &[ShapeCache],
        shape_tree: &RTree<usize>,
        si: usize,
        s: &SamplePoint,
        c: f64,
        out: &mut Vec<Violation>,
    ) {
        let start = s.position + s.outward * PROBE_LIFT;
        let probe = Segment::new(start, s.position + s.outward * c);
        let mut worst: Option<f64> = None;
        for cand in shape_tree.query_segment_indices(&probe) {
            let sj = shape_tree.item(cand).1;
            if sj == si {
                // Spacing is checked between distinct shapes
                // (Fig. 5(a)); same-shape notch spacing is part of
                // the "well-optimized checking" the paper defers to
                // future work.
                continue;
            }
            let other = &shapes[sj];
            for idx in other.edges.query_segment_indices(&probe) {
                let edge = &other.edges.item(idx).1;
                if probe.intersects(&edge.segment) {
                    let dist = edge.segment.distance_to_point(s.position);
                    worst = Some(worst.map_or(dist, |w: f64| w.min(dist)));
                }
            }
        }
        if let Some(dist) = worst {
            out.push(Violation {
                kind: ViolationKind::Spacing,
                shape: si,
                segment: s.segment,
                location: s.position,
                normal: s.outward,
                value: dist,
                limit: c,
            });
        }
    }

    fn check_width_into(&self, world: &MrcWorld, out: &mut Vec<Violation>) {
        let c = self.rules.min_width;
        for (si, cache) in world.shapes.iter().enumerate() {
            let m = cache.sampled.samples.len();
            for s in &cache.sampled.samples {
                let start = s.position - s.outward * PROBE_LIFT;
                let probe = Segment::new(start, s.position - s.outward * c);
                let own_index = sample_index(s, self.samples_per_segment);
                let mut worst: Option<f64> = None;
                // Width is a same-shape property: only this shape's edge
                // index is probed.
                for idx in cache.edges.query_segment_indices(&probe) {
                    let edge = &cache.edges.item(idx).1;
                    let d = circular_distance(edge.index, own_index, m);
                    if d <= WIDTH_ADJACENCY {
                        continue;
                    }
                    if probe.intersects(&edge.segment) {
                        let dist = edge.segment.distance_to_point(s.position);
                        worst = Some(worst.map_or(dist, |w: f64| w.min(dist)));
                    }
                }
                if let Some(dist) = worst {
                    out.push(Violation {
                        kind: ViolationKind::Width,
                        shape: si,
                        segment: s.segment,
                        location: s.position,
                        normal: s.outward,
                        value: dist,
                        limit: c,
                    });
                }
            }
        }
    }

    fn check_area_into(&self, world: &MrcWorld, out: &mut Vec<Violation>) {
        for (si, cache) in world.shapes.iter().enumerate() {
            let shape = &cache.sampled;
            if shape.area < self.rules.min_area {
                out.push(Violation {
                    kind: ViolationKind::Area,
                    shape: si,
                    segment: 0,
                    location: shape.centroid,
                    normal: Point::ZERO,
                    value: shape.area,
                    limit: self.rules.min_area,
                });
            }
        }
    }

    fn check_curvature_core(
        &self,
        shapes: &[CardinalSpline],
        ccw: &[bool],
        out: &mut Vec<Violation>,
    ) {
        for (si, spline) in shapes.iter().enumerate() {
            let flip = if ccw[si] { -1.0 } else { 1.0 };
            for seg in 0..spline.segment_count() {
                for k in 0..self.samples_per_segment {
                    let t = k as f64 / self.samples_per_segment as f64;
                    let kappa = spline.curvature(seg, t).abs();
                    if kappa > self.rules.max_curvature {
                        let normal = spline
                            .normal(seg, t)
                            .map(|n| n * flip)
                            .unwrap_or(Point::ZERO);
                        out.push(Violation {
                            kind: ViolationKind::Curvature,
                            shape: si,
                            segment: seg,
                            location: spline.point(seg, t),
                            normal,
                            value: kappa,
                            limit: self.rules.max_curvature,
                        });
                    }
                }
            }
        }
    }
}

/// Global sample index of a sample point within its shape's loop.
#[inline]
fn sample_index(s: &SamplePoint, per_segment: usize) -> usize {
    s.segment * per_segment + (s.t * per_segment as f64).round() as usize
}

/// Circular index distance on a loop of length `n`.
#[inline]
fn circular_distance(a: usize, b: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let d = a.abs_diff(b) % n;
    d.min(n - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x0: f64, y0: f64, w: f64, h: f64) -> CardinalSpline {
        // Tension 0 keeps the loop close to the polygon for predictable
        // geometry in tests; interpolation still holds.
        CardinalSpline::closed(
            vec![
                Point::new(x0, y0),
                Point::new(x0 + w, y0),
                Point::new(x0 + w, y0 + h),
                Point::new(x0, y0 + h),
            ],
            0.0,
        )
        .unwrap()
    }

    fn circle(cx: f64, cy: f64, r: f64, n: usize) -> CardinalSpline {
        let pts = (0..n)
            .map(|i| {
                let th = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(cx + r * th.cos(), cy + r * th.sin())
            })
            .collect();
        CardinalSpline::closed(pts, 0.5).unwrap()
    }

    fn count_kind(vs: &[Violation], kind: ViolationKind) -> usize {
        vs.iter().filter(|v| v.kind == kind).count()
    }

    #[test]
    fn clean_layout_no_violations() {
        let shapes = [
            square(0.0, 0.0, 200.0, 200.0),
            square(300.0, 0.0, 200.0, 200.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check(&shapes);
        assert!(vs.is_empty(), "unexpected: {vs:?}");
    }

    #[test]
    fn spacing_violation_detected_between_close_shapes() {
        // Gap of 10 nm < 25 nm limit.
        let shapes = [
            square(0.0, 0.0, 100.0, 100.0),
            square(110.0, 0.0, 100.0, 100.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check_spacing(&shapes);
        assert!(!vs.is_empty());
        // Violations reported from both shapes, facing each other.
        assert!(vs.iter().any(|v| v.shape == 0));
        assert!(vs.iter().any(|v| v.shape == 1));
        for v in &vs {
            assert!(v.value < 25.0 + 1e-9);
            assert_eq!(v.kind, ViolationKind::Spacing);
        }
    }

    #[test]
    fn spacing_respects_limit_boundary() {
        // Gap of 30 nm > 25 nm: clean.
        let shapes = [
            square(0.0, 0.0, 100.0, 100.0),
            square(130.0, 0.0, 100.0, 100.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        assert!(checker.check_spacing(&shapes).is_empty());
    }

    #[test]
    fn width_violation_on_thin_shape() {
        // 20 nm-wide bar < 40 nm limit.
        let shapes = [square(0.0, 0.0, 300.0, 20.0)];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check_width(&shapes);
        assert!(!vs.is_empty());
        for v in &vs {
            assert_eq!(v.kind, ViolationKind::Width);
            assert!(v.value < 40.0 + 1e-9);
        }
    }

    #[test]
    fn wide_shape_passes_width() {
        let shapes = [square(0.0, 0.0, 300.0, 100.0)];
        let checker = MrcChecker::new(MrcRules::default());
        assert!(checker.check_width(&shapes).is_empty());
    }

    #[test]
    fn area_violation_on_tiny_shape() {
        // 30x30 = 900 nm² < 1500 nm².
        let shapes = [square(0.0, 0.0, 30.0, 30.0)];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check_area(&shapes);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::Area);
        assert!(vs[0].value < 1500.0);
    }

    #[test]
    fn curvature_violation_on_small_circle() {
        // Radius 8 nm -> curvature 0.125 > 1/15.
        let shapes = [circle(100.0, 100.0, 8.0, 12)];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check_curvature(&shapes);
        assert!(!vs.is_empty());
        for v in &vs {
            assert_eq!(v.kind, ViolationKind::Curvature);
            assert!(v.value > 1.0 / 15.0);
        }
    }

    #[test]
    fn curvature_clean_on_large_circle() {
        // Radius 100 nm -> curvature 0.01 << 1/15.
        let shapes = [circle(300.0, 300.0, 100.0, 24)];
        let checker = MrcChecker::new(MrcRules::default());
        assert!(checker.check_curvature(&shapes).is_empty());
    }

    #[test]
    fn large_circle_fully_clean() {
        let shapes = [circle(300.0, 300.0, 100.0, 24)];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check(&shapes);
        assert!(vs.is_empty(), "unexpected: {:?}", &vs[..vs.len().min(3)]);
    }

    #[test]
    fn kinds_are_attributed_correctly() {
        // One thin bar and one pair of close squares: width + spacing, no
        // area (bar area = 300*20 = 6000 > 1500).
        let shapes = [
            square(0.0, 200.0, 300.0, 20.0),
            square(0.0, 0.0, 100.0, 100.0),
            square(110.0, 0.0, 100.0, 100.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check(&shapes);
        assert!(count_kind(&vs, ViolationKind::Width) > 0);
        assert!(count_kind(&vs, ViolationKind::Spacing) > 0);
        assert_eq!(count_kind(&vs, ViolationKind::Area), 0);
        // Width violations only on shape 0.
        assert!(vs
            .iter()
            .filter(|v| v.kind == ViolationKind::Width)
            .all(|v| v.shape == 0));
    }

    #[test]
    fn band_restricted_spacing_matches_full_check_inside_band() {
        // Two violating pairs: one straddling x = 105 (inside the band),
        // one far away at x ≈ 500 (outside). The band check must report
        // exactly the full check's violations whose samples fall in the
        // band, and nothing from the far pair.
        let shapes = [
            square(0.0, 0.0, 100.0, 100.0),
            square(110.0, 0.0, 100.0, 100.0),
            square(480.0, 300.0, 100.0, 100.0),
            square(590.0, 300.0, 100.0, 100.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        let band = BBox::new(Point::new(80.0, -50.0), Point::new(130.0, 200.0));
        let banded = checker.check_spacing_in_bands(&shapes, &[band]);
        assert!(!banded.is_empty());
        assert!(banded.iter().all(|v| v.shape <= 1), "far pair leaked in");
        let full = checker.check_spacing(&shapes);
        let expected: Vec<_> = full
            .iter()
            .filter(|v| band.contains(v.location))
            .cloned()
            .collect();
        assert_eq!(banded, expected);
        assert!(checker.check_spacing_in_bands(&shapes, &[]).is_empty());
    }

    #[test]
    fn incremental_world_matches_fresh_check() {
        // Maintain a world through a move and a removal; the incremental
        // check must equal a from-scratch check bit for bit.
        let mut shapes = vec![
            square(0.0, 0.0, 100.0, 100.0),
            square(140.0, 0.0, 100.0, 100.0),
            square(0.0, 200.0, 300.0, 20.0),
            circle(500.0, 500.0, 8.0, 12),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        let mut world = MrcWorld::build(&shapes, 8);
        assert_eq!(
            checker.check_with_world(&shapes, &world),
            checker.check(&shapes)
        );

        // Slide shape 1 toward shape 0, creating a spacing violation.
        for p in shapes[1].control_points_mut() {
            *p += Point::new(-30.0, 0.0);
        }
        world.refresh(1, &shapes[1]);
        assert_eq!(
            checker.check_with_world(&shapes, &world),
            checker.check(&shapes)
        );

        // Remove shape 0; later indices shift down.
        shapes.remove(0);
        world.remove(0);
        assert_eq!(
            checker.check_with_world(&shapes, &world),
            checker.check(&shapes)
        );
    }

    #[test]
    fn sampled_loop_stats_match_polygon() {
        // The direct shoelace area/centroid must agree with the Polygon
        // implementation they replace.
        for spline in [
            square(10.0, -20.0, 130.0, 70.0),
            circle(50.0, 80.0, 35.0, 17),
        ] {
            let pts = sampled_loop(&spline, 8);
            let poly = cardopc_geometry::Polygon::new(pts.clone());
            let signed = loop_signed_area(&pts);
            assert!((signed - poly.signed_area()).abs() < 1e-9);
            let c = loop_centroid(&pts, signed);
            assert!(c.distance(poly.centroid()) < 1e-9);
        }
    }

    #[test]
    fn circular_distance_wraps() {
        assert_eq!(circular_distance(0, 9, 10), 1);
        assert_eq!(circular_distance(2, 7, 10), 5);
        assert_eq!(circular_distance(3, 3, 10), 0);
        assert_eq!(circular_distance(0, 0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_sampling_panics() {
        let _ = MrcChecker::with_sampling(MrcRules::default(), 0);
    }
}
