//! Curvilinear mask rule checking (§III-F).
//!
//! Spacing and width use probe segments against an R-tree of all sampled
//! mask edges (Fig. 5(a)); area uses the shoelace formula on the sampled
//! loop; curvature is evaluated analytically on the spline (Eq. 9) — the
//! property that makes spline-based curvilinear OPC cheaper to verify than
//! pixel ILT output.

use crate::{MrcRules, Violation, ViolationKind};
use cardopc_geometry::{Point, Polygon, RTree, Segment};
use cardopc_spline::CardinalSpline;

/// Offset applied to probe start points so a probe never grazes the very
/// boundary point it was launched from.
const PROBE_LIFT: f64 = 0.05;
/// Width probes ignore own edges within this circular index distance.
const WIDTH_ADJACENCY: usize = 3;

/// One sampled boundary point with its differential data.
#[derive(Clone, Copy, Debug)]
struct SamplePoint {
    position: Point,
    /// Unit outward normal.
    outward: Point,
    /// Spline segment the sample lies on.
    segment: usize,
    /// Local parameter on that segment.
    t: f64,
}

/// A shape sampled into a dense polyline with outward normals.
#[derive(Clone, Debug)]
struct SampledShape {
    samples: Vec<SamplePoint>,
    area: f64,
    centroid: Point,
}

fn sample_shape(spline: &CardinalSpline, per_segment: usize) -> SampledShape {
    let segs = spline.segment_count();
    let mut raw = Vec::with_capacity(segs * per_segment);
    for seg in 0..segs {
        for k in 0..per_segment {
            let t = k as f64 / per_segment as f64;
            raw.push((spline.point(seg, t), seg, t));
        }
    }
    let positions: Vec<Point> = raw.iter().map(|&(p, _, _)| p).collect();
    let poly = Polygon::new(positions.clone());
    let signed = poly.signed_area();
    // `perp` of the travel direction points inward on CCW loops.
    let flip = if signed > 0.0 { -1.0 } else { 1.0 };
    let m = raw.len();
    let samples = raw
        .iter()
        .enumerate()
        .map(|(j, &(p, segment, t))| {
            // Normals from the sampled loop itself (central difference):
            // robust even where the spline's parameter derivative vanishes
            // (e.g. tension 0 at control points).
            let chord = positions[(j + 1) % m] - positions[(j + m - 1) % m];
            let n = chord
                .normalized()
                .map(Point::perp)
                .or_else(|| spline.normal(segment, t))
                .unwrap_or(Point::new(1.0, 0.0));
            SamplePoint {
                position: p,
                outward: n * flip,
                segment,
                t,
            }
        })
        .collect();
    SampledShape {
        samples,
        area: signed.abs(),
        centroid: poly.centroid(),
    }
}

/// The curvilinear mask rule checker.
///
/// ```
/// use cardopc_geometry::Point;
/// use cardopc_mrc::{MrcChecker, MrcRules};
/// use cardopc_spline::CardinalSpline;
///
/// // Two large squares 100 nm apart: clean under the default rules.
/// let mk = |x0: f64| {
///     CardinalSpline::closed(
///         vec![
///             Point::new(x0, 0.0),
///             Point::new(x0 + 200.0, 0.0),
///             Point::new(x0 + 200.0, 200.0),
///             Point::new(x0, 200.0),
///         ],
///         0.0,
///     )
///     .expect("valid loop")
/// };
/// let shapes = [mk(0.0), mk(300.0)];
/// let checker = MrcChecker::new(MrcRules::default());
/// assert!(checker.check(&shapes).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct MrcChecker {
    rules: MrcRules,
    samples_per_segment: usize,
}

impl MrcChecker {
    /// Creates a checker with the default sampling density (8 points per
    /// spline segment).
    ///
    /// # Panics
    ///
    /// Panics when `rules` contains non-positive limits.
    pub fn new(rules: MrcRules) -> Self {
        Self::with_sampling(rules, 8)
    }

    /// Creates a checker with an explicit sampling density.
    ///
    /// # Panics
    ///
    /// Panics when `rules` is invalid or `samples_per_segment == 0`.
    pub fn with_sampling(rules: MrcRules, samples_per_segment: usize) -> Self {
        rules.assert_valid();
        assert!(
            samples_per_segment > 0,
            "need at least one sample per segment"
        );
        MrcChecker {
            rules,
            samples_per_segment,
        }
    }

    /// The rule set.
    pub fn rules(&self) -> &MrcRules {
        &self.rules
    }

    /// Runs all four rule checks over a set of closed spline shapes.
    pub fn check(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let sampled: Vec<SampledShape> = shapes
            .iter()
            .map(|s| sample_shape(s, self.samples_per_segment))
            .collect();
        let tree = build_edge_tree(&sampled);
        let mut out = Vec::new();
        self.check_spacing_into(&sampled, &tree, &mut out);
        self.check_width_into(&sampled, &tree, &mut out);
        self.check_area_into(&sampled, &mut out);
        self.check_curvature_into(shapes, &mut out);
        out
    }

    /// Spacing-rule check only.
    pub fn check_spacing(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let sampled: Vec<SampledShape> = shapes
            .iter()
            .map(|s| sample_shape(s, self.samples_per_segment))
            .collect();
        let tree = build_edge_tree(&sampled);
        let mut out = Vec::new();
        self.check_spacing_into(&sampled, &tree, &mut out);
        out
    }

    /// Width-rule check only.
    pub fn check_width(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let sampled: Vec<SampledShape> = shapes
            .iter()
            .map(|s| sample_shape(s, self.samples_per_segment))
            .collect();
        let tree = build_edge_tree(&sampled);
        let mut out = Vec::new();
        self.check_width_into(&sampled, &tree, &mut out);
        out
    }

    /// Area-rule check only.
    pub fn check_area(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let sampled: Vec<SampledShape> = shapes
            .iter()
            .map(|s| sample_shape(s, self.samples_per_segment))
            .collect();
        let mut out = Vec::new();
        self.check_area_into(&sampled, &mut out);
        out
    }

    /// Curvature-rule check only (fully analytic, no sampling of probes).
    pub fn check_curvature(&self, shapes: &[CardinalSpline]) -> Vec<Violation> {
        let mut out = Vec::new();
        self.check_curvature_into(shapes, &mut out);
        out
    }

    fn check_spacing_into(
        &self,
        sampled: &[SampledShape],
        tree: &RTree<EdgeRef>,
        out: &mut Vec<Violation>,
    ) {
        let c = self.rules.min_space;
        for (si, shape) in sampled.iter().enumerate() {
            for s in &shape.samples {
                let start = s.position + s.outward * PROBE_LIFT;
                let probe = Segment::new(start, s.position + s.outward * c);
                let mut worst: Option<f64> = None;
                for idx in tree.query_segment_indices(&probe) {
                    let edge = tree.item(idx).1;
                    if edge.shape == si {
                        // Spacing is checked between distinct shapes
                        // (Fig. 5(a)); same-shape notch spacing is part of
                        // the "well-optimized checking" the paper defers to
                        // future work.
                        continue;
                    }
                    if probe.intersects(&edge.segment) {
                        let dist = edge.segment.distance_to_point(s.position);
                        worst = Some(worst.map_or(dist, |w: f64| w.min(dist)));
                    }
                }
                if let Some(dist) = worst {
                    out.push(Violation {
                        kind: ViolationKind::Spacing,
                        shape: si,
                        segment: s.segment,
                        location: s.position,
                        normal: s.outward,
                        value: dist,
                        limit: c,
                    });
                }
            }
        }
    }

    fn check_width_into(
        &self,
        sampled: &[SampledShape],
        tree: &RTree<EdgeRef>,
        out: &mut Vec<Violation>,
    ) {
        let c = self.rules.min_width;
        for (si, shape) in sampled.iter().enumerate() {
            let m = shape.samples.len();
            for s in &shape.samples {
                let start = s.position - s.outward * PROBE_LIFT;
                let probe = Segment::new(start, s.position - s.outward * c);
                let own_index = sample_index(s, self.samples_per_segment);
                let mut worst: Option<f64> = None;
                for idx in tree.query_segment_indices(&probe) {
                    let edge = tree.item(idx).1;
                    if edge.shape != si {
                        continue; // width is a same-shape property
                    }
                    let d = circular_distance(edge.index, own_index, m);
                    if d <= WIDTH_ADJACENCY {
                        continue;
                    }
                    if probe.intersects(&edge.segment) {
                        let dist = edge.segment.distance_to_point(s.position);
                        worst = Some(worst.map_or(dist, |w: f64| w.min(dist)));
                    }
                }
                if let Some(dist) = worst {
                    out.push(Violation {
                        kind: ViolationKind::Width,
                        shape: si,
                        segment: s.segment,
                        location: s.position,
                        normal: s.outward,
                        value: dist,
                        limit: c,
                    });
                }
            }
        }
    }

    fn check_area_into(&self, sampled: &[SampledShape], out: &mut Vec<Violation>) {
        for (si, shape) in sampled.iter().enumerate() {
            if shape.area < self.rules.min_area {
                out.push(Violation {
                    kind: ViolationKind::Area,
                    shape: si,
                    segment: 0,
                    location: shape.centroid,
                    normal: Point::ZERO,
                    value: shape.area,
                    limit: self.rules.min_area,
                });
            }
        }
    }

    fn check_curvature_into(&self, shapes: &[CardinalSpline], out: &mut Vec<Violation>) {
        for (si, spline) in shapes.iter().enumerate() {
            let ccw = Polygon::new(spline.sample(self.samples_per_segment)).signed_area() > 0.0;
            let flip = if ccw { -1.0 } else { 1.0 };
            for seg in 0..spline.segment_count() {
                for k in 0..self.samples_per_segment {
                    let t = k as f64 / self.samples_per_segment as f64;
                    let kappa = spline.curvature(seg, t).abs();
                    if kappa > self.rules.max_curvature {
                        let normal = spline
                            .normal(seg, t)
                            .map(|n| n * flip)
                            .unwrap_or(Point::ZERO);
                        out.push(Violation {
                            kind: ViolationKind::Curvature,
                            shape: si,
                            segment: seg,
                            location: spline.point(seg, t),
                            normal,
                            value: kappa,
                            limit: self.rules.max_curvature,
                        });
                    }
                }
            }
        }
    }
}

/// A sampled boundary edge belonging to one shape.
#[derive(Clone, Copy, Debug)]
struct EdgeRef {
    shape: usize,
    /// Edge index along the shape's sampled loop.
    index: usize,
    segment: Segment,
}

fn build_edge_tree(sampled: &[SampledShape]) -> RTree<EdgeRef> {
    let mut items = Vec::new();
    for (si, shape) in sampled.iter().enumerate() {
        let m = shape.samples.len();
        for j in 0..m {
            let seg = Segment::new(
                shape.samples[j].position,
                shape.samples[(j + 1) % m].position,
            );
            items.push((
                seg.bbox(),
                EdgeRef {
                    shape: si,
                    index: j,
                    segment: seg,
                },
            ));
        }
    }
    RTree::bulk_load(items)
}

/// Global sample index of a sample point within its shape's loop.
#[inline]
fn sample_index(s: &SamplePoint, per_segment: usize) -> usize {
    s.segment * per_segment + (s.t * per_segment as f64).round() as usize
}

/// Circular index distance on a loop of length `n`.
#[inline]
fn circular_distance(a: usize, b: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let d = a.abs_diff(b) % n;
    d.min(n - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x0: f64, y0: f64, w: f64, h: f64) -> CardinalSpline {
        // Tension 0 keeps the loop close to the polygon for predictable
        // geometry in tests; interpolation still holds.
        CardinalSpline::closed(
            vec![
                Point::new(x0, y0),
                Point::new(x0 + w, y0),
                Point::new(x0 + w, y0 + h),
                Point::new(x0, y0 + h),
            ],
            0.0,
        )
        .unwrap()
    }

    fn circle(cx: f64, cy: f64, r: f64, n: usize) -> CardinalSpline {
        let pts = (0..n)
            .map(|i| {
                let th = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(cx + r * th.cos(), cy + r * th.sin())
            })
            .collect();
        CardinalSpline::closed(pts, 0.5).unwrap()
    }

    fn count_kind(vs: &[Violation], kind: ViolationKind) -> usize {
        vs.iter().filter(|v| v.kind == kind).count()
    }

    #[test]
    fn clean_layout_no_violations() {
        let shapes = [
            square(0.0, 0.0, 200.0, 200.0),
            square(300.0, 0.0, 200.0, 200.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check(&shapes);
        assert!(vs.is_empty(), "unexpected: {vs:?}");
    }

    #[test]
    fn spacing_violation_detected_between_close_shapes() {
        // Gap of 10 nm < 25 nm limit.
        let shapes = [
            square(0.0, 0.0, 100.0, 100.0),
            square(110.0, 0.0, 100.0, 100.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check_spacing(&shapes);
        assert!(!vs.is_empty());
        // Violations reported from both shapes, facing each other.
        assert!(vs.iter().any(|v| v.shape == 0));
        assert!(vs.iter().any(|v| v.shape == 1));
        for v in &vs {
            assert!(v.value < 25.0 + 1e-9);
            assert_eq!(v.kind, ViolationKind::Spacing);
        }
    }

    #[test]
    fn spacing_respects_limit_boundary() {
        // Gap of 30 nm > 25 nm: clean.
        let shapes = [
            square(0.0, 0.0, 100.0, 100.0),
            square(130.0, 0.0, 100.0, 100.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        assert!(checker.check_spacing(&shapes).is_empty());
    }

    #[test]
    fn width_violation_on_thin_shape() {
        // 20 nm-wide bar < 40 nm limit.
        let shapes = [square(0.0, 0.0, 300.0, 20.0)];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check_width(&shapes);
        assert!(!vs.is_empty());
        for v in &vs {
            assert_eq!(v.kind, ViolationKind::Width);
            assert!(v.value < 40.0 + 1e-9);
        }
    }

    #[test]
    fn wide_shape_passes_width() {
        let shapes = [square(0.0, 0.0, 300.0, 100.0)];
        let checker = MrcChecker::new(MrcRules::default());
        assert!(checker.check_width(&shapes).is_empty());
    }

    #[test]
    fn area_violation_on_tiny_shape() {
        // 30x30 = 900 nm² < 1500 nm².
        let shapes = [square(0.0, 0.0, 30.0, 30.0)];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check_area(&shapes);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::Area);
        assert!(vs[0].value < 1500.0);
    }

    #[test]
    fn curvature_violation_on_small_circle() {
        // Radius 8 nm -> curvature 0.125 > 1/15.
        let shapes = [circle(100.0, 100.0, 8.0, 12)];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check_curvature(&shapes);
        assert!(!vs.is_empty());
        for v in &vs {
            assert_eq!(v.kind, ViolationKind::Curvature);
            assert!(v.value > 1.0 / 15.0);
        }
    }

    #[test]
    fn curvature_clean_on_large_circle() {
        // Radius 100 nm -> curvature 0.01 << 1/15.
        let shapes = [circle(300.0, 300.0, 100.0, 24)];
        let checker = MrcChecker::new(MrcRules::default());
        assert!(checker.check_curvature(&shapes).is_empty());
    }

    #[test]
    fn large_circle_fully_clean() {
        let shapes = [circle(300.0, 300.0, 100.0, 24)];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check(&shapes);
        assert!(vs.is_empty(), "unexpected: {:?}", &vs[..vs.len().min(3)]);
    }

    #[test]
    fn kinds_are_attributed_correctly() {
        // One thin bar and one pair of close squares: width + spacing, no
        // area (bar area = 300*20 = 6000 > 1500).
        let shapes = [
            square(0.0, 200.0, 300.0, 20.0),
            square(0.0, 0.0, 100.0, 100.0),
            square(110.0, 0.0, 100.0, 100.0),
        ];
        let checker = MrcChecker::new(MrcRules::default());
        let vs = checker.check(&shapes);
        assert!(count_kind(&vs, ViolationKind::Width) > 0);
        assert!(count_kind(&vs, ViolationKind::Spacing) > 0);
        assert_eq!(count_kind(&vs, ViolationKind::Area), 0);
        // Width violations only on shape 0.
        assert!(vs
            .iter()
            .filter(|v| v.kind == ViolationKind::Width)
            .all(|v| v.shape == 0));
    }

    #[test]
    fn circular_distance_wraps() {
        assert_eq!(circular_distance(0, 9, 10), 1);
        assert_eq!(circular_distance(2, 7, 10), 5);
        assert_eq!(circular_distance(3, 3, 10), 0);
        assert_eq!(circular_distance(0, 0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_sampling_panics() {
        let _ = MrcChecker::with_sampling(MrcRules::default(), 0);
    }
}
