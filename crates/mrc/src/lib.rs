//! # cardopc-mrc
//!
//! Curvilinear mask rule checking and violation resolving — the component
//! the paper argues gives spline-based OPC its manufacturability edge over
//! pixel ILT (§III-F).
//!
//! * [`MrcRules`] — the four curvilinear rules: spacing, width, area,
//!   curvature (after Bork et al., *MRC for curvilinear mask shapes*),
//! * [`MrcChecker`] — probe-segment spacing/width checks over an R-tree of
//!   sampled mask edges, shoelace area checks, and fully analytic spline
//!   curvature checks,
//! * [`MrcResolver`] — trial-move violation resolving: control points slide
//!   along/against their normals with escalating steps until the mask is
//!   clean (Fig. 5).
//!
//! ```
//! use cardopc_geometry::Point;
//! use cardopc_mrc::{MrcChecker, MrcRules};
//! use cardopc_spline::CardinalSpline;
//!
//! let shape = CardinalSpline::closed(
//!     vec![
//!         Point::new(0.0, 0.0),
//!         Point::new(120.0, 0.0),
//!         Point::new(120.0, 120.0),
//!         Point::new(0.0, 120.0),
//!     ],
//!     0.6,
//! )?;
//! let checker = MrcChecker::new(MrcRules::default());
//! assert!(checker.check(&[shape]).is_empty());
//! # Ok::<(), cardopc_spline::SplineError>(())
//! ```

#![warn(missing_docs)]

mod check;
mod resolve;
mod rules;

pub use check::MrcChecker;
pub use resolve::{AreaPolicy, MrcResolver, ResolveConfig, ResolveReport};
pub use rules::{MrcRules, Violation, ViolationKind};
