//! MRC violation resolving (§III-F and Fig. 5(b)–(d)).
//!
//! Violations are addressed by trial moves of the control points nearest to
//! each violation site:
//!
//! * **spacing** — move the control point *against* its outward normal
//!   (inward), enlarging the gap (Fig. 5(b)),
//! * **width** — move *along* the outward normal, fattening the shape,
//! * **curvature** — try both directions (Fig. 5(c)/(d)),
//! * **area** — cancel moves that would shrink a shape below `C_area`; for
//!   shapes that *start* below the limit (typical after ILT fitting of
//!   non-printable specks) optionally remove the shape.
//!
//! The move distance escalates "from small to large" over retry rounds, as
//! the paper describes; violations usually clear within a few trials.

use crate::check::MrcWorld;
use crate::{MrcChecker, MrcRules, Violation, ViolationKind};
use cardopc_geometry::Point;
use cardopc_spline::CardinalSpline;

/// What to do with shapes whose *area* violates the rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AreaPolicy {
    /// Keep the shape (OPC flow: moves that would create an area violation
    /// are cancelled instead).
    Keep,
    /// Remove the shape entirely (ILT-fitting flow: sub-area shapes are
    /// non-printable specks).
    RemoveShape,
}

/// Configuration of the resolver.
#[derive(Clone, Debug)]
pub struct ResolveConfig {
    /// Escalating trial move distances in nanometres.
    pub step_schedule: Vec<f64>,
    /// Maximum check-and-fix rounds.
    pub max_rounds: usize,
    /// Handling of area violations.
    pub area_policy: AreaPolicy,
    /// Sampling density handed to the internal checker.
    pub samples_per_segment: usize,
    /// Under [`AreaPolicy::RemoveShape`]: after the final round, shapes
    /// that *still* violate rules and whose area is below this threshold
    /// are dropped as non-printable specks (the paper removes such shapes
    /// after ILT fitting). `None` disables the sweep.
    pub remove_stubborn_below: Option<f64>,
}

impl Default for ResolveConfig {
    fn default() -> Self {
        ResolveConfig {
            step_schedule: vec![1.0, 2.0, 4.0, 8.0],
            max_rounds: 12,
            area_policy: AreaPolicy::Keep,
            samples_per_segment: 8,
            remove_stubborn_below: None,
        }
    }
}

/// Outcome of a resolve run.
#[derive(Clone, Debug)]
pub struct ResolveReport {
    /// Violations found before any fixing.
    pub initial_violations: usize,
    /// Violations remaining after the final round.
    pub remaining: Vec<Violation>,
    /// Rounds executed.
    pub rounds: usize,
    /// Control point moves applied (including later-cancelled ones).
    pub moves_applied: usize,
    /// Shapes removed under [`AreaPolicy::RemoveShape`].
    pub shapes_removed: usize,
}

impl ResolveReport {
    /// `true` when the mask ended fully clean.
    pub fn is_clean(&self) -> bool {
        self.remaining.is_empty()
    }
}

/// The MRC violation resolver.
///
/// ```
/// use cardopc_geometry::Point;
/// use cardopc_mrc::{AreaPolicy, MrcResolver, MrcRules, ResolveConfig};
/// use cardopc_spline::CardinalSpline;
///
/// // Two squares only 10 nm apart: a spacing violation under the default
/// // 25 nm rule, fixable by pulling facing edges inward.
/// let mk = |x0: f64| CardinalSpline::closed(vec![
///     Point::new(x0, 0.0), Point::new(x0 + 150.0, 0.0),
///     Point::new(x0 + 150.0, 150.0), Point::new(x0, 150.0),
/// ], 0.0).expect("valid loop");
/// let mut shapes = vec![mk(0.0), mk(160.0)];
///
/// let resolver = MrcResolver::new(MrcRules::default(), ResolveConfig::default());
/// let report = resolver.resolve(&mut shapes);
/// assert!(report.initial_violations > 0);
/// assert!(report.is_clean());
/// ```
#[derive(Clone, Debug)]
pub struct MrcResolver {
    rules: MrcRules,
    config: ResolveConfig,
}

impl MrcResolver {
    /// Creates a resolver.
    ///
    /// # Panics
    ///
    /// Panics when the rules are invalid, the step schedule is empty, or
    /// `max_rounds == 0`.
    pub fn new(rules: MrcRules, config: ResolveConfig) -> Self {
        rules.assert_valid();
        assert!(!config.step_schedule.is_empty(), "empty step schedule");
        assert!(config.max_rounds > 0, "need at least one round");
        MrcResolver { rules, config }
    }

    /// The rule set.
    pub fn rules(&self) -> &MrcRules {
        &self.rules
    }

    /// Resolves violations in place. Shapes may be removed (only under
    /// [`AreaPolicy::RemoveShape`]).
    pub fn resolve(&self, shapes: &mut Vec<CardinalSpline>) -> ResolveReport {
        let checker = MrcChecker::with_sampling(self.rules, self.config.samples_per_segment);
        let mut report = ResolveReport {
            initial_violations: 0,
            remaining: Vec::new(),
            rounds: 0,
            moves_applied: 0,
            shapes_removed: 0,
        };

        // Sample and index every shape once; afterwards only shapes that
        // actually move (or get removed) pay for re-sampling.
        let mut world = MrcWorld::build(shapes, self.config.samples_per_segment);

        // Remove / accept sub-area shapes up front so the loop works on
        // fixable violations.
        if self.config.area_policy == AreaPolicy::RemoveShape {
            let before = shapes.len();
            let mut i = 0;
            while i < shapes.len() {
                if world.area(i) < self.rules.min_area {
                    shapes.remove(i);
                    world.remove(i);
                } else {
                    i += 1;
                }
            }
            report.shapes_removed = before - shapes.len();
        }

        let mut violations = checker.check_with_world(shapes, &world);
        report.initial_violations = violations.len() + report.shapes_removed;

        for round in 0..self.config.max_rounds {
            if violations.is_empty() {
                break;
            }
            report.rounds = round + 1;
            let step = self.config.step_schedule[round.min(self.config.step_schedule.len() - 1)];

            // One move per (shape, control point) per round; aggregate the
            // requested directions so opposing requests cancel.
            let mut moves: std::collections::HashMap<(usize, usize), Point> =
                std::collections::HashMap::new();
            for v in &violations {
                if v.kind == ViolationKind::Area {
                    continue; // handled by policy / cancellation
                }
                let outward = match v.normal.normalized() {
                    Some(n) => n,
                    None => continue,
                };
                let Some(cp) = nearest_control_point(&shapes[v.shape], v.location) else {
                    continue;
                };
                let dir = match v.kind {
                    ViolationKind::Spacing => -outward,
                    ViolationKind::Width => outward,
                    // Fig. 5(c)/(d): curvature violations move in or out.
                    // A convex bulge flattens by moving inward, a concave
                    // dent by moving outward. Extreme spikes (cusps, far
                    // beyond the limit) are pulled straight toward the
                    // neighbouring control points' midpoint, which removes
                    // the kink regardless of its orientation.
                    ViolationKind::Curvature => {
                        if v.value > 1.5 * v.limit {
                            let cps = shapes[v.shape].control_points();
                            let n = cps.len();
                            let mid = (cps[(cp + 1) % n] + cps[(cp + n - 1) % n]) * 0.5;
                            match (mid - cps[cp]).normalized() {
                                Some(d) => d,
                                None => continue,
                            }
                        } else if is_convex_at(
                            &shapes[v.shape],
                            v.segment,
                            self.config.samples_per_segment,
                            world.ccw(v.shape),
                        ) {
                            -outward
                        } else {
                            outward
                        }
                    }
                    ViolationKind::Area => unreachable!(),
                };
                // Spacing/width pulls spread to the neighbouring control
                // points so fixes stay smooth instead of growing spikes;
                // curvature fixes act on the offending point alone (a
                // spread would translate the kink, not flatten it).
                *moves.entry((v.shape, cp)).or_insert(Point::ZERO) += dir;
                if v.kind != ViolationKind::Curvature {
                    let n_cp = shapes[v.shape].control_points().len();
                    *moves
                        .entry((v.shape, (cp + 1) % n_cp))
                        .or_insert(Point::ZERO) += dir * 0.5;
                    *moves
                        .entry((v.shape, (cp + n_cp - 1) % n_cp))
                        .or_insert(Point::ZERO) += dir * 0.5;
                }
            }

            // Apply per-shape, with snapshot + cancel on new area violation.
            let mut by_shape: std::collections::HashMap<usize, Vec<(usize, Point)>> =
                std::collections::HashMap::new();
            for ((shape, cp), dir) in moves {
                if let Some(d) = dir.normalized() {
                    by_shape.entry(shape).or_default().push((cp, d * step));
                }
            }
            // Violation count per shape before this round's moves, used to
            // keep the resolver monotone.
            let mut before_counts: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for v in &violations {
                *before_counts.entry(v.shape).or_insert(0) += 1;
            }

            let mut to_remove: Vec<usize> = Vec::new();
            let mut snapshots: std::collections::HashMap<usize, CardinalSpline> =
                std::collections::HashMap::new();
            for (shape_idx, cp_moves) in by_shape {
                let snapshot = shapes[shape_idx].clone();
                let area_before = world.area(shape_idx);
                for &(cp, delta) in &cp_moves {
                    shapes[shape_idx].control_points_mut()[cp] += delta;
                    report.moves_applied += 1;
                }
                world.refresh(shape_idx, &shapes[shape_idx]);
                let area_after = world.area(shape_idx);
                if area_after < self.rules.min_area && area_before >= self.rules.min_area {
                    match self.config.area_policy {
                        // The move created an area violation: cancel it.
                        AreaPolicy::Keep => {
                            shapes[shape_idx] = snapshot;
                            world.refresh(shape_idx, &shapes[shape_idx]);
                            continue;
                        }
                        // ILT-fitting flow: a shape that must shrink below
                        // the area limit to satisfy the other rules is a
                        // non-printable speck — drop it.
                        AreaPolicy::RemoveShape => {
                            to_remove.push(shape_idx);
                            continue;
                        }
                    }
                }
                snapshots.insert(shape_idx, snapshot);
            }
            if !to_remove.is_empty() {
                to_remove.sort_unstable();
                for idx in to_remove.into_iter().rev() {
                    shapes.remove(idx);
                    world.remove(idx);
                    report.shapes_removed += 1;
                    // Snapshot indices after a removal no longer line up;
                    // drop them for this round (reverts resume next round).
                    snapshots.clear();
                }
            }

            violations = checker.check_with_world(shapes, &world);

            // Monotonicity guard: a trial move that left its shape with
            // *more* violations than before is undone (the escalating step
            // schedule retries from the snapshot at a different distance
            // next round).
            if !snapshots.is_empty() {
                let mut after_counts: std::collections::HashMap<usize, usize> =
                    std::collections::HashMap::new();
                for v in &violations {
                    *after_counts.entry(v.shape).or_insert(0) += 1;
                }
                let mut reverted = false;
                for (idx, snapshot) in snapshots {
                    let before = before_counts.get(&idx).copied().unwrap_or(0);
                    let after = after_counts.get(&idx).copied().unwrap_or(0);
                    if after > before {
                        shapes[idx] = snapshot;
                        world.refresh(idx, &shapes[idx]);
                        reverted = true;
                    }
                }
                if reverted {
                    violations = checker.check_with_world(shapes, &world);
                }
            }
        }

        // Final sweep: stubborn small violators are non-printable specks.
        if self.config.area_policy == AreaPolicy::RemoveShape {
            if let Some(limit) = self.config.remove_stubborn_below {
                let mut guilty: Vec<usize> = violations.iter().map(|v| v.shape).collect();
                guilty.sort_unstable();
                guilty.dedup();
                guilty.retain(|&i| world.area(i) < limit);
                if !guilty.is_empty() {
                    for idx in guilty.into_iter().rev() {
                        shapes.remove(idx);
                        world.remove(idx);
                        report.shapes_removed += 1;
                    }
                    violations = checker.check_with_world(shapes, &world);
                }
            }
        }

        report.remaining = violations;
        report
    }
}

/// `true` when the strongest-curvature point of `segment` is convex (the
/// boundary bulges outward there). Convex bulges flatten by moving the
/// control point inward, concave dents by moving outward. The loop
/// orientation `ccw` comes from the caller's [`MrcWorld`] cache.
fn is_convex_at(spline: &CardinalSpline, segment: usize, per_segment: usize, ccw: bool) -> bool {
    let mut kappa = 0.0f64;
    for k in 0..per_segment.max(1) {
        let t = k as f64 / per_segment.max(1) as f64;
        let c = spline.curvature(segment, t);
        if c.abs() > kappa.abs() {
            kappa = c;
        }
    }
    // Positive curvature means "curving left". On a CCW loop that is a
    // convex bulge; on a CW loop, a concave dent.
    if ccw {
        kappa > 0.0
    } else {
        kappa < 0.0
    }
}

/// The control point of `spline` nearest to `location`.
fn nearest_control_point(spline: &CardinalSpline, location: Point) -> Option<usize> {
    let cps = spline.control_points();
    if cps.is_empty() {
        return None;
    }
    let (mut best, mut best_d) = (0usize, f64::INFINITY);
    for (i, &p) in cps.iter().enumerate() {
        let d = p.distance_sq(location);
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MrcChecker;
    use cardopc_geometry::Polygon;

    fn square(x0: f64, y0: f64, w: f64, h: f64) -> CardinalSpline {
        CardinalSpline::closed(
            vec![
                Point::new(x0, y0),
                Point::new(x0 + w, y0),
                Point::new(x0 + w, y0 + h),
                Point::new(x0, y0 + h),
            ],
            0.0,
        )
        .unwrap()
    }

    fn dense_square(x0: f64, y0: f64, w: f64, h: f64, per_side: usize) -> CardinalSpline {
        // A square with several control points per side so local fixes can
        // move an edge region without collapsing the shape.
        let mut pts = Vec::new();
        let corners = [
            Point::new(x0, y0),
            Point::new(x0 + w, y0),
            Point::new(x0 + w, y0 + h),
            Point::new(x0, y0 + h),
        ];
        for i in 0..4 {
            let a = corners[i];
            let b = corners[(i + 1) % 4];
            for k in 0..per_side {
                pts.push(a.lerp(b, k as f64 / per_side as f64));
            }
        }
        CardinalSpline::closed(pts, 0.0).unwrap()
    }

    #[test]
    fn clean_input_is_untouched() {
        let mut shapes = vec![square(0.0, 0.0, 200.0, 200.0)];
        let orig = shapes.clone();
        let resolver = MrcResolver::new(MrcRules::default(), ResolveConfig::default());
        let report = resolver.resolve(&mut shapes);
        assert_eq!(report.initial_violations, 0);
        assert_eq!(report.rounds, 0);
        assert!(report.is_clean());
        assert_eq!(shapes, orig);
    }

    #[test]
    fn spacing_violation_resolved() {
        let mut shapes = vec![
            dense_square(0.0, 0.0, 150.0, 150.0, 4),
            dense_square(160.0, 0.0, 150.0, 150.0, 4),
        ];
        let resolver = MrcResolver::new(MrcRules::default(), ResolveConfig::default());
        let report = resolver.resolve(&mut shapes);
        assert!(report.initial_violations > 0);
        assert!(
            report.is_clean(),
            "remaining: {:?}",
            &report.remaining[..report.remaining.len().min(3)]
        );
        assert!(report.moves_applied > 0);
        assert_eq!(shapes.len(), 2);
    }

    #[test]
    fn width_violation_resolved() {
        // 30 nm-thin bar under a 40 nm width rule.
        let mut shapes = vec![dense_square(0.0, 0.0, 400.0, 30.0, 6)];
        let resolver = MrcResolver::new(MrcRules::default(), ResolveConfig::default());
        let report = resolver.resolve(&mut shapes);
        assert!(report.initial_violations > 0);
        assert!(
            report.is_clean(),
            "remaining: {:?}",
            &report.remaining[..report.remaining.len().min(3)]
        );
        // The bar fattened rather than vanished.
        let area = Polygon::new(shapes[0].sample(8)).area();
        assert!(area > 400.0 * 30.0);
    }

    #[test]
    fn area_policy_remove_drops_specks() {
        let mut shapes = vec![
            square(0.0, 0.0, 200.0, 200.0),
            square(500.0, 500.0, 20.0, 20.0), // 400 nm² speck
        ];
        let resolver = MrcResolver::new(
            MrcRules::default(),
            ResolveConfig {
                area_policy: AreaPolicy::RemoveShape,
                ..ResolveConfig::default()
            },
        );
        let report = resolver.resolve(&mut shapes);
        assert_eq!(report.shapes_removed, 1);
        assert_eq!(shapes.len(), 1);
        assert!(report.is_clean());
    }

    #[test]
    fn area_policy_keep_retains_speck() {
        let mut shapes = vec![square(500.0, 500.0, 20.0, 20.0)];
        let resolver = MrcResolver::new(MrcRules::default(), ResolveConfig::default());
        let report = resolver.resolve(&mut shapes);
        // Keep policy never deletes shapes. The speck's width violations
        // pull its boundary outward; if the resolver reports clean, the
        // shape must have grown past both the width and area limits.
        assert_eq!(shapes.len(), 1);
        assert!(report.initial_violations > 0);
        if report.is_clean() {
            let area = Polygon::new(shapes[0].sample(8)).area();
            assert!(area >= resolver.rules().min_area);
        } else {
            assert!(!report.remaining.is_empty());
        }
    }

    #[test]
    fn resolved_mask_passes_independent_check() {
        let mut shapes = vec![
            dense_square(0.0, 0.0, 150.0, 150.0, 4),
            dense_square(162.0, 0.0, 150.0, 150.0, 4),
        ];
        let resolver = MrcResolver::new(MrcRules::default(), ResolveConfig::default());
        let report = resolver.resolve(&mut shapes);
        assert!(report.is_clean());
        let checker = MrcChecker::new(MrcRules::default());
        assert!(checker.check(&shapes).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty step schedule")]
    fn empty_schedule_panics() {
        let _ = MrcResolver::new(
            MrcRules::default(),
            ResolveConfig {
                step_schedule: vec![],
                ..ResolveConfig::default()
            },
        );
    }
}
